//! # CrowdRTSE
//!
//! A Rust implementation of **"Realtime Traffic Speed Estimation with
//! Sparse Crowdsourced Data"** (ICDE 2018): a hybrid offline/online
//! framework that answers realtime traffic-speed queries by combining a
//! Gaussian-Markov-Random-Field traffic model (RTF) trained on historical
//! data with judicious crowdsourcing (OCS) and belief-propagation-style
//! inference (GSP).
//!
//! This crate is a facade re-exporting the workspace's public API:
//!
//! * [`graph`] — the road-network substrate (CSR graph, Dijkstra, BFS,
//!   generators);
//! * [`data`] — time slots, historical speed stores, the synthetic traffic
//!   generator;
//! * [`rtf`] — the offline model: parameters, likelihood, trainer,
//!   correlation tables;
//! * [`ocs`] — crowdsourced-road selection (Ratio/Objective/Hybrid greedy,
//!   exact solver);
//! * [`gsp`] — graph-based speed propagation (sequential, parallel, and
//!   incremental delta re-propagation from a previous fixed point);
//! * [`pool`] — the shared scoped worker pool (`ComputePool`,
//!   `RTSE_THREADS`) behind every parallel path above;
//! * [`crowd`] — workers, mobility, answers, costs, campaigns, the
//!   gMission scenario;
//! * [`baselines`] — Per, LASSO, GRMC comparators;
//! * [`eval`] — MAPE/FER/DAPE metrics, coverage, tables, timing;
//! * [`core`] — the `CrowdRtse` engine tying everything together;
//! * [`serve`] — the concurrent query-serving layer in front of the
//!   engine (slot-aware micro-batching, answer caching, admission
//!   control with deadline-based load shedding);
//! * [`edge`] — the TCP front-end in front of [`serve`]: length-prefixed
//!   wire protocol with a fail-closed decoder, sharded accept loops,
//!   slot-rollover prewarm, graceful cross-socket drain;
//! * [`obs`] — the observability layer: a stage taxonomy, an injectable
//!   registry of counters/gauges/log-linear histograms, span timers, and
//!   JSON snapshots (near-zero overhead when disabled; force-disable
//!   recording workspace-wide with the `obs-noop` feature);
//! * [`check`] — invariant contracts ([`check::Validate`]) enforced
//!   fail-closed at pipeline boundaries under the `validate` feature.
//!
//! ## Quickstart
//!
//! ```
//! use crowd_rtse::prelude::*;
//!
//! // A small synthetic city with 8 days of history.
//! let graph = crowd_rtse::graph::generators::hong_kong_like(100, 7);
//! let dataset = TrafficGenerator::new(
//!     &graph,
//!     SynthConfig { days: 8, seed: 7, ..SynthConfig::default() },
//! )
//! .generate();
//!
//! // Offline: estimate the RTF (moments; the trainer's CCD is equivalent
//! // here and slower — see `RtfTrainer`).
//! let offline = OfflineArtifacts::from_model(moment_estimate(&graph, &dataset.history));
//! let engine = CrowdRtse::new(&graph, offline);
//!
//! // Online: where are the workers, what does a probe cost, what do we ask?
//! let pool = WorkerPool::spawn(&graph, 50, 0.5, (0.3, 1.5), 42);
//! let costs = uniform_costs(graph.num_roads(), CostRange::C2, 42);
//! let slot = SlotOfDay::from_hm(8, 30);
//! let query = SpeedQuery::new((0u32..20).map(RoadId).collect(), slot);
//! let truth = dataset.ground_truth_snapshot(slot);
//!
//! let answer = engine.answer_query(&query, &pool, &costs, truth, &OnlineConfig::default());
//! assert_eq!(answer.estimates.len(), query.roads.len());
//! ```

pub use crowd_rtse_core as core;
pub use rtse_baselines as baselines;
pub use rtse_check as check;
pub use rtse_crowd as crowd;
pub use rtse_data as data;
pub use rtse_edge as edge;
pub use rtse_eval as eval;
pub use rtse_graph as graph;
pub use rtse_gsp as gsp;
pub use rtse_math as math;
pub use rtse_obs as obs;
pub use rtse_ocs as ocs;
pub use rtse_pool as pool;
pub use rtse_rtf as rtf;
pub use rtse_serve as serve;

/// Everything needed for typical use, importable in one line.
pub mod prelude {
    pub use crowd_rtse_core::{
        merge_queries, plan_daily_budget, variance_aware_select, CorrSubstrate, CrowdRtse,
        DeltaPolicy, GspEstimator, MonitoringSession, OfflineArtifacts, OnlineConfig, PrevRound,
        QueryAnswer, QueryError, RoundReport, SelectionStrategy, SpeedQuery, StepError,
    };
    pub use rtse_baselines::{EstimationContext, Estimator, Grmc, LassoEstimator, Per};
    pub use rtse_check::{InvariantViolation, Validate};
    pub use rtse_crowd::{
        uniform_costs, CostRange, CrowdCampaign, GMissionScenario, GMissionSpec, WorkerPool,
    };
    pub use rtse_data::{
        simulate_fleet, FleetConfig, HistoryStore, SlotOfDay, SpeedRecord, StationNetwork,
        SynthConfig, SynthDataset, TimeSlot, TrafficGenerator, SLOTS_PER_DAY,
    };
    pub use rtse_edge::{
        edge_serve, ClientReply, EdgeClient, EdgeConfig, EdgeError, EdgeHandle, EdgeOutcome,
        PrewarmConfig, RejectCode,
    };
    pub use rtse_eval::{k_hop_coverage, ErrorReport, Table};
    pub use rtse_graph::{Graph, GraphBuilder, Road, RoadClass, RoadId};
    pub use rtse_gsp::{
        exact_map_estimate, propagate_delta, propagate_delta_observed, propagate_warm,
        sample_posterior, DampedGsp, DeltaGsp, DeltaResult, GspSolver, ParallelGsp,
        PosteriorSummary,
    };
    pub use rtse_obs::{ObsHandle, Registry, Stage};
    pub use rtse_ocs::{
        exact_solve, hybrid_greedy, lazy_objective_greedy, objective_greedy, random_select,
        ratio_greedy, trivial_solution, OcsInstance, Selection,
    };
    pub use rtse_pool::ComputePool;
    pub use rtse_rtf::{
        moment_estimate, CorrTable, CorrelationRead, CorrelationTable, DayType, DayTypeModel,
        IncrementalModel, InitStrategy, PathCorrelation, RtfModel, RtfTrainer, SparseCorrConfig,
        SparseCorrelationTable,
    };
    pub use rtse_serve::{
        serve, ServeConfig, ServeError, ServeOutcome, ServeRequest, ServeWorld, ServedAnswer,
        ServerHandle, TruthSource,
    };
}
