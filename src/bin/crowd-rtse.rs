//! `crowd-rtse` — command-line front end.
//!
//! Subcommands:
//!
//! ```text
//! crowd-rtse generate --roads 607 --days 30 --seed 7 --out history.csv
//! crowd-rtse train    --roads 607 --days 30 --seed 7 --model model.json
//! crowd-rtse evaluate --roads 607 --days 30 --seed 7 [--budget 30] [--workers 200]
//! crowd-rtse export   --roads 607 --days 30 --seed 7 --out city.geojson
//! crowd-rtse info     --roads 607 --seed 7
//! ```
//!
//! The network and dataset are regenerated deterministically from
//! `--roads/--days/--seed`, so artifacts produced by one subcommand line
//! up with another's (the CSV a `generate` wrote is the history a `train`
//! with the same flags used).
//!
//! Argument parsing is deliberately hand-rolled: the workspace's dependency
//! policy (DESIGN.md) keeps the tree to the approved crates.

use crowd_rtse::data::io::write_records;
use crowd_rtse::prelude::*;
use crowd_rtse::rtf::persistence::save_model;
use std::collections::HashMap;
use std::io::BufWriter;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match Options::parse(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "generate" => cmd_generate(&opts),
        "export" => cmd_export(&opts),
        "train" => cmd_train(&opts),
        "evaluate" => cmd_evaluate(&opts),
        "info" => cmd_info(&opts),
        other => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
crowd-rtse — realtime traffic speed estimation with sparse crowdsourced data

USAGE:
  crowd-rtse <generate|train|evaluate|export|info> [--flag value]...

FLAGS (defaults in brackets):
  --roads N      network size [607]
  --days N       days of history [30]
  --seed N       generator seed [2018]
  --out PATH     output CSV for `generate` [history.csv]
  --model PATH   output JSON for `train` [model.json]
  --budget N     crowdsourcing budget for `evaluate` [30]
  --workers N    worker count for `evaluate` [200]
  --queried N    queried-road count for `evaluate` [51]";

struct Options {
    roads: usize,
    days: usize,
    seed: u64,
    out: String,
    model: String,
    budget: u32,
    workers: usize,
    queried: usize,
}

impl Options {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut map = HashMap::new();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let key =
                flag.strip_prefix("--").ok_or_else(|| format!("expected --flag, got {flag:?}"))?;
            let value = it.next().ok_or_else(|| format!("missing value for --{key}"))?;
            map.insert(key.to_string(), value.to_string());
        }
        let get = |k: &str, default: &str| map.get(k).cloned().unwrap_or_else(|| default.into());
        let num = |k: &str, default: &str| -> Result<u64, String> {
            get(k, default).parse().map_err(|_| format!("--{k} must be a number"))
        };
        let known = ["roads", "days", "seed", "out", "model", "budget", "workers", "queried"];
        if let Some(bad) = map.keys().find(|k| !known.contains(&k.as_str())) {
            return Err(format!("unknown flag --{bad}"));
        }
        Ok(Self {
            roads: num("roads", "607")? as usize,
            days: num("days", "30")? as usize,
            seed: num("seed", "2018")?,
            out: get("out", "history.csv"),
            model: get("model", "model.json"),
            budget: num("budget", "30")? as u32,
            workers: num("workers", "200")? as usize,
            queried: num("queried", "51")? as usize,
        })
    }

    fn world(&self) -> (Graph, SynthDataset) {
        let graph = crowd_rtse::graph::generators::hong_kong_like(self.roads, self.seed);
        let dataset = TrafficGenerator::new(
            &graph,
            SynthConfig { days: self.days, seed: self.seed, ..SynthConfig::default() },
        )
        .generate();
        (graph, dataset)
    }
}

fn cmd_generate(opts: &Options) -> Result<(), String> {
    let (graph, dataset) = opts.world();
    let file =
        std::fs::File::create(&opts.out).map_err(|e| format!("cannot create {}: {e}", opts.out))?;
    write_records(BufWriter::new(file), dataset.history.records())
        .map_err(|e| format!("write failed: {e}"))?;
    println!(
        "wrote {} records ({} roads x {} days x {} slots) to {}",
        dataset.history.num_records(),
        graph.num_roads(),
        opts.days,
        SLOTS_PER_DAY,
        opts.out
    );
    Ok(())
}

fn cmd_train(opts: &Options) -> Result<(), String> {
    let (graph, dataset) = opts.world();
    let model = moment_estimate(&graph, &dataset.history);
    let diag = crowd_rtse::rtf::evaluate_model(&graph, &model, &dataset.today);
    save_model(&model, std::path::Path::new(&opts.model))
        .map_err(|e| format!("cannot save model: {e}"))?;
    println!(
        "trained RTF on {} roads x {} days; held-out: avg log-density {:.3}, \
         1σ coverage {:.1}%, 2σ coverage {:.1}%",
        graph.num_roads(),
        opts.days,
        diag.avg_log_density,
        100.0 * diag.coverage_1sigma,
        100.0 * diag.coverage_2sigma
    );
    println!("model written to {}", opts.model);
    Ok(())
}

fn cmd_evaluate(opts: &Options) -> Result<(), String> {
    let (graph, dataset) = opts.world();
    let engine = CrowdRtse::new(
        &graph,
        OfflineArtifacts::from_model(moment_estimate(&graph, &dataset.history)),
    );
    let pool = WorkerPool::spawn(&graph, opts.workers, 0.5, (0.3, 1.5), opts.seed);
    let costs = uniform_costs(graph.num_roads(), CostRange::C1, opts.seed);
    let queried: Vec<RoadId> = (0..graph.num_roads())
        .step_by((graph.num_roads() / opts.queried.max(1)).max(1))
        .take(opts.queried)
        .map(RoadId::from)
        .collect();
    let mut table = Table::new(
        format!(
            "evaluation: {} queried roads, K = {}, {} workers",
            queried.len(),
            opts.budget,
            opts.workers
        ),
        &["slot", "sampled", "MAPE", "FER", "OCS ms", "GSP ms"],
    );
    for (h, m) in [(3u32, 0u32), (8, 30), (13, 0), (18, 0)] {
        let slot = SlotOfDay::from_hm(h, m);
        let truth = dataset.ground_truth_snapshot(slot);
        let query = SpeedQuery::new(queried.clone(), slot);
        let answer = engine.answer_query(
            &query,
            &pool,
            &costs,
            truth,
            &OnlineConfig { budget: opts.budget, ..Default::default() },
        );
        let rep = ErrorReport::evaluate_default(&answer.all_values, truth, &queried);
        table.push_row(vec![
            format!("{h:02}:{m:02}"),
            answer.selection.roads.len().to_string(),
            format!("{:.3}", rep.mape),
            format!("{:.3}", rep.fer),
            format!("{:.2}", answer.selection_time.as_secs_f64() * 1e3),
            format!("{:.2}", answer.propagation_time.as_secs_f64() * 1e3),
        ]);
    }
    println!("{}", table.render());
    Ok(())
}

fn cmd_export(opts: &Options) -> Result<(), String> {
    use crowd_rtse::eval::{to_geojson, ScalarLayer};
    let (graph, dataset) = opts.world();
    let engine = CrowdRtse::new(
        &graph,
        OfflineArtifacts::from_model(moment_estimate(&graph, &dataset.history)),
    );
    let slot = SlotOfDay::from_hm(8, 30);
    let truth = dataset.ground_truth_snapshot(slot);
    let pool = WorkerPool::spawn(&graph, opts.workers, 0.5, (0.3, 1.5), opts.seed);
    let costs = uniform_costs(graph.num_roads(), CostRange::C1, opts.seed);
    let query = SpeedQuery::new(graph.road_ids().collect(), slot);
    let answer = engine.answer_query(
        &query,
        &pool,
        &costs,
        truth,
        &OnlineConfig { budget: opts.budget, ..Default::default() },
    );
    let periodic = engine.offline().model().slot(slot).mu.clone();
    let json = to_geojson(
        &graph,
        &[
            ScalarLayer { name: "estimate_kmh", values: &answer.all_values },
            ScalarLayer { name: "periodic_kmh", values: &periodic },
            ScalarLayer { name: "truth_kmh", values: truth },
        ],
    );
    let out = if opts.out == "history.csv" { "city.geojson".to_string() } else { opts.out.clone() };
    std::fs::write(&out, json).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "wrote {} roads at 08:30 (estimate/periodic/truth layers) to {out}",
        graph.num_roads()
    );
    Ok(())
}

fn cmd_info(opts: &Options) -> Result<(), String> {
    let graph = crowd_rtse::graph::generators::hong_kong_like(opts.roads, opts.seed);
    println!("network: {} roads, {} adjacencies", graph.num_roads(), graph.num_edges());
    println!(
        "average degree {:.2}, diameter (est.) {}, clustering {:.4}",
        crowd_rtse::graph::average_degree(&graph),
        crowd_rtse::graph::diameter_estimate(&graph, 8),
        crowd_rtse::graph::clustering_coefficient(&graph),
    );
    let hist = crowd_rtse::graph::degree_histogram(&graph);
    let line: Vec<String> =
        hist.iter().enumerate().filter(|(_, &c)| c > 0).map(|(d, c)| format!("{d}:{c}")).collect();
    println!("degree histogram (degree:count): {}", line.join(" "));
    for class in RoadClass::ALL {
        let count = graph.roads().iter().filter(|r| r.class == class).count();
        println!("  {class:?}: {count} roads");
    }
    Ok(())
}
