//! Self-tests for the vendored model checker: correct protocols must
//! pass, and seeded bugs (lost updates, torn reads, deadlocks) must be
//! found. These run with plain `cargo test` inside `vendor/loom`.

use loom::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use loom::sync::{Arc, Mutex, OnceLock};
use loom::thread;

#[test]
fn fetch_add_counter_never_loses_updates() {
    let explored = loom::model(|| {
        let n = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                thread::spawn(move || {
                    n.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("model thread");
        }
        assert_eq!(n.load(Ordering::Relaxed), 2);
    });
    // Two threads with one RMW each still interleave several ways.
    assert!(explored >= 2, "explored only {explored} executions");
}

#[test]
#[should_panic(expected = "loom:")]
fn load_then_store_lost_update_is_found() {
    loom::model(|| {
        let n = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                thread::spawn(move || {
                    let v = n.load(Ordering::SeqCst);
                    n.store(v + 1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("model thread");
        }
        assert_eq!(n.load(Ordering::SeqCst), 2);
    });
}

#[test]
fn mutex_provides_mutual_exclusion() {
    loom::model(|| {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    let mut g = m.lock().expect("lock");
                    let v = *g;
                    *g = v + 1;
                })
            })
            .collect();
        for h in handles {
            h.join().expect("model thread");
        }
        assert_eq!(*m.lock().expect("lock"), 2);
    });
}

#[test]
#[should_panic(expected = "deadlock")]
fn ab_ba_deadlock_is_found() {
    loom::model(|| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = thread::spawn(move || {
            let _ga = a2.lock().expect("lock a");
            let _gb = b2.lock().expect("lock b");
        });
        {
            let _gb = b.lock().expect("lock b");
            let _ga = a.lock().expect("lock a");
        }
        t.join().expect("model thread");
    });
}

#[test]
fn oncelock_initialises_exactly_once() {
    loom::model(|| {
        let slot = Arc::new(OnceLock::new());
        let builds = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let slot = Arc::clone(&slot);
                let builds = Arc::clone(&builds);
                thread::spawn(move || {
                    *slot.get_or_init(|| {
                        builds.fetch_add(1, Ordering::Relaxed);
                        7u64
                    })
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().expect("model thread"), 7);
        }
        assert_eq!(builds.load(Ordering::Relaxed), 1, "initializer ran more than once");
    });
}

#[test]
fn spinning_reader_terminates_against_a_writer() {
    loom::model(|| {
        let flag = Arc::new(AtomicU64::new(0));
        let flag2 = Arc::clone(&flag);
        let t = thread::spawn(move || {
            flag2.store(1, Ordering::Release);
        });
        while flag.load(Ordering::Acquire) == 0 {
            loom::hint::spin_loop();
        }
        t.join().expect("model thread");
    });
}

#[test]
fn unjoined_threads_are_drained() {
    loom::model(|| {
        let n = Arc::new(AtomicU64::new(0));
        for _ in 0..2 {
            let n = Arc::clone(&n);
            thread::spawn(move || {
                n.fetch_add(1, Ordering::Relaxed);
            });
        }
        // No joins: drain must still run both threads to completion
        // without hanging or leaking.
    });
}
