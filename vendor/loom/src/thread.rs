//! Model-checked threads. `spawn` registers a model thread backed by a
//! real OS thread that only executes while it holds the scheduler token;
//! `join` blocks the model thread until the target finishes.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex as StdMutex, PoisonError};

/// Handle to a spawned model thread; [`JoinHandle::join`] returns the
/// closure's result like `std::thread::JoinHandle`.
pub struct JoinHandle<T> {
    id: usize,
    result: Arc<StdMutex<Option<std::thread::Result<T>>>>,
}

impl<T> JoinHandle<T> {
    /// Blocks (as a model scheduling point) until the thread finishes.
    pub fn join(self) -> std::thread::Result<T> {
        let (rt, me) =
            crate::current().expect("loom::thread JoinHandle joined outside loom::model");
        crate::await_thread(&rt, me, self.id);
        self.result
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
            .expect("finished model thread left no result")
    }
}

/// Spawns a model thread running `f`. Must be called inside
/// [`crate::model`]; the spawn itself is a scheduling point (the child
/// may run before the spawner continues).
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (rt, _me) = crate::current().expect("loom::thread::spawn requires loom::model");
    let id = crate::register_thread(&rt);
    let result: Arc<StdMutex<Option<std::thread::Result<T>>>> = Arc::new(StdMutex::new(None));
    let rt_child = Arc::clone(&rt);
    let result_child = Arc::clone(&result);
    let os = std::thread::Builder::new()
        .name(format!("loom-model-{id}"))
        .spawn(move || {
            crate::set_current(Some((Arc::clone(&rt_child), id)));
            if !crate::await_first_schedule(&rt_child, id) {
                return;
            }
            let out = catch_unwind(AssertUnwindSafe(f));
            if let Err(payload) = &out {
                let text = crate::payload_str(payload.as_ref());
                if text != crate::ABORT_MSG {
                    crate::record_failure(&rt_child, |st| {
                        format!(
                            "model thread {id} panicked: {text} (schedule: {:?})",
                            st.schedule_so_far()
                        )
                    });
                }
            }
            *result_child.lock().unwrap_or_else(PoisonError::into_inner) = Some(out);
            crate::finish_thread(&rt_child, id);
        })
        .expect("spawn model OS thread");
    crate::register_os_handle(&rt, os);
    // Scheduling point: the explorer decides whether the child or the
    // spawner runs next.
    crate::sched_point();
    JoinHandle { id, result }
}

/// Deschedules the current model thread until every other runnable
/// thread has taken a step (real loom's documented contract).
pub fn yield_now() {
    crate::yield_point();
}
