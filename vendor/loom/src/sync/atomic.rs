//! Model-checked atomics. Each operation is a scheduling point; the
//! backing `std` atomic always runs `SeqCst` regardless of the caller's
//! ordering (the model explores interleavings, not weak-memory
//! reorderings — see the crate docs).

use std::sync::atomic::Ordering as StdOrdering;

pub use std::sync::atomic::Ordering;

const SC: StdOrdering = StdOrdering::SeqCst;

macro_rules! model_int_atomic {
    ($name:ident, $std:ident, $ty:ty) => {
        /// Model-checked counterpart of the `std` atomic of the same name.
        #[derive(Debug, Default)]
        pub struct $name(std::sync::atomic::$std);

        impl $name {
            pub const fn new(value: $ty) -> Self {
                Self(std::sync::atomic::$std::new(value))
            }

            pub fn load(&self, _order: Ordering) -> $ty {
                crate::sched_point();
                self.0.load(SC)
            }

            pub fn store(&self, value: $ty, _order: Ordering) {
                crate::sched_point();
                self.0.store(value, SC);
            }

            pub fn swap(&self, value: $ty, _order: Ordering) -> $ty {
                crate::sched_point();
                self.0.swap(value, SC)
            }

            pub fn fetch_add(&self, value: $ty, _order: Ordering) -> $ty {
                crate::sched_point();
                self.0.fetch_add(value, SC)
            }

            pub fn fetch_sub(&self, value: $ty, _order: Ordering) -> $ty {
                crate::sched_point();
                self.0.fetch_sub(value, SC)
            }

            pub fn fetch_min(&self, value: $ty, _order: Ordering) -> $ty {
                crate::sched_point();
                self.0.fetch_min(value, SC)
            }

            pub fn fetch_max(&self, value: $ty, _order: Ordering) -> $ty {
                crate::sched_point();
                self.0.fetch_max(value, SC)
            }

            pub fn compare_exchange(
                &self,
                current: $ty,
                new: $ty,
                _success: Ordering,
                _failure: Ordering,
            ) -> Result<$ty, $ty> {
                crate::sched_point();
                self.0.compare_exchange(current, new, SC, SC)
            }

            /// No spurious failures are modeled, so this is exact.
            pub fn compare_exchange_weak(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                self.compare_exchange(current, new, success, failure)
            }

            pub fn into_inner(self) -> $ty {
                self.0.into_inner()
            }

            pub fn get_mut(&mut self) -> &mut $ty {
                self.0.get_mut()
            }
        }
    };
}

model_int_atomic!(AtomicU64, AtomicU64, u64);
model_int_atomic!(AtomicI64, AtomicI64, i64);
model_int_atomic!(AtomicUsize, AtomicUsize, usize);
model_int_atomic!(AtomicU32, AtomicU32, u32);

/// Model-checked counterpart of `std::sync::atomic::AtomicBool`.
#[derive(Debug, Default)]
pub struct AtomicBool(std::sync::atomic::AtomicBool);

impl AtomicBool {
    pub const fn new(value: bool) -> Self {
        Self(std::sync::atomic::AtomicBool::new(value))
    }

    pub fn load(&self, _order: Ordering) -> bool {
        crate::sched_point();
        self.0.load(SC)
    }

    pub fn store(&self, value: bool, _order: Ordering) {
        crate::sched_point();
        self.0.store(value, SC);
    }

    pub fn swap(&self, value: bool, _order: Ordering) -> bool {
        crate::sched_point();
        self.0.swap(value, SC)
    }

    pub fn fetch_or(&self, value: bool, _order: Ordering) -> bool {
        crate::sched_point();
        self.0.fetch_or(value, SC)
    }

    pub fn fetch_and(&self, value: bool, _order: Ordering) -> bool {
        crate::sched_point();
        self.0.fetch_and(value, SC)
    }

    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        _success: Ordering,
        _failure: Ordering,
    ) -> Result<bool, bool> {
        crate::sched_point();
        self.0.compare_exchange(current, new, SC, SC)
    }
}

/// A scheduling point; ordering is ignored (the model is sequentially
/// consistent throughout).
pub fn fence(_order: Ordering) {
    crate::sched_point();
}
