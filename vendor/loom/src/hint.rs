//! Model-checked counterpart of `std::hint`.

/// Spin-wait hint: deschedules the current model thread until every
/// other runnable thread has taken a step, so retry loops make the
/// progress they are spinning on observable instead of livelocking the
/// explorer.
pub fn spin_loop() {
    crate::yield_point();
}
