//! Model-checked counterparts of `std::sync` types.
//!
//! Every operation is a scheduling point, so the explorer in the crate
//! root can interleave threads between any two of them. Because exactly
//! one model thread runs at a time, the body of each operation executes
//! atomically with respect to the model — the `std` primitives backing
//! the state never see real contention.

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool as StdAtomicBool, Ordering as StdOrdering};
use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard, OnceLock as StdOnceLock};
use std::time::Duration;

pub use std::sync::{Arc, LockResult, PoisonError};

pub mod atomic;

const SC: StdOrdering = StdOrdering::SeqCst;

/// A model-checked mutex: `lock` is a scheduling point, contention blocks
/// the model thread, and unlock wakes waiters.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    /// Model-level ownership flag; the inner `std` mutex is only ever
    /// locked by the flag's owner, so it never truly contends.
    flag: StdAtomicBool,
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self { flag: StdAtomicBool::new(false), inner: StdMutex::new(value) }
    }

    fn key(&self) -> usize {
        self as *const Self as *const () as usize
    }

    /// Acquires the lock, blocking the model thread while contended.
    /// Never returns `Err`: model executions that panic are abandoned
    /// wholesale, so poisoning is not modeled.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        loop {
            crate::sched_point();
            if !self.flag.swap(true, SC) {
                break;
            }
            crate::block_on(self.key());
        }
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        Ok(MutexGuard { mutex: self, inner: Some(inner) })
    }

    pub fn into_inner(self) -> LockResult<T> {
        Ok(self.inner.into_inner().unwrap_or_else(PoisonError::into_inner))
    }

    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        Ok(self.inner.get_mut().unwrap_or_else(PoisonError::into_inner))
    }
}

/// Guard for [`Mutex`]; dropping it releases the lock at a scheduling
/// point and wakes blocked contenders.
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    mutex: &'a Mutex<T>,
    inner: Option<StdMutexGuard<'a, T>>,
}

impl<'a, T> MutexGuard<'a, T> {
    /// Releases the lock *without* a scheduling point — the atomicity
    /// [`Condvar::wait`] needs between "unlock" and "block" — returning
    /// the mutex for reacquisition. The spent guard's `Drop` is a no-op.
    fn quiet_release(mut self) -> &'a Mutex<T> {
        let mutex = self.mutex;
        drop(self.inner.take());
        mutex.flag.store(false, SC);
        crate::wake(mutex.key());
        mutex
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard accessed after release")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard accessed after release")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() {
            self.mutex.flag.store(false, SC);
            // While unwinding (execution aborting) skip the scheduler:
            // a panic inside `switch` here would double-panic and abort
            // the whole test process.
            if !std::thread::panicking() {
                crate::wake(self.mutex.key());
                crate::sched_point();
            }
        }
    }
}

/// Result of [`Condvar::wait_timeout`].
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A model-checked condition variable. `notify_one` behaves like
/// `notify_all` (indistinguishable under the spurious-wakeup contract);
/// `wait_timeout` models the schedule where the timeout fires first.
#[derive(Debug)]
pub struct Condvar {
    /// Boxed so the condvar has a stable unique heap address to use as
    /// its blocking key (a zero-sized field could share addresses).
    slot: Box<u8>,
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl Condvar {
    pub fn new() -> Self {
        Self { slot: Box::new(0) }
    }

    fn key(&self) -> usize {
        &*self.slot as *const u8 as usize
    }

    /// Atomically releases the guard's mutex and blocks until notified,
    /// then reacquires. The release and block happen between scheduling
    /// points, so a notify cannot slip into the gap (no lost wakeups).
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let mutex = guard.quiet_release();
        crate::block_on(self.key());
        mutex.lock()
    }

    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        _dur: Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        let mutex = guard.quiet_release();
        crate::yield_point();
        match mutex.lock() {
            Ok(g) => Ok((g, WaitTimeoutResult { timed_out: true })),
            Err(e) => {
                let g = e.into_inner();
                Ok((g, WaitTimeoutResult { timed_out: true }))
            }
        }
    }

    pub fn notify_all(&self) {
        crate::wake(self.key());
        crate::sched_point();
    }

    pub fn notify_one(&self) {
        // Waking every waiter is a legal implementation: condvars permit
        // spurious wakeups, so correct protocols re-check their predicate.
        self.notify_all();
    }
}

/// A model-checked `OnceLock`: losers of the init race block on a model
/// mutex while the winner runs the initializer (the coalescing protocol
/// `core::offline`'s corr-cache relies on).
#[derive(Debug, Default)]
pub struct OnceLock<T> {
    init: Mutex<()>,
    value: StdOnceLock<T>,
}

impl<T> OnceLock<T> {
    pub const fn new() -> Self {
        Self { init: Mutex::new(()), value: StdOnceLock::new() }
    }

    pub fn get(&self) -> Option<&T> {
        crate::sched_point();
        self.value.get()
    }

    pub fn get_or_init<F: FnOnce() -> T>(&self, f: F) -> &T {
        crate::sched_point();
        if let Some(v) = self.value.get() {
            return v;
        }
        {
            let _gate = self.init.lock().unwrap_or_else(PoisonError::into_inner);
            if self.value.get().is_none() {
                let v = f();
                let _ = self.value.set(v);
            }
        }
        self.value.get().expect("OnceLock initialised above")
    }

    pub fn set(&self, value: T) -> Result<(), T> {
        crate::sched_point();
        let _gate = self.init.lock().unwrap_or_else(PoisonError::into_inner);
        self.value.set(value)
    }
}
