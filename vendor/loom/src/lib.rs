//! Offline stand-in for the `loom` permutation-testing crate.
//!
//! The build environment has no crates.io access (see `vendor/README.md`),
//! so this crate reimplements the slice of loom's API that `rtse-sync`
//! needs: [`model`] runs a closure under a deterministic scheduler that
//! **exhaustively enumerates thread interleavings** and re-executes the
//! closure once per schedule, and the types under [`sync`] / [`thread`] /
//! [`hint`] are drop-in shims whose every operation is a scheduling
//! point.
//!
//! ## How it works
//!
//! Exactly one *model thread* runs at a time. Each model thread is a real
//! OS thread parked on a condvar; a token (`active`) names the one thread
//! allowed to execute. Every shim operation (atomic load/store/rmw, mutex
//! lock/unlock, condvar wait/notify, spawn/join, yield) calls into the
//! scheduler, which consults the current *schedule* — a prefix of branch
//! choices to replay — and then picks the next runnable thread. Each
//! decision records how many runnable alternatives existed; after the
//! execution finishes, the explorer backtracks depth-first to the deepest
//! decision with an untried alternative and replays. The search terminates
//! when every schedule has been explored (or panics at the iteration cap).
//!
//! ## Fidelity limits (vs. real loom)
//!
//! * Interleavings are explored under **sequential consistency**: the
//!   `Ordering` arguments are accepted but every shim op runs `SeqCst`.
//!   This checks protocol logic (lost updates, double-init, torn
//!   invariants, deadlock) but not weak-memory reorderings — the
//!   workspace's `atomic-ordering` lint and per-site ordering table own
//!   that axis (see DESIGN.md §8).
//! * `notify_one` may wake every waiter (condvars permit spurious
//!   wakeups, so correct protocols cannot tell the difference), and
//!   `wait_timeout` is modeled as the timeout always firing first.
//! * Preemption bounding (`LOOM_MAX_PREEMPTIONS`, the same knob real loom
//!   reads) prunes schedules that context-switch away from a runnable
//!   thread more than N times, keeping 3-thread models tractable.
//!
//! A thread that spins (`hint::spin_loop` / `yield_now`) is descheduled
//! until every *other* thread that was runnable at the yield has taken a
//! step (real loom's documented `yield_now` contract), so retry loops
//! cannot starve the writer they are waiting on; a state where every live
//! thread is blocked is reported as a deadlock with the schedule that
//! reached it.

use std::cell::RefCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{
    Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, PoisonError,
};

pub mod hint;
pub mod sync;
pub mod thread;

/// Message used to unwind model threads once the execution is abandoned
/// (another thread failed, or the run deadlocked).
const ABORT_MSG: &str = "loom execution aborted";

/// Key a draining main thread blocks on until every spawned thread ends.
const DRAIN_KEY: usize = 1;
/// Keys `JOIN_BASE + thread_id` block joiners on that thread's completion.
const JOIN_BASE: usize = 16;

/// Scheduling points allowed in one execution before the run is declared
/// livelocked (a correct bounded model stays far below this).
const MAX_TRACE: usize = 200_000;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Runnable,
    Blocked(usize),
    Finished,
}

struct Th {
    status: Status,
    /// Bitmask of threads that must take a step before this (yielded)
    /// thread becomes eligible again. Zero = eligible.
    waiting: u64,
}

struct Choice {
    chosen: usize,
    alternatives: usize,
}

struct RtState {
    threads: Vec<Th>,
    active: usize,
    /// Branch choices to replay this execution (the schedule prefix).
    forced: Vec<usize>,
    /// Choices actually taken this execution.
    trace: Vec<Choice>,
    preemptions: usize,
    max_preemptions: Option<usize>,
    /// First failure (assertion, deadlock, replay divergence) observed.
    failure: Option<String>,
    os_handles: Vec<std::thread::JoinHandle<()>>,
}

impl RtState {
    fn schedule_so_far(&self) -> Vec<usize> {
        self.trace.iter().map(|c| c.chosen).collect()
    }
}

/// One execution's scheduler, shared by every model thread of the run.
pub(crate) struct Rt {
    state: StdMutex<RtState>,
    cv: StdCondvar,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Rt>, usize)>> = const { RefCell::new(None) };
}

fn lock_rt(rt: &Rt) -> StdMutexGuard<'_, RtState> {
    rt.state.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The `(rt, my_thread_id)` pair when called from inside a model run.
pub(crate) fn current() -> Option<(Arc<Rt>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Installs the scheduler context for the calling OS thread.
pub(crate) fn set_current(ctx: Option<(Arc<Rt>, usize)>) {
    CURRENT.with(|c| *c.borrow_mut() = ctx);
}

/// Marks every thread blocked on `key` runnable again (they still wait to
/// be *scheduled*; this only makes them eligible).
fn wake_key(rt: &Rt, key: usize) {
    let mut st = lock_rt(rt);
    for th in &mut st.threads {
        if th.status == Status::Blocked(key) {
            th.status = Status::Runnable;
            th.waiting = 0;
        }
    }
}

/// Picks the next thread to run. Must be called with the state locked;
/// records the decision in the trace. `voluntary` marks the switch as
/// requested by the running thread (yield/block), which never counts as a
/// preemption.
fn schedule_next(rt: &Rt, st: &mut RtState, me: usize, voluntary: bool) {
    if st.failure.is_some() {
        rt.cv.notify_all();
        return;
    }
    if st.trace.len() >= MAX_TRACE {
        let prefix: Vec<usize> = st.schedule_so_far().into_iter().take(32).collect();
        st.failure = Some(format!(
            "livelock: execution exceeded {MAX_TRACE} scheduling points (schedule prefix: {prefix:?})"
        ));
        rt.cv.notify_all();
        return;
    }
    let runnable: Vec<usize> =
        (0..st.threads.len()).filter(|&t| st.threads[t].status == Status::Runnable).collect();
    if runnable.is_empty() {
        if st.threads.iter().any(|t| matches!(t.status, Status::Blocked(_))) {
            st.failure = Some(format!(
                "deadlock: every live thread is blocked (schedule: {:?})",
                st.schedule_so_far()
            ));
        }
        rt.cv.notify_all();
        return;
    }
    let mut enabled: Vec<usize> =
        runnable.iter().copied().filter(|&t| st.threads[t].waiting == 0).collect();
    if enabled.is_empty() {
        // Every runnable thread has yielded: release them all and retry.
        for &t in &runnable {
            st.threads[t].waiting = 0;
        }
        enabled = runnable;
    }
    // Preemption bounding: once the budget is spent, a still-runnable
    // thread that did not volunteer keeps the processor.
    if let Some(maxp) = st.max_preemptions {
        if st.preemptions >= maxp && !voluntary && enabled.contains(&me) {
            enabled = vec![me];
        }
    }
    let depth = st.trace.len();
    let chosen = if depth < st.forced.len() {
        let c = st.forced[depth];
        if c >= enabled.len() {
            st.failure = Some(format!(
                "non-deterministic execution: replay expected >= {} alternatives at depth \
                 {depth}, found {}",
                c + 1,
                enabled.len()
            ));
            rt.cv.notify_all();
            return;
        }
        c
    } else {
        0
    };
    st.trace.push(Choice { chosen, alternatives: enabled.len() });
    let next = enabled[chosen];
    // `next` is about to take a step: it no longer gates any yielder.
    let bit = 1u64 << (next % 64);
    for th in &mut st.threads {
        th.waiting &= !bit;
    }
    if next != me && !voluntary && st.threads[me].status == Status::Runnable {
        st.preemptions += 1;
    }
    st.active = next;
    rt.cv.notify_all();
}

/// One scheduling point: optionally blocks the caller on `block_on`, picks
/// the next thread, and parks until this thread is scheduled again.
/// Panics with [`ABORT_MSG`] once the execution has failed elsewhere.
pub(crate) fn switch(rt: &Rt, me: usize, block_on: Option<usize>, yielding: bool) {
    let mut st = lock_rt(rt);
    if st.failure.is_some() {
        drop(st);
        panic!("{ABORT_MSG}");
    }
    let voluntary = block_on.is_some() || yielding;
    match block_on {
        Some(key) => st.threads[me].status = Status::Blocked(key),
        None if yielding => {
            // Ineligible until every other currently-runnable thread has
            // taken a step (real loom's yield_now contract).
            let mask = (0..st.threads.len())
                .filter(|&t| t != me && st.threads[t].status == Status::Runnable)
                .fold(0u64, |m, t| m | (1u64 << (t % 64)));
            st.threads[me].waiting = mask;
        }
        None => {}
    }
    schedule_next(rt, &mut st, me, voluntary);
    loop {
        if st.failure.is_some() {
            drop(st);
            panic!("{ABORT_MSG}");
        }
        if st.active == me && st.threads[me].status == Status::Runnable {
            st.threads[me].waiting = 0;
            return;
        }
        st = rt.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
    }
}

/// A scheduling point for the current model thread; a no-op outside a
/// model run (the shim types then behave like their std counterparts) and
/// while unwinding (so guard drops during a failure do not double-panic).
pub(crate) fn sched_point() {
    if std::thread::panicking() {
        return;
    }
    if let Some((rt, me)) = current() {
        switch(&rt, me, None, false);
    }
}

/// Blocks the current model thread on `key` until woken *and* scheduled.
/// Outside a model run this degrades to an OS yield (caller loops).
pub(crate) fn block_on(key: usize) {
    if std::thread::panicking() {
        return;
    }
    match current() {
        Some((rt, me)) => switch(&rt, me, Some(key), false),
        None => std::thread::yield_now(),
    }
}

/// Wakes model threads blocked on `key` (no scheduling point by itself).
pub(crate) fn wake(key: usize) {
    if std::thread::panicking() {
        return;
    }
    if let Some((rt, _)) = current() {
        wake_key(&rt, key);
    }
}

pub(crate) fn yield_point() {
    if std::thread::panicking() {
        return;
    }
    if let Some((rt, me)) = current() {
        switch(&rt, me, None, true);
    } else {
        std::thread::yield_now();
    }
}

/// Marks thread `me` finished, wakes joiners and the draining main
/// thread, and hands the token onward. The OS thread then exits.
pub(crate) fn finish_thread(rt: &Rt, me: usize) {
    wake_key(rt, JOIN_BASE + me);
    wake_key(rt, DRAIN_KEY);
    let mut st = lock_rt(rt);
    st.threads[me].status = Status::Finished;
    schedule_next(rt, &mut st, me, true);
}

/// Registers a new model thread and returns its id.
pub(crate) fn register_thread(rt: &Arc<Rt>) -> usize {
    let mut st = lock_rt(rt);
    st.threads.push(Th { status: Status::Runnable, waiting: 0 });
    st.threads.len() - 1
}

/// Stores a spawned OS thread's handle for end-of-execution joining.
pub(crate) fn register_os_handle(rt: &Rt, handle: std::thread::JoinHandle<()>) {
    lock_rt(rt).os_handles.push(handle);
}

/// Records `message` as the run's failure unless one is already set.
pub(crate) fn record_failure(rt: &Rt, message: impl FnOnce(&RtState) -> String) {
    let mut st = lock_rt(rt);
    if st.failure.is_none() {
        let msg = message(&st);
        st.failure = Some(msg);
    }
    rt.cv.notify_all();
}

/// Waits (token-passing) until thread `id` finishes; panics on abort.
pub(crate) fn await_thread(rt: &Rt, me: usize, id: usize) {
    loop {
        {
            let st = lock_rt(rt);
            if st.failure.is_some() {
                drop(st);
                panic!("{ABORT_MSG}");
            }
            if st.threads[id].status == Status::Finished {
                return;
            }
        }
        // Safe check-then-block: the token is ours between the unlock
        // above and the relock inside `switch`, so `id` cannot finish
        // (and issue its wake) in the gap.
        switch(rt, me, Some(JOIN_BASE + id), false);
    }
}

/// First-schedule parking for a freshly spawned model thread. Returns
/// false if the run failed before the thread ever ran.
pub(crate) fn await_first_schedule(rt: &Rt, me: usize) -> bool {
    let mut st = lock_rt(rt);
    loop {
        if st.failure.is_some() {
            st.threads[me].status = Status::Finished;
            rt.cv.notify_all();
            return false;
        }
        if st.active == me && st.threads[me].status == Status::Runnable {
            st.threads[me].waiting = 0;
            return true;
        }
        st = rt.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
    }
}

/// Exploration limits. `from_env` honours the same `LOOM_MAX_PREEMPTIONS`
/// / `LOOM_MAX_BRANCHES` environment knobs real loom documents.
#[derive(Debug, Clone)]
pub struct Builder {
    /// Context switches away from a runnable thread allowed per execution
    /// (`None` = unbounded = a fully exhaustive search).
    pub max_preemptions: Option<usize>,
    /// Hard cap on explored executions before the search panics.
    pub max_iterations: usize,
}

impl Default for Builder {
    fn default() -> Self {
        Self::from_env()
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok().and_then(|v| v.trim().parse().ok())
}

impl Builder {
    /// Defaults: preemptions bounded to 2 (override with
    /// `LOOM_MAX_PREEMPTIONS`; `0` keeps the search fully exhaustive),
    /// 500_000 executions max (`LOOM_MAX_BRANCHES`).
    pub fn from_env() -> Self {
        let max_preemptions = match env_usize("LOOM_MAX_PREEMPTIONS") {
            Some(0) => None,
            Some(n) => Some(n),
            None => Some(2),
        };
        Self { max_preemptions, max_iterations: env_usize("LOOM_MAX_BRANCHES").unwrap_or(500_000) }
    }

    /// Runs `f` under this builder's limits; see [`model`].
    pub fn check<F: Fn()>(&self, f: F) -> usize {
        run_model(self, f)
    }
}

/// Explores every interleaving of the model threads `f` spawns, replaying
/// `f` once per schedule. Panics (with the failing schedule) on the first
/// assertion failure, deadlock, or panic inside `f`; returns the number
/// of executions explored otherwise.
pub fn model<F: Fn()>(f: F) -> usize {
    run_model(&Builder::from_env(), f)
}

/// Plain repeated execution with OS scheduling (no model checking): the
/// fallback `rtse-sync` uses when the `rtse_loom` cfg is off, so the same
/// protocol tests double as a concurrency smoke suite.
pub fn stress<F: Fn()>(iterations: usize, f: F) {
    for _ in 0..iterations.max(1) {
        f();
    }
}

fn run_model<F: Fn()>(builder: &Builder, f: F) -> usize {
    let mut forced: Vec<usize> = Vec::new();
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        if iterations > builder.max_iterations {
            panic!(
                "loom: exceeded {} executions without exhausting the schedule space; \
                 shrink the model or bound preemptions (LOOM_MAX_PREEMPTIONS)",
                builder.max_iterations
            );
        }
        let rt = Arc::new(Rt {
            state: StdMutex::new(RtState {
                threads: vec![Th { status: Status::Runnable, waiting: 0 }],
                active: 0,
                forced: forced.clone(),
                trace: Vec::new(),
                preemptions: 0,
                max_preemptions: builder.max_preemptions,
                failure: None,
                os_handles: Vec::new(),
            }),
            cv: StdCondvar::new(),
        });
        set_current(Some((Arc::clone(&rt), 0)));
        let out = catch_unwind(AssertUnwindSafe(&f));
        match &out {
            Ok(()) => drain(&rt),
            Err(payload) => {
                let text = payload_str(payload.as_ref());
                if text != ABORT_MSG {
                    record_failure(&rt, |st| {
                        format!(
                            "main model thread panicked: {text} (schedule: {:?})",
                            st.schedule_so_far()
                        )
                    });
                }
            }
        }
        set_current(None);
        let handles = std::mem::take(&mut lock_rt(&rt).os_handles);
        for h in handles {
            let _ = h.join();
        }
        let st = match Arc::try_unwrap(rt) {
            Ok(rt) => rt.state.into_inner().unwrap_or_else(PoisonError::into_inner),
            Err(_) => panic!("loom: model state leaked past its execution"),
        };
        if let Some(failure) = st.failure {
            panic!("loom: {failure} (execution #{iterations})");
        }
        if let Err(payload) = out {
            // No recorded failure but the closure unwound (e.g. a panic
            // from non-model code): surface it as-is.
            resume_unwind(payload);
        }
        if !advance(&mut forced, &st.trace) {
            return iterations;
        }
    }
}

/// After `f` returned on the main thread, keeps scheduling the remaining
/// model threads until all have finished (threads need not be joined).
/// Runs outside any `catch_unwind`, so it returns on failure instead of
/// panicking; `run_model` reports the recorded failure afterwards.
fn drain(rt: &Arc<Rt>) {
    let me = 0usize;
    loop {
        let mut st = lock_rt(rt);
        if st.failure.is_some() {
            return;
        }
        if st.threads[1..].iter().all(|t| t.status == Status::Finished) {
            return;
        }
        st.threads[me].status = Status::Blocked(DRAIN_KEY);
        schedule_next(rt, &mut st, me, true);
        loop {
            if st.failure.is_some() {
                return;
            }
            if st.active == me && st.threads[me].status == Status::Runnable {
                break;
            }
            st = rt.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Depth-first backtracking: truncate to the deepest decision with an
/// untried alternative and bump it. Returns false when exhausted.
fn advance(forced: &mut Vec<usize>, trace: &[Choice]) -> bool {
    for i in (0..trace.len()).rev() {
        if trace[i].chosen + 1 < trace[i].alternatives {
            forced.clear();
            forced.extend(trace[..i].iter().map(|c| c.chosen));
            forced.push(trace[i].chosen + 1);
            return true;
        }
    }
    false
}

pub(crate) fn payload_str(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}
