//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this crate vendors the
//! small subset of the rand 0.10 API the workspace actually uses:
//!
//! * [`Rng`] / [`RngExt`] with `random_range` over integer and float ranges;
//! * [`SeedableRng::seed_from_u64`];
//! * [`rngs::StdRng`] and [`rngs::SmallRng`] (both xoshiro256++, seeded via
//!   SplitMix64 exactly like the real `rand` seeds its small generators);
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! Determinism contract: for a fixed seed the generated stream is stable
//! across platforms and releases — experiment seeds in EXPERIMENTS.md rely
//! on this.

/// A source of random 64-bit words.
pub trait Rng {
    /// Next raw word from the generator.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        // 53 high bits -> [0, 1) double, the standard conversion.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Uniform sample from `range` (half-open or inclusive).
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Construction from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types with a uniform sampler over `[lo, hi)` / `[lo, hi]`.
///
/// One generic [`SampleRange`] impl delegates here, so type inference can
/// bind the element type straight from the range literal (per-type range
/// impls would leave `{float}`/`{integer}` literals ambiguous).
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                // Modulo bias is < span/2^64, negligible for the spans used
                // in this workspace (all far below 2^32).
                let span = (hi as u128)
                    .wrapping_sub(lo as u128)
                    .wrapping_add(inclusive as u128);
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
                // The hi endpoint has measure zero; sharing one formula for
                // both range kinds matches what callers can observe.
                lo + (rng.next_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_uniform(rng, lo, hi, true)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ core (Blackman & Vigna), the algorithm behind rand's small
/// generators.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
        }
    }

    fn next(&mut self) -> u64 {
        let out = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

/// Concrete generator types.
pub mod rngs {
    use super::{Rng, SeedableRng, Xoshiro256};

    /// The workspace's default seeded generator.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng(Xoshiro256);

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(Xoshiro256::from_seed(seed))
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next()
        }
    }

    /// A cheap generator for per-entity streams (worker mobility, etc.).
    ///
    /// Deliberately seeded differently from [`StdRng`] so the two types do
    /// not produce identical streams for the same seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng(Xoshiro256);

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng(Xoshiro256::from_seed(seed ^ 0xA5A5_A5A5_5A5A_5A5A))
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next()
        }
    }
}

/// Slice helpers.
pub mod seq {
    use super::{Rng, RngExt};

    /// Random order / random pick over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` for an empty slice.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::seq::SliceRandom;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn std_and_small_streams_differ() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.random_range(5usize..17);
            assert!((5..17).contains(&x));
            let y = rng.random_range(-4i64..=4);
            assert!((-4..=4).contains(&y));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = rng.random_range(-0.25..0.75f64);
            assert!((-0.25..0.75).contains(&x));
        }
    }

    #[test]
    fn float_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let mean = (0..n).map(|_| rng.random_range(0.0..1.0f64)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_elements() {
        let mut rng = StdRng::seed_from_u64(2);
        let v = [1, 2, 3];
        assert!(v.choose(&mut rng).is_some());
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.random_range(5..5usize);
    }
}
