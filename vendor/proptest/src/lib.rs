//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate provides
//! the subset of proptest the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(...)]`);
//! * [`Strategy`](strategy::Strategy) for integer/float ranges, 2- and
//!   3-tuples of strategies, and [`collection::vec`];
//! * [`prop_assert!`] / [`prop_assert_eq!`];
//! * [`ProptestConfig::with_cases`].
//!
//! Unlike real proptest there is no shrinking: a failing case panics with
//! the generated inputs (printed by the assertion), which is enough to
//! reproduce because the runner is fully deterministic — the case stream
//! is a pure function of the test's name.

/// Number of cases to run per property.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many random cases each property executes.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Deterministic runner RNG (SplitMix64 keyed on the test name).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A runner whose stream is a pure function of `key`.
    pub fn deterministic(key: &str) -> Self {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in key.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: h }
    }

    /// Next raw word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty size range");
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
}

/// Input-generation strategies.
pub mod strategy {
    use super::TestRng;

    /// Something that can generate one value per test case.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Types drawable from a range strategy. One generic impl of
    /// [`Strategy`] for `Range<T>` delegates here so that unsuffixed
    /// numeric literals in range strategies still infer.
    pub trait Arbitrary: PartialOrd + Copy {
        /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
        fn draw(rng: &mut TestRng, lo: Self, hi: Self, inclusive: bool) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn draw(rng: &mut TestRng, lo: Self, hi: Self, inclusive: bool) -> Self {
                    let span = (hi as u128)
                        .wrapping_sub(lo as u128)
                        .wrapping_add(inclusive as u128);
                    lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn draw(rng: &mut TestRng, lo: Self, hi: Self, _inclusive: bool) -> Self {
                    lo + (rng.next_f64() as $t) * (hi - lo)
                }
            }
        )*};
    }

    float_arbitrary!(f32, f64);

    impl<T: Arbitrary> Strategy for core::ops::Range<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            assert!(self.start < self.end, "empty strategy range");
            T::draw(rng, self.start, self.end, false)
        }
    }

    impl<T: Arbitrary> Strategy for core::ops::RangeInclusive<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty strategy range");
            T::draw(rng, lo, hi, true)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
        type Value = (A::Value, B::Value, C::Value, D::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng), self.3.sample(rng))
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Length specification for [`vec`]: a fixed `usize` or a `Range<usize>`.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi_exclusive: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { lo: r.start, hi_exclusive: r.end }
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_in(self.size.lo, self.size.hi_exclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig};
}

/// Defines deterministic random-input tests.
///
/// Supported grammar (a subset of real proptest):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn my_property(x in 0u32..10, v in collection::vec(0.0..1.0f64, 1..8)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    ( @funcs ($cfg:expr)
      $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..config.cases {
                    $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Skips the current case when its inputs don't meet a precondition.
///
/// Expands to `continue` on the case loop, so (unlike real proptest) a
/// skipped case still counts toward the configured case total.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;

    #[test]
    fn runner_is_deterministic() {
        let mut a = crate::TestRng::deterministic("k");
        let mut b = crate::TestRng::deterministic("k");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::deterministic("other");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_vecs_in_bounds(
            x in 3u32..9,
            y in -1.0..1.0f64,
            v in collection::vec((0u16..4, 0.0..1.0f64), 0..10),
        ) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
            prop_assert!(v.len() < 10);
            for (a, b) in v {
                prop_assert!(a < 4);
                prop_assert!((0.0..1.0).contains(&b));
            }
        }
    }

    #[test]
    fn fixed_size_vec() {
        let s = collection::vec(0.0..1.0f64, 9);
        let mut rng = crate::TestRng::deterministic("fixed");
        assert_eq!(s.sample(&mut rng).len(), 9);
    }
}
