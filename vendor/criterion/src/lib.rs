//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this crate provides a
//! wall-clock harness behind the subset of the criterion API the bench
//! targets use: [`Criterion::bench_function`], [`Criterion::benchmark_group`]
//! with [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. No statistics beyond
//! best/mean/median-of-samples are computed; output is one line per
//! benchmark.
//!
//! Like the real criterion, each benchmark also persists its estimates to
//! `target/criterion/<name>/new/estimates.json` (a `/` in the name nests
//! directories), with `median`/`mean` objects carrying a `point_estimate`
//! in nanoseconds. `cargo xtask bench-gate` reads those files to compare
//! fresh medians against the checked-in baseline.

use std::fmt::Display;
use std::path::PathBuf;
use std::time::Instant;

/// Top-level harness handle.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(name);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), sample_size: self.sample_size, _parent: self }
    }
}

/// A named benchmark group.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.label));
        self
    }

    /// Runs one unparameterized benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, name));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Function-plus-parameter benchmark name.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function/parameter` identifier.
    pub fn new(function: &str, parameter: impl Display) -> Self {
        Self { label: format!("{function}/{parameter}") }
    }
}

/// Times closures.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<u128>,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Self { sample_size, samples_ns: Vec::with_capacity(sample_size) }
    }

    /// Times `f`, one sample per call, `sample_size` samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up run, untimed.
        std::hint::black_box(f());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            std::hint::black_box(f());
            self.samples_ns.push(t0.elapsed().as_nanos());
        }
    }

    fn report(&self, name: &str) {
        if self.samples_ns.is_empty() {
            println!("{name:<50} (no samples)");
            return;
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_unstable();
        let best = sorted[0];
        let median = median_ns(&sorted);
        let mean = sorted.iter().sum::<u128>() / sorted.len() as u128;
        println!(
            "{name:<50} median {:>12.0} ns   mean {:>12} ns   best {:>12} ns   ({} samples)",
            median,
            mean,
            best,
            sorted.len()
        );
        if let Err(e) = write_estimates(name, median, mean as f64) {
            eprintln!("criterion: could not write estimates for {name}: {e}");
        }
    }
}

/// Median of an already-sorted sample list, in nanoseconds.
fn median_ns(sorted: &[u128]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2] as f64
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) as f64 / 2.0
    }
}

/// The workspace `target/criterion` directory: `CARGO_TARGET_DIR` when
/// set, otherwise `target/` next to the nearest ancestor `Cargo.lock`
/// (cargo runs benches with the package directory as cwd).
fn criterion_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("CARGO_TARGET_DIR") {
        return PathBuf::from(dir).join("criterion");
    }
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut probe = cwd.as_path();
    loop {
        if probe.join("Cargo.lock").exists() {
            return probe.join("target").join("criterion");
        }
        match probe.parent() {
            Some(parent) => probe = parent,
            None => return cwd.join("target").join("criterion"),
        }
    }
}

/// Persists `target/criterion/<name>/new/estimates.json` in the subset of
/// the real criterion's schema consumers read (`median.point_estimate`,
/// `mean.point_estimate`, both in nanoseconds).
fn write_estimates(name: &str, median: f64, mean: f64) -> std::io::Result<()> {
    let mut dir = criterion_dir();
    for segment in name.split('/') {
        // Benchmark names are code-controlled identifiers; the filter is
        // belt-and-braces against path traversal, mirroring the real
        // criterion's directory sanitization.
        let safe: String = segment
            .chars()
            .map(|c| if c.is_alphanumeric() || c == '_' || c == '-' { c } else { '_' })
            .collect();
        dir.push(safe);
    }
    dir.push("new");
    std::fs::create_dir_all(&dir)?;
    let json = format!(
        "{{\n  \"median\": {{ \"point_estimate\": {median} }},\n  \"mean\": {{ \"point_estimate\": {mean} }}\n}}\n"
    );
    std::fs::write(dir.join("estimates.json"), json)
}

/// Prevents the optimizer from discarding a value (re-export of the std
/// hint for call sites that import it from criterion).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Defines a benchmark-group entry point.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Defines `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_run() {
        let mut c = Criterion::default().sample_size(2);
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_with_input(BenchmarkId::new("f", 3), &3, |b, &x| b.iter(|| x * 2));
        g.finish();
    }

    #[test]
    fn median_of_sorted_samples() {
        assert!((median_ns(&[1, 3, 5]) - 3.0).abs() < f64::EPSILON);
        assert!((median_ns(&[1, 3]) - 2.0).abs() < f64::EPSILON);
        assert!((median_ns(&[7]) - 7.0).abs() < f64::EPSILON);
    }
}
