//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this crate provides a
//! wall-clock harness behind the subset of the criterion API the bench
//! targets use: [`Criterion::bench_function`], [`Criterion::benchmark_group`]
//! with [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. No statistics beyond
//! best/mean-of-samples are computed; output is one line per benchmark.

use std::fmt::Display;
use std::time::Instant;

/// Top-level harness handle.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(name);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), sample_size: self.sample_size, _parent: self }
    }
}

/// A named benchmark group.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.label));
        self
    }

    /// Runs one unparameterized benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, name));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Function-plus-parameter benchmark name.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function/parameter` identifier.
    pub fn new(function: &str, parameter: impl Display) -> Self {
        Self { label: format!("{function}/{parameter}") }
    }
}

/// Times closures.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    total_ns: u128,
    iters: u64,
    best_ns: u128,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Self { sample_size, total_ns: 0, iters: 0, best_ns: u128::MAX }
    }

    /// Times `f`, one sample per call, `sample_size` samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up run, untimed.
        std::hint::black_box(f());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            std::hint::black_box(f());
            let dt = t0.elapsed().as_nanos();
            self.total_ns += dt;
            self.best_ns = self.best_ns.min(dt);
            self.iters += 1;
        }
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            println!("{name:<50} (no samples)");
        } else {
            let mean = self.total_ns / self.iters as u128;
            println!(
                "{name:<50} mean {:>12} ns   best {:>12} ns   ({} samples)",
                mean, self.best_ns, self.iters
            );
        }
    }
}

/// Prevents the optimizer from discarding a value (re-export of the std
/// hint for call sites that import it from criterion).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Defines a benchmark-group entry point.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Defines `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_run() {
        let mut c = Criterion::default().sample_size(2);
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_with_input(BenchmarkId::new("f", 3), &3, |b, &x| b.iter(|| x * 2));
        g.finish();
    }
}
