//! The static stage taxonomy.
//!
//! Every instrumented hot path records under one of these fixed stages.
//! The set is closed on purpose: a static enum keeps the registry a flat
//! array of atomics (no locks, no allocation on the record path) and
//! keeps BENCH JSON keys stable across runs. New hot paths must add a
//! variant here first (see CONTRIBUTING.md).

/// What a stage measures, and therefore how its cell is rendered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageKind {
    /// A timed scope: `count` invocations, nanosecond histogram.
    Span,
    /// A recorded magnitude (iterations, sizes): unit-less histogram.
    Value,
    /// A monotone event counter.
    Counter,
    /// A level that rises and falls; tracks current and high-water mark.
    Gauge,
}

impl StageKind {
    /// Stable lower-case name used in JSON snapshots.
    pub fn name(self) -> &'static str {
        match self {
            StageKind::Span => "span",
            StageKind::Value => "value",
            StageKind::Counter => "counter",
            StageKind::Gauge => "gauge",
        }
    }
}

/// One instrumented stage of the pipeline.
///
/// Discriminants index the registry's cell array; keep them dense.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Stage {
    /// One RTF per-slot model fit (288 per full training pass).
    RtfSlotFit,
    /// One single-source Dijkstra row of a correlation table
    /// (`n_roads` per slot built).
    CorrDijkstraRow,
    /// One OCS road-selection solve.
    OcsSelect,
    /// One OCS→crowd→GSP propagation round.
    GspRound,
    /// GSP sweeps until convergence, recorded per propagation.
    GspItersToConverge,
    /// Seeded dirty-frontier size of one delta propagation (how many
    /// scheduled roads the changed inputs made dirty before the sweep).
    GspDeltaFrontier,
    /// Scheduled-road visits a delta propagation skipped because the
    /// road's inputs never moved (the relaxations a full sweep would
    /// have paid for nothing).
    GspDeltaSkipped,
    /// Jobs dispatched through the compute pool (including the serial
    /// short-circuit path, so the count is thread-count invariant).
    PoolJobs,
    /// Jobs queued but not yet picked up by a pool worker.
    PoolQueueDepth,
    /// Time a serve request waits from admission to batch pickup.
    ServeQueueWait,
    /// Answered serve queries that hit the slot cache.
    ServeCacheHit,
    /// One shared serve round (cache-miss compute), timed end to end.
    ServeRound,
    /// TCP connections accepted by the edge's shard listeners.
    EdgeAccept,
    /// One wire-frame decode attempt that produced a complete frame
    /// (header validation + payload parse).
    EdgeFrameDecode,
    /// Connections currently registered with an edge shard (accepted,
    /// not yet closed).
    EdgeConnActive,
    /// One buffered socket write (frame bytes flushed toward a client).
    EdgeWrite,
}

impl Stage {
    /// Every stage, in cell order.
    pub const ALL: [Stage; 16] = [
        Stage::RtfSlotFit,
        Stage::CorrDijkstraRow,
        Stage::OcsSelect,
        Stage::GspRound,
        Stage::GspItersToConverge,
        Stage::GspDeltaFrontier,
        Stage::GspDeltaSkipped,
        Stage::PoolJobs,
        Stage::PoolQueueDepth,
        Stage::ServeQueueWait,
        Stage::ServeCacheHit,
        Stage::ServeRound,
        Stage::EdgeAccept,
        Stage::EdgeFrameDecode,
        Stage::EdgeConnActive,
        Stage::EdgeWrite,
    ];

    /// Number of stages (registry cell count).
    pub const COUNT: usize = Self::ALL.len();

    /// The dotted stage name used in JSON snapshots and docs.
    pub fn name(self) -> &'static str {
        match self {
            Stage::RtfSlotFit => "rtf.slot_fit",
            Stage::CorrDijkstraRow => "corr.dijkstra_row",
            Stage::OcsSelect => "ocs.select",
            Stage::GspRound => "gsp.round",
            Stage::GspItersToConverge => "gsp.iters_to_converge",
            Stage::GspDeltaFrontier => "gsp.delta_frontier",
            Stage::GspDeltaSkipped => "gsp.delta_skipped",
            Stage::PoolJobs => "pool.jobs",
            Stage::PoolQueueDepth => "pool.queue_depth",
            Stage::ServeQueueWait => "serve.queue_wait",
            Stage::ServeCacheHit => "serve.cache_hit",
            Stage::ServeRound => "serve.round",
            Stage::EdgeAccept => "edge.accept",
            Stage::EdgeFrameDecode => "edge.frame_decode",
            Stage::EdgeConnActive => "edge.conn_active",
            Stage::EdgeWrite => "edge.write",
        }
    }

    /// Cell index of this stage in the registry (dense, in `ALL` order).
    pub fn index(self) -> usize {
        self as usize
    }

    /// What this stage measures.
    pub fn kind(self) -> StageKind {
        match self {
            Stage::RtfSlotFit
            | Stage::CorrDijkstraRow
            | Stage::OcsSelect
            | Stage::GspRound
            | Stage::ServeQueueWait
            | Stage::ServeRound
            | Stage::EdgeFrameDecode
            | Stage::EdgeWrite => StageKind::Span,
            Stage::GspItersToConverge | Stage::GspDeltaFrontier => StageKind::Value,
            Stage::PoolJobs | Stage::GspDeltaSkipped | Stage::ServeCacheHit | Stage::EdgeAccept => {
                StageKind::Counter
            }
            Stage::PoolQueueDepth | Stage::EdgeConnActive => StageKind::Gauge,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_is_dense_and_in_discriminant_order() {
        for (i, stage) in Stage::ALL.iter().enumerate() {
            assert_eq!(stage.index(), i, "{} out of order", stage.name());
        }
    }

    #[test]
    fn names_are_unique_and_dotted() {
        let mut names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Stage::COUNT);
        for name in names {
            assert!(name.contains('.'), "{name} lacks a subsystem prefix");
        }
    }

    #[test]
    fn kinds_partition_the_taxonomy() {
        use StageKind::*;
        let spans = Stage::ALL.iter().filter(|s| s.kind() == Span).count();
        let values = Stage::ALL.iter().filter(|s| s.kind() == Value).count();
        let counters = Stage::ALL.iter().filter(|s| s.kind() == Counter).count();
        let gauges = Stage::ALL.iter().filter(|s| s.kind() == Gauge).count();
        assert_eq!(spans + values + counters + gauges, Stage::COUNT);
        assert_eq!(gauges, 2);
    }
}
