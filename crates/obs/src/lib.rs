//! CrowdRTSE observability layer.
//!
//! The pipeline's hot paths — RTF training, correlation-table builds,
//! OCS selection, GSP propagation, the compute pool, and the serving
//! loop — all report into one shared [`Registry`] through an injectable
//! [`ObsHandle`]:
//!
//! * a **static stage taxonomy** ([`Stage`]) keeps the registry a flat
//!   array of atomics and the JSON keys stable;
//! * **bounded log-linear histograms** ([`hist::LogLinearHistogram`])
//!   give p50/p90/p99 with O(1) memory and ≤25% relative error;
//! * **[`SpanTimer`]** scopes time a region and record on drop;
//! * **[`Registry::snapshot_json`]** renders the whole registry as one
//!   JSON object, embedded into `BENCH_offline.json` /
//!   `BENCH_serve.json` by the experiment binaries.
//!
//! Instrumentation is opt-in at runtime: the default [`ObsHandle`] is a
//! no-op whose record calls are a single inlined branch and whose spans
//! never read the clock. The `noop` cargo feature closes that branch at
//! compile time for worst-case-sensitive builds; results are bit-
//! identical either way (instrumentation never perturbs estimates — see
//! the facade's `tests/observability.rs`).

pub mod hist;
mod registry;
mod stage;

pub use hist::{HistSnapshot, LogLinearHistogram};
pub use registry::{ObsHandle, Registry, RegistrySnapshot, SpanTimer, StageSnapshot};
pub use stage::{Stage, StageKind};
