//! The metrics registry and the injectable [`ObsHandle`].
//!
//! A [`Registry`] is a flat array of per-stage cells (counter, histogram
//! and gauge), all atomics: recording never locks, never allocates, and is
//! safe from any pipeline thread. Instrumented code never holds a
//! `Registry` directly — it takes an [`ObsHandle`], which is either a
//! shared handle onto a registry or a no-op. The no-op handle skips
//! every atomic *and* every `Instant::now()` call, so un-instrumented
//! runs pay only an inlined branch on an `Option`; the `noop` cargo
//! feature hard-wires that branch closed at compile time.

use crate::hist::{HistSnapshot, LogLinearHistogram};
use crate::stage::{Stage, StageKind};
use rtse_sync::atomic::{AtomicI64, AtomicU64, Ordering};
use rtse_sync::Arc;
use std::time::{Duration, Instant};

/// One stage's metrics: event count, value/duration histogram, gauge.
#[derive(Debug, Default)]
struct StageCell {
    count: AtomicU64,
    hist: LogLinearHistogram,
    gauge: AtomicI64,
    gauge_max: AtomicI64,
}

/// A registry of per-stage atomic metrics, indexed by [`Stage`].
#[derive(Debug, Default)]
pub struct Registry {
    cells: [StageCell; Stage::COUNT],
}

impl Registry {
    /// A fresh registry with every cell at zero.
    pub fn new() -> Self {
        Self::default()
    }

    fn cell(&self, stage: Stage) -> &StageCell {
        &self.cells[stage as usize]
    }

    /// Adds `n` to the stage's event counter.
    pub fn add(&self, stage: Stage, n: u64) {
        self.cell(stage).count.fetch_add(n, Ordering::Relaxed); // lint: relaxed-counter
    }

    /// Records one value into the stage's histogram (and counts it).
    pub fn record(&self, stage: Stage, value: u64) {
        let cell = self.cell(stage);
        cell.count.fetch_add(1, Ordering::Relaxed); // lint: relaxed-counter
        cell.hist.record(value);
    }

    /// Records one duration, in nanoseconds.
    pub fn record_duration(&self, stage: Stage, d: Duration) {
        self.record(stage, u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Moves the stage's gauge by `delta`, tracking the high-water mark.
    pub fn gauge_add(&self, stage: Stage, delta: i64) {
        let cell = self.cell(stage);
        let now = cell.gauge.fetch_add(delta, Ordering::Relaxed).saturating_add(delta); // lint: relaxed-counter
        cell.gauge_max.fetch_max(now, Ordering::Relaxed); // lint: relaxed-counter
    }

    /// The stage's current event count.
    pub fn count(&self, stage: Stage) -> u64 {
        self.cell(stage).count.load(Ordering::Relaxed) // lint: relaxed-counter
    }

    /// The stage's current gauge level.
    pub fn gauge(&self, stage: Stage) -> i64 {
        self.cell(stage).gauge.load(Ordering::Relaxed) // lint: relaxed-counter
    }

    /// A plain copy of every stage's metrics.
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            stages: Stage::ALL
                .iter()
                .map(|&stage| {
                    let cell = self.cell(stage);
                    StageSnapshot {
                        stage,
                        count: cell.count.load(Ordering::Relaxed), // lint: relaxed-counter
                        hist: cell.hist.snapshot(),
                        gauge_current: cell.gauge.load(Ordering::Relaxed), // lint: relaxed-counter
                        gauge_max: cell.gauge_max.load(Ordering::Relaxed), // lint: relaxed-counter
                    }
                })
                .collect(),
        }
    }

    /// The full snapshot rendered as one JSON object (see
    /// [`RegistrySnapshot::to_json`]); embedded verbatim into the
    /// BENCH_*.json reports by `exp_offline` / `exp_serve`.
    pub fn snapshot_json(&self) -> String {
        self.snapshot().to_json()
    }
}

/// A point-in-time copy of a whole [`Registry`].
#[derive(Debug, Clone, PartialEq)]
pub struct RegistrySnapshot {
    /// One entry per stage, in [`Stage::ALL`] order.
    pub stages: Vec<StageSnapshot>,
}

/// One stage's snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct StageSnapshot {
    /// Which stage this is.
    pub stage: Stage,
    /// Event count (span entries, recorded values, or counter total).
    pub count: u64,
    /// Histogram of recorded durations (ns) or values.
    pub hist: HistSnapshot,
    /// Current gauge level (gauge stages only; 0 otherwise).
    pub gauge_current: i64,
    /// Gauge high-water mark.
    pub gauge_max: i64,
}

impl RegistrySnapshot {
    /// The snapshot for one stage.
    pub fn stage(&self, stage: Stage) -> &StageSnapshot {
        &self.stages[stage as usize]
    }

    /// Renders `{"stages": {"rtf.slot_fit": {...}, ...}}`. Every stage is
    /// always present (zeros included) so downstream JSON consumers can
    /// rely on the key set; keys follow [`Stage::name`].
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"stages\": {");
        for (i, s) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push('"');
            out.push_str(s.stage.name());
            out.push_str("\": ");
            out.push_str(&s.to_json());
        }
        out.push_str("}}");
        out
    }
}

impl StageSnapshot {
    fn to_json(&self) -> String {
        let kind = self.stage.kind();
        match kind {
            StageKind::Counter => {
                format!("{{\"kind\": \"counter\", \"count\": {}}}", self.count)
            }
            StageKind::Gauge => format!(
                "{{\"kind\": \"gauge\", \"count\": {}, \"current\": {}, \"max\": {}}}",
                self.count, self.gauge_current, self.gauge_max
            ),
            StageKind::Span | StageKind::Value => {
                let unit = if kind == StageKind::Span { "_ns" } else { "" };
                let q = |p: f64| self.hist.quantile(p).unwrap_or(0);
                format!(
                    "{{\"kind\": \"{}\", \"count\": {}, \"sum{unit}\": {}, \
                     \"mean{unit}\": {:.3}, \"min{unit}\": {}, \"p50{unit}\": {}, \
                     \"p90{unit}\": {}, \"p99{unit}\": {}, \"max{unit}\": {}}}",
                    kind.name(),
                    self.count,
                    self.hist.sum,
                    self.hist.mean(),
                    self.hist.min().unwrap_or(0),
                    q(0.50),
                    q(0.90),
                    q(0.99),
                    self.hist.max().unwrap_or(0),
                )
            }
        }
    }
}

/// The injectable observability handle: a shared registry, or a no-op.
///
/// Cheap to clone (an `Option<Arc>`); `Default` is the no-op. Every
/// recording method is a single branch when disabled, and [`Self::span`]
/// skips the clock read entirely.
#[derive(Debug, Clone, Default)]
pub struct ObsHandle {
    registry: Option<Arc<Registry>>,
}

impl ObsHandle {
    /// The disabled handle: every recording call is an inert branch.
    pub fn noop() -> Self {
        Self { registry: None }
    }

    /// An enabled handle onto a fresh private registry.
    pub fn fresh() -> Self {
        Self::from_registry(Arc::new(Registry::new()))
    }

    /// An enabled handle onto a shared registry.
    pub fn from_registry(registry: Arc<Registry>) -> Self {
        Self { registry: Some(registry) }
    }

    /// The underlying registry, if any was attached. Present even under
    /// the `noop` feature (snapshots render, all zeros) so bench plumbing
    /// does not need feature gates.
    pub fn registry(&self) -> Option<&Arc<Registry>> {
        self.registry.as_ref()
    }

    /// Whether recording calls reach a registry.
    pub fn is_enabled(&self) -> bool {
        self.reg().is_some()
    }

    #[inline]
    fn reg(&self) -> Option<&Registry> {
        if cfg!(feature = "noop") {
            None
        } else {
            self.registry.as_deref()
        }
    }

    /// Counts one event.
    #[inline]
    pub fn incr(&self, stage: Stage) {
        if let Some(reg) = self.reg() {
            reg.add(stage, 1);
        }
    }

    /// Counts `n` events.
    #[inline]
    pub fn add(&self, stage: Stage, n: u64) {
        if let Some(reg) = self.reg() {
            reg.add(stage, n);
        }
    }

    /// Records one histogram value.
    #[inline]
    pub fn record(&self, stage: Stage, value: u64) {
        if let Some(reg) = self.reg() {
            reg.record(stage, value);
        }
    }

    /// Records one duration (ns histogram).
    #[inline]
    pub fn record_duration(&self, stage: Stage, d: Duration) {
        if let Some(reg) = self.reg() {
            reg.record_duration(stage, d);
        }
    }

    /// Moves a gauge by `delta`.
    #[inline]
    pub fn gauge_add(&self, stage: Stage, delta: i64) {
        if let Some(reg) = self.reg() {
            reg.gauge_add(stage, delta);
        }
    }

    /// Opens a timed scope recording into `stage` when dropped. Disabled
    /// handles return an inert timer without reading the clock.
    #[inline]
    pub fn span(&self, stage: Stage) -> SpanTimer<'_> {
        SpanTimer { inner: self.reg().map(|reg| (reg, stage, Instant::now())) }
    }
}

/// RAII scope timer: records its lifetime into a stage on drop.
#[must_use = "a span records on drop; binding it to `_` ends it immediately"]
#[derive(Debug)]
pub struct SpanTimer<'r> {
    inner: Option<(&'r Registry, Stage, Instant)>,
}

impl Drop for SpanTimer<'_> {
    fn drop(&mut self) {
        if let Some((reg, stage, start)) = self.inner.take() {
            reg.record_duration(stage, start.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_handle_records_nothing_and_reads_no_clock() {
        let h = ObsHandle::noop();
        assert!(!h.is_enabled());
        h.incr(Stage::ServeCacheHit);
        h.record(Stage::GspItersToConverge, 7);
        h.gauge_add(Stage::PoolQueueDepth, 3);
        drop(h.span(Stage::GspRound));
        assert!(h.registry().is_none());
    }

    #[test]
    fn enabled_handle_reaches_the_shared_registry() {
        let reg = Arc::new(Registry::new());
        let a = ObsHandle::from_registry(Arc::clone(&reg));
        let b = a.clone();
        a.incr(Stage::ServeCacheHit);
        b.add(Stage::ServeCacheHit, 2);
        b.record(Stage::GspItersToConverge, 12);
        if cfg!(feature = "noop") {
            assert!(!a.is_enabled(), "noop feature must hard-disable recording");
            assert_eq!(reg.count(Stage::ServeCacheHit), 0);
        } else {
            assert_eq!(reg.count(Stage::ServeCacheHit), 3);
            assert_eq!(reg.count(Stage::GspItersToConverge), 1);
            let snap = reg.snapshot();
            assert_eq!(snap.stage(Stage::GspItersToConverge).hist.max(), Some(12));
        }
    }

    #[test]
    fn span_times_its_scope() {
        let h = ObsHandle::fresh();
        {
            let _t = h.span(Stage::OcsSelect);
            std::thread::sleep(Duration::from_millis(2));
        }
        let Some(reg) = h.registry() else { panic!("fresh handle has a registry") };
        if cfg!(feature = "noop") {
            assert_eq!(reg.count(Stage::OcsSelect), 0);
        } else {
            assert_eq!(reg.count(Stage::OcsSelect), 1);
            let snap = reg.snapshot();
            assert!(snap.stage(Stage::OcsSelect).hist.min().unwrap_or(0) >= 1_000_000);
        }
    }

    #[test]
    fn gauge_tracks_level_and_high_water_mark() {
        let h = ObsHandle::fresh();
        h.gauge_add(Stage::PoolQueueDepth, 5);
        h.gauge_add(Stage::PoolQueueDepth, -2);
        h.gauge_add(Stage::PoolQueueDepth, 1);
        let Some(reg) = h.registry() else { panic!("fresh handle has a registry") };
        if !cfg!(feature = "noop") {
            assert_eq!(reg.gauge(Stage::PoolQueueDepth), 4);
            let snap = reg.snapshot();
            assert_eq!(snap.stage(Stage::PoolQueueDepth).gauge_max, 5);
        }
    }

    #[test]
    fn snapshot_json_contains_every_stage_key() {
        let reg = Registry::new();
        reg.record_duration(Stage::RtfSlotFit, Duration::from_micros(250));
        reg.add(Stage::ServeCacheHit, 4);
        let json = reg.snapshot_json();
        for stage in Stage::ALL {
            assert!(
                json.contains(&format!("\"{}\"", stage.name())),
                "snapshot JSON lacks {}",
                stage.name()
            );
        }
        assert!(json.contains("\"kind\": \"span\""));
        assert!(json.contains("\"kind\": \"counter\", \"count\": 4"));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }
}
