//! Bounded log-linear histogram (HdrHistogram-lite).
//!
//! Values land in one of [`N_BUCKETS`] fixed buckets: values below
//! [`LINEAR_LIMIT`] get an exact unit bucket; above it each power-of-two
//! octave is split into [`SUB_BUCKETS`] linear sub-buckets, so any
//! recorded value sits in a bucket whose width is at most 25% of its
//! lower bound. Quantile estimates are therefore always bracketed by the
//! bounds of the bucket holding the true quantile, with bounded relative
//! error and O(1) memory — no allocation ever happens on the record path.
//!
//! All mutation is `Relaxed` atomic adds: recording is lock-free and
//! safe from any number of threads, and counts are never lost (see the
//! barrier-based proptest in `tests/properties.rs`).

use rtse_sync::atomic::{AtomicU64, Ordering};

/// Linear sub-buckets per power-of-two octave.
pub const SUB_BUCKETS: usize = 4;
/// Values below this are counted in exact unit buckets.
pub const LINEAR_LIMIT: u64 = SUB_BUCKETS as u64;
/// Total bucket count covering the full `u64` domain:
/// `SUB_BUCKETS` exact buckets plus 62 octaves × `SUB_BUCKETS`.
pub const N_BUCKETS: usize = SUB_BUCKETS + 62 * SUB_BUCKETS;

/// Bucket index of `value`.
pub fn bucket_of(value: u64) -> usize {
    if value < LINEAR_LIMIT {
        return usize::try_from(value).unwrap_or(0);
    }
    // 2^k <= value < 2^(k+1), k >= 2: four sub-buckets of width 2^(k-2).
    let k = 63 - value.leading_zeros() as usize;
    let sub = usize::try_from((value >> (k - 2)) & 3).unwrap_or(0);
    SUB_BUCKETS + (k - 2) * SUB_BUCKETS + sub
}

/// Inclusive `(lower, upper)` value bounds of bucket `index`.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    if index < SUB_BUCKETS {
        return (index as u64, index as u64);
    }
    let octave = (index - SUB_BUCKETS) / SUB_BUCKETS;
    let sub = ((index - SUB_BUCKETS) % SUB_BUCKETS) as u64;
    let k = octave + 2;
    let width = 1u64 << (k - 2);
    let lower = (1u64 << k) + sub * width;
    (lower, lower + (width - 1))
}

/// A fixed-size atomic log-linear histogram.
#[derive(Debug)]
pub struct LogLinearHistogram {
    buckets: [AtomicU64; N_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for LogLinearHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogLinearHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value. Lock-free; callable from any thread.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed); // lint: relaxed-counter
        self.count.fetch_add(1, Ordering::Relaxed); // lint: relaxed-counter
        self.sum.fetch_add(value, Ordering::Relaxed); // lint: relaxed-counter
        self.min.fetch_min(value, Ordering::Relaxed); // lint: relaxed-counter
        self.max.fetch_max(value, Ordering::Relaxed); // lint: relaxed-counter
    }

    /// Recorded value count.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed) // lint: relaxed-counter
    }

    /// Folds every count of `other` into `self`, as if the union of both
    /// recording streams had been recorded here.
    pub fn merge_from(&self, other: &LogLinearHistogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed); // lint: relaxed-counter
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed); // lint: relaxed-counter
            }
        }
        let count = other.count.load(Ordering::Relaxed); // lint: relaxed-counter
        let sum = other.sum.load(Ordering::Relaxed); // lint: relaxed-counter
        let min = other.min.load(Ordering::Relaxed); // lint: relaxed-counter
        let max = other.max.load(Ordering::Relaxed); // lint: relaxed-counter
        self.count.fetch_add(count, Ordering::Relaxed); // lint: relaxed-counter
        self.sum.fetch_add(sum, Ordering::Relaxed); // lint: relaxed-counter
        self.min.fetch_min(min, Ordering::Relaxed); // lint: relaxed-counter
        self.max.fetch_max(max, Ordering::Relaxed); // lint: relaxed-counter
    }

    /// A plain copy of the current state. Individual fields are exact;
    /// the snapshot as a whole is quiescently consistent (like every
    /// other multi-atomic read in the pipeline).
    pub fn snapshot(&self) -> HistSnapshot {
        let mut buckets = vec![0u64; N_BUCKETS];
        for (out, b) in buckets.iter_mut().zip(self.buckets.iter()) {
            *out = b.load(Ordering::Relaxed); // lint: relaxed-counter
        }
        HistSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed), // lint: relaxed-counter
            sum: self.sum.load(Ordering::Relaxed),     // lint: relaxed-counter
            min: self.min.load(Ordering::Relaxed),     // lint: relaxed-counter
            max: self.max.load(Ordering::Relaxed),     // lint: relaxed-counter
        }
    }
}

/// A point-in-time copy of a [`LogLinearHistogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket counts, indexed like [`bucket_of`].
    pub buckets: Vec<u64>,
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values (wrapping beyond `u64`).
    pub sum: u64,
    /// Smallest recorded value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
}

impl HistSnapshot {
    /// Estimated `q`-quantile (`q` clamped to `[0, 1]`); `None` when
    /// empty. The estimate is clamped into the bounds of the bucket that
    /// holds the true rank-`ceil(q·count)` value, so it is always within
    /// 25% relative error of the true quantile.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cum = cum.saturating_add(n);
            if cum >= rank {
                let (lower, upper) = bucket_bounds(i);
                // Tighten with the observed extremes: the true quantile
                // lies in [lower, upper] and in [min, max].
                return Some(upper.min(self.max).max(lower.max(self.min.min(upper))));
            }
        }
        Some(self.max)
    }

    /// Mean recorded value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// Smallest recorded value, `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value, `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_scheme_is_exact_below_the_linear_limit() {
        for v in 0..LINEAR_LIMIT {
            let b = bucket_of(v);
            assert_eq!(bucket_bounds(b), (v, v));
        }
    }

    #[test]
    fn every_value_lands_inside_its_bucket_bounds() {
        let probes = [
            0,
            1,
            3,
            4,
            5,
            7,
            8,
            9,
            15,
            16,
            100,
            1_000,
            65_535,
            65_536,
            1 << 40,
            (1 << 40) + 12345,
            u64::MAX / 2,
            u64::MAX - 1,
            u64::MAX,
        ];
        for v in probes {
            let b = bucket_of(v);
            assert!(b < N_BUCKETS, "{v} maps past the bucket array");
            let (lower, upper) = bucket_bounds(b);
            assert!(lower <= v && v <= upper, "{v} outside [{lower}, {upper}] (bucket {b})");
        }
    }

    #[test]
    fn buckets_tile_the_domain_without_gaps() {
        let mut expected_next = 0u64;
        for i in 0..N_BUCKETS {
            let (lower, upper) = bucket_bounds(i);
            assert_eq!(lower, expected_next, "gap/overlap before bucket {i}");
            assert!(upper >= lower);
            if upper == u64::MAX {
                assert_eq!(i, N_BUCKETS - 1);
                return;
            }
            expected_next = upper + 1;
        }
        panic!("last bucket does not reach u64::MAX");
    }

    #[test]
    fn relative_width_is_bounded() {
        for i in SUB_BUCKETS..N_BUCKETS {
            let (lower, upper) = bucket_bounds(i);
            let width = upper - lower;
            assert!(width <= lower / 4, "bucket {i} wider than 25% of its lower bound");
        }
    }

    #[test]
    fn record_and_snapshot_roundtrip() {
        let h = LogLinearHistogram::new();
        for v in [1u64, 1, 5, 100, 10_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 10_107);
        assert_eq!(s.min(), Some(1));
        assert_eq!(s.max(), Some(10_000));
        assert!((s.mean() - 10_107.0 / 5.0).abs() < 1e-9);
        assert_eq!(s.quantile(0.0), Some(1));
        // p50 of [1, 1, 5, 100, 10000] is 5 (exact: 5 < LINEAR_LIMIT is
        // false, but its bucket is tight).
        let p50 = s.quantile(0.5).expect("non-empty");
        let (lo, hi) = bucket_bounds(bucket_of(5));
        assert!(lo <= p50 && p50 <= hi);
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let s = LogLinearHistogram::new().snapshot();
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert!(s.mean().abs() < 1e-12);
    }

    #[test]
    fn merge_matches_union_on_a_fixed_case() {
        let a = LogLinearHistogram::new();
        let b = LogLinearHistogram::new();
        let union = LogLinearHistogram::new();
        for v in [3u64, 700, 700, 1 << 33] {
            a.record(v);
            union.record(v);
        }
        for v in [0u64, 9, 1 << 50] {
            b.record(v);
            union.record(v);
        }
        a.merge_from(&b);
        assert_eq!(a.snapshot(), union.snapshot());
    }
}
