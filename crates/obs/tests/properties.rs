//! Property and concurrency tests for the observability primitives.
//!
//! Three histogram properties from the crate's contract, plus the
//! overhead bound the no-op handle promises:
//!
//! 1. quantile estimates are bracketed by the bounds of the bucket that
//!    holds the true rank statistic;
//! 2. `merge_from(a, b)` is indistinguishable from recording the union
//!    of both streams;
//! 3. barrier-synchronized concurrent recording from 8 threads loses no
//!    counts (the record path is contention-safe, not just data-race
//!    free);
//! 4. recording through a no-op [`ObsHandle`] costs nanoseconds, not
//!    microseconds, per call.

use proptest::prelude::*;
use rtse_obs::hist::{bucket_bounds, bucket_of, LogLinearHistogram};
use rtse_obs::{ObsHandle, Stage};
use std::sync::Barrier;
use std::time::Instant;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For any sample set and any quantile, the estimate lies within the
    /// value bounds of the bucket containing the true rank-`⌈q·n⌉`
    /// order statistic — the bracketing contract that makes the p50/p99
    /// numbers in the BENCH JSONs trustworthy to ±25%.
    #[test]
    fn quantiles_are_bracketed_by_the_true_ranks_bucket(
        samples in proptest::collection::vec(0u64..u64::MAX, 1..200),
        q_millis in 0u64..1001,
    ) {
        let hist = LogLinearHistogram::new();
        for &v in &samples {
            hist.record(v);
        }
        let snapshot = hist.snapshot();
        let q = q_millis as f64 / 1000.0;

        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let true_value = sorted[rank - 1];
        let (lower, upper) = bucket_bounds(bucket_of(true_value));

        let estimate = snapshot.quantile(q).expect("non-empty histogram");
        prop_assert!(
            lower <= estimate && estimate <= upper,
            "q={} estimate {} outside [{}, {}] around true rank value {}",
            q, estimate, lower, upper, true_value
        );
    }

    /// Merging histograms is exactly recording the union: bucket counts,
    /// count, sum, min and max all agree, so per-thread histograms can be
    /// folded without losing fidelity.
    #[test]
    fn merge_equals_recording_the_union(
        left in proptest::collection::vec(0u64..u64::MAX, 0..100),
        right in proptest::collection::vec(0u64..u64::MAX, 0..100),
    ) {
        let a = LogLinearHistogram::new();
        let b = LogLinearHistogram::new();
        let union = LogLinearHistogram::new();
        for &v in &left {
            a.record(v);
            union.record(v);
        }
        for &v in &right {
            b.record(v);
            union.record(v);
        }
        a.merge_from(&b);
        prop_assert_eq!(a.snapshot(), union.snapshot());
    }
}

/// 8 threads released by one barrier hammer a single histogram; every
/// recorded value must be accounted for in the totals and the per-bucket
/// counts (atomic adds lose nothing under contention).
#[test]
fn concurrent_recording_from_eight_threads_loses_no_counts() {
    let hist = LogLinearHistogram::new();
    let threads = 8usize;
    let per_thread = 2_000usize;
    let start = Barrier::new(threads);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let hist = &hist;
            let start = &start;
            scope.spawn(move || {
                start.wait();
                for i in 0..per_thread {
                    // Deterministic mixed-magnitude stream per thread.
                    let v = ((t * per_thread + i) as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        >> (i % 64);
                    hist.record(v);
                }
            });
        }
    });
    let snapshot = hist.snapshot();
    let expected = (threads * per_thread) as u64;
    assert_eq!(snapshot.count, expected, "count lost under contention");
    let bucket_total: u64 = snapshot.buckets.iter().sum();
    assert_eq!(bucket_total, expected, "bucket counts lost under contention");

    // Cross-check against an identical serial recording.
    let serial = LogLinearHistogram::new();
    for t in 0..threads {
        for i in 0..per_thread {
            let v = ((t * per_thread + i) as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (i % 64);
            serial.record(v);
        }
    }
    assert_eq!(snapshot, serial.snapshot(), "concurrent result differs from serial");
}

/// The disabled path's promise: a no-op handle makes `incr` and `span`
/// cost near nothing. The bound here is deliberately generous (well under
/// a microsecond per op on any host this runs on) — it exists to catch a
/// regression that puts an allocation, a clock read, or a lock on the
/// disabled path, not to benchmark.
#[test]
fn noop_handle_overhead_is_negligible() {
    let obs = ObsHandle::noop();
    let iters = 100_000u32;
    let start = Instant::now();
    for _ in 0..iters {
        obs.incr(Stage::PoolJobs);
        let _span = obs.span(Stage::GspRound);
    }
    let per_op_ns = start.elapsed().as_nanos() as f64 / f64::from(iters);
    assert!(
        per_op_ns < 1_000.0,
        "no-op incr+span pair took {per_op_ns:.1} ns; the disabled path must stay trivial"
    );
}
