//! Shared experiment setup for the CrowdRTSE reproduction harness.
//!
//! Every table/figure binary (`src/bin/exp_*.rs`) and criterion bench
//! builds its world through this module so the configurations stay
//! consistent with Table II:
//!
//! * **semi-synthesized**: 607 roads, `R^w = R`, `|R^q| ∈ {33, 51}`,
//!   costs `C1 = U(1,10)` / `C2 = U(1,5)`, `K ∈ 30..150`,
//!   `θ ∈ {0.92, 1}`; crowd answers generated from ground truth;
//! * **gMission**: `|R^w| = 30 ⊂ |R^q| = 50` (connected), costs
//!   `U(1,10)`, `K ∈ 10..50`.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rtse_crowd::{uniform_costs, CostRange};
use rtse_data::{SlotOfDay, SynthDataset, TrafficGenerator};
use rtse_graph::{generators, Graph, RoadId};
use rtse_ocs::Selection;
use rtse_rtf::{moment_estimate, RtfModel};

/// The paper's network scale.
pub const PAPER_ROADS: usize = 607;
/// The paper's history length (5,244,480 records = 607 × 288 × 30).
pub const PAPER_DAYS: usize = 30;
/// The paper's budget sweep for the semi-synthesized dataset.
pub const BUDGETS_SEMI_SYN: [u32; 5] = [30, 60, 90, 120, 150];
/// The paper's budget sweep for the gMission dataset.
pub const BUDGETS_GMISSION: [u32; 5] = [10, 20, 30, 40, 50];
/// The paper's fine-tuned redundancy threshold.
pub const THETA_TUNED: f64 = 0.92;

/// A fully materialized semi-synthesized world.
pub struct SemiSynWorld {
    /// The 607-road network.
    pub graph: Graph,
    /// History + held-out today.
    pub dataset: SynthDataset,
    /// Moment-estimated RTF.
    pub model: RtfModel,
    /// Wide costs `C1 = U(1,10)`.
    pub costs_c1: Vec<u32>,
    /// Narrow costs `C2 = U(1,5)`.
    pub costs_c2: Vec<u32>,
    /// 33 uniformly chosen queried roads.
    pub queried_33: Vec<RoadId>,
    /// 51 uniformly chosen queried roads.
    pub queried_51: Vec<RoadId>,
    /// All roads — `R^w = R` for the semi-synthesized dataset.
    pub all_roads: Vec<RoadId>,
}

/// Builds the semi-synthesized world at a given scale (pass
/// [`PAPER_ROADS`]/[`PAPER_DAYS`] for the paper configuration, smaller for
/// smoke runs).
pub fn semi_syn_world(roads: usize, days: usize, seed: u64) -> SemiSynWorld {
    let graph = generators::hong_kong_like(roads, seed);
    // The "volatile" scenario preset: paper-difficulty estimation (Per
    // MAPE in the 0.15–0.3 range). See `rtse_data::scenario`.
    let dataset =
        TrafficGenerator::new(&graph, rtse_data::scenario::volatile(days, seed)).generate();
    let model = moment_estimate(&graph, &dataset.history);
    let costs_c1 = uniform_costs(roads, CostRange::C1, seed ^ 0xC1);
    let costs_c2 = uniform_costs(roads, CostRange::C2, seed ^ 0xC2);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E);
    let mut pick = |count: usize| -> Vec<RoadId> {
        let mut chosen: Vec<RoadId> = Vec::with_capacity(count);
        while chosen.len() < count {
            let r = RoadId::from(rng.random_range(0..roads));
            if !chosen.contains(&r) {
                chosen.push(r);
            }
        }
        chosen.sort();
        chosen
    };
    let queried_33 = pick(33);
    let queried_51 = pick(51);
    let all_roads = graph.road_ids().collect();
    SemiSynWorld { graph, dataset, model, costs_c1, costs_c2, queried_33, queried_51, all_roads }
}

/// Representative query slots spread over the day: overnight, both rush
/// hours, and mid-day.
pub fn query_slots() -> Vec<SlotOfDay> {
    vec![
        SlotOfDay::from_hm(3, 0),
        SlotOfDay::from_hm(8, 30),
        SlotOfDay::from_hm(13, 0),
        SlotOfDay::from_hm(18, 0),
    ]
}

/// Semi-synthesized crowd answers: "crowd's answers are generated with the
/// ground-truth speeds" (Section VII-A) — each selected road reports its
/// ground-truth speed.
pub fn ground_truth_observations(selection: &Selection, truth: &[f64]) -> Vec<(RoadId, f64)> {
    selection.roads.iter().map(|&r| (r, truth[r.index()])).collect()
}

/// Parses a `--quick` flag from the process args: experiment binaries run
/// at paper scale by default and at smoke scale with `--quick`.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// World scale knobs derived from [`quick_mode`].
pub fn scale() -> (usize, usize) {
    if quick_mode() {
        (150, 10)
    } else {
        (PAPER_ROADS, PAPER_DAYS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_matches_table_ii() {
        let w = semi_syn_world(100, 5, 1);
        assert_eq!(w.graph.num_roads(), 100);
        assert_eq!(w.queried_33.len(), 33);
        assert_eq!(w.queried_51.len(), 51);
        assert_eq!(w.all_roads.len(), 100);
        assert!(w.costs_c1.iter().all(|&c| (1..=10).contains(&c)));
        assert!(w.costs_c2.iter().all(|&c| (1..=5).contains(&c)));
        // Queried roads unique.
        let mut q = w.queried_51.clone();
        q.dedup();
        assert_eq!(q.len(), 51);
    }

    #[test]
    fn ground_truth_observations_echo_truth() {
        let sel = Selection { roads: vec![RoadId(2), RoadId(5)], value: 0.0, spent: 2 };
        let truth: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let obs = ground_truth_observations(&sel, &truth);
        assert_eq!(obs, vec![(RoadId(2), 2.0), (RoadId(5), 5.0)]);
    }

    #[test]
    fn query_slots_cover_the_day() {
        let slots = query_slots();
        assert_eq!(slots.len(), 4);
        assert!(slots.windows(2).all(|w| w[0] < w[1]));
    }
}
