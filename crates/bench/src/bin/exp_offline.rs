//! Offline-pipeline parallel speedup: serial vs pooled wall clock for the
//! three hot paths routed through `rtse_pool::ComputePool` — the
//! correlation-table build (one Dijkstra per road), full-day RTF training
//! (288 independent slot fits), and layer-parallel GSP propagation.
//!
//! Results are printed as a table and recorded in `BENCH_offline.json`
//! (in the working directory) together with the host parallelism, so the
//! committed numbers are honest about the machine that produced them: on
//! a single-core host every speedup is ≈ 1× by construction, and the
//! multi-thread rows only demonstrate that the pooled paths add no
//! correctness or pathological scheduling cost. Re-run on a multi-core
//! host to reproduce real speedups (see EXPERIMENTS.md).
//!
//! ```sh
//! cargo run --release -p rtse-bench --bin exp_offline [--quick]
//! ```

use rtse_bench::{quick_mode, semi_syn_world};
use rtse_data::SlotOfDay;
use rtse_eval::{time_mean, Table};
use rtse_graph::components::grow_connected_subset;
use rtse_graph::RoadId;
use rtse_gsp::{
    propagate_delta, propagate_delta_observed, DeltaGsp, DeltaResult, GspSolver, ParallelGsp,
};
use rtse_obs::ObsHandle;
use rtse_pool::ComputePool;
use rtse_rtf::{CorrelationTable, PathCorrelation, RtfTrainer};

const THREAD_SWEEP: [usize; 3] = [2, 4, 8];

struct Measurement {
    stage: &'static str,
    serial_ms: f64,
    /// `(threads, wall ms)` per pooled run.
    pooled: Vec<(usize, f64)>,
}

/// Delta-vs-full timing for the single-moved-observation round.
struct DeltaTiming {
    full_ms: f64,
    delta_ms: f64,
    epsilon: f64,
    run: DeltaResult,
}

fn main() {
    let (roads, days, reps) = if quick_mode() { (150, 4, 2) } else { (600, 8, 3) };
    let world = semi_syn_world(roads, days, 2018);
    let slot = SlotOfDay::from_hm(8, 30);
    let mut measurements = Vec::new();

    // 1. Correlation-table build: one Dijkstra per road, row-sliced.
    let corr = |threads: usize| {
        let pool = ComputePool::new(threads);
        std::hint::black_box(CorrelationTable::build_with_pool(
            &world.graph,
            &world.model,
            slot,
            PathCorrelation::MaxProduct,
            &pool,
        ));
    };
    measurements.push(sweep("corr_table_build", reps, corr));

    // 2. Full-day RTF training (288 slot fits) on a smaller subnetwork so
    //    the serial baseline stays affordable.
    let sub_size = (roads / 4).max(40);
    let keep = grow_connected_subset(&world.graph, RoadId(0), sub_size)
        .expect("hong_kong_like is connected");
    let (sub, _) = world.graph.induced_subgraph(&keep);
    let history = world.dataset.history.project_roads(&keep);
    let train = |threads: usize| {
        let trainer = RtfTrainer { max_iters: 5, threads, ..Default::default() };
        std::hint::black_box(trainer.train(&sub, &history));
    };
    measurements.push(sweep("rtf_train_all_slots", 1, train));

    // 3. Layer-parallel GSP on the full network.
    let params = world.model.slot(slot);
    let observations: Vec<(RoadId, f64)> = world
        .queried_33
        .iter()
        .map(|&r| (r, world.dataset.today.snapshot(0, slot)[r.index()]))
        .collect();
    let gsp = |threads: usize| {
        let solver = ParallelGsp {
            base: GspSolver { epsilon: 1e-9, max_rounds: 100, record_trace: false },
            threads,
        };
        std::hint::black_box(solver.propagate(&world.graph, params, &observations));
    };
    measurements.push(sweep("gsp_propagate", reps, gsp));

    // 4. Delta re-propagation: the realtime-serving case where one
    //    observation moved between rounds. Cold full solve vs a delta run
    //    seeded from the previous fixed point on the same network.
    let serial = GspSolver { epsilon: 1e-9, max_rounds: 100, record_trace: false };
    let full_ms = time_mean(reps, || {
        std::hint::black_box(serial.propagate(&world.graph, params, &observations));
    })
    .as_secs_f64()
        * 1e3;
    let prev = serial.propagate(&world.graph, params, &observations);
    assert!(prev.converged, "the offline world's GSP round must converge");
    let mut moved = observations.clone();
    moved[0].1 += 1.5;
    let delta_solver = DeltaGsp { base: serial, epsilon: 1e-6 };
    let delta_ms = time_mean(reps, || {
        std::hint::black_box(propagate_delta(
            &delta_solver,
            &world.graph,
            params,
            &moved,
            &prev.values,
            &[],
        ));
    })
    .as_secs_f64()
        * 1e3;
    let delta_run = propagate_delta(&delta_solver, &world.graph, params, &moved, &prev.values, &[]);
    assert!(delta_run.skipped > 0, "a single moved observation must skip relaxations");
    println!(
        "delta re-propagation: {delta_ms:.2} ms vs {full_ms:.2} ms full ({:.1}x), \
         {} of {} visits skipped",
        full_ms / delta_ms,
        delta_run.skipped,
        delta_run.evaluated + delta_run.skipped,
    );

    let mut t = Table::new(
        "Offline pipeline: serial vs pooled wall clock",
        &["stage", "serial ms", "2T ms", "4T ms", "8T ms", "4T speedup"],
    );
    for m in &measurements {
        let ms_at = |n: usize| {
            m.pooled
                .iter()
                .find(|&&(t, _)| t == n)
                .map_or_else(|| "-".to_string(), |&(_, ms)| format!("{ms:.1}"))
        };
        let speedup4 = m
            .pooled
            .iter()
            .find(|&&(t, _)| t == 4)
            .map_or_else(|| "-".to_string(), |&(_, ms)| format!("{:.2}x", m.serial_ms / ms));
        t.push_row(vec![
            m.stage.to_string(),
            format!("{:.1}", m.serial_ms),
            ms_at(2),
            ms_at(4),
            ms_at(8),
            speedup4,
        ]);
    }
    println!("{}", t.render());

    let host_threads = std::thread::available_parallelism().map_or(0, |n| n.get());
    println!(
        "host parallelism: {host_threads} (speedups are bounded by physical cores; \
         ~1x is expected on a single-core host)"
    );

    // Instrumented pass: run each stage once through a fresh stage
    // registry so the committed JSON carries a per-stage breakdown
    // (span counts, mean/p50/p90/p99 nanoseconds), and time the
    // correlation build with the no-op handle vs the live registry to
    // keep the instrumentation overhead honest and on record.
    let obs = ObsHandle::fresh();
    let pool = ComputePool::from_env();
    let noop_ms = time_mean(reps, || {
        std::hint::black_box(CorrelationTable::build_observed(
            &world.graph,
            &world.model,
            slot,
            PathCorrelation::MaxProduct,
            &pool,
            &ObsHandle::noop(),
        ));
    })
    .as_secs_f64()
        * 1e3;
    let enabled_ms = time_mean(reps, || {
        std::hint::black_box(CorrelationTable::build_observed(
            &world.graph,
            &world.model,
            slot,
            PathCorrelation::MaxProduct,
            &pool,
            &obs,
        ));
    })
    .as_secs_f64()
        * 1e3;
    let trainer = RtfTrainer { max_iters: 5, threads: 0, ..Default::default() };
    std::hint::black_box(trainer.train_with_obs(&sub, &history, &obs));
    let base = GspSolver { epsilon: 1e-9, max_rounds: 100, record_trace: false };
    std::hint::black_box(base.propagate_observed(&world.graph, params, &observations, &obs));
    std::hint::black_box(propagate_delta_observed(
        &delta_solver,
        &world.graph,
        params,
        &moved,
        &prev.values,
        &[],
        &obs,
    ));
    let obs_json = obs.registry().map(|r| r.snapshot_json());
    println!(
        "instrumented corr build: {enabled_ms:.1} ms vs {noop_ms:.1} ms no-op \
         (per-stage breakdown recorded in the JSON)"
    );

    let delta = DeltaTiming { full_ms, delta_ms, epsilon: delta_solver.epsilon, run: delta_run };
    let json = render_json(
        roads,
        days,
        reps,
        host_threads,
        &measurements,
        &delta,
        obs_json.as_deref(),
        noop_ms,
        enabled_ms,
    );
    let out = "BENCH_offline.json";
    std::fs::write(out, json).expect("writing BENCH_offline.json");
    println!("wrote {out}");
}

/// Times `f` serially (1 thread) and at each sweep width.
fn sweep(stage: &'static str, reps: usize, f: impl Fn(usize)) -> Measurement {
    let ms = |threads: usize| time_mean(reps, || f(threads)).as_secs_f64() * 1e3;
    let serial_ms = ms(1);
    let pooled = THREAD_SWEEP.iter().map(|&n| (n, ms(n))).collect();
    Measurement { stage, serial_ms, pooled }
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    roads: usize,
    days: usize,
    reps: usize,
    host_threads: usize,
    measurements: &[Measurement],
    delta: &DeltaTiming,
    obs_json: Option<&str>,
    obs_noop_ms: f64,
    obs_enabled_ms: f64,
) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"experiment\": \"offline_parallel_speedup\",\n");
    s.push_str(&format!(
        "  \"host\": {{ \"available_parallelism\": {host_threads}, \"rtse_threads_env\": {} }},\n",
        std::env::var("RTSE_THREADS").map_or_else(|_| "null".into(), |v| format!("\"{v}\""))
    ));
    s.push_str(&format!(
        "  \"config\": {{ \"roads\": {roads}, \"days\": {days}, \"reps\": {reps} }},\n"
    ));
    s.push_str("  \"note\": \"speedups are bounded by host cores; on a 1-core host ~1x is the honest expectation — see EXPERIMENTS.md for multicore reproduction\",\n");
    s.push_str("  \"stages\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        s.push_str(&format!(
            "    {{ \"stage\": \"{}\", \"serial_ms\": {:.3}, \"pooled\": [",
            m.stage, m.serial_ms
        ));
        for (j, &(threads, ms)) in m.pooled.iter().enumerate() {
            s.push_str(&format!(
                "{{ \"threads\": {threads}, \"ms\": {ms:.3}, \"speedup\": {:.3} }}",
                m.serial_ms / ms
            ));
            if j + 1 < m.pooled.len() {
                s.push_str(", ");
            }
        }
        s.push_str(" ] }");
        if i + 1 < measurements.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"gsp_parallel_cutover\": {{ \"min_parallel_work\": {}, \"work_unit\": \
         \"1 + degree per scheduled road (Eq. 18 update cost)\" }},\n",
        rtse_gsp::MIN_PARALLEL_WORK
    ));
    s.push_str(&format!(
        "  \"delta_speedup\": {{ \"stage\": \"gsp_propagate\", \"epsilon\": {}, \
         \"full_ms\": {:.3}, \"delta_ms\": {:.3}, \"speedup\": {:.3}, \"rounds\": {}, \
         \"scheduled\": {}, \"frontier\": {}, \"evaluated\": {}, \"skipped\": {}, \
         \"note\": \"one moved observation re-propagated from the previous fixed point vs a \
         cold full solve\" }},\n",
        delta.epsilon,
        delta.full_ms,
        delta.delta_ms,
        delta.full_ms / delta.delta_ms,
        delta.run.result.rounds,
        delta.run.scheduled,
        delta.run.frontier,
        delta.run.evaluated,
        delta.run.skipped,
    ));
    s.push_str(&format!(
        "  \"obs_overhead\": {{ \"stage\": \"corr_table_build\", \"noop_ms\": {obs_noop_ms:.3}, \
         \"enabled_ms\": {obs_enabled_ms:.3} }},\n"
    ));
    s.push_str(&format!("  \"obs\": {}\n", obs_json.unwrap_or("null")));
    s.push_str("}\n");
    s
}
