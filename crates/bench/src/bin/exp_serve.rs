//! Serving-layer load generation: drives `rtse-serve` with concurrent
//! clients and records throughput, latency quantiles, the batch-coalescing
//! ratio (GSP rounds per 100 queries), cache hit rate, and shed/reject
//! counts in `BENCH_serve.json`.
//!
//! Three phases, each a fresh deployment with its own metrics:
//!
//! * **steady_mixed** — clients issue queries round-robin over the day's
//!   representative slots; sharing comes from the answer cache.
//! * **burst_same_slot** — a staged same-slot burst (admitted while the
//!   workers are paused) measures pure micro-batch coalescing.
//! * **deadline_pressure** — zero-budget deadlines force load shedding;
//!   every shed request gets the typed error, never an estimate. Skipped
//!   under `--assert-no-shed` (the CI smoke mode), which instead asserts
//!   that the no-deadline phases shed nothing.
//!
//! Latency numbers on a 1-core host measure the serialized pipeline, not
//! serving concurrency — see EXPERIMENTS.md for the multicore caveat.
//! Knobs: `RTSE_SERVE_BATCH_WINDOW_MS`, `RTSE_SERVE_QUEUE_DEPTH`,
//! `RTSE_SERVE_DEADLINE_MS`, plus `RTSE_THREADS` for the worker count.
//!
//! ```sh
//! cargo run --release -p rtse-bench --bin exp_serve [--quick] [--assert-no-shed]
//! ```

use crowd_rtse_core::{CrowdRtse, DeltaPolicy, OfflineArtifacts, OnlineConfig};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rtse_bench::{query_slots, quick_mode, semi_syn_world};
use rtse_crowd::WorkerPool;
use rtse_data::SlotOfDay;
use rtse_eval::{quantile, Table};
use rtse_graph::RoadId;
use rtse_obs::{ObsHandle, Stage};
use rtse_serve::{serve, MetricsSnapshot, ServeConfig, ServeError, ServeRequest, ServeWorld};
use std::time::{Duration, Instant};

struct PhaseResult {
    name: &'static str,
    wall_ms: f64,
    metrics: MetricsSnapshot,
    p50_ms: f64,
    p99_ms: f64,
}

/// Delta-policy vs full-policy wall clock over the same forced
/// single-road-change round sequence, plus the frontier accounting the
/// shared registry collected during the delta deployment.
struct DeltaComparison {
    rounds_per_policy: usize,
    epsilon: f64,
    full_wall_ms: f64,
    delta_wall_ms: f64,
    /// Rounds that actually seeded from a previous fixed point (the first
    /// round of the deployment is cold by construction).
    delta_seeded_rounds: u64,
    /// Eq. (18) relaxations the delta rounds skipped; a full sweep would
    /// have paid every one of these.
    delta_skipped: u64,
    /// Cache hits both comparison deployments contributed to the shared
    /// registry (folded into the mirror-consistency assertion).
    cache_hit_queries: u64,
}

fn main() {
    // The load harness must measure the real primitives: a loom-backed
    // build (`--cfg rtse_loom`) permutes schedules under a model-checker
    // scheduler and its numbers would be meaningless here.
    assert_eq!(rtse_sync::BACKEND, "std", "exp_serve must run on the std sync backend");
    let quick = quick_mode();
    let assert_no_shed = std::env::args().any(|a| a == "--assert-no-shed");
    let (roads, days, clients, per_client) = if quick { (120, 4, 6, 8) } else { (400, 10, 12, 25) };

    let world = semi_syn_world(roads, days, 2018);
    // One shared stage registry across engine and serving layer: engine
    // stages (ocs.select, gsp.round, corr.dijkstra_row) and serving
    // stages (serve.round, serve.queue_wait, serve.cache_hit) land in the
    // same per-stage snapshot, cumulative over all phases.
    let obs = ObsHandle::fresh();
    let engine = CrowdRtse::new(&world.graph, OfflineArtifacts::from_model(world.model.clone()))
        .with_obs(obs.clone());
    let pool = WorkerPool::spawn(&world.graph, roads / 2, 0.5, (0.3, 1.0), 2018);
    let sworld = ServeWorld { workers: &pool, costs: &world.costs_c2, truth: &world.dataset };
    // Prewarm every slot the phases will touch: the first steady round
    // used to pay the cold Γ build inside its batch compute, which stacked
    // on the batch window and pushed the steady_mixed serve.queue_wait p99
    // to ~14 ms against a 2 ms window. With the caches warmed at
    // deployment start, queue_wait measures queueing, not cold builds.
    let mut prewarm = query_slots();
    prewarm.push(SlotOfDay::from_hm(8, 30));
    prewarm.push(SlotOfDay::from_hm(13, 0));
    let config = ServeConfig {
        online: OnlineConfig { budget: 30, ..Default::default() },
        obs: obs.clone(),
        prewarm_slots: prewarm,
        ..ServeConfig::from_env()
    };

    let mut phases = Vec::new();
    phases.push(steady_mixed(&engine, &sworld, &config, roads, clients, per_client));
    phases.push(burst_same_slot(&engine, &sworld, &config, clients.max(8)));
    if !assert_no_shed {
        phases.push(deadline_pressure(&engine, &sworld, &config, clients));
    }
    let delta_cmp =
        delta_rounds(&engine, &sworld, &config, roads, if quick { 6 } else { 12 }, &obs);

    let mut t = Table::new(
        "Serving layer under concurrent load",
        &[
            "phase",
            "answered",
            "rounds/100q",
            "cache hit",
            "batch",
            "shed",
            "p50 ms",
            "p99 ms",
            "qps",
        ],
    );
    for p in &phases {
        let m = &p.metrics;
        t.push_row(vec![
            p.name.to_string(),
            m.answered.to_string(),
            format!("{:.1}", m.rounds_per_100()),
            format!("{:.2}", m.cache_hit_rate()),
            format!("{:.1}", m.mean_batch_size()),
            m.shed.to_string(),
            format!("{:.2}", p.p50_ms),
            format!("{:.2}", p.p99_ms),
            format!("{:.1}", throughput_qps(p)),
        ]);
    }
    println!("{}", t.render());
    println!(
        "delta rounds: {:.2} ms vs {:.2} ms full over {} forced rounds \
         ({} seeded, {} relaxations skipped)",
        delta_cmp.delta_wall_ms,
        delta_cmp.full_wall_ms,
        delta_cmp.rounds_per_policy,
        delta_cmp.delta_seeded_rounds,
        delta_cmp.delta_skipped,
    );

    let host_threads = std::thread::available_parallelism().map_or(0, |n| n.get());
    println!(
        "host parallelism: {host_threads} (on a 1-core host latency measures the serialized \
         pipeline; coalescing and shedding behaviour are still exact)"
    );

    // The registry's serve.cache_hit counter is fed by the same
    // note_answered calls as the metrics' cache_hit_queries, so across
    // all phases the two bookkeepings must agree exactly.
    if obs.is_enabled() {
        let reg = obs.registry().expect("enabled handle has a registry");
        let mirrored = reg.count(Stage::ServeCacheHit);
        let counted: u64 = phases.iter().map(|p| p.metrics.cache_hit_queries).sum::<u64>()
            + delta_cmp.cache_hit_queries;
        assert_eq!(mirrored, counted, "registry cache-hit mirror diverged from the serve metrics");
    }

    let obs_json = obs.registry().map(|r| r.snapshot_json());
    let json = render_json(
        roads,
        days,
        clients,
        per_client,
        host_threads,
        &config,
        &phases,
        &delta_cmp,
        obs_json.as_deref(),
    );
    let out = "BENCH_serve.json";
    std::fs::write(out, json).expect("writing BENCH_serve.json");
    println!("wrote {out}");

    if assert_no_shed {
        let shed: u64 = phases.iter().map(|p| p.metrics.shed).sum();
        let rejected: u64 = phases.iter().map(|p| p.metrics.rejected).sum();
        assert_eq!(shed, 0, "no-deadline load must shed nothing");
        assert_eq!(rejected, 0, "smoke load must fit the admission queue");
        println!("assert-no-shed: ok (0 shed, 0 rejected)");
    }
}

fn throughput_qps(p: &PhaseResult) -> f64 {
    p.metrics.answered as f64 / (p.wall_ms / 1e3).max(1e-9)
}

/// Collapses per-answer wait times into the phase record.
fn phase_result(
    name: &'static str,
    wall: Duration,
    metrics: MetricsSnapshot,
    mut waits_ms: Vec<f64>,
) -> PhaseResult {
    waits_ms.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let (p50_ms, p99_ms) = if waits_ms.is_empty() {
        (0.0, 0.0)
    } else {
        (quantile(&waits_ms, 0.5), quantile(&waits_ms, 0.99))
    };
    PhaseResult { name, wall_ms: wall.as_secs_f64() * 1e3, metrics, p50_ms, p99_ms }
}

/// Clients issue no-deadline queries round-robin over the representative
/// slots; repeat slots within the TTL are answered from the cache.
fn steady_mixed(
    engine: &CrowdRtse<'_>,
    sworld: &ServeWorld<'_>,
    config: &ServeConfig,
    roads: usize,
    clients: usize,
    per_client: usize,
) -> PhaseResult {
    let slots = query_slots();
    let start = Instant::now();
    let outcome = serve(engine, sworld, config, |handle| {
        std::thread::scope(|scope| {
            let tasks: Vec<_> = (0..clients)
                .map(|c| {
                    let handle = &handle;
                    let slots = &slots;
                    scope.spawn(move || {
                        let mut rng = StdRng::seed_from_u64(c as u64 * 7919 + 17);
                        let mut waits = Vec::with_capacity(per_client);
                        for q in 0..per_client {
                            let slot = slots[(c + q) % slots.len()];
                            let picked: Vec<RoadId> =
                                (0..4).map(|_| RoadId::from(rng.random_range(0..roads))).collect();
                            let answer = handle
                                .query(ServeRequest::new(picked, slot))
                                .expect("no-deadline steady load is always answered");
                            waits.push(answer.wait.as_secs_f64() * 1e3);
                        }
                        waits
                    })
                })
                .collect();
            // The coherent snapshot's invariant must hold mid-load, not
            // just after a drain: every round publication advances exactly
            // one slot generation inside the same coherence section.
            let snap = handle.coherent_snapshot();
            assert_eq!(
                snap.metrics.rounds,
                snap.total_generations(),
                "coherent snapshot tore under live load"
            );
            let waits = tasks
                .into_iter()
                .flat_map(|t| t.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
                .collect::<Vec<f64>>();
            // And again after the load drains: the drained totals must
            // satisfy the same lockstep invariant.
            let drained = handle.coherent_snapshot();
            assert_eq!(
                drained.metrics.rounds,
                drained.total_generations(),
                "rounds and slot generations diverged after drain"
            );
            waits
        })
    })
    .expect("serve deploys");
    phase_result("steady_mixed", start.elapsed(), outcome.metrics, outcome.value)
}

/// A staged same-slot burst: every client is admitted while the workers
/// are paused, so the whole burst coalesces into shared rounds regardless
/// of scheduling luck.
fn burst_same_slot(
    engine: &CrowdRtse<'_>,
    sworld: &ServeWorld<'_>,
    config: &ServeConfig,
    clients: usize,
) -> PhaseResult {
    let slot = SlotOfDay::from_hm(8, 30);
    let start = Instant::now();
    let outcome = serve(engine, sworld, config, |handle| {
        handle.pause();
        std::thread::scope(|scope| {
            let tasks: Vec<_> = (0..clients)
                .map(|c| {
                    let handle = &handle;
                    scope.spawn(move || {
                        let picked: Vec<RoadId> =
                            (c..c + 5).map(|r| RoadId::from(r % 50)).collect();
                        let answer = handle
                            .query(ServeRequest::new(picked, slot))
                            .expect("burst queries are always answered");
                        answer.wait.as_secs_f64() * 1e3
                    })
                })
                .collect();
            while handle.queue_len() < clients {
                std::thread::yield_now();
            }
            handle.resume();
            tasks
                .into_iter()
                .map(|t| t.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
                .collect::<Vec<f64>>()
        })
    })
    .expect("serve deploys");
    phase_result("burst_same_slot", start.elapsed(), outcome.metrics, outcome.value)
}

/// Zero deadlines under a staged burst: every request must be shed with
/// the typed error — an estimate here would mean a late answer escaped.
fn deadline_pressure(
    engine: &CrowdRtse<'_>,
    sworld: &ServeWorld<'_>,
    config: &ServeConfig,
    clients: usize,
) -> PhaseResult {
    let slot = SlotOfDay::from_hm(13, 0);
    let start = Instant::now();
    let outcome = serve(engine, sworld, config, |handle| {
        handle.pause();
        let tickets: Vec<_> = (0..clients)
            .map(|c| {
                handle
                    .submit(
                        ServeRequest::new(vec![RoadId::from(c % 50)], slot)
                            .with_deadline(Duration::ZERO),
                    )
                    .expect("admitted")
            })
            .collect();
        handle.resume();
        for ticket in tickets {
            match ticket.wait() {
                Err(ServeError::DeadlineExceeded { .. }) => {}
                other => panic!("expired request must be shed with the typed error: {other:?}"),
            }
        }
    })
    .expect("serve deploys");
    phase_result("deadline_pressure", start.elapsed(), outcome.metrics, Vec::new())
}

/// Forced single-road-change rounds on one prewarmed slot: every query
/// pins `max_staleness` to zero so each one recomputes the round, and
/// each names a different road, so the OCS selection — and with it a
/// handful of observations — moves between consecutive rounds. The same
/// sequence runs once under [`DeltaPolicy::Full`] and once under
/// [`DeltaPolicy::Delta`]; the shared registry's `gsp.delta_skipped`
/// counter records the relaxations the delta rounds did not pay.
fn delta_rounds(
    engine: &CrowdRtse<'_>,
    sworld: &ServeWorld<'_>,
    config: &ServeConfig,
    roads: usize,
    rounds_per_policy: usize,
    obs: &ObsHandle,
) -> DeltaComparison {
    let slot = SlotOfDay::from_hm(8, 30);
    let epsilon = 1e-6;
    let mut cache_hit_queries = 0u64;
    let mut run = |delta: DeltaPolicy| -> f64 {
        let cfg = ServeConfig {
            online: OnlineConfig { budget: 30, delta, ..Default::default() },
            ..config.clone()
        };
        let start = Instant::now();
        let outcome = serve(engine, sworld, &cfg, |handle| {
            for q in 0..rounds_per_policy {
                let road = RoadId::from((q * 7) % roads);
                handle
                    .query(ServeRequest::new(vec![road], slot).with_max_staleness(Duration::ZERO))
                    .expect("forced delta rounds are always answered");
            }
        })
        .expect("serve deploys");
        cache_hit_queries += outcome.metrics.cache_hit_queries;
        start.elapsed().as_secs_f64() * 1e3
    };
    let full_wall_ms = run(DeltaPolicy::Full);
    let (skipped_before, seeded_before) = delta_counters(obs);
    let delta_wall_ms = run(DeltaPolicy::Delta { epsilon });
    let (skipped_after, seeded_after) = delta_counters(obs);
    let cmp = DeltaComparison {
        rounds_per_policy,
        epsilon,
        full_wall_ms,
        delta_wall_ms,
        delta_seeded_rounds: seeded_after - seeded_before,
        delta_skipped: skipped_after - skipped_before,
        cache_hit_queries,
    };
    assert!(
        cmp.delta_skipped > 0,
        "single-road-change rounds must skip relaxations a full sweep would pay"
    );
    cmp
}

/// `(gsp.delta_skipped, gsp.delta_frontier records)` from the shared
/// registry; zeros when observability is disabled.
fn delta_counters(obs: &ObsHandle) -> (u64, u64) {
    obs.registry()
        .map_or((0, 0), |r| (r.count(Stage::GspDeltaSkipped), r.count(Stage::GspDeltaFrontier)))
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    roads: usize,
    days: usize,
    clients: usize,
    per_client: usize,
    host_threads: usize,
    config: &ServeConfig,
    phases: &[PhaseResult],
    delta: &DeltaComparison,
    obs_json: Option<&str>,
) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"experiment\": \"serve_load\",\n");
    s.push_str(&format!("  \"sync\": {{ \"shim\": \"{}\" }},\n", rtse_sync::BACKEND));
    s.push_str(&format!(
        "  \"host\": {{ \"available_parallelism\": {host_threads}, \"rtse_threads_env\": {} }},\n",
        std::env::var("RTSE_THREADS").map_or_else(|_| "null".into(), |v| format!("\"{v}\""))
    ));
    s.push_str(&format!(
        "  \"config\": {{ \"roads\": {roads}, \"days\": {days}, \"clients\": {clients}, \
         \"queries_per_client\": {per_client}, \"batch_window_ms\": {:.3}, \
         \"queue_depth\": {}, \"deadline_ms\": {}, \"ttl_s\": {:.1}, \
         \"prewarm_slots\": {} }},\n",
        config.batch_window.as_secs_f64() * 1e3,
        config.queue_depth,
        config
            .default_deadline
            .map_or_else(|| "null".into(), |d| format!("{:.3}", d.as_secs_f64() * 1e3)),
        config.ttl.as_secs_f64(),
        config.prewarm_slots.len(),
    ));
    s.push_str(
        "  \"queue_wait_fix\": \"corr caches are prewarmed at deployment start \
         (ServeConfig.prewarm_slots); the first-round cold build no longer stacks on the \
         batch window, which previously pushed steady_mixed serve.queue_wait p99 to ~14 ms\",\n",
    );
    s.push_str(
        "  \"note\": \"1-core hosts serialize the pipeline: latency is honest, concurrency \
         speedups need a multicore host (EXPERIMENTS.md)\",\n",
    );
    s.push_str("  \"phases\": [\n");
    for (i, p) in phases.iter().enumerate() {
        let m = &p.metrics;
        s.push_str(&format!(
            "    {{ \"phase\": \"{}\", \"wall_ms\": {:.3}, \"submitted\": {}, \
             \"answered\": {}, \"shed\": {}, \"rejected\": {}, \"rounds\": {}, \
             \"rounds_per_100_queries\": {:.3}, \"cache_hit_rate\": {:.4}, \
             \"mean_batch_size\": {:.3}, \"throughput_qps\": {:.3}, \
             \"p50_ms\": {:.4}, \"p99_ms\": {:.4} }}",
            p.name,
            p.wall_ms,
            m.submitted,
            m.answered,
            m.shed,
            m.rejected,
            m.rounds,
            m.rounds_per_100(),
            m.cache_hit_rate(),
            m.mean_batch_size(),
            throughput_qps(p),
            p.p50_ms,
            p.p99_ms,
        ));
        if i + 1 < phases.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"delta\": {{ \"slot\": \"08:30\", \"rounds_per_policy\": {}, \"epsilon\": {}, \
         \"full_wall_ms\": {:.3}, \"delta_wall_ms\": {:.3}, \"speedup\": {:.3}, \
         \"delta_seeded_rounds\": {}, \"delta_skipped\": {}, \
         \"note\": \"single-road-change rounds forced with max_staleness=0; each query names \
         a different road so the OCS selection moves between rounds, and gsp.delta_skipped \
         counts the Eq. (18) relaxations the delta-policy rounds did not pay — wall clocks \
         are batch-window- and OCS-dominated at this scale, so the skipped-relaxation count \
         is the signal (see BENCH_offline.json delta_speedup for the isolated GSP timing)\" }},\n",
        delta.rounds_per_policy,
        delta.epsilon,
        delta.full_wall_ms,
        delta.delta_wall_ms,
        delta.full_wall_ms / delta.delta_wall_ms,
        delta.delta_seeded_rounds,
        delta.delta_skipped,
    ));
    s.push_str(&format!("  \"obs\": {}\n", obs_json.unwrap_or("null")));
    s.push_str("}\n");
    s
}
