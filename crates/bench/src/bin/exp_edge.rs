//! Fleet-scale load generation for the TCP front-end: worker *processes*
//! drive thousands of concurrent connections through `rtse-edge`'s wire
//! protocol and record per-request latency quantiles, typed shed rates,
//! and the slot-rollover latency cliff with and without the prewarm
//! thread, in `BENCH_edge.json`.
//!
//! Three phases, each a fresh edge deployment:
//!
//! * **steady tiers** — a connection-count sweep (up to 1024 in the full
//!   run) of no-deadline cache-friendly traffic; the queue is sized to
//!   the tier, so nothing sheds and p99 stays bounded.
//! * **overload tiers** — the same sweep against the *default* admission
//!   queue with millisecond wire deadlines and per-connection cold
//!   slots: everything that can't be served in time is shed with a
//!   typed reject (`QueueFull` / `DeadlineExceeded`), never an answer.
//!   Skipped under `--assert-no-shed` (the CI smoke mode), which
//!   instead asserts the steady tiers shed nothing.
//! * **rollover** — a client queries each slot the instant the slot
//!   boundary passes. Without prewarm the first query of every slot
//!   pays the cold Γ-build + round compute (the cliff); with the
//!   prewarm thread the next slot's cache is built during the lead
//!   window and the boundary query is a sub-millisecond cache hit.
//!
//! The parent re-execs itself (`--edge-worker`) for the load fleet, so
//! connections come from separate processes with separate descriptor
//! tables, like a real client fleet. Latency numbers on a 1-core host
//! measure the serialized pipeline — see EXPERIMENTS.md.
//!
//! ```sh
//! cargo run --release -p rtse-bench --bin exp_edge [--quick] [--assert-no-shed]
//! ```

use crowd_rtse_core::{CrowdRtse, OfflineArtifacts, OnlineConfig};
use rtse_bench::{query_slots, quick_mode, semi_syn_world};
use rtse_crowd::WorkerPool;
use rtse_data::SlotOfDay;
use rtse_edge::frame::{decode_frame, encode_frame, DecodeLimits, Frame, QueryFrame, RejectCode};
use rtse_edge::{edge_serve, ClientReply, EdgeClient, EdgeConfig, PrewarmConfig, SlotClock};
use rtse_eval::quantile;
use rtse_obs::ObsHandle;
use rtse_serve::{MetricsSnapshot, ServeConfig, ServeWorld};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const WORKER_PROCS: usize = 4;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("--edge-worker") {
        worker_main(&args[2..]);
        return;
    }
    parent_main();
}

// ───────────────────────────── parent ─────────────────────────────────

struct TierResult {
    name: &'static str,
    conns: usize,
    queries: u64,
    answers: u64,
    rejects: u64,
    queue_full: u64,
    deadline_rejects: u64,
    wall_ms: f64,
    p50_ms: f64,
    p99_ms: f64,
    edge: rtse_edge::EdgeMetricsSnapshot,
    serve: MetricsSnapshot,
}

impl TierResult {
    fn shed_rate(&self) -> f64 {
        self.rejects as f64 / (self.queries as f64).max(1.0)
    }
}

struct RolloverSide {
    p50_ms: f64,
    p99_ms: f64,
    max_ms: f64,
    cache_hits: usize,
    boundaries: usize,
}

fn parent_main() {
    // The load harness must measure the real primitives: a loom-backed
    // build permutes schedules under a model-checker scheduler and its
    // numbers would be meaningless here.
    assert_eq!(rtse_sync::BACKEND, "std", "exp_edge must run on the std sync backend");
    let quick = quick_mode();
    let assert_no_shed = std::env::args().any(|a| a == "--assert-no-shed");
    let (roads, days, steady_conns, per_conn): (usize, usize, Vec<usize>, usize) =
        if quick { (120, 4, vec![16, 64], 4) } else { (400, 10, vec![128, 512, 1024], 2) };
    let overload_conns: Vec<usize> = if quick { vec![64] } else { vec![256, 1024] };

    let world = semi_syn_world(roads, days, 2018);
    let obs = ObsHandle::fresh();
    let engine = CrowdRtse::new(&world.graph, OfflineArtifacts::from_model(world.model.clone()))
        .with_obs(obs.clone());
    let pool = WorkerPool::spawn(&world.graph, roads / 2, 0.5, (0.3, 1.0), 2018);
    let sworld = ServeWorld { workers: &pool, costs: &world.costs_c2, truth: &world.dataset };

    let mut tiers = Vec::new();
    for &conns in &steady_conns {
        tiers.push(steady_tier(&engine, &sworld, &obs, roads, conns, per_conn));
    }
    if !assert_no_shed {
        for &conns in &overload_conns {
            tiers.push(overload_tier(&engine, &sworld, &obs, roads, conns));
        }
    }

    let boundaries = if quick { 3 } else { 5 };
    let slot_len = if quick { Duration::from_millis(500) } else { Duration::from_secs(1) };
    let lead = if quick { Duration::from_millis(200) } else { Duration::from_millis(300) };
    let before =
        rollover_run(&engine, &sworld, &obs, roads, boundaries, slot_len, lead, false, 200);
    let after = rollover_run(&engine, &sworld, &obs, roads, boundaries, slot_len, lead, true, 240);

    println!(
        "{:<16} {:>6} {:>8} {:>8} {:>8} {:>10} {:>9} {:>9}",
        "tier", "conns", "queries", "answers", "rejects", "shed_rate", "p50 ms", "p99 ms"
    );
    for t in &tiers {
        println!(
            "{:<16} {:>6} {:>8} {:>8} {:>8} {:>10.4} {:>9.3} {:>9.3}",
            t.name,
            t.conns,
            t.queries,
            t.answers,
            t.rejects,
            t.shed_rate(),
            t.p50_ms,
            t.p99_ms
        );
    }
    println!(
        "rollover boundary p99: {:.3} ms cold -> {:.3} ms prewarmed ({} boundaries, {} of {} \
         prewarmed hits were cache hits)",
        before.p99_ms, after.p99_ms, boundaries, after.cache_hits, after.boundaries
    );

    let host_threads = std::thread::available_parallelism().map_or(0, |n| n.get());
    let obs_json = obs.registry().map(|r| r.snapshot_json());
    let json = render_json(
        roads,
        days,
        host_threads,
        &tiers,
        &before,
        &after,
        slot_len,
        lead,
        obs_json.as_deref(),
    );
    let out = "BENCH_edge.json";
    std::fs::write(out, json).expect("writing BENCH_edge.json");
    println!("wrote {out}");

    if assert_no_shed {
        for t in &tiers {
            assert_eq!(t.rejects, 0, "steady tier {} must shed nothing", t.conns);
            assert_eq!(
                t.answers,
                (t.conns * per_conn) as u64,
                "steady tier {} must answer everything",
                t.conns
            );
        }
        println!("assert-no-shed: ok ({} steady tier(s), 0 rejects)", tiers.len());
    }
}

/// No-deadline traffic over the prewarmed representative slots, with the
/// admission queue sized to the tier so nothing can shed.
fn steady_tier(
    engine: &CrowdRtse<'_>,
    sworld: &ServeWorld<'_>,
    obs: &ObsHandle,
    roads: usize,
    conns: usize,
    per_conn: usize,
) -> TierResult {
    let serve_cfg = ServeConfig {
        online: OnlineConfig { budget: 30, ..Default::default() },
        obs: obs.clone(),
        queue_depth: (conns * 2).max(256),
        prewarm_slots: query_slots(),
        ..ServeConfig::from_env()
    };
    let slots: Vec<u16> = query_slots().iter().map(|s| s.0).collect();
    run_fleet_tier("steady", engine, sworld, &serve_cfg, conns, per_conn, roads, 0, &slots)
}

/// Millisecond wire deadlines against the default admission queue, each
/// connection on its own cold slot: everything the 1-core pipeline cannot
/// serve in time must come back as a typed reject.
fn overload_tier(
    engine: &CrowdRtse<'_>,
    sworld: &ServeWorld<'_>,
    obs: &ObsHandle,
    roads: usize,
    conns: usize,
) -> TierResult {
    let serve_cfg = ServeConfig {
        online: OnlineConfig { budget: 30, ..Default::default() },
        obs: obs.clone(),
        ..ServeConfig::from_env()
    };
    let slots: Vec<u16> = (0..128u16).map(|i| 10 + i).collect();
    run_fleet_tier("overload", engine, sworld, &serve_cfg, conns, 1, roads, 2, &slots)
}

#[allow(clippy::too_many_arguments)]
fn run_fleet_tier(
    name: &'static str,
    engine: &CrowdRtse<'_>,
    sworld: &ServeWorld<'_>,
    serve_cfg: &ServeConfig,
    conns: usize,
    per_conn: usize,
    roads: usize,
    deadline_ms: u32,
    slots: &[u16],
) -> TierResult {
    let edge_cfg = EdgeConfig { shards: 4, obs: serve_cfg.obs.clone(), ..EdgeConfig::from_env() };
    let start = Instant::now();
    let outcome = edge_serve(engine, sworld, serve_cfg, &edge_cfg, |edge| {
        spawn_fleet(edge.addr(), conns, per_conn, roads, deadline_ms, slots)
    })
    .expect("edge deploys");
    let fleet = outcome.value;
    let mut lats = fleet.lat_ms;
    lats.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let (p50_ms, p99_ms) =
        if lats.is_empty() { (0.0, 0.0) } else { (quantile(&lats, 0.5), quantile(&lats, 0.99)) };
    TierResult {
        name,
        conns,
        queries: (conns * per_conn) as u64,
        answers: fleet.answers,
        rejects: fleet.rejects,
        queue_full: fleet.queue_full,
        deadline_rejects: fleet.deadline_rejects,
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        p50_ms,
        p99_ms,
        edge: outcome.edge_metrics,
        serve: outcome.serve_metrics,
    }
}

struct FleetResult {
    answers: u64,
    rejects: u64,
    queue_full: u64,
    deadline_rejects: u64,
    lat_ms: Vec<f64>,
}

/// Re-execs this binary as `--edge-worker` processes, splits the
/// connection count across them, and aggregates their RESULT/LATS lines.
fn spawn_fleet(
    addr: SocketAddr,
    conns: usize,
    per_conn: usize,
    roads: usize,
    deadline_ms: u32,
    slots: &[u16],
) -> FleetResult {
    let procs = WORKER_PROCS.min(conns);
    let per_proc = conns / procs;
    let exe = std::env::current_exe().expect("current_exe");
    let slots_csv: String = slots.iter().map(u16::to_string).collect::<Vec<_>>().join(",");
    let children: Vec<_> = (0..procs)
        .map(|p| {
            let extra = if p == procs - 1 { conns - per_proc * procs } else { 0 };
            Command::new(&exe)
                .arg("--edge-worker")
                .arg(addr.to_string())
                .arg((p * per_proc).to_string())
                .arg((per_proc + extra).to_string())
                .arg(per_conn.to_string())
                .arg(roads.to_string())
                .arg(deadline_ms.to_string())
                .arg(&slots_csv)
                .stdout(Stdio::piped())
                .spawn()
                .expect("spawn worker process")
        })
        .collect();

    let mut out = FleetResult {
        answers: 0,
        rejects: 0,
        queue_full: 0,
        deadline_rejects: 0,
        lat_ms: Vec::new(),
    };
    for child in children {
        let result = child.wait_with_output().expect("worker output");
        assert!(result.status.success(), "worker process failed: {:?}", result.status);
        let stdout = String::from_utf8(result.stdout).expect("worker stdout is utf8");
        for line in stdout.lines() {
            if let Some(rest) = line.strip_prefix("RESULT ") {
                for kv in rest.split_whitespace() {
                    let (k, v) = kv.split_once('=').expect("k=v");
                    let v: u64 = v.parse().expect("count");
                    match k {
                        "answers" => out.answers += v,
                        "rejects" => out.rejects += v,
                        "queue_full" => out.queue_full += v,
                        "deadline" => out.deadline_rejects += v,
                        _ => panic!("unknown RESULT key {k}"),
                    }
                }
            } else if let Some(rest) = line.strip_prefix("LATS ") {
                out.lat_ms.extend(
                    rest.split(',')
                        .filter(|s| !s.is_empty())
                        .map(|s| s.parse::<u64>().expect("latency us") as f64 / 1e3),
                );
            }
        }
    }
    out
}

/// One edge deployment, one client, `boundaries` slot rollovers: the
/// client fires a query for the new slot the instant each boundary
/// passes and records the answer latency.
#[allow(clippy::too_many_arguments)]
fn rollover_run(
    engine: &CrowdRtse<'_>,
    sworld: &ServeWorld<'_>,
    obs: &ObsHandle,
    roads: usize,
    boundaries: usize,
    slot_len: Duration,
    lead: Duration,
    prewarm: bool,
    base_slot: u16,
) -> RolloverSide {
    let serve_cfg = ServeConfig {
        online: OnlineConfig { budget: 30, ..Default::default() },
        obs: obs.clone(),
        ..ServeConfig::from_env()
    };
    let prewarm_cfg = PrewarmConfig { slot_len, lead, base_slot: SlotOfDay(base_slot) };
    let edge_cfg = EdgeConfig {
        shards: 1,
        obs: obs.clone(),
        prewarm: prewarm.then(|| prewarm_cfg.clone()),
        ..EdgeConfig::from_env()
    };
    let outcome = edge_serve(engine, sworld, &serve_cfg, &edge_cfg, |edge| {
        // The warmed run reads the server's own clock so the client and
        // the prewarm thread agree on boundaries; the cold run keeps its
        // own identically-shaped clock.
        let clock = edge.clock().unwrap_or_else(|| SlotClock::new(Instant::now(), &prewarm_cfg));
        let mut client = EdgeClient::connect(edge.addr()).expect("connect");
        let mut lat_ms = Vec::with_capacity(boundaries);
        let mut cache_hits = 0usize;
        for b in 0..boundaries {
            std::thread::sleep(clock.until_next(Instant::now()) + Duration::from_millis(2));
            let now = Instant::now();
            let slot = clock.slot_at(now);
            let roads_q: Vec<u32> = (0..4u32).map(|k| (b as u32 * 7 + k) % roads as u32).collect();
            let reply = client.query(roads_q, slot.0, None, None).expect("boundary reply");
            lat_ms.push(now.elapsed().as_secs_f64() * 1e3);
            match reply {
                ClientReply::Answer(a) => cache_hits += usize::from(a.cache_hit),
                ClientReply::Reject(r) => panic!("boundary query rejected: {:?}", r.code),
            }
        }
        (lat_ms, cache_hits)
    })
    .expect("edge deploys");
    let (mut lat_ms, cache_hits) = outcome.value;
    lat_ms.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    RolloverSide {
        p50_ms: quantile(&lat_ms, 0.5),
        p99_ms: quantile(&lat_ms, 0.99),
        max_ms: lat_ms.last().copied().unwrap_or(0.0),
        cache_hits,
        boundaries,
    }
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    roads: usize,
    days: usize,
    host_threads: usize,
    tiers: &[TierResult],
    before: &RolloverSide,
    after: &RolloverSide,
    slot_len: Duration,
    lead: Duration,
    obs_json: Option<&str>,
) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"experiment\": \"edge_load\",\n");
    s.push_str(&format!("  \"sync\": {{ \"shim\": \"{}\" }},\n", rtse_sync::BACKEND));
    s.push_str(&format!(
        "  \"host\": {{ \"available_parallelism\": {host_threads}, \"rtse_threads_env\": {} }},\n",
        std::env::var("RTSE_THREADS").map_or_else(|_| "null".into(), |v| format!("\"{v}\""))
    ));
    s.push_str(&format!(
        "  \"config\": {{ \"roads\": {roads}, \"days\": {days}, \"worker_processes\": {}, \
         \"wire\": {{ \"magic\": \"0x{:08X}\", \"version\": {} }} }},\n",
        WORKER_PROCS,
        rtse_edge::MAGIC,
        rtse_edge::VERSION,
    ));
    s.push_str(
        "  \"note\": \"1-core hosts serialize the pipeline: latency is honest, concurrency \
         speedups need a multicore host (EXPERIMENTS.md). Overload sheds are typed rejects \
         (QueueFull/DeadlineExceeded) delivered on the wire, never silent drops\",\n",
    );
    s.push_str("  \"tiers\": [\n");
    for (i, t) in tiers.iter().enumerate() {
        s.push_str(&format!(
            "    {{ \"tier\": \"{}\", \"connections\": {}, \"queries\": {}, \"answers\": {}, \
             \"rejects\": {}, \"queue_full\": {}, \"deadline_rejects\": {}, \
             \"shed_rate\": {:.4}, \"wall_ms\": {:.3}, \"p50_ms\": {:.4}, \"p99_ms\": {:.4}, \
             \"edge\": {{ \"accepted\": {}, \"closed\": {}, \"protocol_errors\": {}, \
             \"bounds_rejects\": {} }}, \
             \"serve\": {{ \"submitted\": {}, \"answered\": {}, \"shed\": {}, \"rejected\": {}, \
             \"rounds\": {} }} }}",
            t.name,
            t.conns,
            t.queries,
            t.answers,
            t.rejects,
            t.queue_full,
            t.deadline_rejects,
            t.shed_rate(),
            t.wall_ms,
            t.p50_ms,
            t.p99_ms,
            t.edge.accepted,
            t.edge.closed,
            t.edge.protocol_errors,
            t.edge.bounds_rejects,
            t.serve.submitted,
            t.serve.answered,
            t.serve.shed,
            t.serve.rejected,
            t.serve.rounds,
        ));
        if i + 1 < tiers.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"rollover\": {{ \"slot_len_ms\": {:.1}, \"lead_ms\": {:.1}, \"boundaries\": {}, \
         \"before\": {{ \"p50_ms\": {:.4}, \"p99_ms\": {:.4}, \"max_ms\": {:.4}, \
         \"cache_hits\": {} }}, \
         \"after\": {{ \"p50_ms\": {:.4}, \"p99_ms\": {:.4}, \"max_ms\": {:.4}, \
         \"cache_hits\": {} }} }},\n",
        slot_len.as_secs_f64() * 1e3,
        lead.as_secs_f64() * 1e3,
        before.boundaries,
        before.p50_ms,
        before.p99_ms,
        before.max_ms,
        before.cache_hits,
        after.p50_ms,
        after.p99_ms,
        after.max_ms,
        after.cache_hits,
    ));
    s.push_str(&format!("  \"obs\": {}\n", obs_json.unwrap_or("null")));
    s.push_str("}\n");
    s
}

// ───────────────────────────── worker ─────────────────────────────────

struct WorkerConn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    global: usize,
    sent: usize,
    sent_at: Instant,
    awaiting: bool,
    remaining: usize,
}

/// One load process: `conns` nonblocking connections multiplexed
/// round-robin, one outstanding request per connection, request-response
/// paced. Prints aggregate RESULT and LATS lines for the parent.
fn worker_main(args: &[String]) {
    let addr: SocketAddr = args[0].parse().expect("addr");
    let base: usize = args[1].parse().expect("base");
    let conns: usize = args[2].parse().expect("conns");
    let per_conn: usize = args[3].parse().expect("per_conn");
    let roads: usize = args[4].parse().expect("roads");
    let deadline_ms: u32 = args[5].parse().expect("deadline_ms");
    let slots: Vec<u16> = args[6].split(',').map(|s| s.parse().expect("slot")).collect();
    let limits = DecodeLimits::for_max_roads(64);

    let mut fleet: Vec<WorkerConn> = (0..conns)
        .map(|i| {
            let stream = TcpStream::connect(addr).expect("connect");
            stream.set_nodelay(true).expect("nodelay");
            stream.set_nonblocking(true).expect("nonblocking");
            WorkerConn {
                stream,
                rbuf: Vec::new(),
                global: base + i,
                sent: 0,
                sent_at: Instant::now(),
                awaiting: false,
                remaining: per_conn,
            }
        })
        .collect();

    let mut answers = 0u64;
    let mut rejects = 0u64;
    let mut queue_full = 0u64;
    let mut deadline_rejects = 0u64;
    let mut lat_us: Vec<u64> = Vec::with_capacity(conns * per_conn);
    let mut chunk = [0u8; 4096];

    loop {
        let mut progressed = false;
        let mut live = false;
        for conn in &mut fleet {
            if conn.remaining == 0 && !conn.awaiting {
                continue;
            }
            live = true;
            if !conn.awaiting {
                send_query(conn, roads, deadline_ms, &slots);
                progressed = true;
                continue;
            }
            loop {
                match conn.stream.read(&mut chunk) {
                    Ok(0) => panic!("server closed mid-request (conn {})", conn.global),
                    Ok(n) => conn.rbuf.extend_from_slice(&chunk[..n]),
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(e) => panic!("read (conn {}): {e}", conn.global),
                }
            }
            while let Some((frame, used)) =
                decode_frame(&conn.rbuf, limits).expect("server speaks the protocol")
            {
                conn.rbuf.drain(..used);
                progressed = true;
                match frame {
                    Frame::Answer(_) => answers += 1,
                    Frame::Reject(r) => {
                        rejects += 1;
                        match r.code {
                            RejectCode::QueueFull => queue_full += 1,
                            RejectCode::DeadlineExceeded => deadline_rejects += 1,
                            _ => {}
                        }
                    }
                    other => panic!("unexpected frame mid-run: {other:?}"),
                }
                lat_us.push(u64::try_from(conn.sent_at.elapsed().as_micros()).unwrap_or(u64::MAX));
                conn.awaiting = false;
            }
        }
        if !live {
            break;
        }
        if !progressed {
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    println!(
        "RESULT answers={answers} rejects={rejects} queue_full={queue_full} \
         deadline={deadline_rejects}"
    );
    let csv: String = lat_us.iter().map(u64::to_string).collect::<Vec<_>>().join(",");
    println!("LATS {csv}");
}

fn send_query(conn: &mut WorkerConn, roads: usize, deadline_ms: u32, slots: &[u16]) {
    let g = conn.global as u32;
    let q = conn.sent as u32;
    let frame = Frame::Query(QueryFrame {
        request_id: ((conn.global as u64) << 16) | conn.sent as u64,
        deadline_ms: (deadline_ms > 0).then_some(deadline_ms),
        max_staleness_ms: None,
        slot: slots[conn.global % slots.len()],
        roads: (0..4u32).map(|k| (g * 31 + q * 17 + k) % roads as u32).collect(),
    });
    let mut wire = Vec::new();
    encode_frame(&frame, &mut wire);
    let mut off = 0usize;
    while off < wire.len() {
        match conn.stream.write(&wire[off..]) {
            Ok(n) => off += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::yield_now(),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => panic!("write (conn {}): {e}", conn.global),
        }
    }
    conn.sent += 1;
    conn.remaining -= 1;
    conn.sent_at = Instant::now();
    conn.awaiting = true;
}
