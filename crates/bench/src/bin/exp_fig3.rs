//! Fig. 3 — estimation quality of GSP vs LASSO vs GRMC vs Per.
//!
//! * Columns a/b/c: MAPE (row 1), FER (row 2) per budget with the
//!   crowdsourced roads selected by Hybrid-Greedy / Objective-Greedy /
//!   Random; DAPE (row 3) at K = 30.
//! * Column d: GSP quality under the three selection strategies.
//! * Column e: effect of the redundancy threshold θ (1 vs the tuned 0.92).
//!
//! Expected shapes (paper): GSP best on MAPE/FER, with the largest margin
//! at K = 30; LASSO's MAPE approaches GSP at large K while its FER gap
//! persists; Hybrid selection beats OBJ beats Random; tuned θ helps at
//! small K only.
//!
//! ```sh
//! cargo run --release -p rtse-bench --bin exp_fig3 [--quick]
//! ```

use crowd_rtse_core::GspEstimator;
use rtse_baselines::{EstimationContext, Estimator, Grmc, LassoEstimator, Per};
use rtse_bench::{
    ground_truth_observations, quick_mode, scale, semi_syn_world, BUDGETS_SEMI_SYN, THETA_TUNED,
};
use rtse_data::SlotOfDay;
use rtse_eval::{dape_histogram, results_dir_from_args, ErrorReport, Table};
use rtse_graph::RoadId;
use rtse_ocs::{hybrid_greedy, objective_greedy, random_select, OcsInstance, Selection};
use rtse_rtf::{CorrelationTable, PathCorrelation};

struct Panel {
    mape: Table,
    fer: Table,
}

fn main() {
    let (roads, days) = scale();
    let world = semi_syn_world(roads, days, 2018);
    let slots =
        if quick_mode() { vec![SlotOfDay::from_hm(8, 30)] } else { rtse_bench::query_slots() };
    let queried = world.queried_51.clone();
    let methods: [&str; 4] = ["GSP", "LASSO", "GRMC", "Per"];
    let header: Vec<&str> = ["K", "GSP", "LASSO", "GRMC", "Per"].to_vec();

    let strategies: [(&str, StrategyFn); 3] =
        [("Hybrid", select_hybrid), ("OBJ", select_obj), ("Rand", select_rand)];

    let mut panels: Vec<Panel> = Vec::new();
    let mut gsp_by_strategy: Vec<(String, Vec<f64>, Vec<f64>)> = Vec::new();
    for (sname, select) in strategies {
        let mut panel = Panel {
            mape: Table::new(format!("Fig. 3 MAPE — selection: {sname}"), &header),
            fer: Table::new(format!("Fig. 3 FER — selection: {sname}"), &header),
        };
        let mut gsp_mape = Vec::new();
        let mut gsp_fer = Vec::new();
        for &budget in &BUDGETS_SEMI_SYN {
            let reports = evaluate(&world, &queried, &slots, budget, THETA_TUNED, select);
            panel.mape.push_numeric_row(
                budget.to_string(),
                &reports.iter().map(|r| r.0).collect::<Vec<_>>(),
            );
            panel.fer.push_numeric_row(
                budget.to_string(),
                &reports.iter().map(|r| r.1).collect::<Vec<_>>(),
            );
            gsp_mape.push(reports[0].0);
            gsp_fer.push(reports[0].1);
            // DAPE at the smallest budget, Hybrid panel only (row 3 of the
            // figure).
            if budget == BUDGETS_SEMI_SYN[0] && sname == "Hybrid" {
                print_dape(&world, &queried, &slots, budget, select, &methods);
            }
        }
        gsp_by_strategy.push((sname.to_string(), gsp_mape, gsp_fer));
        panels.push(panel);
    }
    let results = results_dir_from_args("fig3");
    for (p, sname) in panels.iter().zip(["hybrid", "obj", "rand"]) {
        println!("{}", p.mape.render());
        println!("{}", p.fer.render());
        if let Some(dir) = &results {
            let _ = dir.write_table(&format!("mape_{sname}"), &p.mape);
            let _ = dir.write_table(&format!("fer_{sname}"), &p.fer);
        }
    }

    // Column d: GSP quality per selection strategy.
    let mut d = Table::new(
        "Fig. 3 (d) — GSP quality by selection strategy",
        &["K", "Hybrid MAPE", "OBJ MAPE", "Rand MAPE", "Hybrid FER", "OBJ FER", "Rand FER"],
    );
    for (i, &budget) in BUDGETS_SEMI_SYN.iter().enumerate() {
        d.push_numeric_row(
            budget.to_string(),
            &[
                gsp_by_strategy[0].1[i],
                gsp_by_strategy[1].1[i],
                gsp_by_strategy[2].1[i],
                gsp_by_strategy[0].2[i],
                gsp_by_strategy[1].2[i],
                gsp_by_strategy[2].2[i],
            ],
        );
    }
    println!("{}", d.render());
    if let Some(dir) = &results {
        let _ = dir.write_table("gsp_by_strategy", &d);
    }

    // Column e: redundancy-threshold sweep (GSP with Hybrid selection).
    // The paper fine-tunes θ on its data and lands on 0.92; the analogous
    // tuned value for a different correlation structure differs, so the
    // sweep shows several candidates next to θ = 1 (constraint off).
    let mut e = Table::new(
        "Fig. 3 (e) — redundancy threshold effect (GSP MAPE, Hybrid selection)",
        &["K", "θ=0.5", "θ=0.7", "θ=0.92", "θ=1"],
    );
    for &budget in &BUDGETS_SEMI_SYN {
        let row: Vec<f64> = [0.5, 0.7, THETA_TUNED, 1.0]
            .iter()
            .map(|&theta| evaluate(&world, &queried, &slots, budget, theta, select_hybrid)[0].0)
            .collect();
        e.push_numeric_row(budget.to_string(), &row);
    }
    println!("{}", e.render());
    if let Some(dir) = &results {
        let _ = dir.write_table("theta_sweep", &e);
    }
    println!(
        "Shape checks (see EXPERIMENTS.md for paper-vs-measured): GSP column-minimal\n\
         with the largest margin at K=30; LASSO MAPE approaches GSP at K=150 while\n\
         its FER lags under greedy selections; greedy selections crush Random in (d).\n\
         Known deviation: OBJ edges out Hybrid slightly here (discussed in\n\
         EXPERIMENTS.md), and θ < 1 is near-neutral on this correlation structure."
    );
}

type StrategyFn = fn(&OcsInstance<'_>) -> Selection;

fn select_hybrid(inst: &OcsInstance<'_>) -> Selection {
    hybrid_greedy(inst)
}
fn select_obj(inst: &OcsInstance<'_>) -> Selection {
    objective_greedy(inst)
}
fn select_rand(inst: &OcsInstance<'_>) -> Selection {
    random_select(inst, 7)
}

/// Runs one configuration and returns `(MAPE, FER)` per method, averaged
/// over the query slots.
fn evaluate(
    world: &rtse_bench::SemiSynWorld,
    queried: &[RoadId],
    slots: &[SlotOfDay],
    budget: u32,
    theta: f64,
    select: StrategyFn,
) -> Vec<(f64, f64)> {
    let mut sums = vec![(0.0, 0.0); 4];
    for &slot in slots {
        let reports = run_methods(world, queried, slot, budget, theta, select);
        for (s, r) in sums.iter_mut().zip(reports.iter()) {
            s.0 += r.mape / slots.len() as f64;
            s.1 += r.fer / slots.len() as f64;
        }
    }
    sums
}

fn run_methods(
    world: &rtse_bench::SemiSynWorld,
    queried: &[RoadId],
    slot: SlotOfDay,
    budget: u32,
    theta: f64,
    select: StrategyFn,
) -> Vec<ErrorReport> {
    let corr =
        CorrelationTable::build(&world.graph, &world.model, slot, PathCorrelation::MaxProduct);
    let params = world.model.slot(slot);
    let inst = OcsInstance {
        sigma: &params.sigma,
        corr: &corr,
        queried,
        candidates: &world.all_roads,
        costs: &world.costs_c1,
        budget,
        theta,
    };
    let selection = select(&inst);
    let truth = world.dataset.ground_truth_snapshot(slot);
    let observations = ground_truth_observations(&selection, truth);
    let ctx = EstimationContext {
        graph: &world.graph,
        model: &world.model,
        history: &world.dataset.history,
        slot,
    };
    let estimates: [Vec<f64>; 4] = [
        GspEstimator::default().estimate(&ctx, &observations),
        LassoEstimator::for_targets(queried.to_vec()).estimate(&ctx, &observations),
        Grmc::default().estimate(&ctx, &observations),
        Per.estimate(&ctx, &observations),
    ];
    estimates.iter().map(|est| ErrorReport::evaluate_default(est, truth, queried)).collect()
}

fn print_dape(
    world: &rtse_bench::SemiSynWorld,
    queried: &[RoadId],
    slots: &[SlotOfDay],
    budget: u32,
    select: StrategyFn,
    methods: &[&str; 4],
) {
    let mut per_method_apes: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for &slot in slots {
        let reports = run_methods(world, queried, slot, budget, THETA_TUNED, select);
        for (acc, r) in per_method_apes.iter_mut().zip(reports.iter()) {
            acc.extend_from_slice(&r.apes);
        }
    }
    let mut t = Table::new(
        format!("Fig. 3 row 3 — DAPE at K = {budget} (fraction of cases per APE bin)"),
        &["APE bin", "GSP", "LASSO", "GRMC", "Per"],
    );
    let hists: Vec<_> = per_method_apes.iter().map(|apes| dape_histogram(apes, 0.5, 5)).collect();
    for bin in 0..6 {
        let (lo, hi) = hists[0].bin_bounds(bin);
        let label =
            if hi.is_infinite() { format!(">= {lo:.1}") } else { format!("[{lo:.1}, {hi:.1})") };
        let mut row = vec![label];
        for h in &hists {
            row.push(format!("{:.3}", h.fractions()[bin]));
        }
        t.push_row(row);
    }
    let _ = methods;
    println!("{}", t.render());
}
