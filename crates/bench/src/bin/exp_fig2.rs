//! Fig. 2 — OCS objective value (VO) vs budget for Ratio-Greedy,
//! Objective-Greedy and Hybrid-Greedy, under cost ranges C1 = U(1,10)
//! (panels a/c) and C2 = U(1,5) (panels b/d). Panels c/d report the VO
//! ratios Ratio/Hybrid and OBJ/Hybrid.
//!
//! Expected shape (paper): VO grows monotonically with K; Hybrid is the
//! per-K maximum; the Ratio/Hybrid gap closes as K grows and is larger
//! under the wide cost range C1.
//!
//! ```sh
//! cargo run --release -p rtse-bench --bin exp_fig2 [--quick]
//! ```

use rtse_bench::{scale, semi_syn_world, BUDGETS_SEMI_SYN, THETA_TUNED};
use rtse_data::SlotOfDay;
use rtse_eval::{results_dir_from_args, Table};
use rtse_ocs::{hybrid_greedy, objective_greedy, ratio_greedy, OcsInstance};
use rtse_rtf::{CorrelationTable, PathCorrelation};

fn main() {
    let (roads, days) = scale();
    let results = results_dir_from_args("fig2");
    let world = semi_syn_world(roads, days, 2018);
    let slot = SlotOfDay::from_hm(8, 30);
    let corr =
        CorrelationTable::build(&world.graph, &world.model, slot, PathCorrelation::MaxProduct);
    let params = world.model.slot(slot);

    for (panel, costs, label) in
        [("a/c", &world.costs_c1, "C1 = U(1,10)"), ("b/d", &world.costs_c2, "C2 = U(1,5)")]
    {
        let mut vo = Table::new(
            format!("Fig. 2 ({panel}) — VO vs budget, costs {label}, theta = {THETA_TUNED}"),
            &["K", "Ratio", "OBJ", "Hybrid", "Ratio/Hybrid", "OBJ/Hybrid"],
        );
        for &budget in &BUDGETS_SEMI_SYN {
            let inst = OcsInstance {
                sigma: &params.sigma,
                corr: &corr,
                queried: &world.queried_51,
                candidates: &world.all_roads,
                costs,
                budget,
                theta: THETA_TUNED,
            };
            let ratio = ratio_greedy(&inst);
            let obj = objective_greedy(&inst);
            let hybrid = hybrid_greedy(&inst);
            assert!(hybrid.value >= ratio.value - 1e-9);
            assert!(hybrid.value >= obj.value - 1e-9);
            vo.push_row(vec![
                budget.to_string(),
                format!("{:.3}", ratio.value),
                format!("{:.3}", obj.value),
                format!("{:.3}", hybrid.value),
                format!("{:.4}", ratio.value / hybrid.value),
                format!("{:.4}", obj.value / hybrid.value),
            ]);
        }
        println!("{}", vo.render());
        if let Some(dir) = &results {
            let name = if panel == "a/c" { "vo_costs_c1" } else { "vo_costs_c2" };
            match dir.write_table(name, &vo) {
                Ok(path) => println!("(csv written to {})", path.display()),
                Err(e) => eprintln!("warning: csv write failed: {e}"),
            }
        }
    }
    println!(
        "Shape check: VO monotone in K; Hybrid = per-K max; Ratio/Hybrid -> 1 as K grows,\n\
         with a wider gap under C1 than C2 (paper Fig. 2)."
    );
}
