//! Ablation — Eq. (8) vs Eq. (9): max-product path correlation against the
//! paper's literal reciprocal-sum path (see DESIGN.md).
//!
//! Compares (1) how often the two semantics disagree on non-adjacent
//! pairs, (2) the OCS objective values achieved under each, and (3) the
//! downstream GSP estimation quality.
//!
//! ```sh
//! cargo run --release -p rtse-bench --bin exp_ablation [--quick]
//! ```

use crowd_rtse_core::GspEstimator;
use rtse_baselines::{EstimationContext, Estimator};
use rtse_bench::{ground_truth_observations, scale, semi_syn_world, THETA_TUNED};
use rtse_data::SlotOfDay;
use rtse_eval::{ErrorReport, Table};
use rtse_ocs::{hybrid_greedy, OcsInstance};
use rtse_rtf::{CorrelationTable, PathCorrelation};

fn main() {
    let (roads, days) = scale();
    let world = semi_syn_world(roads, days, 2018);
    let slot = SlotOfDay::from_hm(8, 30);
    let mp = CorrelationTable::build(&world.graph, &world.model, slot, PathCorrelation::MaxProduct);
    let rs =
        CorrelationTable::build(&world.graph, &world.model, slot, PathCorrelation::ReciprocalSum);

    // 1. Disagreement statistics over non-adjacent pairs.
    let mut pairs = 0u64;
    let mut differing = 0u64;
    let mut max_gap = 0.0_f64;
    for a in world.graph.road_ids() {
        for b in world.graph.road_ids() {
            if a >= b || world.graph.are_adjacent(a, b) {
                continue;
            }
            pairs += 1;
            let gap = mp.corr(a, b) - rs.corr(a, b);
            assert!(gap >= -1e-12, "MaxProduct must dominate: {a} {b} gap {gap}");
            if gap > 1e-9 {
                differing += 1;
            }
            max_gap = max_gap.max(gap);
        }
    }
    println!(
        "non-adjacent pairs: {pairs}; semantics disagree on {differing} \
         ({:.1}%), max correlation gap {max_gap:.4}\n",
        100.0 * differing as f64 / pairs as f64
    );

    // 2/3. OCS objective and GSP quality under each semantics.
    let params = world.model.slot(slot);
    let truth = world.dataset.ground_truth_snapshot(slot);
    let ctx = EstimationContext {
        graph: &world.graph,
        model: &world.model,
        history: &world.dataset.history,
        slot,
    };
    let mut t = Table::new(
        "Eq. (8) MaxProduct vs Eq. (9) ReciprocalSum — OCS value and GSP quality",
        &["K", "VO (max-prod)", "VO (recip)", "MAPE (max-prod)", "MAPE (recip)"],
    );
    for budget in [30u32, 90, 150] {
        let mut row = vec![budget.to_string()];
        let mut mapes = Vec::new();
        for table in [&mp, &rs] {
            let inst = OcsInstance {
                sigma: &params.sigma,
                corr: table,
                queried: &world.queried_51,
                candidates: &world.all_roads,
                costs: &world.costs_c1,
                budget,
                theta: THETA_TUNED,
            };
            let sel = hybrid_greedy(&inst);
            row.push(format!("{:.3}", sel.value));
            let observations = ground_truth_observations(&sel, truth);
            let est = GspEstimator::default().estimate(&ctx, &observations);
            mapes.push(ErrorReport::evaluate_default(&est, truth, &world.queried_51).mape);
        }
        row.push(format!("{:.4}", mapes[0]));
        row.push(format!("{:.4}", mapes[1]));
        t.push_row(row);
    }
    println!("{}", t.render());
    println!(
        "Reading guide: the VO columns are not directly comparable (different Γ),\n\
         but the MAPE columns are — they measure the same downstream task."
    );
}
