//! Topology robustness (extension, not in the paper): does CrowdRTSE's
//! advantage over the periodic baseline survive on network shapes other
//! than a road network?
//!
//! Runs the same pipeline on a road-like network, a 2D grid, a
//! small-world ring (Watts–Strogatz) and a hub-dominated scale-free graph
//! (Barabási–Albert), each with the same number of roads, and reports
//! GSP-vs-Per quality at a fixed budget.
//!
//! ```sh
//! cargo run --release -p rtse-bench --bin exp_topology [--quick]
//! ```

use crowd_rtse_core::GspEstimator;
use rtse_baselines::{EstimationContext, Estimator, Per};
use rtse_bench::{ground_truth_observations, quick_mode, THETA_TUNED};
use rtse_crowd::{uniform_costs, CostRange};
use rtse_data::{SlotOfDay, SynthConfig, TrafficGenerator};
use rtse_eval::{ErrorReport, Table};
use rtse_graph::{generators, metrics, Graph, RoadId};
use rtse_ocs::{hybrid_greedy, OcsInstance};
use rtse_rtf::{moment_estimate, CorrelationTable, PathCorrelation};

fn main() {
    let n = if quick_mode() { 120 } else { 400 };
    let days = if quick_mode() { 8 } else { 20 };
    let budget = 40u32;
    let seed = 2018u64;

    let side = (n as f64).sqrt().round() as usize;
    let topologies: Vec<(&str, Graph)> = vec![
        ("road-like", generators::hong_kong_like(n, seed)),
        ("grid", generators::grid(side, side)),
        ("small-world", generators::watts_strogatz(n, 2, 0.15, seed)),
        ("scale-free", generators::barabasi_albert(n, 2, seed)),
    ];

    let mut t = Table::new(
        format!("topology robustness — GSP vs Per at K = {budget}"),
        &["topology", "|R|", "avg deg", "diameter", "GSP MAPE", "Per MAPE", "improvement"],
    );
    for (name, graph) in &topologies {
        let dataset = TrafficGenerator::new(
            graph,
            SynthConfig {
                days,
                seed,
                incidents_per_day: 6.0,
                weak_periodicity_fraction: 0.3,
                weak_periodicity_scale: 5.0,
                ..SynthConfig::default()
            },
        )
        .generate();
        let model = moment_estimate(graph, &dataset.history);
        let slot = SlotOfDay::from_hm(8, 30);
        let corr = CorrelationTable::build(graph, &model, slot, PathCorrelation::MaxProduct);
        let params = model.slot(slot);
        let queried: Vec<RoadId> = graph.road_ids().collect();
        let all: Vec<RoadId> = graph.road_ids().collect();
        let costs = uniform_costs(graph.num_roads(), CostRange::C2, seed);
        let inst = OcsInstance {
            sigma: &params.sigma,
            corr: &corr,
            queried: &queried,
            candidates: &all,
            costs: &costs,
            budget,
            theta: THETA_TUNED,
        };
        let selection = hybrid_greedy(&inst);
        let truth = dataset.ground_truth_snapshot(slot);
        let observations = ground_truth_observations(&selection, truth);
        let ctx = EstimationContext { graph, model: &model, history: &dataset.history, slot };
        let gsp = GspEstimator::default().estimate(&ctx, &observations);
        let per = Per.estimate(&ctx, &observations);
        let gsp_rep = ErrorReport::evaluate_default(&gsp, truth, &queried);
        let per_rep = ErrorReport::evaluate_default(&per, truth, &queried);
        t.push_row(vec![
            name.to_string(),
            graph.num_roads().to_string(),
            format!("{:.2}", metrics::average_degree(graph)),
            metrics::diameter_estimate(graph, 8).to_string(),
            format!("{:.4}", gsp_rep.mape),
            format!("{:.4}", per_rep.mape),
            format!("{:.1}%", 100.0 * (1.0 - gsp_rep.mape / per_rep.mape)),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Reading guide: the GSP advantage should hold on every topology; it is\n\
         typically largest where the diameter is small relative to the budget\n\
         (probes reach everything within a few hops)."
    );
}
