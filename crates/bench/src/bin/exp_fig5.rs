//! Fig. 5 — RTF offline training scalability.
//!
//! Trains the RTF with Alg. 1 verbatim (vanilla gradient ascent, λ = 0.1,
//! random init) on connected sub-networks of 150–600 roads, measuring the
//! iterations until the maximum `{μ}_R` gradient falls below the
//! threshold — exactly the paper's Fig. 5 protocol.
//!
//! Expected shape: iterations grow roughly linearly with network size.
//!
//! ```sh
//! cargo run --release -p rtse-bench --bin exp_fig5 [--quick]
//! ```

use rtse_bench::{quick_mode, semi_syn_world};
use rtse_data::SlotOfDay;
use rtse_eval::{results_dir_from_args, time_it, Table};
use rtse_graph::components::grow_connected_subset;
use rtse_graph::RoadId;
use rtse_rtf::{InitStrategy, RtfTrainer, UpdateMode};

fn main() {
    let (roads, days) = if quick_mode() { (300, 6) } else { (607, 10) };
    let world = semi_syn_world(roads, days, 2018);
    let sizes: Vec<usize> =
        if quick_mode() { vec![100, 200, 300] } else { vec![150, 300, 450, 600] };
    let slot = SlotOfDay::from_hm(8, 30);
    // Fig. 5 protocol: vanilla gradient ascent on {μ}_R (λ = 0.1, random
    // μ init), convergence measured by the maximum μ gradient. σ/ρ are held
    // at their estimates — the figure only measures μ convergence.
    let trainer = RtfTrainer {
        lambda: 0.1,
        tol: 0.05, // max |∂L/∂μ| threshold, the Fig. 5 criterion
        max_iters: 20_000,
        max_step: 5.0,
        init: InitStrategy::MuRandomRestMoments(2018),
        mode: UpdateMode::MuGradientOnly,
        ..Default::default()
    };

    let mut t = Table::new(
        "Fig. 5 — RTF training convergence vs network size (Alg. 1, λ = 0.1, random init)",
        &["|R|", "iterations", "converged", "wall ms", "final max |∂L/∂μ|"],
    );
    for &size in &sizes {
        let keep = grow_connected_subset(&world.graph, RoadId(0), size)
            .expect("hong_kong_like is connected");
        let (sub, _) = world.graph.induced_subgraph(&keep);
        let history = world.dataset.history.project_roads(&keep);
        let ((_, stats), wall) = time_it(|| trainer.train_slot(&sub, &history, slot));
        t.push_row(vec![
            size.to_string(),
            stats.iterations.to_string(),
            stats.converged.to_string(),
            format!("{:.1}", wall.as_secs_f64() * 1e3),
            format!("{:.4}", stats.mu_grad_trace.last().copied().unwrap_or(f64::NAN)),
        ]);
    }
    println!("{}", t.render());
    if let Some(dir) = results_dir_from_args("fig5") {
        let _ = dir.write_table("convergence", &t);
    }
    println!("Shape check: iterations grow roughly linearly with |R| (paper Fig. 5).");
}
