//! Fig. 4 — running times.
//!
//! * (a) OCS selection time vs budget for Ratio/OBJ/Hybrid. Expected
//!   shape: linear growth in K, Hybrid the slowest, everything well under
//!   one second at the paper scale.
//! * (b) estimation time vs budget for LASSO/GRMC/GSP (Per omitted like
//!   the paper — it is a table lookup). Expected shape: LASSO cheapest per
//!   the paper's measurement, GSP roughly budget-independent and under
//!   half a second, GRMC the slowest of the iterative methods.
//!
//! ```sh
//! cargo run --release -p rtse-bench --bin exp_fig4 [--quick]
//! ```

use crowd_rtse_core::GspEstimator;
use rtse_baselines::{EstimationContext, Estimator, Grmc, LassoEstimator};
use rtse_bench::{ground_truth_observations, scale, semi_syn_world, BUDGETS_SEMI_SYN, THETA_TUNED};
use rtse_data::SlotOfDay;
use rtse_eval::{time_it, Table};
use rtse_ocs::{hybrid_greedy, objective_greedy, ratio_greedy, OcsInstance};
use rtse_rtf::{CorrelationTable, PathCorrelation};

fn main() {
    let (roads, days) = scale();
    let world = semi_syn_world(roads, days, 2018);
    let slot = SlotOfDay::from_hm(8, 30);
    let corr =
        CorrelationTable::build(&world.graph, &world.model, slot, PathCorrelation::MaxProduct);
    let params = world.model.slot(slot);

    // Panel (a): OCS running time.
    let mut a = Table::new(
        "Fig. 4 (a) — OCS running time vs budget (ms)",
        &["K", "Ratio", "OBJ", "Hybrid"],
    );
    for &budget in &BUDGETS_SEMI_SYN {
        let inst = OcsInstance {
            sigma: &params.sigma,
            corr: &corr,
            queried: &world.queried_51,
            candidates: &world.all_roads,
            costs: &world.costs_c1,
            budget,
            theta: THETA_TUNED,
        };
        let (_, t_ratio) = time_it(|| ratio_greedy(&inst));
        let (_, t_obj) = time_it(|| objective_greedy(&inst));
        let (_, t_hybrid) = time_it(|| hybrid_greedy(&inst));
        a.push_row(vec![
            budget.to_string(),
            format!("{:.3}", t_ratio.as_secs_f64() * 1e3),
            format!("{:.3}", t_obj.as_secs_f64() * 1e3),
            format!("{:.3}", t_hybrid.as_secs_f64() * 1e3),
        ]);
    }
    println!("{}", a.render());

    // Panel (b): estimation running time.
    let mut b = Table::new(
        "Fig. 4 (b) — estimation running time vs budget (ms)",
        &["K", "LASSO", "GRMC", "GSP"],
    );
    let ctx = EstimationContext {
        graph: &world.graph,
        model: &world.model,
        history: &world.dataset.history,
        slot,
    };
    let truth = world.dataset.ground_truth_snapshot(slot);
    for &budget in &BUDGETS_SEMI_SYN {
        let inst = OcsInstance {
            sigma: &params.sigma,
            corr: &corr,
            queried: &world.queried_51,
            candidates: &world.all_roads,
            costs: &world.costs_c1,
            budget,
            theta: THETA_TUNED,
        };
        let selection = hybrid_greedy(&inst);
        let observations = ground_truth_observations(&selection, truth);
        let lasso = LassoEstimator::for_targets(world.queried_51.clone());
        let (_, t_lasso) = time_it(|| lasso.estimate(&ctx, &observations));
        let (_, t_grmc) = time_it(|| Grmc::default().estimate(&ctx, &observations));
        let (_, t_gsp) = time_it(|| GspEstimator::default().estimate(&ctx, &observations));
        b.push_row(vec![
            budget.to_string(),
            format!("{:.3}", t_lasso.as_secs_f64() * 1e3),
            format!("{:.3}", t_grmc.as_secs_f64() * 1e3),
            format!("{:.3}", t_gsp.as_secs_f64() * 1e3),
        ]);
    }
    println!("{}", b.render());
    println!(
        "Shape checks: (a) linear in K, Hybrid slowest, << 1 s; (b) GSP roughly flat\n\
         in K and << 500 ms. Criterion micro-benches: `cargo bench -p rtse-bench`."
    );
}
