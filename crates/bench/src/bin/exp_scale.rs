//! Scale sweep for the sparse Γ substrate: builds the floor-pruned
//! [`SparseCorrelationTable`] on synthetic grid networks of 1k / 10k /
//! 100k roads and records build time, stored entries, bytes per road, and
//! query latency in `BENCH_scale.json`. The dense table is built alongside
//! at the 1k tier only (it is O(n²); at 100k it would need ~80 GB) — there
//! the sweep also verifies the dense↔sparse equivalence contract over
//! every pair.
//!
//! The network is `generators::grid` (deterministic, O(n) to build — the
//! same generator the offline tests use) with per-edge ρ drawn i.i.d.
//! from a seeded uniform range. The full `crates/data/src/synth.rs`
//! traffic pipeline would dominate the benchmark at 100k roads (hundreds
//! of millions of per-slot speeds) without changing what is measured —
//! the table build only consumes one slot's per-edge ρ — so the sweep
//! feeds `build_from_params` a single synthetic slot instead.
//!
//! ```sh
//! cargo run --release -p rtse-bench --bin exp_scale [--quick]
//! ```
//!
//! `--quick` (the CI `scale-smoke` mode) runs the 1k tier only.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rtse_bench::quick_mode;
use rtse_data::{SlotOfDay, SLOTS_PER_DAY};
use rtse_graph::generators::grid;
use rtse_graph::{Graph, RoadId};
use rtse_obs::ObsHandle;
use rtse_pool::ComputePool;
use rtse_rtf::params::SlotParams;
use rtse_rtf::SparseCorrelationTable;
use rtse_rtf::{CorrelationTable, PathCorrelation, RtfModel, SparseCorrConfig};
use std::hint::black_box;
use std::time::Instant;

struct Tier {
    name: &'static str,
    rows: usize,
    cols: usize,
}

/// 1k / 10k / 100k road grids.
const TIERS: [Tier; 3] = [
    Tier { name: "1k", rows: 25, cols: 40 },
    Tier { name: "10k", rows: 100, cols: 100 },
    Tier { name: "100k", rows: 250, cols: 400 },
];

struct TierResult {
    name: &'static str,
    roads: usize,
    edges: usize,
    build_ms: f64,
    entries: usize,
    entries_per_road: f64,
    bytes_per_road: f64,
    corr_lookup_ns: f64,
    road_set_corr_ns: f64,
    dense: Option<DenseResult>,
}

struct DenseResult {
    build_ms: f64,
    bytes_per_road: f64,
    equivalent_pairs: usize,
}

/// Per-edge ρ for one synthetic slot, i.i.d. uniform in [0.35, 0.95) —
/// the range moment estimation lands in on the synthetic traffic process
/// (strongly correlated arterials near the top, noisy side streets near
/// the bottom).
fn synth_params(graph: &Graph, seed: u64) -> SlotParams {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = graph.num_roads();
    let rho: Vec<f64> = (0..graph.num_edges()).map(|_| rng.random_range(0.35..0.95)).collect();
    SlotParams { mu: vec![50.0; n], sigma: vec![1.0; n], rho }
}

fn run_tier(tier: &Tier, config: SparseCorrConfig, check_dense: bool) -> TierResult {
    let graph = grid(tier.rows, tier.cols);
    let n = graph.num_roads();
    let params = synth_params(&graph, 2018 + n as u64);
    let pool = ComputePool::from_env();
    let slot = SlotOfDay(0);

    let start = Instant::now();
    let sparse = SparseCorrelationTable::build_from_params(
        &graph,
        &params,
        slot,
        config,
        &pool,
        &ObsHandle::noop(),
    );
    let build_ms = start.elapsed().as_secs_f64() * 1e3;

    // Query latency: random pairs (mostly pruned at scale) interleaved
    // with stored pairs (binary-search hits), measured together so the
    // number reflects mixed traffic.
    let mut rng = StdRng::seed_from_u64(7 + n as u64);
    let lookups = 200_000usize;
    let pairs: Vec<(RoadId, RoadId)> = (0..lookups)
        .map(|i| {
            let a = RoadId::from(rng.random_range(0..n));
            if i % 2 == 0 {
                (a, RoadId::from(rng.random_range(0..n)))
            } else {
                // A stored neighbor when the row is non-empty.
                let row: Vec<(RoadId, f64)> = sparse.row(a).collect();
                if row.is_empty() {
                    (a, a)
                } else {
                    (a, row[rng.random_range(0..row.len())].0)
                }
            }
        })
        .collect();
    let start = Instant::now();
    let mut acc = 0.0;
    for &(a, b) in &pairs {
        acc += sparse.corr(a, b);
    }
    black_box(acc);
    let corr_lookup_ns = start.elapsed().as_secs_f64() * 1e9 / lookups as f64;

    // Eq. (11) latency over a 32-road crowdsourced set — the OCS/GSP
    // access pattern.
    let set: Vec<RoadId> = (0..32).map(|_| RoadId::from(rng.random_range(0..n))).collect();
    let sources: Vec<RoadId> = (0..2000).map(|_| RoadId::from(rng.random_range(0..n))).collect();
    let start = Instant::now();
    let mut acc = 0.0;
    for &r in &sources {
        acc += sparse.road_set_corr(r, &set);
    }
    black_box(acc);
    let road_set_corr_ns = start.elapsed().as_secs_f64() * 1e9 / sources.len() as f64;

    let dense = check_dense.then(|| {
        // The dense build needs a full model wrapper; reuse the same slot
        // params for every slot (only slot 0 is built).
        let slots: Vec<SlotParams> = (0..SLOTS_PER_DAY).map(|_| params.clone()).collect();
        let model = RtfModel::from_slots(n, graph.num_edges(), slots);
        let start = Instant::now();
        let dense = CorrelationTable::build_with_pool(
            &graph,
            &model,
            slot,
            PathCorrelation::MaxProduct,
            &pool,
        );
        let build_ms = start.elapsed().as_secs_f64() * 1e3;
        // Equivalence contract over every pair: bit-identical at or above
        // the floor, exactly zero below it.
        let mut equivalent_pairs = 0usize;
        for a in graph.road_ids() {
            for b in graph.road_ids() {
                let d = dense.corr(a, b);
                let s = sparse.corr(a, b);
                if d >= config.floor {
                    assert_eq!(d.to_bits(), s.to_bits(), "corr({a},{b}): dense {d} vs sparse {s}");
                } else {
                    assert_eq!(s, 0.0, "corr({a},{b}) below floor read {s}");
                }
                equivalent_pairs += 1;
            }
        }
        DenseResult {
            build_ms,
            bytes_per_road: (n * n * std::mem::size_of::<f64>()) as f64 / n as f64,
            equivalent_pairs,
        }
    });

    TierResult {
        name: tier.name,
        roads: n,
        edges: graph.num_edges(),
        build_ms,
        entries: sparse.num_entries(),
        entries_per_road: sparse.num_entries() as f64 / n as f64,
        bytes_per_road: sparse.memory_bytes() as f64 / n as f64,
        corr_lookup_ns,
        road_set_corr_ns,
        dense,
    }
}

fn main() {
    assert_eq!(rtse_sync::BACKEND, "std", "exp_scale must run on the std sync backend");
    let quick = quick_mode();
    let config = SparseCorrConfig::default();
    let tiers: &[Tier] = if quick { &TIERS[..1] } else { &TIERS };

    let mut results = Vec::new();
    for tier in tiers {
        let check_dense = tier.rows * tier.cols <= 1_000;
        println!("tier {}: {}x{} grid ...", tier.name, tier.rows, tier.cols);
        let r = run_tier(tier, config, check_dense);
        println!(
            "  {} roads / {} edges: build {:.1} ms, {:.1} entries/road, {:.1} bytes/road, \
             corr {:.0} ns, road_set_corr(32) {:.0} ns",
            r.roads,
            r.edges,
            r.build_ms,
            r.entries_per_road,
            r.bytes_per_road,
            r.corr_lookup_ns,
            r.road_set_corr_ns,
        );
        if let Some(d) = &r.dense {
            println!(
                "  dense: build {:.1} ms, {:.1} bytes/road, {} pairs equivalence-checked",
                d.build_ms, d.bytes_per_road, d.equivalent_pairs
            );
        }
        results.push(r);
    }

    let json = render_json(config, quick, &results);
    let out = "BENCH_scale.json";
    std::fs::write(out, json).expect("writing BENCH_scale.json");
    println!("wrote {out}");
}

fn render_json(config: SparseCorrConfig, quick: bool, results: &[TierResult]) -> String {
    let host_threads = std::thread::available_parallelism().map_or(0, |n| n.get());
    let mut s = String::from("{\n");
    s.push_str("  \"experiment\": \"scale_sweep\",\n");
    s.push_str(&format!("  \"quick\": {quick},\n"));
    s.push_str(&format!(
        "  \"host\": {{ \"available_parallelism\": {host_threads}, \"rtse_threads_env\": {} }},\n",
        std::env::var("RTSE_THREADS").map_or_else(|_| "null".into(), |v| format!("\"{v}\""))
    ));
    s.push_str(&format!(
        "  \"config\": {{ \"semantics\": \"max_product\", \"floor\": {}, \"top_k\": {}, \
         \"cost_bound\": {:.6}, \"rho_range\": [0.35, 0.95] }},\n",
        config.floor,
        config.top_k.map_or_else(|| "null".into(), |k| k.to_string()),
        config.cost_bound(),
    ));
    s.push_str(
        "  \"note\": \"sparse = floor-pruned CSR over bounded Dijkstra; dense comparison and \
         full-pair equivalence check run at the 1k tier only (dense is O(n^2) memory)\",\n",
    );
    s.push_str("  \"sweep\": [\n");
    for (i, r) in results.iter().enumerate() {
        let dense = r.dense.as_ref().map_or_else(
            || "null".to_string(),
            |d| {
                format!(
                    "{{ \"build_ms\": {:.3}, \"bytes_per_road\": {:.1}, \
                     \"equivalent_pairs\": {} }}",
                    d.build_ms, d.bytes_per_road, d.equivalent_pairs
                )
            },
        );
        s.push_str(&format!(
            "    {{ \"tier\": \"{}\", \"roads\": {}, \"edges\": {}, \"build_ms\": {:.3}, \
             \"entries\": {}, \"entries_per_road\": {:.3}, \"bytes_per_road\": {:.3}, \
             \"corr_lookup_ns\": {:.1}, \"road_set_corr_32_ns\": {:.1}, \"dense\": {} }}",
            r.name,
            r.roads,
            r.edges,
            r.build_ms,
            r.entries,
            r.entries_per_road,
            r.bytes_per_road,
            r.corr_lookup_ns,
            r.road_set_corr_ns,
            dense,
        ));
        if i + 1 < results.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("  ]\n");
    s.push_str("}\n");
    s
}
