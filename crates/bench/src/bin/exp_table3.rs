//! Table III — 1-hop and 2-hop coverage of the queried roads by the
//! crowdsourced roads chosen by OBJ / Rand / Hybrid, per budget.
//!
//! Expected shape (paper): Hybrid > OBJ > Rand at every budget, both
//! coverages growing with K.
//!
//! ```sh
//! cargo run --release -p rtse-bench --bin exp_table3 [--quick]
//! ```

use rtse_bench::{scale, semi_syn_world, BUDGETS_SEMI_SYN, THETA_TUNED};
use rtse_data::SlotOfDay;
use rtse_eval::{k_hop_coverage, results_dir_from_args, Table};
use rtse_ocs::{hybrid_greedy, objective_greedy, random_select, OcsInstance};
use rtse_rtf::{CorrelationTable, PathCorrelation};

fn main() {
    let (roads, days) = scale();
    let world = semi_syn_world(roads, days, 2018);
    let slot = SlotOfDay::from_hm(8, 30);
    let corr =
        CorrelationTable::build(&world.graph, &world.model, slot, PathCorrelation::MaxProduct);
    let params = world.model.slot(slot);
    let queried = &world.queried_51;

    let mut t = Table::new(
        "Table III — 1-hop / 2-hop coverage of the queried roads",
        &["selector", "K=30", "K=60", "K=90", "K=120", "K=150"],
    );
    let mut rows: Vec<(&str, Vec<String>)> =
        vec![("OBJ", Vec::new()), ("Rand", Vec::new()), ("Hybrid", Vec::new())];
    for &budget in &BUDGETS_SEMI_SYN {
        let inst = OcsInstance {
            sigma: &params.sigma,
            corr: &corr,
            queried,
            candidates: &world.all_roads,
            costs: &world.costs_c1,
            budget,
            theta: THETA_TUNED,
        };
        let selections = [objective_greedy(&inst), random_select(&inst, 7), hybrid_greedy(&inst)];
        for (row, sel) in rows.iter_mut().zip(selections.iter()) {
            let c1 = k_hop_coverage(&world.graph, queried, &sel.roads, 1);
            let c2 = k_hop_coverage(&world.graph, queried, &sel.roads, 2);
            row.1.push(format!("{c1} / {c2}"));
        }
    }
    for (name, cells) in rows {
        let mut row = vec![name.to_string()];
        row.extend(cells);
        t.push_row(row);
    }
    println!("{}", t.render());
    if let Some(dir) = results_dir_from_args("table3") {
        match dir.write_table("coverage", &t) {
            Ok(path) => println!("(csv written to {})", path.display()),
            Err(e) => eprintln!("warning: csv write failed: {e}"),
        }
    }
    println!("Shape check: coverage grows with K and Hybrid >= OBJ >= Rand (paper Table III).");
}
