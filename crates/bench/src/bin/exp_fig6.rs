//! Fig. 6 — the gMission-style evaluation: MAPE/FER of GSP, LASSO, GRMC
//! and Per over budgets 10–50, with crowdsourced roads selected by
//! Hybrid-Greedy and answers supplied by simulated mobile workers.
//!
//! Expected shape: same ordering as the semi-synthesized Fig. 3 (GSP best,
//! Per worst, largest gaps at small K) despite the smaller scale.
//!
//! ```sh
//! cargo run --release -p rtse-bench --bin exp_fig6 [--quick]
//! ```

use crowd_rtse_core::GspEstimator;
use rtse_baselines::{EstimationContext, Estimator, Grmc, LassoEstimator, Per};
use rtse_bench::{quick_mode, scale, semi_syn_world, BUDGETS_GMISSION, THETA_TUNED};
use rtse_crowd::{CrowdCampaign, GMissionScenario, GMissionSpec};
use rtse_data::SlotOfDay;
use rtse_eval::{ErrorReport, Table};
use rtse_ocs::{hybrid_greedy, OcsInstance};
use rtse_rtf::{CorrelationTable, PathCorrelation};

fn main() {
    let (roads, days) = scale();
    let world = semi_syn_world(roads, days, 2018);
    let scenario = GMissionScenario::build(&world.graph, &GMissionSpec::default());
    let slots =
        if quick_mode() { vec![SlotOfDay::from_hm(8, 30)] } else { rtse_bench::query_slots() };

    let mut mape = Table::new(
        "Fig. 6 — gMission MAPE (Hybrid selection, simulated workers)",
        &["K", "GSP", "LASSO", "GRMC", "Per"],
    );
    let mut fer = Table::new("Fig. 6 — gMission FER", &["K", "GSP", "LASSO", "GRMC", "Per"]);
    for &budget in &BUDGETS_GMISSION {
        let mut sums = [(0.0, 0.0); 4];
        for &slot in &slots {
            let corr = CorrelationTable::build(
                &world.graph,
                &world.model,
                slot,
                PathCorrelation::MaxProduct,
            );
            let params = world.model.slot(slot);
            let inst = OcsInstance {
                sigma: &params.sigma,
                corr: &corr,
                queried: &scenario.queried,
                candidates: &scenario.worker_roads,
                costs: &scenario.costs,
                budget,
                theta: THETA_TUNED,
            };
            let selection = hybrid_greedy(&inst);
            let truth = world.dataset.ground_truth_snapshot(slot);
            // Unlike the semi-synthesized dataset, answers here come from
            // the simulated gMission workers (noisy, biased, aggregated).
            let outcome = CrowdCampaign::default().run(
                &scenario.pool,
                &selection.roads,
                &scenario.costs,
                truth,
            );
            let ctx = EstimationContext {
                graph: &world.graph,
                model: &world.model,
                history: &world.dataset.history,
                slot,
            };
            let estimates: [Vec<f64>; 4] = [
                GspEstimator::default().estimate(&ctx, &outcome.observations),
                LassoEstimator::for_targets(scenario.queried.clone())
                    .estimate(&ctx, &outcome.observations),
                Grmc::default().estimate(&ctx, &outcome.observations),
                Per.estimate(&ctx, &outcome.observations),
            ];
            for (s, est) in sums.iter_mut().zip(estimates.iter()) {
                let r = ErrorReport::evaluate_default(est, truth, &scenario.queried);
                s.0 += r.mape / slots.len() as f64;
                s.1 += r.fer / slots.len() as f64;
            }
        }
        mape.push_numeric_row(budget.to_string(), &sums.iter().map(|s| s.0).collect::<Vec<_>>());
        fer.push_numeric_row(budget.to_string(), &sums.iter().map(|s| s.1).collect::<Vec<_>>());
    }
    println!("{}", mape.render());
    println!("{}", fer.render());
    println!("Shape check: same ordering as Fig. 3 a1/a2 at smaller scale (paper Fig. 6).");
}
