//! Extension experiment: variance-aware (active) selection vs the paper's
//! Hybrid-Greedy and Random, judged by downstream GSP estimation quality.
//!
//! The active selector greedily reduces the queried roads' *posterior
//! variance* (exact, from the GMRF) instead of maximizing the static
//! correlation objective. Expected: it matches or beats Hybrid-Greedy at
//! equal budget, with the edge largest at small K where every probe must
//! count.
//!
//! ```sh
//! cargo run --release -p rtse-bench --bin exp_active [--quick] [--csv]
//! ```

use crowd_rtse_core::{variance_aware_select, GspEstimator};
use rtse_baselines::{EstimationContext, Estimator};
use rtse_bench::{
    ground_truth_observations, quick_mode, scale, semi_syn_world, BUDGETS_SEMI_SYN, THETA_TUNED,
};
use rtse_data::SlotOfDay;
use rtse_eval::{results_dir_from_args, ErrorReport, Table};
use rtse_ocs::{hybrid_greedy, random_select, OcsInstance};
use rtse_rtf::{CorrelationTable, PathCorrelation};

fn main() {
    let (roads, days) = scale();
    let world = semi_syn_world(roads, days, 2018);
    let slots =
        if quick_mode() { vec![SlotOfDay::from_hm(8, 30)] } else { rtse_bench::query_slots() };
    let queried = world.queried_51.clone();

    let mut t = Table::new(
        "active (variance-aware) vs Hybrid vs Random — GSP MAPE / FER",
        &["K", "Active MAPE", "Hybrid MAPE", "Rand MAPE", "Active FER", "Hybrid FER", "Rand FER"],
    );
    for &budget in &BUDGETS_SEMI_SYN {
        let mut sums = [(0.0, 0.0); 3];
        for &slot in &slots {
            let corr = CorrelationTable::build(
                &world.graph,
                &world.model,
                slot,
                PathCorrelation::MaxProduct,
            );
            let params = world.model.slot(slot);
            let inst = OcsInstance {
                sigma: &params.sigma,
                corr: &corr,
                queried: &queried,
                candidates: &world.all_roads,
                costs: &world.costs_c1,
                budget,
                theta: THETA_TUNED,
            };
            let selections = [
                variance_aware_select(&world.graph, &world.model, slot, &inst, 1),
                hybrid_greedy(&inst),
                random_select(&inst, 7),
            ];
            let truth = world.dataset.ground_truth_snapshot(slot);
            let ctx = EstimationContext {
                graph: &world.graph,
                model: &world.model,
                history: &world.dataset.history,
                slot,
            };
            for (sum, sel) in sums.iter_mut().zip(selections.iter()) {
                let observations = ground_truth_observations(sel, truth);
                let est = GspEstimator::default().estimate(&ctx, &observations);
                let rep = ErrorReport::evaluate_default(&est, truth, &queried);
                sum.0 += rep.mape / slots.len() as f64;
                sum.1 += rep.fer / slots.len() as f64;
            }
        }
        t.push_numeric_row(
            budget.to_string(),
            &[sums[0].0, sums[1].0, sums[2].0, sums[0].1, sums[1].1, sums[2].1],
        );
    }
    println!("{}", t.render());
    if let Some(dir) = results_dir_from_args("active") {
        let _ = dir.write_table("active_vs_hybrid", &t);
    }
    println!(
        "Reading guide: Active tracks Hybrid closely and both crush Random.\n\
         Measured finding (see EXPERIMENTS.md): Active does NOT beat Hybrid here —\n\
         estimation error is dominated by model BIAS (incidents the GMRF has never\n\
         seen), which posterior variance cannot see. Minimizing model uncertainty\n\
         only pays when the model is well-specified."
    );
}
