//! Table II — dataset statistics, regenerated from the harness
//! configurations.
//!
//! ```sh
//! cargo run --release -p rtse-bench --bin exp_table2 [--quick]
//! ```

use rtse_bench::{scale, semi_syn_world, BUDGETS_GMISSION, BUDGETS_SEMI_SYN, THETA_TUNED};
use rtse_crowd::{GMissionScenario, GMissionSpec};
use rtse_eval::Table;

fn main() {
    let (roads, days) = scale();
    let world = semi_syn_world(roads, days, 2018);
    let gmission = GMissionScenario::build(&world.graph, &GMissionSpec::default());

    let mut t = Table::new(
        "Table II — datasets' statistics",
        &["dataset", "|R^w|", "|R^q|", "road cost", "K", "theta"],
    );
    t.push_row(vec![
        "Semi-syn".into(),
        world.all_roads.len().to_string(),
        format!("{}, {}", world.queried_33.len(), world.queried_51.len()),
        "1~5, 1~10".into(),
        format!("{}~{}", BUDGETS_SEMI_SYN[0], BUDGETS_SEMI_SYN[4]),
        format!("{THETA_TUNED}, 1"),
    ]);
    t.push_row(vec![
        "gMission".into(),
        gmission.worker_roads.len().to_string(),
        gmission.queried.len().to_string(),
        "1~10".into(),
        format!("{}~{}", BUDGETS_GMISSION[0], BUDGETS_GMISSION[4]),
        format!("{THETA_TUNED}"),
    ]);
    println!("{}", t.render());

    println!(
        "history: {} roads x {} days x 288 slots = {} records (paper: 5,244,480)",
        world.graph.num_roads(),
        days,
        world.dataset.history.num_records()
    );
}
