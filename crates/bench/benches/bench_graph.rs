//! Criterion micro-benches for the graph substrate: Dijkstra, BFS
//! layering, and synthetic-network generation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtse_graph::{bfs_layers, dijkstra, generators, RoadId};
use std::hint::black_box;

fn bench_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph");
    for size in [150usize, 600] {
        let g = generators::hong_kong_like(size, 2018);
        group.bench_with_input(BenchmarkId::new("dijkstra_sssp", size), &g, |b, g| {
            b.iter(|| black_box(dijkstra(g, RoadId(0), |e| 1.0 + e.index() as f64 % 3.0)))
        });
        let sources: Vec<RoadId> = (0..10u32).map(RoadId).collect();
        group.bench_with_input(BenchmarkId::new("bfs_layers", size), &g, |b, g| {
            b.iter(|| black_box(bfs_layers(g, &sources)))
        });
        group.bench_with_input(BenchmarkId::new("generate", size), &size, |b, &s| {
            b.iter(|| black_box(generators::hong_kong_like(s, 7)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_graph
}
criterion_main!(benches);
