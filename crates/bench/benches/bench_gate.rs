//! The regression-gate workloads (`cargo xtask bench-gate`).
//!
//! Three deliberately small, deterministic benches whose medians the gate
//! compares against the checked-in baseline (`bench-baseline.json`):
//!
//! * `gate_calib` — a fixed pure-arithmetic workload that touches none of
//!   the code under test. Its median measures the *machine*, so the gate
//!   compares machine-normalized ratios (`workload / calib`) instead of
//!   raw nanoseconds and survives CI hardware churn.
//! * `gate_gsp_full` — one cold full propagation on the paper-scale
//!   semi-synthetic world.
//! * `gate_gsp_delta` — one delta re-propagation of the same round after
//!   a single observation moved, seeded from the full run's fixed point.
//!   The gate also asserts the relational invariant `delta < full`: if
//!   the frontier machinery ever degenerates into full sweeps, the gate
//!   fails without any baseline at all.
//!
//! Keep the IDs in sync with `crates/xtask/src/bench_gate.rs` — the gate
//! reads `target/criterion/<id>/new/estimates.json` by these exact names.

use criterion::{criterion_group, criterion_main, Criterion};
use rtse_bench::semi_syn_world;
use rtse_data::SlotOfDay;
use rtse_graph::RoadId;
use rtse_gsp::{propagate_delta, DeltaGsp, GspSolver};
use std::hint::black_box;

fn bench_gate(c: &mut Criterion) {
    // Machine calibration: branch-free f64 arithmetic, no allocation.
    c.bench_function("gate_calib", |b| {
        b.iter(|| {
            let mut acc = 1.000_000_1_f64;
            for i in 1..40_000u32 {
                acc = acc.mul_add(1.000_000_1, f64::from(i).recip());
            }
            black_box(acc)
        })
    });

    let world = semi_syn_world(607, 8, 2018);
    let slot = SlotOfDay::from_hm(8, 30);
    let params = world.model.slot(slot);
    let truth = world.dataset.ground_truth_snapshot(slot);
    let solver = GspSolver::default();

    let observations: Vec<(RoadId, f64)> = (0..60)
        .map(|i| {
            let r = RoadId::from(i * world.graph.num_roads() / 60);
            (r, truth[r.index()])
        })
        .collect();

    c.bench_function("gate_gsp_full", |b| {
        b.iter(|| black_box(solver.propagate(&world.graph, params, &observations)))
    });

    // The realtime delta round: the previous fixed point is warm, one
    // probe moved.
    let prev = solver.propagate(&world.graph, params, &observations);
    assert!(prev.converged, "gate world must converge");
    let mut moved = observations.clone();
    moved[0].1 += 1.5;
    let delta_solver = DeltaGsp { base: solver, epsilon: 1e-6 };
    c.bench_function("gate_gsp_delta", |b| {
        b.iter(|| {
            black_box(propagate_delta(
                &delta_solver,
                &world.graph,
                params,
                &moved,
                &prev.values,
                &[],
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_gate
}
criterion_main!(benches);
