//! Criterion micro-benches for the pooled offline pipeline: serial vs
//! pooled correlation-table build, full-day RTF training, and GSP
//! propagation at several thread counts. Speedups are bounded by host
//! cores — see EXPERIMENTS.md ("Threading knobs").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtse_bench::semi_syn_world;
use rtse_data::SlotOfDay;
use rtse_graph::components::grow_connected_subset;
use rtse_graph::RoadId;
use rtse_gsp::{GspSolver, ParallelGsp};
use rtse_pool::ComputePool;
use rtse_rtf::{CorrelationTable, PathCorrelation, RtfTrainer};
use std::hint::black_box;

const THREADS: [usize; 3] = [1, 2, 4];

fn bench_offline(c: &mut Criterion) {
    let world = semi_syn_world(300, 6, 2018);
    let slot = SlotOfDay::from_hm(8, 30);

    let mut group = c.benchmark_group("offline_pool");
    for threads in THREADS {
        group.bench_with_input(BenchmarkId::new("corr_table", threads), &threads, |b, &n| {
            let pool = ComputePool::new(n);
            b.iter(|| {
                black_box(CorrelationTable::build_with_pool(
                    &world.graph,
                    &world.model,
                    slot,
                    PathCorrelation::MaxProduct,
                    &pool,
                ))
            })
        });
    }

    let keep = grow_connected_subset(&world.graph, RoadId(0), 60).unwrap();
    let (sub, _) = world.graph.induced_subgraph(&keep);
    let history = world.dataset.history.project_roads(&keep);
    for threads in THREADS {
        group.bench_with_input(BenchmarkId::new("train_all_slots", threads), &threads, |b, &n| {
            let trainer = RtfTrainer { max_iters: 2, threads: n, ..Default::default() };
            b.iter(|| black_box(trainer.train(&sub, &history)))
        });
    }

    let params = world.model.slot(slot);
    let obs: Vec<(RoadId, f64)> = world
        .queried_33
        .iter()
        .map(|&r| (r, world.dataset.today.snapshot(0, slot)[r.index()]))
        .collect();
    for threads in THREADS {
        group.bench_with_input(BenchmarkId::new("gsp_propagate", threads), &threads, |b, &n| {
            let solver = ParallelGsp {
                base: GspSolver { epsilon: 1e-9, max_rounds: 50, record_trace: false },
                threads: n,
            };
            b.iter(|| black_box(solver.propagate(&world.graph, params, &obs)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_offline
}
criterion_main!(benches);
