//! Criterion micro-benches for OCS (Fig. 4a): selection time vs budget for
//! the three greedy solvers at paper scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtse_bench::{semi_syn_world, THETA_TUNED};
use rtse_data::SlotOfDay;
use rtse_ocs::{hybrid_greedy, objective_greedy, ratio_greedy, OcsInstance};
use rtse_rtf::{CorrelationTable, PathCorrelation};
use std::hint::black_box;

fn bench_ocs(c: &mut Criterion) {
    let world = semi_syn_world(607, 8, 2018);
    let slot = SlotOfDay::from_hm(8, 30);
    let corr =
        CorrelationTable::build(&world.graph, &world.model, slot, PathCorrelation::MaxProduct);
    let params = world.model.slot(slot);

    let mut group = c.benchmark_group("ocs_fig4a");
    for budget in [30u32, 90, 150] {
        let inst = OcsInstance {
            sigma: &params.sigma,
            corr: &corr,
            queried: &world.queried_51,
            candidates: &world.all_roads,
            costs: &world.costs_c1,
            budget,
            theta: THETA_TUNED,
        };
        group.bench_with_input(BenchmarkId::new("ratio", budget), &inst, |b, inst| {
            b.iter(|| black_box(ratio_greedy(inst)))
        });
        group.bench_with_input(BenchmarkId::new("objective", budget), &inst, |b, inst| {
            b.iter(|| black_box(objective_greedy(inst)))
        });
        group.bench_with_input(BenchmarkId::new("hybrid", budget), &inst, |b, inst| {
            b.iter(|| black_box(hybrid_greedy(inst)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_ocs
}
criterion_main!(benches);
