//! Criterion micro-benches for GSP (Fig. 4b): propagation time vs number
//! of observed roads, sequential vs layer-parallel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtse_bench::semi_syn_world;
use rtse_data::SlotOfDay;
use rtse_graph::RoadId;
use rtse_gsp::{GspSolver, ParallelGsp};
use std::hint::black_box;

fn bench_gsp(c: &mut Criterion) {
    let world = semi_syn_world(607, 8, 2018);
    let slot = SlotOfDay::from_hm(8, 30);
    let params = world.model.slot(slot);
    let truth = world.dataset.ground_truth_snapshot(slot);

    let mut group = c.benchmark_group("gsp_fig4b");
    for observed in [10usize, 30, 60, 120] {
        let observations: Vec<(RoadId, f64)> = (0..observed)
            .map(|i| {
                let r = RoadId::from(i * world.graph.num_roads() / observed);
                (r, truth[r.index()])
            })
            .collect();
        group.bench_with_input(
            BenchmarkId::new("sequential", observed),
            &observations,
            |b, obs| {
                let solver = GspSolver::default();
                b.iter(|| black_box(solver.propagate(&world.graph, params, obs)))
            },
        );
        group.bench_with_input(BenchmarkId::new("parallel4", observed), &observations, |b, obs| {
            let solver = ParallelGsp { threads: 4, ..Default::default() };
            b.iter(|| black_box(solver.propagate(&world.graph, params, obs)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_gsp
}
criterion_main!(benches);
