//! Ablation bench: cost of the two path-correlation semantics (Eq. 8
//! max-product vs the paper's literal Eq. 9 reciprocal-sum). The
//! reciprocal-sum variant needs predecessor tracking and path walks, so it
//! is expected to be measurably slower; quality differences are reported
//! by the `exp_ablation` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtse_bench::semi_syn_world;
use rtse_data::SlotOfDay;
use rtse_rtf::{CorrelationTable, PathCorrelation};
use std::hint::black_box;

fn bench_pathcorr(c: &mut Criterion) {
    let slot = SlotOfDay::from_hm(8, 30);
    let mut group = c.benchmark_group("pathcorr_semantics");
    for size in [150usize, 600] {
        let world = semi_syn_world(size, 6, 2018);
        group.bench_with_input(BenchmarkId::new("max_product", size), &world, |b, w| {
            b.iter(|| {
                black_box(CorrelationTable::build(
                    &w.graph,
                    &w.model,
                    slot,
                    PathCorrelation::MaxProduct,
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("reciprocal_sum", size), &world, |b, w| {
            b.iter(|| {
                black_box(CorrelationTable::build(
                    &w.graph,
                    &w.model,
                    slot,
                    PathCorrelation::ReciprocalSum,
                ))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pathcorr
}
criterion_main!(benches);
