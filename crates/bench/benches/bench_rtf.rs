//! Criterion micro-benches for the offline stage (Fig. 5 support): one
//! training sweep and the correlation-table build, vs network size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtse_bench::semi_syn_world;
use rtse_data::SlotOfDay;
use rtse_graph::components::grow_connected_subset;
use rtse_graph::RoadId;
use rtse_rtf::{moments::moment_estimate_slot, CorrelationTable, PathCorrelation, RtfTrainer};
use std::hint::black_box;

fn bench_rtf(c: &mut Criterion) {
    let world = semi_syn_world(607, 8, 2018);
    let slot = SlotOfDay::from_hm(8, 30);

    let mut group = c.benchmark_group("rtf_offline");
    for size in [150usize, 300, 600] {
        let keep = grow_connected_subset(&world.graph, RoadId(0), size).unwrap();
        let (sub, _) = world.graph.induced_subgraph(&keep);
        let history = world.dataset.history.project_roads(&keep);
        group.bench_with_input(BenchmarkId::new("moment_slot", size), &size, |b, _| {
            b.iter(|| black_box(moment_estimate_slot(&sub, &history, slot)))
        });
        group.bench_with_input(BenchmarkId::new("ccd_train_slot", size), &size, |b, _| {
            let trainer = RtfTrainer { max_iters: 5, tol: 0.0, ..Default::default() };
            b.iter(|| black_box(trainer.train_slot(&sub, &history, slot)))
        });
        let model = rtse_rtf::moment_estimate(&sub, &history);
        group.bench_with_input(BenchmarkId::new("corr_table", size), &size, |b, _| {
            b.iter(|| {
                black_box(CorrelationTable::build(&sub, &model, slot, PathCorrelation::MaxProduct))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_rtf
}
criterion_main!(benches);
