//! Ablation benches for solver variants:
//! * plain vs lazy Objective-Greedy (identical output, fewer gain probes);
//! * GSP Gauss–Seidel vs SOR (ω = 1.4) vs exact conjugate-gradient MAP.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtse_bench::{semi_syn_world, THETA_TUNED};
use rtse_data::SlotOfDay;
use rtse_graph::RoadId;
use rtse_gsp::{exact_map_estimate, DampedGsp, GspSolver};
use rtse_ocs::{lazy_objective_greedy, objective_greedy, OcsInstance};
use rtse_rtf::{CorrelationTable, PathCorrelation};
use std::hint::black_box;

fn bench_variants(c: &mut Criterion) {
    let world = semi_syn_world(607, 8, 2018);
    let slot = SlotOfDay::from_hm(8, 30);
    let corr =
        CorrelationTable::build(&world.graph, &world.model, slot, PathCorrelation::MaxProduct);
    let params = world.model.slot(slot);

    let mut group = c.benchmark_group("greedy_variants");
    for budget in [30u32, 150] {
        let inst = OcsInstance {
            sigma: &params.sigma,
            corr: &corr,
            queried: &world.queried_51,
            candidates: &world.all_roads,
            costs: &world.costs_c1,
            budget,
            theta: THETA_TUNED,
        };
        assert_eq!(lazy_objective_greedy(&inst), objective_greedy(&inst));
        group.bench_with_input(BenchmarkId::new("plain", budget), &inst, |b, inst| {
            b.iter(|| black_box(objective_greedy(inst)))
        });
        group.bench_with_input(BenchmarkId::new("lazy", budget), &inst, |b, inst| {
            b.iter(|| black_box(lazy_objective_greedy(inst)))
        });
    }
    group.finish();

    let truth = world.dataset.ground_truth_snapshot(slot);
    let observations: Vec<(RoadId, f64)> = (0..60)
        .map(|i| {
            let r = RoadId::from(i * world.graph.num_roads() / 60);
            (r, truth[r.index()])
        })
        .collect();
    let mut group = c.benchmark_group("gsp_variants");
    group.bench_function("gauss_seidel", |b| {
        let solver = GspSolver::default();
        b.iter(|| black_box(solver.propagate(&world.graph, params, &observations)))
    });
    group.bench_function("sor_1_4", |b| {
        let solver = DampedGsp::default();
        b.iter(|| black_box(solver.propagate(&world.graph, params, &observations)))
    });
    group.bench_function("exact_cg", |b| {
        b.iter(|| black_box(exact_map_estimate(&world.graph, params, &observations)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_variants
}
criterion_main!(benches);
