//! `cargo xtask taint` — interprocedural untrusted-input taint analysis.
//!
//! Every byte of a wire frame is attacker-controlled, and the decoded
//! values (payload lengths, road counts, slot ids, budgets) flow toward
//! allocation sizes, index expressions, loop bounds, and arithmetic deep
//! in serve/core/gsp. This pass proves — or forces a reasoned waiver for
//! — every flow from a declared **source** to a declared **sink** that
//! does not pass through a declared **sanitizer**, using the same
//! fail-closed `lint.toml` inventory convention as `[[hotpath]]`:
//!
//! * **sources** (`[[taint]] source = ..`): a workspace function whose
//!   return value is untrusted (`rtse_edge::read_u16`) or a struct field
//!   holding wire data (`rtse_edge::QueryFrame.roads`);
//! * **sinks** (`[[taint]] sink = ..`): a closed vocabulary of construct
//!   classes ([`TAINT_SINKS`]) that must never consume a tainted integer;
//! * **sanitizers** (`[[taint]] sanitizer = ..`): validation choke points
//!   whose results are clean regardless of argument taint
//!   (`rtse_core::SpeedQuery::try_new`), plus the checked/saturating
//!   arithmetic intrinsics, which are sanitizing by construction.
//!
//! Propagation runs over the PR 6 call graph ([`crate::graph`]) at the
//! token level: through `let` bindings and assignments, across calls
//! (argument→parameter and return→caller, guided by per-function
//! flows-to-return summaries so a clean argument to `RoadId::index` stays
//! clean), and through struct fields. Calls that resolve to nothing —
//! closure parameters, ambient methods, std — use a conservative
//! assume-tainted fallback: any tainted operand taints the result.
//! Violations carry the full source→call-chain→sink trace; surviving
//! sites are waived with reasoned `[[taint]]` waiver entries, and the
//! deterministic `taint-report.json` is `--check`ed byte-for-byte in CI.
//! See DESIGN.md §14 for the lattice and the known imprecision list.

use crate::allow::Config;
use crate::ast::Ast;
use crate::flow::esc;
use crate::graph::{self, CallGraph, CallKind, CallSite, Resolver};
use crate::scrub::{scrub, Scrubbed};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::ops::Range;
use std::path::Path;

/// The closed sink vocabulary `[[taint]] sink = ..` entries may declare.
pub const TAINT_SINKS: &[&str] = &["alloc-size", "index", "loop-bound", "as-cast", "arith"];

/// Method/function names that sanitize by construction: checked and
/// saturating arithmetic, fallible conversions, and upper-bound clamps.
/// `wrapping_*` is deliberately absent (silent wraps are the failure mode
/// this pass exists to catch) and so is `max` (it bounds below, not
/// above).
const INTRINSIC_SANITIZERS: &[&str] = &[
    "try_from",
    "try_into",
    "checked_add",
    "checked_sub",
    "checked_mul",
    "checked_div",
    "checked_rem",
    "saturating_add",
    "saturating_sub",
    "saturating_mul",
    "clamp",
    "min",
];

/// `as` targets narrower than the native word: a tainted value cast to
/// one of these silently truncates. `usize`/`u64` are widening on every
/// supported target and excluded.
const NARROW_CASTS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// Why a value is tainted: the source spec that seeded it and the chain
/// of qualified function names the taint travelled through (capped at 8,
/// first assignment wins — stable across runs).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Prov {
    source: String,
    via: Vec<String>,
}

fn extend(p: &Prov, target: String) -> Prov {
    let mut via = p.via.clone();
    if via.last() != Some(&target) && via.len() < 8 {
        via.push(target);
    }
    Prov { source: p.source.clone(), via }
}

/// A tainted value reaching a declared sink, unwaived.
#[derive(Debug)]
pub struct TaintViolation {
    pub file: String,
    pub line: usize,
    /// Sink kind (one of [`TAINT_SINKS`]).
    pub sink: &'static str,
    /// Qualified name of the containing function.
    pub func: String,
    /// The source spec that seeded the taint.
    pub source: String,
    /// Function chain the taint travelled: seed function → … → sink
    /// function (qualified names).
    pub chain: Vec<String>,
    pub snippet: String,
}

impl TaintViolation {
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [taint/{}] tainted `{}` reaches {} sink in `{}`\n    chain: {}\n    {}",
            self.file,
            self.line,
            self.sink,
            self.source,
            self.sink,
            self.func,
            self.chain.join(" -> "),
            self.snippet
        )
    }
}

/// Everything one `cargo xtask taint` run produces.
pub struct TaintOutcome {
    pub violations: Vec<TaintViolation>,
    /// Stale-source / stale-sanitizer / stale-waiver messages (each one
    /// fails the pass).
    pub stale: Vec<String>,
    /// The deterministic `taint-report.json` body.
    pub report: String,
}

impl TaintOutcome {
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.stale.is_empty()
    }
}

/// One call site inside a body, pre-resolved so fixpoint rounds never
/// repeat resolution work.
struct CInfo {
    /// Token index of the closing `)`.
    close: usize,
    /// Top-level argument token spans.
    args: Vec<Range<usize>>,
    /// Workspace functions the call may land in (empty = opaque).
    targets: Vec<usize>,
    /// Simple-identifier receiver root (`"self"` for `self.m(..)`).
    receiver: Option<String>,
    /// Intrinsic or declared sanitizer: the whole call is invisible to
    /// evidence scanning and absorbs argument taint.
    sanitizer: bool,
    /// Index into `cfg.taint_sources` when the call resolves to a
    /// declared source function.
    source_decl: Option<usize>,
}

/// A function body re-lexed to statement granularity.
struct Body {
    /// Index into the engine's file table.
    file: usize,
    /// Token range between the body braces (exclusive).
    range: Range<usize>,
    /// Statement-level token ranges (broken at `;`, `{`, `}`; attribute
    /// and struct-literal groups skipped whole).
    units: Vec<Range<usize>>,
    /// The tail-expression region (after the last group-skipping
    /// top-level `;`) — evidence here means the function returns taint.
    tail: Range<usize>,
    /// Call sites by name-token index.
    calls: BTreeMap<usize, CInfo>,
    /// Tokens inside a sanitizer call (receiver chain + arguments):
    /// invisible to evidence scanning.
    sanitized: HashSet<usize>,
    /// Field-read tokens matching a declared field source → decl index.
    src_fields: BTreeMap<usize, usize>,
    /// All field-read tokens → field name (for derived field flows).
    field_reads: BTreeMap<usize, String>,
}

/// One confirmed source→sink hit, keyed for deterministic ordering and
/// dedup: `(file, line, sink, fn index)`.
type HitKey = (String, usize, &'static str, usize);

struct Engine<'a> {
    g: &'a CallGraph,
    asts: &'a [Ast<'a>],
    /// Per file: closer token index → opener token index.
    openers: Vec<HashMap<usize, usize>>,
    /// Per fn index (aligned with `g.fns`).
    bodies: Vec<Option<Body>>,
    source_specs: Vec<String>,
    enabled: BTreeSet<String>,
    /// Analysis state (monotone; first write wins).
    param_flow: Vec<BTreeSet<String>>,
    param_taint: Vec<BTreeMap<String, Prov>>,
    ret_source: Vec<Option<Prov>>,
    /// Derived field taint: field name → (writing crate, provenance).
    derived: BTreeMap<String, (String, Prov)>,
    /// Per source decl: matched seed sites (call sites + field reads).
    seeds: Vec<usize>,
    /// Per sanitizer decl: neutralized call sites.
    neutralized: Vec<usize>,
}

/// A deferred write to engine state, so scanning can borrow immutably.
enum Effect {
    Param(usize, String, Prov),
    Ret(usize, Prov),
    Field(String, String, Prov),
    Hit { fn_idx: usize, token: usize, sink: &'static str, prov: Prov },
}

/// `true` when the token before `i` ends a value expression (so `[` is an
/// index, `+`/`-`/`*` is binary arithmetic).
fn prev_is_value(ast: &Ast, i: usize) -> bool {
    let Some(p) = i.checked_sub(1) else { return false };
    if ast.is_punct(p, b')') || ast.is_punct(p, b']') {
        return true;
    }
    match ast.ident_at(p) {
        Some(w) => w == "self" || !graph::is_keyword(w),
        None => false,
    }
}

/// Builds the `CallSite` shape for a call whose name token is `i`
/// (mirrors the graph scan's classification).
fn call_site_at(ast: &Ast, i: usize, name: &str) -> CallSite {
    if i >= 1 && ast.is_punct(i - 1, b'.') {
        let mut kind = CallKind::Method;
        let mut receiver = None;
        if i >= 2 {
            if let Some(r) = ast.ident_at(i - 2) {
                let simple = i < 3
                    || !(ast.is_punct(i - 3, b'.')
                        || ast.is_punct(i - 3, b')')
                        || ast.is_punct(i - 3, b']'));
                if simple && r == "self" {
                    kind = CallKind::MethodSelf;
                } else if simple && !graph::is_keyword(r) {
                    receiver = Some(r.to_string());
                }
            }
        }
        return CallSite { name: name.to_string(), qualifier: Vec::new(), kind, receiver };
    }
    if i >= 2 && ast.is_punct(i - 1, b':') && ast.is_punct(i - 2, b':') {
        let mut qualifier = Vec::new();
        let mut k = i;
        while k >= 3 && ast.is_punct(k - 1, b':') && ast.is_punct(k - 2, b':') {
            match ast.ident_at(k - 3) {
                Some(seg) => {
                    qualifier.push(seg.to_string());
                    k -= 3;
                }
                None => break,
            }
        }
        qualifier.reverse();
        return CallSite {
            name: name.to_string(),
            qualifier,
            kind: CallKind::Path,
            receiver: None,
        };
    }
    CallSite { name: name.to_string(), qualifier: Vec::new(), kind: CallKind::Bare, receiver: None }
}

/// Start of the receiver/path chain feeding the call or cast whose final
/// token is `end` (inclusive): walks back over `.`-chains, `::` paths,
/// and closed `(..)`/`[..]` groups.
fn chain_start(ast: &Ast, openers: &HashMap<usize, usize>, end: usize) -> usize {
    let mut j = end;
    loop {
        if j >= 2 && ast.is_punct(j - 1, b'.') {
            let k = j - 2;
            if ast.is_punct(k, b')') || ast.is_punct(k, b']') {
                let Some(&o) = openers.get(&k) else { return j };
                j = if o >= 1 && ast.ident_at(o - 1).is_some() { o - 1 } else { o };
                continue;
            }
            if ast.ident_at(k).is_some() {
                j = k;
                continue;
            }
            return j;
        }
        if j >= 3 && ast.is_punct(j - 1, b':') && ast.is_punct(j - 2, b':') {
            if ast.ident_at(j - 3).is_some() {
                j -= 3;
                continue;
            }
            return j;
        }
        return j;
    }
}

/// Token span of the primary expression ending just before token `op`
/// (the left operand of a binary operator or `as` cast).
fn primary_back(ast: &Ast, openers: &HashMap<usize, usize>, op: usize) -> Range<usize> {
    let Some(last) = op.checked_sub(1) else { return op..op };
    if ast.is_punct(last, b')') || ast.is_punct(last, b']') {
        let Some(&o) = openers.get(&last) else { return last..op };
        return chain_start(
            ast,
            openers,
            if o >= 1 && ast.ident_at(o - 1).is_some() { o - 1 } else { o },
        )..op;
    }
    if ast.ident_at(last).is_some() {
        return chain_start(ast, openers, last)..op;
    }
    op..op
}

/// Token span of the primary expression starting at token `start` (the
/// right operand of a binary operator), bounded by `limit`.
fn primary_fwd(ast: &Ast, start: usize, limit: usize) -> Range<usize> {
    let mut i = start;
    while i < limit
        && (ast.is_punct(i, b'&')
            || ast.is_punct(i, b'*')
            || ast.is_punct(i, b'-')
            || ast.is_ident(i, "mut"))
    {
        i += 1;
    }
    let s = i;
    if i >= limit {
        return s..s;
    }
    if ast.is_punct(i, b'(') {
        i = ast.closer_of(i).map_or(limit, |c| c + 1);
    } else if ast.ident_at(i).is_some() {
        i += 1;
        while i + 1 < limit
            && ast.is_punct(i, b':')
            && ast.is_punct(i + 1, b':')
            && ast.ident_at(i + 2).is_some()
        {
            i += 3;
        }
    } else {
        return s..s;
    }
    loop {
        if i < limit && (ast.is_punct(i, b'(') || ast.is_punct(i, b'[')) {
            i = ast.closer_of(i).map_or(limit, |c| c + 1);
            continue;
        }
        if i + 1 < limit && ast.is_punct(i, b'.') && ast.ident_at(i + 1).is_some() {
            i += 2;
            continue;
        }
        break;
    }
    s..i.min(limit)
}

/// Splits a call's argument parentheses (`open`..`close` token indices)
/// into top-level argument spans.
fn split_args(ast: &Ast, open: usize, close: usize) -> Vec<Range<usize>> {
    let mut out = Vec::new();
    let mut start = open + 1;
    let mut i = open + 1;
    while i < close {
        if ast.is_punct(i, b'(') || ast.is_punct(i, b'[') || ast.is_punct(i, b'{') {
            i = ast.closer_of(i).map_or(i + 1, |c| c + 1);
            continue;
        }
        if ast.is_punct(i, b',') {
            out.push(start..i);
            start = i + 1;
        }
        i += 1;
    }
    if start < close {
        out.push(start..close);
    }
    if out.is_empty() && open + 1 < close {
        out.push(open + 1..close);
    }
    out
}

/// Breaks a body token range into statement-level units and computes the
/// tail-expression region. `(..)`/`[..]` groups, attributes, and
/// struct-literal braces (preceded by a capitalised ident or `Self`) are
/// skipped whole; other `{`/`}` and `;` break units.
fn segment(ast: &Ast, range: Range<usize>) -> (Vec<Range<usize>>, Range<usize>) {
    let mut units = Vec::new();
    let mut start = range.start;
    let mut i = range.start;
    while i < range.end {
        if ast.is_punct(i, b'#') && ast.is_punct(i + 1, b'[') {
            if let Some(c) = ast.closer_of(i + 1) {
                if start < i {
                    units.push(start..i);
                }
                start = c + 1;
                i = c + 1;
                continue;
            }
        }
        if ast.is_punct(i, b'(') || ast.is_punct(i, b'[') {
            i = ast.closer_of(i).map_or(i + 1, |c| c + 1);
            continue;
        }
        if ast.is_punct(i, b'{') {
            let literal = i > range.start
                && ast.ident_at(i - 1).is_some_and(|w| {
                    w == "Self" || w.chars().next().is_some_and(char::is_uppercase)
                });
            if literal {
                i = ast.closer_of(i).map_or(i + 1, |c| c + 1);
                continue;
            }
            if start < i {
                units.push(start..i);
            }
            start = i + 1;
            i += 1;
            continue;
        }
        if ast.is_punct(i, b'}') {
            if start < i {
                units.push(start..i);
            }
            start = i + 1;
            i += 1;
            continue;
        }
        if ast.is_punct(i, b';') {
            if start < i {
                units.push(start..i);
            }
            start = i + 1;
            i += 1;
            continue;
        }
        i += 1;
    }
    if start < range.end {
        units.push(start..range.end);
    }
    // Tail region: after the last `;` at brace-skipping top level.
    let mut tail = range.start;
    let mut i = range.start;
    while i < range.end {
        if ast.is_punct(i, b'(') || ast.is_punct(i, b'[') || ast.is_punct(i, b'{') {
            i = ast.closer_of(i).map_or(i + 1, |c| c + 1);
            continue;
        }
        if ast.is_punct(i, b';') {
            tail = i + 1;
        }
        i += 1;
    }
    (units, tail..range.end)
}

/// Finds the first token index in `span` (group-skipping top level) where
/// `pred` holds.
fn find_top_level(
    ast: &Ast,
    span: Range<usize>,
    pred: impl Fn(&Ast, usize) -> bool,
) -> Option<usize> {
    let mut i = span.start;
    while i < span.end {
        if ast.is_punct(i, b'(') || ast.is_punct(i, b'[') || ast.is_punct(i, b'{') {
            i = ast.closer_of(i).map_or(i + 1, |c| c + 1);
            continue;
        }
        if pred(ast, i) {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// A standalone assignment `=` (not `==`, `<=`, `>=`, `!=`, `=>`;
/// compound `+=`-style operators count — the write still happens).
fn is_assign_eq(ast: &Ast, i: usize) -> bool {
    if !ast.is_punct(i, b'=') || ast.is_punct(i + 1, b'=') || ast.is_punct(i + 1, b'>') {
        return false;
    }
    if let Some(p) = i.checked_sub(1) {
        for b in [b'=', b'!', b'<', b'>'] {
            if ast.is_punct(p, b) {
                return false;
            }
        }
    }
    true
}

impl<'a> Engine<'a> {
    fn new(
        g: &'a CallGraph,
        asts: &'a [Ast<'a>],
        files: &'a [String],
        cfg: &Config,
        stale: &mut Vec<String>,
    ) -> Self {
        let resolver = Resolver::new(&g.fns, &g.deps);
        let openers: Vec<HashMap<usize, usize>> = asts
            .iter()
            .map(|ast| (0..ast.len()).filter_map(|i| ast.closer_of(i).map(|c| (c, i))).collect())
            .collect();

        // Resolve the inventory. Unknown names are stale (fail-closed).
        let mut source_fn_decl: HashMap<usize, usize> = HashMap::new();
        let mut field_sources: Vec<(usize, String, String, String)> = Vec::new();
        let crates: HashSet<&str> = g.crates.iter().map(String::as_str).collect();
        for (di, s) in cfg.taint_sources.iter().enumerate() {
            if let Some((c, t, f)) = s.field_spec() {
                if !crates.contains(c) {
                    stale.push(format!(
                        "lint.toml: stale taint source \"{}\" — crate `{c}` is not in the \
                         workspace; fix the spec or remove it",
                        s.spec
                    ));
                }
                field_sources.push((di, c.to_string(), t.to_string(), f.to_string()));
            } else {
                let targets = g.resolve_entry(&s.spec);
                if targets.is_empty() {
                    stale.push(format!(
                        "lint.toml: stale taint source \"{}\" — resolves to no workspace \
                         function; fix the spec or remove it",
                        s.spec
                    ));
                }
                for t in targets {
                    source_fn_decl.entry(t).or_insert(di);
                }
            }
        }
        let mut sanitizer_fns: HashMap<usize, usize> = HashMap::new();
        for (di, s) in cfg.taint_sanitizers.iter().enumerate() {
            let targets = g.resolve_entry(&s.spec);
            if targets.is_empty() {
                stale.push(format!(
                    "lint.toml: stale taint sanitizer \"{}\" — resolves to no workspace \
                     function; fix the spec or remove it",
                    s.spec
                ));
            }
            for t in targets {
                sanitizer_fns.entry(t).or_insert(di);
            }
        }

        // Re-lex each file's fn bodies and match them to graph fns by
        // (file, name line, name).
        let mut def_at: HashMap<(usize, usize, &str), usize> = HashMap::new();
        let file_idx: HashMap<&str, usize> =
            files.iter().enumerate().map(|(i, f)| (f.as_str(), i)).collect();
        for (fi, f) in g.fns.iter().enumerate() {
            if let Some(&file) = file_idx.get(f.file.as_str()) {
                def_at.insert((file, f.line, f.name.as_str()), fi);
            }
        }

        let n = g.fns.len();
        let mut eng = Engine {
            g,
            asts,
            openers,
            bodies: (0..n).map(|_| None).collect(),
            source_specs: cfg.taint_sources.iter().map(|s| s.spec.clone()).collect(),
            enabled: cfg.taint_sinks.iter().map(|s| s.kind.clone()).collect(),
            param_flow: vec![BTreeSet::new(); n],
            param_taint: vec![BTreeMap::new(); n],
            ret_source: vec![None; n],
            derived: BTreeMap::new(),
            seeds: vec![0; cfg.taint_sources.len()],
            neutralized: vec![0; cfg.taint_sanitizers.len()],
        };

        for (file, ast) in asts.iter().enumerate() {
            for raw in graph::find_fns(ast) {
                let name = ast.text_of(raw.name_idx).to_string();
                let line = ast.line(raw.name_idx);
                let Some(&fi) = def_at.get(&(file, line, name.as_str())) else { continue };
                let body = eng.build_body(
                    file,
                    fi,
                    raw.body.clone(),
                    &resolver,
                    &source_fn_decl,
                    &sanitizer_fns,
                    &field_sources,
                );
                eng.bodies[fi] = Some(body);
            }
        }
        eng
    }

    #[allow(clippy::too_many_arguments)]
    fn build_body(
        &mut self,
        file: usize,
        fi: usize,
        range: Range<usize>,
        resolver: &Resolver,
        source_fn_decl: &HashMap<usize, usize>,
        sanitizer_fns: &HashMap<usize, usize>,
        field_sources: &[(usize, String, String, String)],
    ) -> Body {
        let ast = &self.asts[file];
        let openers = &self.openers[file];
        let def = &self.g.fns[fi];
        let (units, tail) = segment(ast, range.clone());
        let mut calls: BTreeMap<usize, CInfo> = BTreeMap::new();
        let mut sanitized: HashSet<usize> = HashSet::new();
        let mut src_fields: BTreeMap<usize, usize> = BTreeMap::new();
        let mut field_reads: BTreeMap<usize, String> = BTreeMap::new();

        let mut i = range.start;
        while i < range.end {
            if ast.is_punct(i, b'#') && ast.is_punct(i + 1, b'[') {
                if let Some(c) = ast.closer_of(i + 1) {
                    i = c + 1;
                    continue;
                }
            }
            let Some(w) = ast.ident_at(i) else {
                i += 1;
                continue;
            };
            // Call sites.
            if !graph::is_keyword(w) {
                let j = graph::skip_turbofish(ast, i + 1);
                if ast.is_punct(j, b'(') {
                    if let Some(close) = ast.closer_of(j) {
                        let site = call_site_at(ast, i, w);
                        let targets = if graph::is_closure_param_call(def, &site) {
                            Vec::new()
                        } else {
                            resolver.resolve(def, &site)
                        };
                        let decl_san = targets.iter().find_map(|t| sanitizer_fns.get(t)).copied();
                        let sanitizer = INTRINSIC_SANITIZERS.contains(&w) || decl_san.is_some();
                        if let Some(di) = decl_san {
                            self.neutralized[di] += 1;
                        }
                        let source_decl =
                            targets.iter().find_map(|t| source_fn_decl.get(t)).copied();
                        if let Some(di) = source_decl {
                            self.seeds[di] += 1;
                        }
                        if sanitizer {
                            for t in chain_start(ast, openers, i)..=close {
                                sanitized.insert(t);
                            }
                        }
                        let receiver = match site.kind {
                            CallKind::MethodSelf => Some("self".to_string()),
                            _ => site.receiver.clone(),
                        };
                        calls.insert(
                            i,
                            CInfo {
                                close,
                                args: split_args(ast, j, close),
                                targets,
                                receiver,
                                sanitizer,
                                source_decl,
                            },
                        );
                        i += 1;
                        continue;
                    }
                }
            }
            // Field reads: `.field` where the next token is not `(` and
            // the field starts with a letter (tuple indices excluded).
            if i >= 2
                && ast.is_punct(i - 1, b'.')
                && !ast.is_punct(i - 2, b'.')
                && !ast.is_punct(i + 1, b'(')
                && w.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
                && !graph::is_keyword(w)
            {
                field_reads.insert(i, w.to_string());
                // Receiver typing for declared field sources.
                let recv_ty: Option<&str> = ast.ident_at(i - 2).and_then(|r| {
                    let simple = i < 4
                        || !(ast.is_punct(i - 3, b'.')
                            || ast.is_punct(i - 3, b')')
                            || ast.is_punct(i - 3, b']'));
                    if !simple {
                        return None;
                    }
                    if r == "self" {
                        def.impl_type.as_deref()
                    } else {
                        def.param_types.iter().find(|(n, _)| n == r).map(|(_, t)| t.as_str())
                    }
                });
                for (di, c, t, f) in field_sources {
                    let visible = self.g.deps.get(&def.crate_ident).is_some_and(|v| v.contains(c));
                    if f == w && visible && recv_ty.is_none_or(|ty| ty == t) {
                        src_fields.entry(i).or_insert(*di);
                        self.seeds[*di] += 1;
                        break;
                    }
                }
            }
            i += 1;
        }
        Body { file, range, units, tail, calls, sanitized, src_fields, field_reads }
    }

    fn visible(&self, from: &str, to: &str) -> bool {
        self.g.deps.get(from).is_some_and(|v| v.contains(to))
    }

    /// First taint evidence in `span`, value-based: resolved calls are
    /// handled atomically through their summaries (a clean argument to a
    /// pass-through stays clean); opaque calls fall back to scanning
    /// their arguments inline (assume-tainted). `real` gates sources,
    /// return-sources, and derived fields (the summary fixpoint runs with
    /// them off).
    fn evidence(
        &self,
        fi: usize,
        span: Range<usize>,
        vars: &BTreeMap<String, Prov>,
        real: bool,
    ) -> Option<Prov> {
        let body = self.bodies[fi].as_ref()?;
        let ast = &self.asts[body.file];
        let me = || self.g.fns[fi].qualified();
        let mut i = span.start;
        while i < span.end {
            if body.sanitized.contains(&i) {
                i += 1;
                continue;
            }
            if ast.is_punct(i, b'#') && ast.is_punct(i + 1, b'[') {
                if let Some(c) = ast.closer_of(i + 1) {
                    i = c + 1;
                    continue;
                }
            }
            if let Some(ci) = body.calls.get(&i) {
                if ci.sanitizer {
                    i = ci.close + 1;
                    continue;
                }
                if let (Some(di), true) = (ci.source_decl, real) {
                    return Some(Prov { source: self.source_specs[di].clone(), via: vec![me()] });
                }
                if !ci.targets.is_empty() {
                    if real {
                        for &t in &ci.targets {
                            if let Some(p) = &self.ret_source[t] {
                                return Some(extend(p, me()));
                            }
                        }
                    }
                    for (k, aspan) in ci.args.iter().enumerate() {
                        let flows = ci.targets.iter().any(|&t| {
                            self.g.fns[t]
                                .params
                                .get(k)
                                .is_some_and(|n| self.param_flow[t].contains(n))
                        });
                        if flows {
                            if let Some(p) = self.evidence(fi, aspan.clone(), vars, real) {
                                return Some(p);
                            }
                        }
                    }
                    if ci.targets.iter().any(|&t| self.param_flow[t].contains("self")) {
                        if let Some(r) = &ci.receiver {
                            if let Some(p) = vars.get(r) {
                                return Some(p.clone());
                            }
                        }
                    }
                    i = ci.close + 1;
                    continue;
                }
                // Opaque call: the name is not a value; its arguments and
                // receiver are scanned inline (assume-tainted fallback).
                i += 1;
                continue;
            }
            if real {
                if let Some(&di) = body.src_fields.get(&i) {
                    return Some(Prov { source: self.source_specs[di].clone(), via: vec![me()] });
                }
                if let Some(fname) = body.field_reads.get(&i) {
                    if let Some((wcrate, p)) = self.derived.get(fname) {
                        if self.visible(&self.g.fns[fi].crate_ident, wcrate) {
                            return Some(extend(p, me()));
                        }
                    }
                }
            }
            if let Some(w) = ast.ident_at(i) {
                // A single leading `.` marks a field access (handled
                // above); a double `..` is a range, whose bound IS a
                // variable position.
                let field_dot =
                    i >= 1 && ast.is_punct(i - 1, b'.') && !(i >= 2 && ast.is_punct(i - 2, b'.'));
                let path_seg = i >= 2 && ast.is_punct(i - 1, b':') && ast.is_punct(i - 2, b':');
                let var_pos = !(field_dot
                    || path_seg
                    || ast.is_punct(i + 1, b':')
                    || ast.is_punct(i + 1, b'('));
                if var_pos && (w == "self" || !graph::is_keyword(w)) {
                    if let Some(p) = vars.get(w) {
                        return Some(p.clone());
                    }
                }
            }
            i += 1;
        }
        None
    }

    /// Taints every binding identifier in a pattern span: lowercase
    /// idents that are not struct-pattern labels (`name:`) or lifetimes.
    fn bind_pattern(
        &self,
        file: usize,
        span: Range<usize>,
        p: &Prov,
        vars: &mut BTreeMap<String, Prov>,
    ) {
        let ast = &self.asts[file];
        for i in span {
            let Some(w) = ast.ident_at(i) else { continue };
            if graph::is_keyword(w)
                || !w.chars().next().is_some_and(|c| c.is_ascii_lowercase() || c == '_')
            {
                continue;
            }
            if ast.is_punct(i + 1, b':') && !ast.is_punct(i + 2, b':') {
                continue; // struct-pattern label / type ascription
            }
            if i >= 1 && (ast.is_punct(i - 1, b'\'') || ast.is_punct(i - 1, b'.')) {
                continue;
            }
            vars.insert(w.to_string(), p.clone());
        }
    }

    /// Runs one statement: `let`/assignment/`for` binding propagation,
    /// receiver tainting, and (in real mode) argument→parameter and
    /// field-write effects.
    fn process_unit(
        &self,
        fi: usize,
        unit: Range<usize>,
        vars: &mut BTreeMap<String, Prov>,
        real: bool,
        effects: &mut Vec<Effect>,
    ) {
        let Some(body) = self.bodies[fi].as_ref() else { return };
        let ast = &self.asts[body.file];
        let def = &self.g.fns[fi];

        if let Some(fidx) = find_top_level(ast, unit.clone(), |a, i| a.is_ident(i, "for")) {
            if let Some(inx) = find_top_level(ast, fidx + 1..unit.end, |a, i| a.is_ident(i, "in")) {
                if let Some(p) = self.evidence(fi, inx + 1..unit.end, vars, real) {
                    self.bind_pattern(body.file, fidx + 1..inx, &p, vars);
                }
            }
        } else if let Some(lidx) = find_top_level(ast, unit.clone(), |a, i| a.is_ident(i, "let")) {
            if let Some(eq) = find_top_level(ast, lidx + 1..unit.end, is_assign_eq) {
                let pat_end = find_top_level(ast, lidx + 1..eq, |a, i| {
                    a.is_punct(i, b':')
                        && !a.is_punct(i + 1, b':')
                        && !a.is_punct(i.wrapping_sub(1), b':')
                })
                .unwrap_or(eq);
                if let Some(p) = self.evidence(fi, eq + 1..unit.end, vars, real) {
                    self.bind_pattern(body.file, lidx + 1..pat_end, &p, vars);
                }
            }
        } else if let Some(eq) = find_top_level(ast, unit.clone(), is_assign_eq) {
            if let Some(p) = self.evidence(fi, eq + 1..unit.end, vars, real) {
                // LHS shapes: `x`, `x[..]`, `recv.field` (last ident
                // before `=` preceded by `.`).
                let lhs: Vec<usize> = (unit.start..eq)
                    .filter(|&i| ast.ident_at(i).is_some() || !ast.is_punct(i, b'='))
                    .collect();
                let idents: Vec<usize> =
                    lhs.iter().copied().filter(|&i| ast.ident_at(i).is_some()).collect();
                if let Some(&last) = idents.last() {
                    if last >= 1 && ast.is_punct(last - 1, b'.') {
                        if real {
                            let fname = ast.text_of(last).to_string();
                            if fname.chars().next().is_some_and(|c| c.is_ascii_alphabetic()) {
                                effects.push(Effect::Field(
                                    fname,
                                    def.crate_ident.clone(),
                                    p.clone(),
                                ));
                            }
                        }
                    } else {
                        // Root identifier of `x` or `x[i]`.
                        let root = idents[0];
                        if let Some(w) = ast.ident_at(root) {
                            if !graph::is_keyword(w) || w == "self" {
                                vars.insert(w.to_string(), p.clone());
                            }
                        }
                    }
                }
            }
        }

        // Call effects: receiver tainting and interprocedural
        // argument→parameter propagation.
        let call_keys: Vec<usize> = body.calls.range(unit.clone()).map(|(&k, _)| k).collect();
        for ct in call_keys {
            let ci = &body.calls[&ct];
            if ci.sanitizer {
                continue;
            }
            // A method consuming a tainted argument taints its receiver
            // (`out.push(n)`); `self` is exempt to avoid flooding every
            // method of a type from one write.
            if let Some(r) = &ci.receiver {
                if r != "self" && !vars.contains_key(r) {
                    let arg_taint =
                        ci.args.iter().find_map(|a| self.evidence(fi, a.clone(), vars, real));
                    if let Some(p) = arg_taint {
                        vars.insert(r.clone(), p);
                    }
                }
            }
            if real && !ci.targets.is_empty() {
                for (k, aspan) in ci.args.iter().enumerate() {
                    if let Some(p) = self.evidence(fi, aspan.clone(), vars, real) {
                        for &t in &ci.targets {
                            if let Some(pname) = self.g.fns[t].params.get(k) {
                                effects.push(Effect::Param(
                                    t,
                                    pname.clone(),
                                    extend(&p, self.g.fns[t].qualified()),
                                ));
                            }
                        }
                    }
                }
                if let Some(r) = &ci.receiver {
                    if let Some(p) = vars.get(r) {
                        for &t in &ci.targets {
                            effects.push(Effect::Param(
                                t,
                                "self".to_string(),
                                extend(p, self.g.fns[t].qualified()),
                            ));
                        }
                    }
                }
            }
        }
    }

    /// One full pass over a function: seeds locals from the current
    /// interprocedural state, propagates through its statements (two
    /// rounds for simple back-edges), then reports return taint and —
    /// when `collect` — sink hits.
    fn pass_fn(&self, fi: usize, collect: bool, effects: &mut Vec<Effect>) {
        let Some(body) = self.bodies[fi].as_ref() else { return };
        let ast = &self.asts[body.file];
        let mut vars = self.param_taint[fi].clone();
        for _ in 0..2 {
            for u in body.units.clone() {
                self.process_unit(fi, u, &mut vars, true, effects);
            }
        }
        // Return taint is computed with parameter taint EXCLUDED:
        // param→return flow is the `param_flow` summary's job (applied at
        // each call site against that caller's own arguments), while
        // `ret_source` records taint that originates inside the body and
        // escapes to every caller. Seeding it from `param_taint` would
        // make one tainting caller pollute every other caller's chains.
        let mut internal: BTreeMap<String, Prov> = BTreeMap::new();
        let mut scratch = Vec::new();
        for _ in 0..2 {
            for u in body.units.clone() {
                self.process_unit(fi, u, &mut internal, true, &mut scratch);
            }
        }
        for u in &body.units {
            if (u.start..u.end).any(|i| ast.is_ident(i, "return")) {
                if let Some(p) = self.evidence(fi, u.clone(), &internal, true) {
                    effects.push(Effect::Ret(fi, p));
                }
            }
        }
        if !body.tail.is_empty() {
            if let Some(p) = self.evidence(fi, body.tail.clone(), &internal, true) {
                effects.push(Effect::Ret(fi, p));
            }
        }
        if collect {
            self.collect_sinks(fi, &vars, effects);
        }
    }

    /// Whether `param` (or the pseudo-parameter `"self"`) flows to the
    /// function's return value, under the current callee summaries.
    fn flows_to_ret(&self, fi: usize, param: &str) -> bool {
        let Some(body) = self.bodies[fi].as_ref() else { return false };
        let ast = &self.asts[body.file];
        let mut vars = BTreeMap::new();
        vars.insert(param.to_string(), Prov { source: String::new(), via: Vec::new() });
        let mut sink = Vec::new();
        for _ in 0..2 {
            for u in body.units.clone() {
                self.process_unit(fi, u, &mut vars, false, &mut sink);
            }
        }
        for u in &body.units {
            if (u.start..u.end).any(|i| ast.is_ident(i, "return"))
                && self.evidence(fi, u.clone(), &vars, false).is_some()
            {
                return true;
            }
        }
        !body.tail.is_empty() && self.evidence(fi, body.tail.clone(), &vars, false).is_some()
    }

    /// Scans the body for declared sink constructs consuming taint.
    fn collect_sinks(&self, fi: usize, vars: &BTreeMap<String, Prov>, effects: &mut Vec<Effect>) {
        let Some(body) = self.bodies[fi].as_ref() else { return };
        let ast = &self.asts[body.file];
        let openers = &self.openers[body.file];
        let enabled = |k: &str| self.enabled.contains(k);
        let hit = |token: usize, sink: &'static str, prov: Prov, effects: &mut Vec<Effect>| {
            effects.push(Effect::Hit { fn_idx: fi, token, sink, prov });
        };
        let mut i = body.range.start;
        while i < body.range.end {
            if ast.is_punct(i, b'#') && ast.is_punct(i + 1, b'[') {
                if let Some(c) = ast.closer_of(i + 1) {
                    i = c + 1;
                    continue;
                }
            }
            if let Some(w) = ast.ident_at(i) {
                let j = graph::skip_turbofish(ast, i + 1);
                if matches!(w, "with_capacity" | "reserve" | "reserve_exact")
                    && enabled("alloc-size")
                    && ast.is_punct(j, b'(')
                {
                    if let Some(c) = ast.closer_of(j) {
                        if let Some(p) = self.evidence(fi, j + 1..c, vars, true) {
                            hit(i, "alloc-size", p, effects);
                        }
                    }
                }
                if w == "vec"
                    && enabled("alloc-size")
                    && ast.is_punct(i + 1, b'!')
                    && ast.is_punct(i + 2, b'[')
                {
                    if let Some(c) = ast.closer_of(i + 2) {
                        if let Some(semi) =
                            find_top_level(ast, i + 3..c, |a, k| a.is_punct(k, b';'))
                        {
                            if let Some(p) = self.evidence(fi, semi + 1..c, vars, true) {
                                hit(i, "alloc-size", p, effects);
                            }
                        }
                    }
                }
                if w == "as" && enabled("as-cast") {
                    if let Some(ty) = ast.ident_at(i + 1) {
                        if NARROW_CASTS.contains(&ty) {
                            let span = primary_back(ast, openers, i);
                            if let Some(p) = self.evidence(fi, span, vars, true) {
                                hit(i, "as-cast", p, effects);
                            }
                        }
                    }
                }
                if w == "for" && enabled("loop-bound") {
                    // `for PAT in EXPR {`: a tainted range bound means
                    // attacker-controlled iteration count.
                    let mut k = i + 1;
                    let mut in_idx = None;
                    while k < body.range.end {
                        if ast.is_punct(k, b'(') || ast.is_punct(k, b'[') {
                            k = ast.closer_of(k).map_or(k + 1, |c| c + 1);
                            continue;
                        }
                        if ast.is_punct(k, b'{') {
                            break;
                        }
                        if ast.is_ident(k, "in") {
                            in_idx = Some(k);
                            break;
                        }
                        k += 1;
                    }
                    if let Some(inx) = in_idx {
                        let mut e = inx + 1;
                        let mut brace = None;
                        let mut has_range = false;
                        while e < body.range.end {
                            if ast.is_punct(e, b'(') || ast.is_punct(e, b'[') {
                                e = ast.closer_of(e).map_or(e + 1, |c| c + 1);
                                continue;
                            }
                            if ast.is_punct(e, b'{') {
                                brace = Some(e);
                                break;
                            }
                            if ast.is_punct(e, b'.') && ast.is_punct(e + 1, b'.') {
                                has_range = true;
                            }
                            e += 1;
                        }
                        if let (Some(b), true) = (brace, has_range) {
                            if let Some(p) = self.evidence(fi, inx + 1..b, vars, true) {
                                hit(i, "loop-bound", p, effects);
                            }
                        }
                    }
                }
            }
            if ast.is_punct(i, b'[') && enabled("index") && prev_is_value(ast, i) {
                if let Some(c) = ast.closer_of(i) {
                    if let Some(p) = self.evidence(fi, i + 1..c, vars, true) {
                        hit(i, "index", p, effects);
                    }
                }
            }
            if enabled("arith")
                && (ast.is_punct(i, b'+') || ast.is_punct(i, b'-') || ast.is_punct(i, b'*'))
                && prev_is_value(ast, i)
                && !(ast.is_punct(i, b'-') && ast.is_punct(i + 1, b'>'))
            {
                let line = ast.src_line(i);
                let floaty =
                    line.contains("f32") || line.contains("f64") || graph::has_float_literal(line);
                if !floaty {
                    let left = primary_back(ast, openers, i);
                    let rstart = if ast.is_punct(i + 1, b'=') { i + 2 } else { i + 1 };
                    let right = primary_fwd(ast, rstart, body.range.end);
                    let p = self
                        .evidence(fi, left, vars, true)
                        .or_else(|| self.evidence(fi, right, vars, true));
                    if let Some(p) = p {
                        hit(i, "arith", p, effects);
                    }
                }
            }
            i += 1;
        }
    }

    /// Applies deferred effects; returns whether global state changed.
    /// All state is first-write-wins, so the fixpoint is monotone.
    fn apply(&mut self, effects: Vec<Effect>, hits: &mut BTreeMap<HitKey, (Prov, String)>) -> bool {
        let mut changed = false;
        for e in effects {
            match e {
                Effect::Param(t, name, p) => {
                    if let std::collections::btree_map::Entry::Vacant(v) =
                        self.param_taint[t].entry(name)
                    {
                        v.insert(p);
                        changed = true;
                    }
                }
                Effect::Ret(t, p) => {
                    if self.ret_source[t].is_none() {
                        self.ret_source[t] = Some(p);
                        changed = true;
                    }
                }
                Effect::Field(name, krate, p) => {
                    if let std::collections::btree_map::Entry::Vacant(v) = self.derived.entry(name)
                    {
                        v.insert((krate, p));
                        changed = true;
                    }
                }
                Effect::Hit { fn_idx, token, sink, prov } => {
                    let body = self.bodies[fn_idx].as_ref().expect("hit in body");
                    let ast = &self.asts[body.file];
                    let key = (self.g.fns[fn_idx].file.clone(), ast.line(token), sink, fn_idx);
                    hits.entry(key).or_insert_with(|| (prov, ast.src_line(token).to_string()));
                }
            }
        }
        changed
    }

    fn run(&mut self) -> BTreeMap<HitKey, (Prov, String)> {
        // Phase A: flows-to-return summaries, to a fixpoint.
        for _ in 0..20 {
            let mut add: Vec<(usize, String)> = Vec::new();
            for fi in 0..self.g.fns.len() {
                let mut cands: Vec<String> = self.g.fns[fi].params.clone();
                if self.g.fns[fi].impl_type.is_some() {
                    cands.push("self".to_string());
                }
                for p in cands {
                    if !self.param_flow[fi].contains(&p) && self.flows_to_ret(fi, &p) {
                        add.push((fi, p));
                    }
                }
            }
            if add.is_empty() {
                break;
            }
            for (fi, p) in add {
                self.param_flow[fi].insert(p);
            }
        }
        // Phase B: real interprocedural propagation, to a fixpoint.
        let mut hits = BTreeMap::new();
        for _ in 0..50 {
            let mut effects = Vec::new();
            for fi in 0..self.g.fns.len() {
                self.pass_fn(fi, false, &mut effects);
            }
            if !self.apply(effects, &mut hits) {
                break;
            }
        }
        // Final collection pass with the converged state.
        let mut effects = Vec::new();
        for fi in 0..self.g.fns.len() {
            self.pass_fn(fi, true, &mut effects);
        }
        self.apply(effects, &mut hits);
        hits
    }
}

/// Builds the call graph and runs the taint analysis against `cfg`.
pub fn analyze(root: &Path, cfg: &Config) -> Result<TaintOutcome, String> {
    let g = graph::build(root)?;
    let mut stale: Vec<String> = Vec::new();

    let mut files: Vec<String> = g.fns.iter().map(|f| f.file.clone()).collect();
    files.sort();
    files.dedup();
    let mut texts: Vec<String> = Vec::with_capacity(files.len());
    for rel in &files {
        texts.push(
            std::fs::read_to_string(root.join(rel)).map_err(|e| format!("reading {rel}: {e}"))?,
        );
    }
    let scrubs: Vec<Scrubbed> = texts.iter().map(|t| scrub(t)).collect();
    let asts: Vec<Ast> = texts.iter().zip(&scrubs).map(|(t, s)| Ast::lex(t, s)).collect();

    let mut eng = Engine::new(&g, &asts, &files, cfg, &mut stale);
    let hits = eng.run();

    // Waiver matching: first matching waiver wins; unused waivers are
    // stale. Waiver `fn` matches the bare function name.
    let mut waiver_sites = vec![0usize; cfg.taint_waivers.len()];
    let mut sink_flagged: BTreeMap<&str, usize> = BTreeMap::new();
    let mut sink_waived: BTreeMap<&str, usize> = BTreeMap::new();
    let mut violations: Vec<TaintViolation> = Vec::new();
    for ((file, line, sink, fn_idx), (prov, snippet)) in &hits {
        let def = &g.fns[*fn_idx];
        let waiver =
            cfg.taint_waivers.iter().position(|w| w.matches(file, sink, &def.name, snippet));
        match waiver {
            Some(wi) => {
                waiver_sites[wi] += 1;
                *sink_waived.entry(sink).or_insert(0) += 1;
            }
            None => {
                *sink_flagged.entry(sink).or_insert(0) += 1;
                violations.push(TaintViolation {
                    file: file.clone(),
                    line: *line,
                    sink,
                    func: def.qualified(),
                    source: prov.source.clone(),
                    chain: prov.via.clone(),
                    snippet: snippet.clone(),
                });
            }
        }
    }
    for (wi, w) in cfg.taint_waivers.iter().enumerate() {
        if waiver_sites[wi] == 0 {
            stale.push(format!(
                "lint.toml: stale taint waiver (path = \"{}\"{}) — fires on no site; remove it",
                w.path,
                w.sink.as_deref().map(|s| format!(", sink = \"{s}\"")).unwrap_or_default()
            ));
        }
    }
    violations
        .sort_by(|a, b| (a.file.as_str(), a.line, a.sink).cmp(&(b.file.as_str(), b.line, b.sink)));

    let report = render_report(
        &g,
        cfg,
        &eng.seeds,
        &eng.neutralized,
        &sink_flagged,
        &sink_waived,
        &waiver_sites,
        violations.len(),
    );
    Ok(TaintOutcome { violations, stale, report })
}

/// Renders the deterministic `taint-report.json` body: a pure function of
/// the tree and lint.toml (no timestamps, sorted collections), so CI can
/// compare the regenerated file byte-for-byte.
#[allow(clippy::too_many_arguments)]
fn render_report(
    g: &CallGraph,
    cfg: &Config,
    seeds: &[usize],
    neutralized: &[usize],
    sink_flagged: &BTreeMap<&str, usize>,
    sink_waived: &BTreeMap<&str, usize>,
    waiver_sites: &[usize],
    violations: usize,
) -> String {
    let edges: usize = g.callees.iter().map(Vec::len).sum();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"rtse-taint-report/v1\",\n");
    out.push_str("  \"call_graph\": {\n");
    out.push_str(&format!("    \"crates\": {},\n", g.crates.len()));
    out.push_str(&format!("    \"files_scanned\": {},\n", g.files_scanned));
    out.push_str(&format!("    \"functions\": {},\n", g.fns.len()));
    out.push_str(&format!("    \"edges\": {edges},\n"));
    out.push_str(&format!("    \"unresolved_calls\": {}\n", g.unresolved_calls));
    out.push_str("  },\n");
    out.push_str("  \"sources\": [\n");
    for (i, s) in cfg.taint_sources.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"spec\": \"{}\",\n", esc(&s.spec)));
        out.push_str(&format!(
            "      \"kind\": \"{}\",\n",
            if s.field_spec().is_some() { "field" } else { "fn" }
        ));
        out.push_str(&format!("      \"seeded_sites\": {},\n", seeds[i]));
        out.push_str(&format!("      \"reason\": \"{}\"\n", esc(&s.reason)));
        out.push_str(if i + 1 < cfg.taint_sources.len() { "    },\n" } else { "    }\n" });
    }
    out.push_str("  ],\n");
    out.push_str("  \"sanitizers\": [\n");
    for (i, s) in cfg.taint_sanitizers.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"spec\": \"{}\",\n", esc(&s.spec)));
        out.push_str(&format!("      \"neutralized_sites\": {},\n", neutralized[i]));
        out.push_str(&format!("      \"reason\": \"{}\"\n", esc(&s.reason)));
        out.push_str(if i + 1 < cfg.taint_sanitizers.len() { "    },\n" } else { "    }\n" });
    }
    out.push_str("  ],\n");
    out.push_str("  \"sinks\": [\n");
    for (i, s) in cfg.taint_sinks.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"kind\": \"{}\",\n", esc(&s.kind)));
        out.push_str(&format!(
            "      \"flagged\": {},\n",
            sink_flagged.get(s.kind.as_str()).unwrap_or(&0)
        ));
        out.push_str(&format!(
            "      \"waived\": {},\n",
            sink_waived.get(s.kind.as_str()).unwrap_or(&0)
        ));
        out.push_str(&format!("      \"reason\": \"{}\"\n", esc(&s.reason)));
        out.push_str(if i + 1 < cfg.taint_sinks.len() { "    },\n" } else { "    }\n" });
    }
    out.push_str("  ],\n");
    out.push_str("  \"waivers\": [\n");
    for (i, w) in cfg.taint_waivers.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"path\": \"{}\",\n", esc(&w.path)));
        if let Some(s) = &w.sink {
            out.push_str(&format!("      \"sink\": \"{}\",\n", esc(s)));
        }
        if let Some(f) = &w.func {
            out.push_str(&format!("      \"fn\": \"{}\",\n", esc(f)));
        }
        if let Some(c) = &w.contains {
            out.push_str(&format!("      \"contains\": \"{}\",\n", esc(c)));
        }
        out.push_str(&format!("      \"sites\": {},\n", waiver_sites[i]));
        out.push_str(&format!("      \"reason\": \"{}\"\n", esc(&w.reason)));
        out.push_str(if i + 1 < cfg.taint_waivers.len() { "    },\n" } else { "    }\n" });
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"violations\": {violations}\n"));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allow;
    use std::fs;
    use std::path::PathBuf;

    /// A throwaway fixture workspace under the system temp dir (mirrors
    /// the flow tests' fixture; pid + tag keyed so parallel test binaries
    /// never collide).
    struct Fixture {
        root: PathBuf,
    }

    impl Fixture {
        fn new(tag: &str, files: &[(&str, &str)]) -> Self {
            let root =
                std::env::temp_dir().join(format!("xtask-taint-{}-{tag}", std::process::id()));
            let _ = fs::remove_dir_all(&root);
            for (rel, content) in files {
                let path = root.join(rel);
                fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
                fs::write(&path, content).expect("write fixture file");
            }
            Fixture { root }
        }
    }

    impl Drop for Fixture {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.root);
        }
    }

    const APP_MANIFEST: &str =
        "[package]\nname = \"app\"\n\n[dependencies]\nutil = { path = \"../util\" }\n";
    const UTIL_MANIFEST: &str = "[package]\nname = \"util\"\n";

    const UTIL_LIB: &str = "pub fn fill(out: &mut [u64], n: usize) {\n    \
                            for i in 0..n {\n        out[i] = 1;\n    }\n}\n\
                            pub fn clamp_len(n: usize) -> usize {\n    \
                            if n > 64 { 64 } else { n }\n}\n\
                            pub fn apply(n: usize, f: impl Fn(usize) -> usize) -> usize {\n    \
                            f(n)\n}\n";

    fn config(toml: &str) -> Config {
        allow::parse(toml).expect("fixture lint.toml parses")
    }

    const BASE_TOML: &str = "[[taint]]\nsource = \"app::wire_len\"\nreason = \"wire length\"\n\n\
                             [[taint]]\nsink = \"alloc-size\"\nreason = \"attacker-sized alloc\"\n\n\
                             [[taint]]\nsink = \"index\"\nreason = \"panic\"\n\n\
                             [[taint]]\nsink = \"loop-bound\"\nreason = \"cpu\"\n\n\
                             [[taint]]\nsanitizer = \"util::clamp_len\"\nreason = \"caps at 64\"\n";

    fn seeded_fixture(tag: &str) -> Fixture {
        Fixture::new(
            tag,
            &[
                ("crates/app/Cargo.toml", APP_MANIFEST),
                ("crates/util/Cargo.toml", UTIL_MANIFEST),
                (
                    "crates/app/src/lib.rs",
                    "pub fn wire_len(buf: &[u8]) -> usize {\n    buf.len()\n}\n\
                     pub fn serve(buf: &[u8], table: &[u64]) -> u64 {\n    \
                     let n = wire_len(buf);\n    \
                     let mut out = Vec::with_capacity(n);\n    \
                     out.push(1u64);\n    \
                     table[n]\n}\n\
                     pub fn fanout(buf: &[u8], out: &mut [u64]) {\n    \
                     let n = wire_len(buf);\n    \
                     util::fill(out, n);\n}\n\
                     pub fn safe(buf: &[u8]) -> Vec<u64> {\n    \
                     let n = util::clamp_len(wire_len(buf));\n    \
                     let mut out = Vec::with_capacity(n);\n    \
                     out.push(0);\n    \
                     out\n}\n",
                ),
                ("crates/util/src/lib.rs", UTIL_LIB),
            ],
        )
    }

    /// Satellite: the seeded regression — a tainted allocation and a
    /// tainted index must both be caught with the correct source→sink
    /// chains, and the cross-crate flow must carry the caller in its
    /// chain.
    #[test]
    fn seeded_alloc_and_index_are_caught_with_chains() {
        let fx = seeded_fixture("seeded");
        let out = analyze(&fx.root, &config(BASE_TOML)).expect("analysis runs");
        assert!(out.stale.is_empty(), "{:?}", out.stale);
        let find = |sink: &str, func: &str| {
            out.violations
                .iter()
                .find(|v| v.sink == sink && v.func.ends_with(func))
                .unwrap_or_else(|| panic!("no {sink} violation in {func}: {:?}", out.violations))
        };
        let alloc = find("alloc-size", "app::serve");
        assert_eq!(alloc.source, "app::wire_len");
        assert_eq!(alloc.chain, vec!["app::serve"]);
        let index = find("index", "app::serve");
        assert_eq!(index.chain, vec!["app::serve"]);
        assert!(index.snippet.contains("table[n]"), "{index:?}");
        let lb = find("loop-bound", "util::fill");
        assert_eq!(lb.chain, vec!["app::fanout", "util::fill"]);
        // The loop variable is itself tainted by the bound.
        let idx2 = find("index", "util::fill");
        assert_eq!(idx2.chain, vec!["app::fanout", "util::fill"]);
    }

    /// A flow that passes through a declared sanitizer is clean — the
    /// same allocation shape as `serve`, with a `clamp_len` in between.
    #[test]
    fn sanitized_flow_passes() {
        let fx = seeded_fixture("sanitized");
        let out = analyze(&fx.root, &config(BASE_TOML)).expect("analysis runs");
        assert!(
            !out.violations.iter().any(|v| v.func.ends_with("app::safe")),
            "sanitized flow flagged: {:?}",
            out.violations
        );
        // The sanitizer fired: the report records its neutralized site.
        assert!(out.report.contains("\"neutralized_sites\": 1"), "{}", out.report);
    }

    /// Satellite: the PR 6 closure-parameter imprecision fix — taint must
    /// survive a pass through a closure-parameter call (`apply` invokes
    /// `f(n)`, which resolves to nothing) via the assume-tainted
    /// fallback, and the summary must carry it across the call.
    #[test]
    fn taint_flows_through_closure_parameter_calls() {
        let fx = Fixture::new(
            "closure",
            &[
                ("crates/app/Cargo.toml", APP_MANIFEST),
                ("crates/util/Cargo.toml", UTIL_MANIFEST),
                (
                    "crates/app/src/lib.rs",
                    "pub fn wire_len(buf: &[u8]) -> usize {\n    buf.len()\n}\n\
                     pub fn closure_flow(buf: &[u8], table: &[u64]) -> u64 {\n    \
                     let m = util::apply(wire_len(buf), |x| x + 1);\n    \
                     table[m]\n}\n",
                ),
                ("crates/util/src/lib.rs", UTIL_LIB),
            ],
        );
        let toml = "[[taint]]\nsource = \"app::wire_len\"\nreason = \"wire length\"\n\n\
                    [[taint]]\nsink = \"index\"\nreason = \"panic\"\n\n\
                    [[taint]]\nsanitizer = \"util::clamp_len\"\nreason = \"caps at 64\"\n";
        let out = analyze(&fx.root, &config(toml)).expect("analysis runs");
        let v = out
            .violations
            .iter()
            .find(|v| v.sink == "index" && v.func.ends_with("closure_flow"))
            .unwrap_or_else(|| panic!("closure flow not caught: {:?}", out.violations));
        assert_eq!(v.source, "app::wire_len");
        assert_eq!(v.chain, vec!["app::closure_flow"]);
    }

    /// Arithmetic and narrowing casts on tainted values are sinks; the
    /// checked intrinsics sanitize.
    #[test]
    fn arith_and_cast_sinks_with_intrinsic_sanitizers() {
        let fx = Fixture::new(
            "arith",
            &[
                ("crates/app/Cargo.toml", APP_MANIFEST),
                ("crates/util/Cargo.toml", UTIL_MANIFEST),
                (
                    "crates/app/src/lib.rs",
                    "pub fn wire_len(buf: &[u8]) -> usize {\n    buf.len()\n}\n\
                     pub fn math(buf: &[u8]) -> u32 {\n    \
                     let n = wire_len(buf);\n    \
                     let total = 20 + 12 * n;\n    \
                     total as u32\n}\n\
                     pub fn careful(buf: &[u8]) -> Option<usize> {\n    \
                     let n = wire_len(buf);\n    \
                     20usize.checked_add(n)\n}\n",
                ),
                ("crates/util/src/lib.rs", UTIL_LIB),
            ],
        );
        let toml = "[[taint]]\nsource = \"app::wire_len\"\nreason = \"wire length\"\n\n\
                    [[taint]]\nsink = \"arith\"\nreason = \"wraps\"\n\n\
                    [[taint]]\nsink = \"as-cast\"\nreason = \"truncates\"\n\n\
                    [[taint]]\nsanitizer = \"util::clamp_len\"\nreason = \"caps at 64\"\n";
        let out = analyze(&fx.root, &config(toml)).expect("analysis runs");
        assert!(
            out.violations.iter().any(|v| v.sink == "arith" && v.func.ends_with("math")),
            "{:?}",
            out.violations
        );
        assert!(
            out.violations.iter().any(|v| v.sink == "as-cast" && v.func.ends_with("math")),
            "{:?}",
            out.violations
        );
        assert!(
            !out.violations.iter().any(|v| v.func.ends_with("careful")),
            "checked_add must sanitize: {:?}",
            out.violations
        );
    }

    /// Waivers silence sites (recording their count); waivers that fire
    /// on nothing and sources/sanitizers that resolve to nothing are
    /// stale.
    #[test]
    fn waivers_and_staleness() {
        let fx = seeded_fixture("waive");
        let toml = format!(
            "{BASE_TOML}\n[[taint]]\npath = \"crates/app/src/lib.rs\"\nsink = \"index\"\n\
             reason = \"bounded by clamp upstream\"\n"
        );
        let out = analyze(&fx.root, &config(&toml)).expect("analysis runs");
        assert!(!out.violations.iter().any(|v| v.sink == "index" && v.file.contains("app")));
        assert!(out.report.contains("\"sites\": 1"), "{}", out.report);

        let stale_toml = format!(
            "{BASE_TOML}\n[[taint]]\nsource = \"app::no_such_fn\"\nreason = \"x\"\n\n\
             [[taint]]\npath = \"crates/app/src/lib.rs\"\nsink = \"as-cast\"\nreason = \"x\"\n"
        );
        let out = analyze(&fx.root, &config(&stale_toml)).expect("analysis runs");
        assert!(out.stale.iter().any(|s| s.contains("stale taint source")), "{:?}", out.stale);
        assert!(out.stale.iter().any(|s| s.contains("stale taint waiver")), "{:?}", out.stale);
    }

    /// Declared field sources seed reads through typed receivers, and the
    /// report is byte-identical across runs.
    #[test]
    fn field_sources_and_determinism() {
        let fx = Fixture::new(
            "field",
            &[
                ("crates/app/Cargo.toml", APP_MANIFEST),
                ("crates/util/Cargo.toml", UTIL_MANIFEST),
                (
                    "crates/app/src/lib.rs",
                    "pub struct Frame {\n    pub count: usize,\n}\n\
                     impl Frame {\n    pub fn new() -> Self {\n        Frame { count: 0 }\n    }\n}\n\
                     pub fn dispatch(frame: &Frame, table: &[u64]) -> u64 {\n    \
                     table[frame.count]\n}\n",
                ),
                ("crates/util/src/lib.rs", UTIL_LIB),
            ],
        );
        let toml = "[[taint]]\nsource = \"app::Frame.count\"\nreason = \"wire count\"\n\n\
                    [[taint]]\nsink = \"index\"\nreason = \"panic\"\n\n\
                    [[taint]]\nsanitizer = \"util::clamp_len\"\nreason = \"caps at 64\"\n";
        let out = analyze(&fx.root, &config(toml)).expect("analysis runs");
        let v = out
            .violations
            .iter()
            .find(|v| v.sink == "index" && v.func.ends_with("dispatch"))
            .unwrap_or_else(|| panic!("field source not seeded: {:?}", out.violations));
        assert_eq!(v.source, "app::Frame.count");
        assert_eq!(v.chain, vec!["app::dispatch"]);
        let again = analyze(&fx.root, &config(toml)).expect("analysis runs");
        assert_eq!(out.report, again.report, "report must be deterministic");
    }
}
