//! Token-level AST pass for the concurrency-policy rules.
//!
//! The original policy rules ([`crate::rules`]) scan scrubbed text with
//! byte searches; that is fine for `unwrap()` but too coarse for the
//! concurrency rules, which need real token boundaries (`Ordering` vs
//! `MyOrdering`), path structure (`std :: sync` across whitespace), and
//! matched delimiters (how long a lock guard's scope extends). This
//! module lexes the scrubbed source into a token stream with byte spans,
//! pairs its delimiters, and implements three rules on top:
//!
//! * `raw-sync` — any `std::sync` path in library code outside
//!   `crates/sync`; concurrency primitives must come through the
//!   `rtse-sync` shim so loom model checking sees them.
//! * `relaxed-ordering` / `seqcst-ordering` / `stale-annotation` — the
//!   atomic-ordering policy: `Ordering::Relaxed` is legal only on lines
//!   annotated `// lint: relaxed-counter` (monotonic counters with no
//!   ordering obligations); `Ordering::SeqCst` is banned in library code
//!   (downgrade per the DESIGN.md §8 table or waive the site in
//!   `lint.toml`); an annotation on a line with no `Relaxed` is stale.
//! * `lock-order` — acquisition-order checking against the `[[lock]]`
//!   hierarchy declared in `lint.toml`: while an acquisition of rank `r`
//!   is held, only strictly higher ranks may be acquired.
//!
//! The annotation check reads the *original* source line (scrubbing
//! removes comments), keyed by the scrubbed token's line number — byte
//! offsets are identical between the two views.

use crate::allow::LockEntry;
use crate::rules::Violation;
use crate::scrub::Scrubbed;

/// The marker that legalises an `Ordering::Relaxed` site.
pub const RELAXED_MARKER: &str = "lint: relaxed-counter";

/// What a token is. Identifiers and integer literals both lex as `Ident`
/// (the rules only compare against known names); every other non-space
/// byte is a single-byte `Punct`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Ident,
    Punct(u8),
}

/// One token with its byte span in the (scrubbed) source.
#[derive(Debug)]
struct Token {
    kind: Kind,
    start: usize,
    end: usize,
}

/// A lexed file: token stream plus delimiter pairing.
pub struct Ast<'a> {
    src: &'a str,
    sc: &'a Scrubbed,
    tokens: Vec<Token>,
    /// For each token index holding `(`/`[`/`{`: the index of its matching
    /// closer (best-effort; unbalanced files leave `None`).
    closer: Vec<Option<usize>>,
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

impl<'a> Ast<'a> {
    /// Lexes scrubbed source into tokens and pairs the delimiters.
    pub fn lex(src: &'a str, sc: &'a Scrubbed) -> Self {
        let text = &sc.text;
        let mut tokens = Vec::new();
        let mut i = 0;
        while i < text.len() {
            let b = text[i];
            if b.is_ascii_whitespace() {
                i += 1;
            } else if is_ident_byte(b) {
                let start = i;
                while i < text.len() && is_ident_byte(text[i]) {
                    i += 1;
                }
                tokens.push(Token { kind: Kind::Ident, start, end: i });
            } else {
                tokens.push(Token { kind: Kind::Punct(b), start: i, end: i + 1 });
                i += 1;
            }
        }
        let mut closer = vec![None; tokens.len()];
        let mut stack: Vec<(usize, u8)> = Vec::new();
        for (idx, t) in tokens.iter().enumerate() {
            match t.kind {
                Kind::Punct(open @ (b'(' | b'[' | b'{')) => stack.push((idx, open)),
                Kind::Punct(close @ (b')' | b']' | b'}')) => {
                    let open = match close {
                        b')' => b'(',
                        b']' => b'[',
                        _ => b'{',
                    };
                    // Pop through any unclosed mismatches (macro edge cases).
                    while let Some((oidx, ob)) = stack.pop() {
                        if ob == open {
                            closer[oidx] = Some(idx);
                            break;
                        }
                    }
                }
                _ => {}
            }
        }
        Self { src, sc, tokens, closer }
    }

    /// Number of tokens in the stream.
    pub(crate) fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Text of token `idx` when it is an identifier (or numeric literal).
    pub(crate) fn ident_at(&self, idx: usize) -> Option<&str> {
        (self.tokens.get(idx)?.kind == Kind::Ident).then(|| self.text_of(idx))
    }

    /// Index of the matching closer for an opening delimiter token.
    pub(crate) fn closer_of(&self, idx: usize) -> Option<usize> {
        self.closer.get(idx).copied().flatten()
    }

    pub(crate) fn text_of(&self, idx: usize) -> &str {
        let t = &self.tokens[idx];
        std::str::from_utf8(&self.sc.text[t.start..t.end]).unwrap_or("")
    }

    pub(crate) fn is_ident(&self, idx: usize, word: &str) -> bool {
        self.tokens.get(idx).is_some_and(|t| t.kind == Kind::Ident) && self.text_of(idx) == word
    }

    pub(crate) fn is_punct(&self, idx: usize, b: u8) -> bool {
        self.tokens.get(idx).is_some_and(|t| t.kind == Kind::Punct(b))
    }

    pub(crate) fn in_test(&self, idx: usize) -> bool {
        self.sc.in_test[self.tokens[idx].start]
    }

    pub(crate) fn line(&self, idx: usize) -> usize {
        self.sc.line_of(self.tokens[idx].start)
    }

    /// The trimmed original source line containing token `idx`.
    pub(crate) fn src_line(&self, idx: usize) -> &str {
        let offset = self.tokens[idx].start;
        let start = self.src[..offset].rfind('\n').map_or(0, |p| p + 1);
        let end = self.src[offset..].find('\n').map_or(self.src.len(), |p| offset + p);
        self.src[start..end].trim()
    }

    /// Matches `first :: second` starting at token `idx` (e.g.
    /// `Ordering :: Relaxed`, `std :: sync`).
    fn path2_at(&self, idx: usize, first: &str, second: &str) -> bool {
        self.is_ident(idx, first)
            && self.is_punct(idx + 1, b':')
            && self.is_punct(idx + 2, b':')
            && self.is_ident(idx + 3, second)
    }

    /// Token index of the innermost `{` whose span encloses token `idx`,
    /// if any.
    fn enclosing_brace(&self, idx: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (open, close) in self.closer.iter().enumerate().filter_map(|(o, c)| {
            let c = (*c)?;
            (self.tokens[o].kind == Kind::Punct(b'{')).then_some((o, c))
        }) {
            if open < idx && idx < close && best.is_none_or(|b| open > b) {
                best = Some(open);
            }
        }
        best
    }
}

/// `raw-sync`: any `std::sync` path in library code. The `rtse-sync` crate
/// is the one sanctioned importer (exempted by the caller); everything
/// else must use the shim so loom model checking covers its primitives.
pub fn raw_sync(ast: &Ast) -> Vec<Violation> {
    let mut out = Vec::new();
    for idx in 0..ast.tokens.len() {
        if !ast.path2_at(idx, "std", "sync") || ast.in_test(idx) {
            continue;
        }
        out.push(Violation {
            rule: "raw-sync",
            line: ast.line(idx),
            snippet: ast.src_line(idx).to_string(),
            message: "std::sync in library code; import concurrency primitives from rtse-sync \
                      so loom model checking covers them"
                .to_string(),
        });
    }
    out
}

/// The atomic-ordering policy: `relaxed-ordering`, `seqcst-ordering`, and
/// `stale-annotation` in one pass (they share the `Ordering::` scan).
pub fn atomic_orderings(ast: &Ast) -> Vec<Violation> {
    let mut out = Vec::new();
    // Every line holding an `Ordering::Relaxed` token, test code included
    // (an annotation in a test is harmless, not stale).
    let mut relaxed_lines = Vec::new();
    for idx in 0..ast.tokens.len() {
        if ast.path2_at(idx, "Ordering", "Relaxed") {
            let line = ast.line(idx);
            relaxed_lines.push(line);
            if !ast.in_test(idx) && !ast.src_line(idx + 3).contains(RELAXED_MARKER) {
                out.push(Violation {
                    rule: "relaxed-ordering",
                    line,
                    snippet: ast.src_line(idx).to_string(),
                    message: format!(
                        "Ordering::Relaxed without a `// {RELAXED_MARKER}` annotation; Relaxed \
                         is reserved for monotonic counters (see DESIGN.md §8)"
                    ),
                });
            }
        } else if ast.path2_at(idx, "Ordering", "SeqCst") && !ast.in_test(idx) {
            out.push(Violation {
                rule: "seqcst-ordering",
                line: ast.line(idx),
                snippet: ast.src_line(idx).to_string(),
                message: "Ordering::SeqCst in library code; downgrade to AcqRel/Acquire/Release \
                          per the DESIGN.md §8 table or waive the site in lint.toml"
                    .to_string(),
            });
        }
    }
    for (lineno, line) in ast.src.lines().enumerate() {
        let lineno = lineno + 1;
        if line.contains(RELAXED_MARKER) && !relaxed_lines.contains(&lineno) {
            out.push(Violation {
                rule: "stale-annotation",
                line: lineno,
                snippet: line.trim().to_string(),
                message: format!(
                    "`{RELAXED_MARKER}` annotation on a line with no Ordering::Relaxed; remove it"
                ),
            });
        }
    }
    out
}

/// One matched lock acquisition: which `[[lock]]` entry, where, and how
/// far the acquisition is held.
struct Acquisition {
    entry: usize,
    token: usize,
    /// Byte span during which the lock is considered held.
    held: std::ops::Range<usize>,
}

/// `lock-order`: enforces the `[[lock]]` hierarchy from `lint.toml`.
///
/// An acquisition site is the entry's dotted path (matched as a suffix of
/// the call chain, so `acquire = "coherence.write"` matches
/// `self.shared.coherence.write(..)`) immediately followed by `(`;
/// definitions (`fn lock_cell(..)`) do not match. The held span is the
/// call's argument parentheses when the first argument is a closure
/// (section style: `coherence.write(|| { .. })`), otherwise from the call
/// to the end of the innermost enclosing block (guard style:
/// `let g = lock_cell(cell);` — conservative for non-guard calls, which
/// keeps the rule sound). While a rank-`r` acquisition is held, acquiring
/// rank `<= r` is a violation. `used[i]` records whether entry `i`
/// matched anything in this file (stale entries are reported by the
/// caller).
pub fn lock_order(ast: &Ast, locks: &[LockEntry], used: &mut [bool]) -> Vec<Violation> {
    let mut sites: Vec<Acquisition> = Vec::new();
    for (entry_idx, entry) in locks.iter().enumerate() {
        let segs: Vec<&str> = entry.acquire.split('.').collect();
        for idx in 0..ast.tokens.len() {
            let Some(open) = match_path_call(ast, idx, &segs) else { continue };
            if ast.in_test(idx) {
                continue;
            }
            used[entry_idx] = true;
            sites.push(Acquisition { entry: entry_idx, token: idx, held: held_span(ast, open) });
        }
    }
    let mut out = Vec::new();
    for inner in &sites {
        let at = ast.tokens[inner.token].start;
        for outer in &sites {
            if std::ptr::eq(inner, outer) || !outer.held.contains(&at) {
                continue;
            }
            let (o, i) = (&locks[outer.entry], &locks[inner.entry]);
            if i.rank <= o.rank {
                out.push(Violation {
                    rule: "lock-order",
                    line: ast.line(inner.token),
                    snippet: ast.src_line(inner.token).to_string(),
                    message: format!(
                        "acquires `{}` (rank {}) while `{}` (rank {}) is held; the lint.toml \
                         [[lock]] hierarchy requires strictly increasing ranks",
                        i.name, i.rank, o.name, o.rank
                    ),
                });
            }
        }
    }
    out
}

/// Matches `segs[0] . segs[1] . .. segs[n] (` at token `idx`, allowing a
/// longer receiver chain before it (`a.b.coherence.write(`). Returns the
/// index of the `(` token. Skips definitions (`fn name(..)`).
fn match_path_call(ast: &Ast, idx: usize, segs: &[&str]) -> Option<usize> {
    let mut i = idx;
    for (n, seg) in segs.iter().enumerate() {
        if n > 0 {
            if !ast.is_punct(i, b'.') {
                return None;
            }
            i += 1;
        }
        if !ast.is_ident(i, seg) {
            return None;
        }
        i += 1;
    }
    if !ast.is_punct(i, b'(') {
        return None;
    }
    if idx > 0 && ast.is_ident(idx - 1, "fn") {
        return None;
    }
    Some(i)
}

/// The byte span over which an acquisition at call-parenthesis `open` is
/// considered held (see [`lock_order`]).
fn held_span(ast: &Ast, open: usize) -> std::ops::Range<usize> {
    let close = ast.closer[open];
    // Section style: the argument is a closure; the lock is held exactly
    // for the parenthesised span. `|x|`, `||`, and `move |..|` all start
    // with `|` or `move`.
    let section = ast.is_punct(open + 1, b'|') || ast.is_ident(open + 1, "move");
    if section {
        if let Some(close) = close {
            return ast.tokens[open].start..ast.tokens[close].end;
        }
    }
    // Guard style: held from after the call to the end of the innermost
    // enclosing block.
    let from = close.map_or(ast.tokens[open].end, |c| ast.tokens[c].end);
    let until = ast
        .enclosing_brace(open)
        .and_then(|b| ast.closer[b])
        .map_or(ast.sc.text.len(), |c| ast.tokens[c].end);
    from..until
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scrub::scrub;

    fn lexed(src: &str) -> (String, Scrubbed) {
        (src.to_string(), scrub(src))
    }

    fn locks() -> Vec<LockEntry> {
        vec![
            LockEntry { name: "serve-slot".into(), acquire: "lock_cell".into(), rank: 0 },
            LockEntry {
                name: "coherence-write".into(),
                acquire: "coherence.write".into(),
                rank: 1,
            },
            LockEntry { name: "obs-registry".into(), acquire: "obs.span".into(), rank: 2 },
        ]
    }

    /// All Ident tokens of the lexed source, in order.
    fn idents(src: &str) -> Vec<String> {
        let sc = scrub(src);
        let ast = Ast::lex(src, &sc);
        (0..ast.len()).filter_map(|i| ast.ident_at(i).map(str::to_string)).collect()
    }

    #[test]
    fn raw_string_contents_never_become_tokens() {
        // Scrubbing blanks raw-string bodies, so braces/quotes/idents
        // inside them must not surface as tokens or unbalance delimiters.
        let src = "fn f() -> &'static str { r#\"{ unbalanced ] \"quote\" std::sync \"# }\n";
        let toks = idents(src);
        assert!(!toks.contains(&"unbalanced".to_string()), "{toks:?}");
        assert!(!toks.contains(&"sync".to_string()), "{toks:?}");
        let sc = scrub(src);
        let ast = Ast::lex(src, &sc);
        let open = (0..ast.len()).find(|&i| ast.is_punct(i, b'{')).expect("body brace");
        assert!(ast.closer_of(open).is_some(), "raw string must not unbalance the body");
    }

    #[test]
    fn char_and_byte_literals_with_delimiters_stay_balanced() {
        // `'}'`, `b'{'`, and `'\''` would desync delimiter pairing if the
        // char scrub ever read them as punctuation.
        let src = "fn f(c: char) -> bool { matches!(c, '}' | '{' | '\\'' | ')') }\nfn g() -> u8 { b'{' }\n";
        let sc = scrub(src);
        let ast = Ast::lex(src, &sc);
        let opens: Vec<usize> = (0..ast.len()).filter(|&i| ast.is_punct(i, b'{')).collect();
        assert!(!opens.is_empty());
        for open in opens {
            assert!(ast.closer_of(open).is_some(), "char literals must not eat a brace");
        }
        assert!(idents(src).contains(&"matches".to_string()));
    }

    #[test]
    fn nested_generic_close_lexes_as_two_tokens() {
        // `Vec<Vec<u8>>` — the `>>` must be two `>` puncts, not a shift.
        let src = "fn f(v: Vec<Vec<u8>>) {}\n";
        let sc = scrub(src);
        let ast = Ast::lex(src, &sc);
        let gt: Vec<usize> = (0..ast.len()).filter(|&i| ast.is_punct(i, b'>')).collect();
        let lt: Vec<usize> = (0..ast.len()).filter(|&i| ast.is_punct(i, b'<')).collect();
        assert_eq!(gt.len(), 2);
        assert_eq!(lt.len(), 2);
        assert_eq!(gt[1], gt[0] + 1, "`>>` is adjacent single-byte puncts");
    }

    #[test]
    fn turbofish_lexes_as_path_punctuation() {
        let src = "fn f() { parse::<Vec<u8>>(\"1\"); }\n";
        let sc = scrub(src);
        let ast = Ast::lex(src, &sc);
        let parse = (0..ast.len()).find(|&i| ast.is_ident(i, "parse")).expect("parse token");
        assert!(ast.is_punct(parse + 1, b':') && ast.is_punct(parse + 2, b':'));
        assert!(ast.is_punct(parse + 3, b'<'));
    }

    #[test]
    fn lifetimes_lex_as_quote_then_ident() {
        // `&'a str` — the scrub must keep the lifetime (it is not a char
        // literal), lexing as `'` punct + `a` ident.
        let src = "fn f<'a>(s: &'a str) -> &'a str { s }\n";
        let sc = scrub(src);
        let ast = Ast::lex(src, &sc);
        let quotes: Vec<usize> = (0..ast.len()).filter(|&i| ast.is_punct(i, b'\'')).collect();
        assert_eq!(quotes.len(), 3, "three lifetime sites");
        for q in quotes {
            assert_eq!(ast.ident_at(q + 1), Some("a"));
        }
    }

    #[test]
    fn numeric_literals_lex_as_ident_kind() {
        // The rules rely on `1e9`/`0xff` lexing as single Ident tokens
        // (e.g. literal-divisor detection looks at the leading digit).
        let toks = idents("fn f() -> u64 { 0xff + 1e9 as u64 + 42 }\n");
        for lit in ["0xff", "42"] {
            assert!(toks.contains(&lit.to_string()), "{toks:?}");
        }
    }

    #[test]
    fn raw_sync_flags_paths_and_skips_tests() {
        let (src, sc) = lexed(
            "use std::sync::Arc;\nfn f() { let x = std :: sync :: atomic::AtomicU64::new(0); }\n\
             #[cfg(test)]\nmod t { use std::sync::Barrier; }\n",
        );
        let v = raw_sync(&Ast::lex(&src, &sc));
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|v| v.rule == "raw-sync"));
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn raw_sync_ignores_lookalikes() {
        let (src, sc) = lexed("use my_std::sync::Arc;\nfn f() { stdx::sync(); std::synchro(); }\n");
        assert!(raw_sync(&Ast::lex(&src, &sc)).is_empty());
    }

    #[test]
    fn relaxed_requires_the_annotation() {
        let (src, sc) = lexed(
            "fn f(c: &A) {\n    c.n.fetch_add(1, Ordering::Relaxed); // lint: relaxed-counter\n    \
             c.m.load(Ordering::Relaxed);\n}\n",
        );
        let v = atomic_orderings(&Ast::lex(&src, &sc));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "relaxed-ordering");
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn relaxed_in_tests_is_exempt() {
        let (src, sc) =
            lexed("#[cfg(test)]\nmod t { fn f(c: &A) { c.n.load(Ordering::Relaxed); } }\n");
        assert!(atomic_orderings(&Ast::lex(&src, &sc)).is_empty());
    }

    #[test]
    fn seqcst_is_flagged_in_lib_code_only() {
        let (src, sc) = lexed(
            "fn f(c: &A) { c.n.store(1, Ordering::SeqCst); }\n\
             #[cfg(test)]\nmod t { fn g(c: &A) { c.n.store(1, Ordering::SeqCst); } }\n",
        );
        let v = atomic_orderings(&Ast::lex(&src, &sc));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "seqcst-ordering");
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn stale_annotation_is_flagged() {
        let (src, sc) = lexed("fn f() { do_it(); } // lint: relaxed-counter\n");
        let v = atomic_orderings(&Ast::lex(&src, &sc));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "stale-annotation");
    }

    #[test]
    fn lock_order_accepts_increasing_ranks() {
        let (src, sc) = lexed(
            "fn f(&self) {\n    let mut cell = lock_cell(cell);\n    \
             coherence.write(|| { cell.generation = g; });\n}\n",
        );
        let mut used = vec![false; 3];
        let v = lock_order(&Ast::lex(&src, &sc), &locks(), &mut used);
        assert!(v.is_empty(), "{v:?}");
        assert_eq!(used, vec![true, true, false]);
    }

    #[test]
    fn lock_order_rejects_guard_then_lower_rank() {
        let (src, sc) = lexed(
            "fn f(&self) {\n    coherence.write(|| {\n        let g = lock_cell(cell);\n    });\n}\n",
        );
        let mut used = vec![false; 3];
        let v = lock_order(&Ast::lex(&src, &sc), &locks(), &mut used);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "lock-order");
        assert!(v[0].message.contains("serve-slot"));
        assert!(v[0].message.contains("coherence-write"));
    }

    #[test]
    fn lock_order_section_span_releases_at_close() {
        // The write section ends at its closing paren; a slot-lock
        // acquisition after it is legal.
        let (src, sc) = lexed(
            "fn f(&self) {\n    coherence.write(|| { publish(); });\n    \
             let g = lock_cell(cell);\n}\n",
        );
        let mut used = vec![false; 3];
        assert!(lock_order(&Ast::lex(&src, &sc), &locks(), &mut used).is_empty());
    }

    #[test]
    fn lock_order_guard_holds_to_end_of_block() {
        // Guard style: the obs span guard is held to the end of the block,
        // so a same-or-lower-rank acquisition after it is a violation.
        let (src, sc) = lexed(
            "fn f(&self) {\n    let _span = self.config.obs.span(stage);\n    \
             let g = lock_cell(cell);\n}\n",
        );
        let mut used = vec![false; 3];
        let v = lock_order(&Ast::lex(&src, &sc), &locks(), &mut used);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("obs-registry"));
    }

    #[test]
    fn lock_order_skips_definitions_and_tests() {
        let (src, sc) = lexed(
            "fn lock_cell(c: &M) -> G { c.lock() }\n\
             #[cfg(test)]\nmod t { fn f() { let g = lock_cell(c); obs.span(s); } }\n",
        );
        let mut used = vec![false; 3];
        assert!(lock_order(&Ast::lex(&src, &sc), &locks(), &mut used).is_empty());
        assert!(!used[0], "definition and test sites must not count as usage");
    }

    #[test]
    fn same_rank_reacquisition_is_a_violation() {
        let (src, sc) =
            lexed("fn f() {\n    let a = lock_cell(x);\n    let b = lock_cell(y);\n}\n");
        let mut used = vec![false; 3];
        let v = lock_order(&Ast::lex(&src, &sc), &locks(), &mut used);
        assert_eq!(v.len(), 1, "{v:?}");
    }
}
