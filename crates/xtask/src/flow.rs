//! `cargo xtask flow` — interprocedural hot-path analysis.
//!
//! Runs two reachability analyses over the workspace call graph
//! ([`crate::graph`]), from the entry points declared in `lint.toml`'s
//! `[[hotpath]]` tables:
//!
//! * **panic-reachability** (`policy = "panic"` and `"steady"`): every
//!   function transitively reachable from the entry must be free of
//!   panicking constructs — `unwrap`/`expect`, the panic macro family,
//!   slice indexing, and integer `div`/`rem` by a non-literal. This
//!   upgrades the per-crate syntactic `no-panic` rule to a whole-program
//!   guarantee: a no-panic crate can no longer launder a panic through a
//!   helper two crates away.
//! * **hot-path allocation discipline** (`policy = "steady"` only):
//!   heap-allocating constructs — `collect`, `format!`, `vec!`,
//!   `Box::new`, `to_vec`/`to_string`, `clone`, and `Vec::new`/`push`
//!   without a visible `with_capacity`/`reserve` in the same function —
//!   are banned in functions reachable from steady-state entries, so
//!   cache-hit queries and warm GSP rounds stay allocation-free.
//!
//! Findings are waived site-by-site via `[[hotpath]]` waiver tables
//! (path + rule, optionally narrowed by construct/fn/contains, reason
//! mandatory). Entries that resolve to no function and waivers that fire
//! on no site are stale and fail the pass, like dead `[[allow]]`s. The
//! pass emits `flow-report.json` — call-graph stats, per-entry reachable
//! set sizes, and the waiver inventory — so the reachable surface is a
//! tracked trajectory like the BENCH_* files.

use crate::allow::{Config, Policy};
use crate::graph::{self, CallGraph};
use std::collections::HashMap;
use std::path::Path;

/// A construct reachable from a hot-path entry and not waived.
#[derive(Debug)]
pub struct FlowViolation {
    pub file: String,
    pub line: usize,
    pub rule: &'static str,
    pub construct: &'static str,
    /// Qualified name of the containing function.
    pub func: String,
    /// The entry-point spec that first reached the function.
    pub entry: String,
    /// Call chain entry → … → containing function (qualified names).
    pub chain: Vec<String>,
    pub snippet: String,
}

impl FlowViolation {
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}/{}] `{}` is reachable from hot-path entry `{}`\n    chain: {}\n    {}",
            self.file,
            self.line,
            self.rule,
            self.construct,
            self.func,
            self.entry,
            self.chain.join(" -> "),
            self.snippet
        )
    }
}

/// Everything one `cargo xtask flow` run produces.
pub struct FlowOutcome {
    pub violations: Vec<FlowViolation>,
    /// Stale-entry / stale-waiver messages (each one fails the pass).
    pub stale: Vec<String>,
    /// The deterministic `flow-report.json` body.
    pub report: String,
}

impl FlowOutcome {
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.stale.is_empty()
    }
}

/// One construct site attributed to the first entry that reaches it.
struct Attributed {
    fn_idx: usize,
    construct_idx: usize,
    entry_idx: usize,
    chain: Vec<usize>,
}

/// Builds the call graph and runs both analyses against `cfg`.
pub fn analyze(root: &Path, cfg: &Config) -> Result<FlowOutcome, String> {
    let g = graph::build(root)?;
    let mut stale: Vec<String> = Vec::new();

    // Per-entry BFS; a (fn, construct) site is attributed to the first
    // declared entry that reaches it, so lint.toml's entry order decides
    // which chain a violation reports (and double-counting is impossible).
    let mut seen: HashMap<(usize, usize), usize> = HashMap::new(); // site -> attributed index
    let mut attributed: Vec<Attributed> = Vec::new();
    let mut entry_reach: Vec<usize> = vec![0; cfg.entries.len()];
    for (ei, entry) in cfg.entries.iter().enumerate() {
        let starts = g.resolve_entry(&entry.entry);
        if starts.is_empty() {
            stale.push(format!(
                "lint.toml: stale hotpath entry \"{}\" — resolves to no workspace function; \
                 fix the spec or remove it",
                entry.entry
            ));
            continue;
        }
        let parent = bfs(&g, &starts);
        entry_reach[ei] = parent.len();
        let mut reached: Vec<usize> = parent.keys().copied().collect();
        reached.sort_unstable();
        for fn_idx in reached {
            let def = &g.fns[fn_idx];
            for (ci, c) in def.constructs.iter().enumerate() {
                if c.rule == "hot-alloc" && entry.policy != Policy::Steady {
                    continue;
                }
                if c.capacity_gated && def.capacity_hint {
                    continue;
                }
                if seen.contains_key(&(fn_idx, ci)) {
                    continue;
                }
                seen.insert((fn_idx, ci), attributed.len());
                attributed.push(Attributed {
                    fn_idx,
                    construct_idx: ci,
                    entry_idx: ei,
                    chain: chain_to(&parent, fn_idx),
                });
            }
        }
    }

    // Waiver matching: first matching waiver wins; unused waivers are
    // stale. Sites that match nothing become violations.
    let mut waiver_sites = vec![0usize; cfg.waivers.len()];
    let mut entry_flagged = vec![0usize; cfg.entries.len()];
    let mut entry_waived = vec![0usize; cfg.entries.len()];
    let mut rule_flagged: HashMap<&str, usize> = HashMap::new();
    let mut rule_waived: HashMap<&str, usize> = HashMap::new();
    let mut violations: Vec<FlowViolation> = Vec::new();
    for a in &attributed {
        let def = &g.fns[a.fn_idx];
        let c = &def.constructs[a.construct_idx];
        let waiver = cfg
            .waivers
            .iter()
            .position(|w| w.matches(&def.file, c.rule, c.construct, &def.name, &c.snippet));
        match waiver {
            Some(wi) => {
                waiver_sites[wi] += 1;
                entry_waived[a.entry_idx] += 1;
                *rule_waived.entry(c.rule).or_insert(0) += 1;
            }
            None => {
                entry_flagged[a.entry_idx] += 1;
                *rule_flagged.entry(c.rule).or_insert(0) += 1;
                violations.push(FlowViolation {
                    file: def.file.clone(),
                    line: c.line,
                    rule: c.rule,
                    construct: c.construct,
                    func: def.qualified(),
                    entry: cfg.entries[a.entry_idx].entry.clone(),
                    chain: a.chain.iter().map(|&i| g.fns[i].qualified()).collect(),
                    snippet: c.snippet.clone(),
                });
            }
        }
    }
    for (wi, w) in cfg.waivers.iter().enumerate() {
        if waiver_sites[wi] == 0 {
            stale.push(format!(
                "lint.toml: stale hotpath waiver (path = \"{}\", rule = \"{}\") — fires on no \
                 reachable site; remove it",
                w.path, w.rule
            ));
        }
    }
    violations.sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));

    let report = render_report(
        &g,
        cfg,
        &entry_reach,
        &entry_flagged,
        &entry_waived,
        &rule_flagged,
        &rule_waived,
        &waiver_sites,
        violations.len(),
    );
    Ok(FlowOutcome { violations, stale, report })
}

/// BFS over the call graph from `starts`; the map holds every reached
/// function and its BFS predecessor (`usize::MAX` for roots).
fn bfs(g: &CallGraph, starts: &[usize]) -> HashMap<usize, usize> {
    let mut parent: HashMap<usize, usize> = HashMap::new();
    let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    for &s in starts {
        if let std::collections::hash_map::Entry::Vacant(e) = parent.entry(s) {
            e.insert(usize::MAX);
            queue.push_back(s);
        }
    }
    while let Some(f) = queue.pop_front() {
        for &callee in &g.callees[f] {
            if let std::collections::hash_map::Entry::Vacant(e) = parent.entry(callee) {
                e.insert(f);
                queue.push_back(callee);
            }
        }
    }
    parent
}

/// Call chain root → … → `fn_idx`, capped at 8 hops (long chains keep
/// the tail nearest the violation, which is the actionable end).
fn chain_to(parent: &HashMap<usize, usize>, fn_idx: usize) -> Vec<usize> {
    let mut chain = vec![fn_idx];
    let mut cur = fn_idx;
    while let Some(&p) = parent.get(&cur) {
        if p == usize::MAX || chain.len() >= 8 {
            break;
        }
        chain.push(p);
        cur = p;
    }
    chain.reverse();
    chain
}

/// Minimal JSON string escaping for the report (shared with the taint
/// pass's report).
pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the deterministic `flow-report.json` body: pure function of
/// the tree and lint.toml (no timestamps, sorted collections), so CI can
/// `git diff` the regenerated file against the committed one.
#[allow(clippy::too_many_arguments)]
fn render_report(
    g: &CallGraph,
    cfg: &Config,
    entry_reach: &[usize],
    entry_flagged: &[usize],
    entry_waived: &[usize],
    rule_flagged: &HashMap<&str, usize>,
    rule_waived: &HashMap<&str, usize>,
    waiver_sites: &[usize],
    violations: usize,
) -> String {
    let edges: usize = g.callees.iter().map(Vec::len).sum();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"rtse-flow-report/v1\",\n");
    out.push_str("  \"call_graph\": {\n");
    out.push_str(&format!("    \"crates\": {},\n", g.crates.len()));
    out.push_str(&format!("    \"files_scanned\": {},\n", g.files_scanned));
    out.push_str(&format!("    \"functions\": {},\n", g.fns.len()));
    out.push_str(&format!("    \"edges\": {edges},\n"));
    out.push_str(&format!("    \"unresolved_calls\": {}\n", g.unresolved_calls));
    out.push_str("  },\n");
    out.push_str("  \"entries\": [\n");
    for (i, e) in cfg.entries.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"entry\": \"{}\",\n", esc(&e.entry)));
        out.push_str(&format!("      \"policy\": \"{}\",\n", e.policy.as_str()));
        out.push_str(&format!("      \"reachable_functions\": {},\n", entry_reach[i]));
        out.push_str(&format!("      \"flagged_sites\": {},\n", entry_flagged[i]));
        out.push_str(&format!("      \"waived_sites\": {},\n", entry_waived[i]));
        out.push_str(&format!("      \"reason\": \"{}\"\n", esc(&e.reason)));
        out.push_str(if i + 1 < cfg.entries.len() { "    },\n" } else { "    }\n" });
    }
    out.push_str("  ],\n");
    out.push_str("  \"rules\": [\n");
    for (i, rule) in graph::FLOW_RULES.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"rule\": \"{rule}\",\n"));
        out.push_str(&format!("      \"flagged\": {},\n", rule_flagged.get(rule).unwrap_or(&0)));
        out.push_str(&format!("      \"waived\": {}\n", rule_waived.get(rule).unwrap_or(&0)));
        out.push_str(if i + 1 < graph::FLOW_RULES.len() { "    },\n" } else { "    }\n" });
    }
    out.push_str("  ],\n");
    out.push_str("  \"waivers\": [\n");
    for (i, w) in cfg.waivers.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"path\": \"{}\",\n", esc(&w.path)));
        out.push_str(&format!("      \"rule\": \"{}\",\n", esc(&w.rule)));
        if let Some(c) = &w.construct {
            out.push_str(&format!("      \"construct\": \"{}\",\n", esc(c)));
        }
        if let Some(f) = &w.func {
            out.push_str(&format!("      \"fn\": \"{}\",\n", esc(f)));
        }
        out.push_str(&format!("      \"sites\": {},\n", waiver_sites[i]));
        out.push_str(&format!("      \"reason\": \"{}\"\n", esc(&w.reason)));
        out.push_str(if i + 1 < cfg.waivers.len() { "    },\n" } else { "    }\n" });
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"violations\": {violations}\n"));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allow;
    use std::fs;
    use std::path::PathBuf;

    /// A throwaway fixture workspace under the system temp dir. Removed
    /// on drop; the name is keyed by pid + a per-test tag so parallel
    /// test binaries never collide.
    struct Fixture {
        root: PathBuf,
    }

    impl Fixture {
        fn new(tag: &str, files: &[(&str, &str)]) -> Self {
            let root =
                std::env::temp_dir().join(format!("xtask-flow-{}-{tag}", std::process::id()));
            let _ = fs::remove_dir_all(&root);
            for (rel, content) in files {
                let path = root.join(rel);
                fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
                fs::write(&path, content).expect("write fixture file");
            }
            Fixture { root }
        }
    }

    impl Drop for Fixture {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.root);
        }
    }

    const APP_MANIFEST: &str =
        "[package]\nname = \"app\"\n\n[dependencies]\nutil = { path = \"../util\" }\n";
    const UTIL_MANIFEST: &str = "[package]\nname = \"util\"\n";

    /// app::serve_round → util::prepare → app::finish; allocation-free
    /// and panic-free as written.
    const APP_CLEAN: &str = "\
pub fn serve_round(n: usize, out: &mut [f64]) -> f64 {
    util::prepare(n, out);
    finish(out)
}

fn finish(v: &[f64]) -> f64 {
    v.iter().sum()
}
";
    const UTIL_CLEAN: &str = "\
pub fn prepare(n: usize, out: &mut [f64]) {
    for (i, slot) in out.iter_mut().enumerate().take(n) {
        *slot = i as f64;
    }
}
";

    fn config(toml: &str) -> Config {
        allow::parse(toml).expect("fixture lint.toml parses")
    }

    const STEADY_ENTRY: &str = "\
[[hotpath]]
entry = \"app::serve_round\"
policy = \"steady\"
reason = \"fixture steady entry\"
";

    #[test]
    fn clean_fixture_passes() {
        let fx = Fixture::new(
            "clean",
            &[
                ("crates/app/Cargo.toml", APP_MANIFEST),
                ("crates/app/src/lib.rs", APP_CLEAN),
                ("crates/util/Cargo.toml", UTIL_MANIFEST),
                ("crates/util/src/lib.rs", UTIL_CLEAN),
            ],
        );
        let outcome = analyze(&fx.root, &config(STEADY_ENTRY)).expect("analyzes");
        assert!(outcome.is_clean(), "{:?} {:?}", outcome.violations, outcome.stale);
        assert!(outcome.report.contains("\"reachable_functions\": 3"), "{}", outcome.report);
    }

    /// The seeded regression the acceptance criteria require: injecting
    /// an `unwrap` and a `collect` into a hot-path-reachable function two
    /// crates away must fail with a trace naming the entry point and the
    /// call chain.
    #[test]
    fn seeded_unwrap_and_collect_are_caught_with_chains() {
        let util_bad = "\
pub fn prepare(n: usize, out: &mut [f64]) {
    let seed: Option<f64> = checked(n);
    let s = seed.unwrap();
    let v: Vec<f64> = (0..n).map(|i| s + i as f64).collect();
    for (slot, x) in out.iter_mut().zip(v) {
        *slot = x;
    }
}

fn checked(n: usize) -> Option<f64> {
    if n > 0 { Some(1.0) } else { None }
}
";
        let fx = Fixture::new(
            "seeded",
            &[
                ("crates/app/Cargo.toml", APP_MANIFEST),
                ("crates/app/src/lib.rs", APP_CLEAN),
                ("crates/util/Cargo.toml", UTIL_MANIFEST),
                ("crates/util/src/lib.rs", util_bad),
            ],
        );
        let outcome = analyze(&fx.root, &config(STEADY_ENTRY)).expect("analyzes");
        let unwrap = outcome
            .violations
            .iter()
            .find(|v| v.construct == "unwrap")
            .expect("seeded unwrap is caught");
        assert_eq!(unwrap.rule, "panic-reach");
        assert_eq!(unwrap.entry, "app::serve_round");
        assert_eq!(unwrap.chain, vec!["app::serve_round", "util::prepare"]);
        let collect = outcome
            .violations
            .iter()
            .find(|v| v.construct == "collect")
            .expect("seeded collect is caught");
        assert_eq!(collect.rule, "hot-alloc");
        assert_eq!(collect.func, "util::prepare");
        let rendered = unwrap.render();
        assert!(rendered.contains("app::serve_round"), "{rendered}");
        assert!(rendered.contains("panic-reach/unwrap"), "{rendered}");
        assert!(rendered.contains("chain:"), "{rendered}");
    }

    #[test]
    fn panic_policy_ignores_allocations() {
        let util_alloc = "\
pub fn prepare(n: usize, out: &mut [f64]) {
    let v: Vec<f64> = (0..n).map(|i| i as f64).collect();
    for (slot, x) in out.iter_mut().zip(v) {
        *slot = x;
    }
}
";
        let fx = Fixture::new(
            "panic-policy",
            &[
                ("crates/app/Cargo.toml", APP_MANIFEST),
                ("crates/app/src/lib.rs", APP_CLEAN),
                ("crates/util/Cargo.toml", UTIL_MANIFEST),
                ("crates/util/src/lib.rs", util_alloc),
            ],
        );
        let toml = "\
[[hotpath]]
entry = \"app::serve_round\"
policy = \"panic\"
reason = \"fixture panic-only entry\"
";
        let outcome = analyze(&fx.root, &config(toml)).expect("analyzes");
        assert!(outcome.is_clean(), "panic policy must not flag collect: {:?}", outcome.violations);
    }

    #[test]
    fn waivers_silence_sites_and_stale_waivers_fail() {
        let util_bad = "\
pub fn prepare(n: usize, out: &mut [f64]) {
    let v: Vec<f64> = (0..n).map(|i| i as f64).collect();
    for (slot, x) in out.iter_mut().zip(v) {
        *slot = x;
    }
}
";
        let files = [
            ("crates/app/Cargo.toml", APP_MANIFEST),
            ("crates/app/src/lib.rs", APP_CLEAN),
            ("crates/util/Cargo.toml", UTIL_MANIFEST),
            ("crates/util/src/lib.rs", util_bad),
        ];
        let fx = Fixture::new("waived", &files);
        let waived = "\
[[hotpath]]
entry = \"app::serve_round\"
policy = \"steady\"
reason = \"fixture steady entry\"

[[hotpath]]
path = \"crates/util/src/lib.rs\"
rule = \"hot-alloc\"
construct = \"collect\"
fn = \"prepare\"
reason = \"fixture waiver\"
";
        let outcome = analyze(&fx.root, &config(waived)).expect("analyzes");
        assert!(outcome.is_clean(), "{:?} {:?}", outcome.violations, outcome.stale);
        assert!(outcome.report.contains("\"sites\": 1"), "{}", outcome.report);

        let stale_extra = format!(
            "{waived}\n[[hotpath]]\npath = \"crates/app/src/lib.rs\"\nrule = \"panic-reach\"\n\
             reason = \"matches nothing\"\n"
        );
        let outcome = analyze(&fx.root, &config(&stale_extra)).expect("analyzes");
        assert_eq!(outcome.stale.len(), 1, "{:?}", outcome.stale);
        assert!(outcome.stale[0].contains("stale hotpath waiver"), "{:?}", outcome.stale);
    }

    #[test]
    fn stale_entries_fail() {
        let fx = Fixture::new(
            "stale-entry",
            &[
                ("crates/app/Cargo.toml", APP_MANIFEST),
                ("crates/app/src/lib.rs", APP_CLEAN),
                ("crates/util/Cargo.toml", UTIL_MANIFEST),
                ("crates/util/src/lib.rs", UTIL_CLEAN),
            ],
        );
        let toml = "\
[[hotpath]]
entry = \"app::no_such_fn\"
policy = \"panic\"
reason = \"points at nothing\"
";
        let outcome = analyze(&fx.root, &config(toml)).expect("analyzes");
        assert_eq!(outcome.stale.len(), 1);
        assert!(outcome.stale[0].contains("stale hotpath entry"), "{:?}", outcome.stale);
    }

    #[test]
    fn report_is_deterministic() {
        let fx = Fixture::new(
            "determinism",
            &[
                ("crates/app/Cargo.toml", APP_MANIFEST),
                ("crates/app/src/lib.rs", APP_CLEAN),
                ("crates/util/Cargo.toml", UTIL_MANIFEST),
                ("crates/util/src/lib.rs", UTIL_CLEAN),
            ],
        );
        let cfg = config(STEADY_ENTRY);
        let a = analyze(&fx.root, &cfg).expect("first run");
        let b = analyze(&fx.root, &cfg).expect("second run");
        assert_eq!(a.report, b.report);
        assert!(a.report.ends_with("}\n"));
    }
}
