//! `lint.toml` — the scoped allowlist for policy-rule violations.
//!
//! Format (a deliberately tiny TOML subset: `[[allow]]` tables with
//! string-valued keys only):
//!
//! ```toml
//! [[allow]]
//! path = "crates/graph/src/road.rs"   # suffix match on the repo path
//! rule = "no-panic"                   # which rule to silence
//! contains = "u32::try_from"          # optional: substring of the line
//! reason = "why this site is exempt"  # mandatory, shown in reports
//! ```
//!
//! Every entry must be *used* by the current tree; stale entries are
//! reported so the file cannot rot into a blanket waiver.

/// One `[[allow]]` entry.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Repo-relative path suffix the entry applies to.
    pub path: String,
    /// Rule slug the entry silences.
    pub rule: String,
    /// Optional substring the offending line must contain.
    pub contains: Option<String>,
    /// Human justification (required).
    pub reason: String,
}

/// Parses `lint.toml`. Returns entries or a line-tagged error message.
pub fn parse(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries: Vec<AllowEntry> = Vec::new();
    let mut current: Option<(usize, PartialEntry)> = None;

    #[derive(Default)]
    struct PartialEntry {
        path: Option<String>,
        rule: Option<String>,
        contains: Option<String>,
        reason: Option<String>,
    }

    fn finish(lineno: usize, p: PartialEntry) -> Result<AllowEntry, String> {
        Ok(AllowEntry {
            path: p.path.ok_or(format!("lint.toml:{lineno}: entry missing `path`"))?,
            rule: p.rule.ok_or(format!("lint.toml:{lineno}: entry missing `rule`"))?,
            contains: p.contains,
            reason: p.reason.ok_or(format!("lint.toml:{lineno}: entry missing `reason`"))?,
        })
    }

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line == "[[allow]]" {
            if let Some((at, p)) = current.take() {
                entries.push(finish(at, p)?);
            }
            current = Some((lineno, PartialEntry::default()));
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("lint.toml:{lineno}: expected `key = \"value\"`"));
        };
        let key = key.trim();
        let value = value.trim();
        let Some(value) = value.strip_prefix('"').and_then(|v| v.strip_suffix('"')) else {
            return Err(format!("lint.toml:{lineno}: value must be a double-quoted string"));
        };
        let Some((_, p)) = current.as_mut() else {
            return Err(format!("lint.toml:{lineno}: key outside an [[allow]] table"));
        };
        let slot = match key {
            "path" => &mut p.path,
            "rule" => &mut p.rule,
            "contains" => &mut p.contains,
            "reason" => &mut p.reason,
            other => return Err(format!("lint.toml:{lineno}: unknown key `{other}`")),
        };
        if slot.replace(value.to_string()).is_some() {
            return Err(format!("lint.toml:{lineno}: duplicate key `{key}`"));
        }
    }
    if let Some((at, p)) = current.take() {
        entries.push(finish(at, p)?);
    }
    Ok(entries)
}

impl AllowEntry {
    /// Whether this entry silences a violation of `rule` at `path` on a
    /// line with content `snippet`.
    pub fn matches(&self, path: &str, rule: &str, snippet: &str) -> bool {
        self.rule == rule
            && path.ends_with(&self.path)
            && self.contains.as_deref().is_none_or(|c| snippet.contains(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries() {
        let text = r#"
# comment
[[allow]]
path = "crates/graph/src/road.rs"
rule = "no-panic"
contains = "try_from"
reason = "From impls cannot return Result"

[[allow]]
path = "crates/math/src/matrix.rs"
rule = "float-eq"
reason = "exact-zero skip"
"#;
        let entries = parse(text).expect("parses");
        assert_eq!(entries.len(), 2);
        assert!(entries[0].matches("crates/graph/src/road.rs", "no-panic", "u32::try_from(v)"));
        assert!(!entries[0].matches("crates/graph/src/road.rs", "no-panic", "other line"));
        assert!(entries[1].matches("/abs/crates/math/src/matrix.rs", "float-eq", "a == 0.0"));
    }

    #[test]
    fn rejects_missing_reason() {
        let text = "[[allow]]\npath = \"x\"\nrule = \"no-panic\"\n";
        assert!(parse(text).is_err());
    }

    #[test]
    fn rejects_unknown_keys() {
        let text = "[[allow]]\npath = \"x\"\nrule = \"r\"\nreason = \"y\"\nsev = \"z\"\n";
        assert!(parse(text).is_err());
    }
}
