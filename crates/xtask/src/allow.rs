//! `lint.toml` — the scoped allowlist and lock hierarchy for policy rules.
//!
//! Format (a deliberately tiny TOML subset: `[[allow]]` / `[[lock]]`
//! tables with string- or integer-valued keys only):
//!
//! ```toml
//! [[allow]]
//! path = "crates/graph/src/road.rs"   # suffix match on the repo path
//! rule = "no-panic"                   # which rule to silence
//! contains = "u32::try_from"          # optional: substring of the line
//! reason = "why this site is exempt"  # mandatory, shown in reports
//!
//! [[lock]]
//! name = "serve-slot"                 # label used in lock-order reports
//! acquire = "lock_cell"               # dotted call-path suffix of the site
//! rank = 0                            # lower = outermost; must increase inward
//! ```
//!
//! Every `[[allow]]` entry must be *used* by the current tree and every
//! `[[lock]]` entry must match at least one acquisition site; stale
//! entries are reported so the file cannot rot into a blanket waiver or
//! a fictional hierarchy.

/// One `[[allow]]` entry.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Repo-relative path suffix the entry applies to.
    pub path: String,
    /// Rule slug the entry silences.
    pub rule: String,
    /// Optional substring the offending line must contain.
    pub contains: Option<String>,
    /// Human justification (required).
    pub reason: String,
}

/// One `[[lock]]` entry: a named rung of the declared lock hierarchy.
#[derive(Debug, Clone)]
pub struct LockEntry {
    /// Label used in lock-order reports.
    pub name: String,
    /// Dotted call-path suffix identifying acquisition sites
    /// (`coherence.write` matches `self.shared.coherence.write(..)`).
    pub acquire: String,
    /// Hierarchy rank: lower = acquired first (outermost). While a rank-r
    /// acquisition is held, only ranks > r may be acquired.
    pub rank: u32,
}

/// Everything `lint.toml` declares.
#[derive(Debug, Default)]
pub struct Config {
    /// Scoped rule waivers.
    pub allows: Vec<AllowEntry>,
    /// The declared lock hierarchy, in file order.
    pub locks: Vec<LockEntry>,
}

/// Parses `lint.toml`. Returns the config or a line-tagged error message.
pub fn parse(text: &str) -> Result<Config, String> {
    let mut cfg = Config::default();
    let mut current: Option<(usize, Partial)> = None;

    #[derive(Default)]
    struct Partial {
        is_lock: bool,
        path: Option<String>,
        rule: Option<String>,
        contains: Option<String>,
        reason: Option<String>,
        name: Option<String>,
        acquire: Option<String>,
        rank: Option<u32>,
    }

    fn finish(lineno: usize, p: Partial, cfg: &mut Config) -> Result<(), String> {
        if p.is_lock {
            cfg.locks.push(LockEntry {
                name: p.name.ok_or(format!("lint.toml:{lineno}: lock entry missing `name`"))?,
                acquire: p
                    .acquire
                    .ok_or(format!("lint.toml:{lineno}: lock entry missing `acquire`"))?,
                rank: p.rank.ok_or(format!("lint.toml:{lineno}: lock entry missing `rank`"))?,
            });
        } else {
            cfg.allows.push(AllowEntry {
                path: p.path.ok_or(format!("lint.toml:{lineno}: entry missing `path`"))?,
                rule: p.rule.ok_or(format!("lint.toml:{lineno}: entry missing `rule`"))?,
                contains: p.contains,
                reason: p.reason.ok_or(format!("lint.toml:{lineno}: entry missing `reason`"))?,
            });
        }
        Ok(())
    }

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line == "[[allow]]" || line == "[[lock]]" {
            if let Some((at, p)) = current.take() {
                finish(at, p, &mut cfg)?;
            }
            current = Some((lineno, Partial { is_lock: line == "[[lock]]", ..Partial::default() }));
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("lint.toml:{lineno}: expected `key = \"value\"`"));
        };
        let key = key.trim();
        let value = value.trim();
        let Some((_, p)) = current.as_mut() else {
            return Err(format!("lint.toml:{lineno}: key outside an [[allow]]/[[lock]] table"));
        };
        if p.is_lock && key == "rank" {
            let rank: u32 = value
                .parse()
                .map_err(|_| format!("lint.toml:{lineno}: `rank` must be an integer"))?;
            if p.rank.replace(rank).is_some() {
                return Err(format!("lint.toml:{lineno}: duplicate key `rank`"));
            }
            continue;
        }
        let Some(value) = value.strip_prefix('"').and_then(|v| v.strip_suffix('"')) else {
            return Err(format!("lint.toml:{lineno}: value must be a double-quoted string"));
        };
        let slot = match (p.is_lock, key) {
            (false, "path") => &mut p.path,
            (false, "rule") => &mut p.rule,
            (false, "contains") => &mut p.contains,
            (false, "reason") => &mut p.reason,
            (true, "name") => &mut p.name,
            (true, "acquire") => &mut p.acquire,
            (_, other) => return Err(format!("lint.toml:{lineno}: unknown key `{other}`")),
        };
        if slot.replace(value.to_string()).is_some() {
            return Err(format!("lint.toml:{lineno}: duplicate key `{key}`"));
        }
    }
    if let Some((at, p)) = current.take() {
        finish(at, p, &mut cfg)?;
    }
    Ok(cfg)
}

impl AllowEntry {
    /// Whether this entry silences a violation of `rule` at `path` on a
    /// line with content `snippet`.
    pub fn matches(&self, path: &str, rule: &str, snippet: &str) -> bool {
        self.rule == rule
            && path.ends_with(&self.path)
            && self.contains.as_deref().is_none_or(|c| snippet.contains(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries() {
        let text = r#"
# comment
[[allow]]
path = "crates/graph/src/road.rs"
rule = "no-panic"
contains = "try_from"
reason = "From impls cannot return Result"

[[allow]]
path = "crates/math/src/matrix.rs"
rule = "float-eq"
reason = "exact-zero skip"
"#;
        let cfg = parse(text).expect("parses");
        let entries = &cfg.allows;
        assert_eq!(entries.len(), 2);
        assert!(cfg.locks.is_empty());
        assert!(entries[0].matches("crates/graph/src/road.rs", "no-panic", "u32::try_from(v)"));
        assert!(!entries[0].matches("crates/graph/src/road.rs", "no-panic", "other line"));
        assert!(entries[1].matches("/abs/crates/math/src/matrix.rs", "float-eq", "a == 0.0"));
    }

    #[test]
    fn parses_lock_hierarchy() {
        let text = r#"
[[lock]]
name = "serve-slot"
acquire = "lock_cell"
rank = 0

[[lock]]
name = "coherence-write"
acquire = "coherence.write"
rank = 1

[[allow]]
path = "x.rs"
rule = "float-eq"
reason = "mixed tables parse"
"#;
        let cfg = parse(text).expect("parses");
        assert_eq!(cfg.locks.len(), 2);
        assert_eq!(cfg.allows.len(), 1);
        assert_eq!(cfg.locks[0].name, "serve-slot");
        assert_eq!(cfg.locks[0].rank, 0);
        assert_eq!(cfg.locks[1].acquire, "coherence.write");
        assert_eq!(cfg.locks[1].rank, 1);
    }

    #[test]
    fn rejects_missing_reason() {
        let text = "[[allow]]\npath = \"x\"\nrule = \"no-panic\"\n";
        assert!(parse(text).is_err());
    }

    #[test]
    fn rejects_unknown_keys() {
        let text = "[[allow]]\npath = \"x\"\nrule = \"r\"\nreason = \"y\"\nsev = \"z\"\n";
        assert!(parse(text).is_err());
    }

    #[test]
    fn rejects_bad_lock_entries() {
        assert!(parse("[[lock]]\nname = \"a\"\nacquire = \"b\"\n").is_err(), "missing rank");
        assert!(
            parse("[[lock]]\nname = \"a\"\nacquire = \"b\"\nrank = \"zero\"\n").is_err(),
            "non-integer rank"
        );
        assert!(parse("[[lock]]\nacquire = \"b\"\nrank = 1\n").is_err(), "missing name");
    }
}
