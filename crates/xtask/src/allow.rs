//! `lint.toml` — the scoped allowlist, lock hierarchy, and hot-path
//! declarations for policy rules.
//!
//! Format (a deliberately tiny TOML subset: `[[allow]]` / `[[lock]]` /
//! `[[hotpath]]` tables with string- or integer-valued keys only):
//!
//! ```toml
//! [[allow]]
//! path = "crates/graph/src/road.rs"   # suffix match on the repo path
//! rule = "no-panic"                   # which lint rule to silence
//! contains = "u32::try_from"          # optional: substring of the line
//! reason = "why this site is exempt"  # mandatory, shown in reports
//!
//! [[lock]]
//! name = "serve-slot"                 # label used in lock-order reports
//! acquire = "lock_cell"               # dotted call-path suffix of the site
//! rank = 0                            # lower = outermost; must increase inward
//!
//! # Hot-path ENTRY declaration for `cargo xtask flow`:
//! [[hotpath]]
//! entry = "rtse_gsp::GspSolver::propagate"  # crate_ident::[Type::]fn
//! policy = "panic"                          # "panic" | "steady" (panic + alloc)
//! reason = "why this is a hot entry point"
//!
//! # Hot-path WAIVER (silences one flow finding):
//! [[hotpath]]
//! path = "crates/serve/src/server.rs"  # suffix match on the repo path
//! rule = "panic-reach"                 # "panic-reach" | "hot-alloc"
//! construct = "index"                  # optional: one construct slug
//! fn = "respond"                       # optional: only in this function
//! contains = "values[r.index()]"       # optional: substring of the line
//! reason = "why the construct is safe here"
//!
//! # Taint inventory for `cargo xtask taint` (see DESIGN.md §14). A
//! # [[taint]] table is exactly one of four shapes, discriminated by
//! # which key it carries:
//! [[taint]]
//! source = "rtse_edge::read_u16"            # fn spec: its return is tainted
//! reason = "raw little-endian wire reads"   # (or "crate::Type.field" for
//!                                           #  a wire-decoded struct field)
//!
//! [[taint]]
//! sink = "alloc-size"                       # closed vocabulary: alloc-size,
//! reason = "tainted sizes are the DoS vector"  # index, loop-bound, as-cast, arith
//!
//! [[taint]]
//! sanitizer = "rtse_core::SpeedQuery::try_new"  # validated choke point:
//! reason = "rejects empty/out-of-range queries" # its results are clean
//!
//! [[taint]]
//! path = "crates/edge/src/frame.rs"    # waiver: silences one taint finding
//! sink = "alloc-size"                  # optional: one sink kind
//! fn = "decode_query"                  # optional: only in this function
//! contains = "with_capacity"           # optional: substring of the line
//! reason = "count is checked against limits.max_roads first"
//! ```
//!
//! Parsing is fail-closed: unknown keys, unknown rule/construct/sink
//! names, and unknown policies are hard errors, not silently-never-
//! matching entries. Every `[[allow]]` entry must be *used* by the
//! current tree, every `[[lock]]` entry must match at least one
//! acquisition site, every `[[hotpath]]` entry must resolve (entries) or
//! fire (waivers), and every `[[taint]]` source/sanitizer must resolve
//! and waiver must fire; stale entries are reported so the file cannot
//! rot into a blanket waiver or a fictional hierarchy.

use crate::graph::{CONSTRUCTS, FLOW_RULES};
use crate::rules::LINT_RULES;
use crate::taint::TAINT_SINKS;

/// One `[[allow]]` entry.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Repo-relative path suffix the entry applies to.
    pub path: String,
    /// Rule slug the entry silences.
    pub rule: String,
    /// Optional substring the offending line must contain.
    pub contains: Option<String>,
    /// Human justification (required).
    pub reason: String,
}

/// One `[[lock]]` entry: a named rung of the declared lock hierarchy.
#[derive(Debug, Clone)]
pub struct LockEntry {
    /// Label used in lock-order reports.
    pub name: String,
    /// Dotted call-path suffix identifying acquisition sites
    /// (`coherence.write` matches `self.shared.coherence.write(..)`).
    pub acquire: String,
    /// Hierarchy rank: lower = acquired first (outermost). While a rank-r
    /// acquisition is held, only ranks > r may be acquired.
    pub rank: u32,
}

/// Which flow analyses an entry point is subject to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Panic-reachability only.
    Panic,
    /// Panic-reachability plus hot-path allocation discipline.
    Steady,
}

impl Policy {
    pub fn as_str(self) -> &'static str {
        match self {
            Policy::Panic => "panic",
            Policy::Steady => "steady",
        }
    }
}

/// One `[[hotpath]]` entry-point declaration for `cargo xtask flow`.
#[derive(Debug, Clone)]
pub struct HotpathEntry {
    /// `crate_ident::[Type::]fn` spec; must resolve in the call graph.
    pub entry: String,
    pub policy: Policy,
    /// Why this function is a hot entry point (shown in flow-report.json).
    pub reason: String,
}

/// One `[[hotpath]]` waiver: silences one class of flow finding.
#[derive(Debug, Clone)]
pub struct HotpathWaiver {
    /// Repo-relative path suffix the waiver applies to.
    pub path: String,
    /// `panic-reach` or `hot-alloc`.
    pub rule: String,
    /// Optional construct slug (see [`CONSTRUCTS`]).
    pub construct: Option<String>,
    /// Optional function-name restriction (`fn = "..."` in the toml).
    pub func: Option<String>,
    /// Optional substring the offending line must contain.
    pub contains: Option<String>,
    /// Human justification (required).
    pub reason: String,
}

impl HotpathWaiver {
    /// Whether this waiver silences a `rule`/`construct` finding in
    /// function `func` of `path` on a line with content `snippet`.
    pub fn matches(
        &self,
        path: &str,
        rule: &str,
        construct: &str,
        func: &str,
        snippet: &str,
    ) -> bool {
        self.rule == rule
            && path.ends_with(&self.path)
            && self.construct.as_deref().is_none_or(|c| c == construct)
            && self.func.as_deref().is_none_or(|f| f == func)
            && self.contains.as_deref().is_none_or(|c| snippet.contains(c))
    }
}

/// One `[[taint]]` source declaration: a value entering the workspace
/// under attacker control. Either a function spec
/// (`crate_ident::[Type::]fn` — every call's return value is tainted) or
/// a field spec (`crate_ident::Type.field` — every read of that field is
/// tainted).
#[derive(Debug, Clone)]
pub struct TaintSource {
    pub spec: String,
    /// Why this value is untrusted (shown in taint-report.json).
    pub reason: String,
}

impl TaintSource {
    /// `(crate_ident, type, field)` when this is a field spec.
    pub fn field_spec(&self) -> Option<(&str, &str, &str)> {
        let (path, field) = self.spec.rsplit_once('.')?;
        let (crate_ident, ty) = path.split_once("::")?;
        Some((crate_ident, ty, field))
    }
}

/// One `[[taint]]` sink-kind declaration (closed vocabulary, see
/// `taint::TAINT_SINKS`): a construct class that must never consume a
/// tainted integer unwaived.
#[derive(Debug, Clone)]
pub struct TaintSinkDecl {
    pub kind: String,
    /// Why this construct class is dangerous on tainted input.
    pub reason: String,
}

/// One `[[taint]]` sanitizer declaration: a validation choke point whose
/// return value is clean regardless of argument taint
/// (`crate_ident::[Type::]fn`).
#[derive(Debug, Clone)]
pub struct TaintSanitizer {
    pub spec: String,
    /// What invariant the sanitizer establishes.
    pub reason: String,
}

/// One `[[taint]]` waiver: silences one class of taint finding, recording
/// the safety invariant that makes the flagged site safe.
#[derive(Debug, Clone)]
pub struct TaintWaiver {
    /// Repo-relative path suffix the waiver applies to.
    pub path: String,
    /// Optional sink kind (see `taint::TAINT_SINKS`).
    pub sink: Option<String>,
    /// Optional function-name restriction (`fn = "..."` in the toml).
    pub func: Option<String>,
    /// Optional substring the offending line must contain.
    pub contains: Option<String>,
    /// The safety invariant (required).
    pub reason: String,
}

impl TaintWaiver {
    /// Whether this waiver silences a `sink` finding in function `func`
    /// of `path` on a line with content `snippet`.
    pub fn matches(&self, path: &str, sink: &str, func: &str, snippet: &str) -> bool {
        path.ends_with(&self.path)
            && self.sink.as_deref().is_none_or(|s| s == sink)
            && self.func.as_deref().is_none_or(|f| f == func)
            && self.contains.as_deref().is_none_or(|c| snippet.contains(c))
    }
}

/// Everything `lint.toml` declares.
#[derive(Debug, Default)]
pub struct Config {
    /// Scoped rule waivers.
    pub allows: Vec<AllowEntry>,
    /// The declared lock hierarchy, in file order.
    pub locks: Vec<LockEntry>,
    /// Hot-path entry points for `cargo xtask flow`.
    pub entries: Vec<HotpathEntry>,
    /// Hot-path waivers for `cargo xtask flow`.
    pub waivers: Vec<HotpathWaiver>,
    /// Taint sources for `cargo xtask taint`.
    pub taint_sources: Vec<TaintSource>,
    /// Taint sink kinds for `cargo xtask taint`.
    pub taint_sinks: Vec<TaintSinkDecl>,
    /// Taint sanitizers for `cargo xtask taint`.
    pub taint_sanitizers: Vec<TaintSanitizer>,
    /// Taint waivers for `cargo xtask taint`.
    pub taint_waivers: Vec<TaintWaiver>,
}

/// Parses `lint.toml`. Returns the config or a line-tagged error message.
pub fn parse(text: &str) -> Result<Config, String> {
    let mut cfg = Config::default();
    let mut current: Option<(usize, Partial)> = None;

    #[derive(PartialEq, Eq, Clone, Copy)]
    enum Table {
        Allow,
        Lock,
        Hotpath,
        Taint,
    }

    struct Partial {
        table: Table,
        path: Option<String>,
        rule: Option<String>,
        contains: Option<String>,
        reason: Option<String>,
        name: Option<String>,
        acquire: Option<String>,
        rank: Option<u32>,
        entry: Option<String>,
        policy: Option<String>,
        construct: Option<String>,
        func: Option<String>,
        source: Option<String>,
        sink: Option<String>,
        sanitizer: Option<String>,
    }

    impl Partial {
        fn new(table: Table) -> Self {
            Partial {
                table,
                path: None,
                rule: None,
                contains: None,
                reason: None,
                name: None,
                acquire: None,
                rank: None,
                entry: None,
                policy: None,
                construct: None,
                func: None,
                source: None,
                sink: None,
                sanitizer: None,
            }
        }
    }

    /// `crate_ident::fn` or `crate_ident::Type::fn` — the shape
    /// `CallGraph::resolve_entry` accepts.
    fn is_fn_spec(spec: &str) -> bool {
        let segs: Vec<&str> = spec.split("::").collect();
        matches!(segs.len(), 2 | 3)
            && segs
                .iter()
                .all(|s| !s.is_empty() && s.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_'))
    }

    fn check_sink_kind(lineno: usize, kind: &str) -> Result<(), String> {
        if !TAINT_SINKS.contains(&kind) {
            return Err(format!(
                "lint.toml:{lineno}: unknown taint sink \"{kind}\" (known: {})",
                TAINT_SINKS.join(", ")
            ));
        }
        Ok(())
    }

    fn finish(lineno: usize, mut p: Partial, cfg: &mut Config) -> Result<(), String> {
        match p.table {
            Table::Lock => {
                let acquire =
                    p.acquire.ok_or(format!("lint.toml:{lineno}: lock entry missing `acquire`"))?;
                if acquire.is_empty()
                    || !acquire.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'.')
                {
                    return Err(format!(
                        "lint.toml:{lineno}: `acquire` must be a dotted identifier path, got \
                         \"{acquire}\""
                    ));
                }
                cfg.locks.push(LockEntry {
                    name: p.name.ok_or(format!("lint.toml:{lineno}: lock entry missing `name`"))?,
                    acquire,
                    rank: p.rank.ok_or(format!("lint.toml:{lineno}: lock entry missing `rank`"))?,
                });
            }
            Table::Allow => {
                let rule = p.rule.ok_or(format!("lint.toml:{lineno}: entry missing `rule`"))?;
                if !LINT_RULES.contains(&rule.as_str()) {
                    return Err(format!(
                        "lint.toml:{lineno}: unknown lint rule \"{rule}\" (known: {})",
                        LINT_RULES.join(", ")
                    ));
                }
                cfg.allows.push(AllowEntry {
                    path: p.path.ok_or(format!("lint.toml:{lineno}: entry missing `path`"))?,
                    rule,
                    contains: p.contains,
                    reason: p
                        .reason
                        .ok_or(format!("lint.toml:{lineno}: entry missing `reason`"))?,
                });
            }
            Table::Hotpath => {
                let reason = p
                    .reason
                    .ok_or(format!("lint.toml:{lineno}: hotpath entry missing `reason`"))?;
                match (p.entry, p.path) {
                    (Some(entry), None) => {
                        // Entry-point declaration: entry + policy + reason.
                        if p.rule.is_some()
                            || p.construct.is_some()
                            || p.func.is_some()
                            || p.contains.is_some()
                        {
                            return Err(format!(
                                "lint.toml:{lineno}: a hotpath entry declaration takes only \
                                 `entry`, `policy`, `reason`"
                            ));
                        }
                        let policy = p
                            .policy
                            .ok_or(format!("lint.toml:{lineno}: hotpath entry missing `policy`"))?;
                        let policy = match policy.as_str() {
                            "panic" => Policy::Panic,
                            "steady" => Policy::Steady,
                            other => {
                                return Err(format!(
                                    "lint.toml:{lineno}: unknown policy \"{other}\" (known: \
                                     panic, steady)"
                                ))
                            }
                        };
                        cfg.entries.push(HotpathEntry { entry, policy, reason });
                    }
                    (None, Some(path)) => {
                        // Waiver: path + rule [+ construct/fn/contains] + reason.
                        if p.policy.is_some() {
                            return Err(format!(
                                "lint.toml:{lineno}: `policy` belongs on entry declarations, \
                                 not waivers"
                            ));
                        }
                        let rule = p
                            .rule
                            .ok_or(format!("lint.toml:{lineno}: hotpath waiver missing `rule`"))?;
                        if !FLOW_RULES.contains(&rule.as_str()) {
                            return Err(format!(
                                "lint.toml:{lineno}: unknown flow rule \"{rule}\" (known: {})",
                                FLOW_RULES.join(", ")
                            ));
                        }
                        if let Some(c) = p.construct.as_deref() {
                            if !CONSTRUCTS.contains(&c) {
                                return Err(format!(
                                    "lint.toml:{lineno}: unknown construct \"{c}\" (known: {})",
                                    CONSTRUCTS.join(", ")
                                ));
                            }
                        }
                        cfg.waivers.push(HotpathWaiver {
                            path,
                            rule,
                            construct: p.construct,
                            func: p.func,
                            contains: p.contains,
                            reason,
                        });
                    }
                    (Some(_), Some(_)) => {
                        return Err(format!(
                            "lint.toml:{lineno}: hotpath table has both `entry` and `path`; \
                             declare the entry point and the waiver separately"
                        ))
                    }
                    (None, None) => {
                        return Err(format!(
                            "lint.toml:{lineno}: hotpath table needs `entry` (entry point) or \
                             `path` (waiver)"
                        ))
                    }
                }
            }
            Table::Taint => {
                let reason = p
                    .reason
                    .take()
                    .ok_or(format!("lint.toml:{lineno}: taint entry missing `reason`"))?;
                let extras_forbidden = |p: &Partial, what: &str| -> Result<(), String> {
                    if p.func.is_some() || p.contains.is_some() {
                        return Err(format!(
                            "lint.toml:{lineno}: `fn`/`contains` belong on taint waivers, not \
                             {what} declarations"
                        ));
                    }
                    Ok(())
                };
                match (p.source.take(), p.sanitizer.take(), p.path.take(), p.sink.take()) {
                    (Some(spec), None, None, None) => {
                        // Source: fn spec or `crate::Type.field` field spec.
                        let ok = match spec.rsplit_once('.') {
                            Some((path, field)) => {
                                is_fn_spec(path)
                                    && !field.is_empty()
                                    && field.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_')
                            }
                            None => is_fn_spec(&spec),
                        };
                        if !ok {
                            return Err(format!(
                                "lint.toml:{lineno}: taint source must be \
                                 `crate_ident::[Type::]fn` or `crate_ident::Type.field`, got \
                                 \"{spec}\""
                            ));
                        }
                        extras_forbidden(&p, "source")?;
                        cfg.taint_sources.push(TaintSource { spec, reason });
                    }
                    (None, Some(spec), None, None) => {
                        if !is_fn_spec(&spec) {
                            return Err(format!(
                                "lint.toml:{lineno}: taint sanitizer must be \
                                 `crate_ident::[Type::]fn`, got \"{spec}\""
                            ));
                        }
                        extras_forbidden(&p, "sanitizer")?;
                        cfg.taint_sanitizers.push(TaintSanitizer { spec, reason });
                    }
                    (None, None, Some(path), sink) => {
                        // Waiver: path [+ sink/fn/contains] + reason.
                        if let Some(kind) = sink.as_deref() {
                            check_sink_kind(lineno, kind)?;
                        }
                        cfg.taint_waivers.push(TaintWaiver {
                            path,
                            sink,
                            func: p.func,
                            contains: p.contains,
                            reason,
                        });
                    }
                    (None, None, None, Some(kind)) => {
                        check_sink_kind(lineno, &kind)?;
                        extras_forbidden(&p, "sink")?;
                        cfg.taint_sinks.push(TaintSinkDecl { kind, reason });
                    }
                    _ => {
                        return Err(format!(
                            "lint.toml:{lineno}: taint table must be exactly one of: `source`, \
                             `sanitizer`, `sink`, or a waiver (`path` [+ `sink`])"
                        ))
                    }
                }
            }
        }
        Ok(())
    }

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let table = match line {
            "[[allow]]" => Some(Table::Allow),
            "[[lock]]" => Some(Table::Lock),
            "[[hotpath]]" => Some(Table::Hotpath),
            "[[taint]]" => Some(Table::Taint),
            _ => None,
        };
        if let Some(table) = table {
            if let Some((at, p)) = current.take() {
                finish(at, p, &mut cfg)?;
            }
            current = Some((lineno, Partial::new(table)));
            continue;
        }
        if line.starts_with("[[") {
            return Err(format!(
                "lint.toml:{lineno}: unknown table `{line}` (known: [[allow]], [[lock]], \
                 [[hotpath]], [[taint]])"
            ));
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("lint.toml:{lineno}: expected `key = \"value\"`"));
        };
        let key = key.trim();
        let value = value.trim();
        let Some((_, p)) = current.as_mut() else {
            return Err(format!(
                "lint.toml:{lineno}: key outside an [[allow]]/[[lock]]/[[hotpath]]/[[taint]] \
                 table"
            ));
        };
        if p.table == Table::Lock && key == "rank" {
            let rank: u32 = value
                .parse()
                .map_err(|_| format!("lint.toml:{lineno}: `rank` must be an integer"))?;
            if p.rank.replace(rank).is_some() {
                return Err(format!("lint.toml:{lineno}: duplicate key `rank`"));
            }
            continue;
        }
        let Some(value) = value.strip_prefix('"').and_then(|v| v.strip_suffix('"')) else {
            return Err(format!("lint.toml:{lineno}: value must be a double-quoted string"));
        };
        let slot = match (p.table, key) {
            (Table::Allow, "path") => &mut p.path,
            (Table::Allow, "rule") => &mut p.rule,
            (Table::Allow, "contains") => &mut p.contains,
            (Table::Allow, "reason") => &mut p.reason,
            (Table::Lock, "name") => &mut p.name,
            (Table::Lock, "acquire") => &mut p.acquire,
            (Table::Hotpath, "entry") => &mut p.entry,
            (Table::Hotpath, "policy") => &mut p.policy,
            (Table::Hotpath, "path") => &mut p.path,
            (Table::Hotpath, "rule") => &mut p.rule,
            (Table::Hotpath, "construct") => &mut p.construct,
            (Table::Hotpath, "fn") => &mut p.func,
            (Table::Hotpath, "contains") => &mut p.contains,
            (Table::Hotpath, "reason") => &mut p.reason,
            (Table::Taint, "source") => &mut p.source,
            (Table::Taint, "sink") => &mut p.sink,
            (Table::Taint, "sanitizer") => &mut p.sanitizer,
            (Table::Taint, "path") => &mut p.path,
            (Table::Taint, "fn") => &mut p.func,
            (Table::Taint, "contains") => &mut p.contains,
            (Table::Taint, "reason") => &mut p.reason,
            (_, other) => return Err(format!("lint.toml:{lineno}: unknown key `{other}`")),
        };
        if slot.replace(value.to_string()).is_some() {
            return Err(format!("lint.toml:{lineno}: duplicate key `{key}`"));
        }
    }
    if let Some((at, p)) = current.take() {
        finish(at, p, &mut cfg)?;
    }
    Ok(cfg)
}

impl AllowEntry {
    /// Whether this entry silences a violation of `rule` at `path` on a
    /// line with content `snippet`.
    pub fn matches(&self, path: &str, rule: &str, snippet: &str) -> bool {
        self.rule == rule
            && path.ends_with(&self.path)
            && self.contains.as_deref().is_none_or(|c| snippet.contains(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries() {
        let text = r#"
# comment
[[allow]]
path = "crates/graph/src/road.rs"
rule = "no-panic"
contains = "try_from"
reason = "From impls cannot return Result"

[[allow]]
path = "crates/math/src/matrix.rs"
rule = "float-eq"
reason = "exact-zero skip"
"#;
        let cfg = parse(text).expect("parses");
        let entries = &cfg.allows;
        assert_eq!(entries.len(), 2);
        assert!(cfg.locks.is_empty());
        assert!(entries[0].matches("crates/graph/src/road.rs", "no-panic", "u32::try_from(v)"));
        assert!(!entries[0].matches("crates/graph/src/road.rs", "no-panic", "other line"));
        assert!(entries[1].matches("/abs/crates/math/src/matrix.rs", "float-eq", "a == 0.0"));
    }

    #[test]
    fn parses_lock_hierarchy() {
        let text = r#"
[[lock]]
name = "serve-slot"
acquire = "lock_cell"
rank = 0

[[lock]]
name = "coherence-write"
acquire = "coherence.write"
rank = 1

[[allow]]
path = "x.rs"
rule = "float-eq"
reason = "mixed tables parse"
"#;
        let cfg = parse(text).expect("parses");
        assert_eq!(cfg.locks.len(), 2);
        assert_eq!(cfg.allows.len(), 1);
        assert_eq!(cfg.locks[0].name, "serve-slot");
        assert_eq!(cfg.locks[0].rank, 0);
        assert_eq!(cfg.locks[1].acquire, "coherence.write");
        assert_eq!(cfg.locks[1].rank, 1);
    }

    #[test]
    fn parses_hotpath_entries_and_waivers() {
        let text = r#"
[[hotpath]]
entry = "rtse_gsp::GspSolver::propagate"
policy = "panic"
reason = "round execution"

[[hotpath]]
entry = "rtse_serve::AnswerCache::round_for_published"
policy = "steady"
reason = "cache-hit path must not allocate"

[[hotpath]]
path = "crates/serve/src/server.rs"
rule = "panic-reach"
construct = "index"
fn = "respond"
contains = "values[r.index()]"
reason = "admission bounds-checks road ids"
"#;
        let cfg = parse(text).expect("parses");
        assert_eq!(cfg.entries.len(), 2);
        assert_eq!(cfg.entries[0].policy, Policy::Panic);
        assert_eq!(cfg.entries[1].policy, Policy::Steady);
        assert_eq!(cfg.waivers.len(), 1);
        let w = &cfg.waivers[0];
        assert!(w.matches(
            "crates/serve/src/server.rs",
            "panic-reach",
            "index",
            "respond",
            "let v = values[r.index()];"
        ));
        assert!(!w.matches(
            "crates/serve/src/server.rs",
            "panic-reach",
            "index",
            "other_fn",
            "let v = values[r.index()];"
        ));
        assert!(!w.matches(
            "crates/serve/src/server.rs",
            "hot-alloc",
            "index",
            "respond",
            "let v = values[r.index()];"
        ));
    }

    #[test]
    fn parses_taint_inventory() {
        let text = r#"
[[taint]]
source = "rtse_edge::read_u16"
reason = "raw wire reads"

[[taint]]
source = "rtse_edge::QueryFrame.roads"
reason = "attacker-chosen road ids"

[[taint]]
sink = "alloc-size"
reason = "memory DoS"

[[taint]]
sanitizer = "rtse_core::SpeedQuery::try_new"
reason = "validated constructor"

[[taint]]
path = "crates/edge/src/frame.rs"
sink = "alloc-size"
fn = "decode_query"
contains = "with_capacity"
reason = "count checked against limits.max_roads"
"#;
        let cfg = parse(text).expect("parses");
        assert_eq!(cfg.taint_sources.len(), 2);
        assert_eq!(cfg.taint_sources[0].field_spec(), None);
        assert_eq!(cfg.taint_sources[1].field_spec(), Some(("rtse_edge", "QueryFrame", "roads")));
        assert_eq!(cfg.taint_sinks.len(), 1);
        assert_eq!(cfg.taint_sinks[0].kind, "alloc-size");
        assert_eq!(cfg.taint_sanitizers.len(), 1);
        assert_eq!(cfg.taint_waivers.len(), 1);
        let w = &cfg.taint_waivers[0];
        assert!(w.matches(
            "crates/edge/src/frame.rs",
            "alloc-size",
            "decode_query",
            "let mut roads = Vec::with_capacity(count as usize);"
        ));
        assert!(!w.matches("crates/edge/src/frame.rs", "index", "decode_query", "with_capacity"));
        assert!(!w.matches(
            "crates/edge/src/frame.rs",
            "alloc-size",
            "decode_answer",
            "with_capacity"
        ));
    }

    #[test]
    fn rejects_bad_taint_tables() {
        let bad_sink = "[[taint]]\nsink = \"allocsize\"\nreason = \"y\"\n";
        let err = parse(bad_sink).expect_err("unknown sink kind");
        assert!(err.contains("unknown taint sink"), "{err}");

        let bad_source = "[[taint]]\nsource = \"no_crate_sep\"\nreason = \"y\"\n";
        let err = parse(bad_source).expect_err("source without ::");
        assert!(err.contains("taint source"), "{err}");

        let two_shapes = "[[taint]]\nsource = \"a::b\"\nsanitizer = \"c::d\"\nreason = \"y\"\n";
        assert!(parse(two_shapes).is_err(), "source + sanitizer in one table");

        let none = "[[taint]]\nreason = \"y\"\n";
        assert!(parse(none).is_err(), "no discriminating key");

        let no_reason = "[[taint]]\nsource = \"a::b\"\n";
        assert!(parse(no_reason).is_err(), "missing reason");

        let waiver_bad_kind = "[[taint]]\npath = \"x.rs\"\nsink = \"boom\"\nreason = \"y\"\n";
        let err = parse(waiver_bad_kind).expect_err("waiver with unknown sink");
        assert!(err.contains("unknown taint sink"), "{err}");

        let fn_on_source = "[[taint]]\nsource = \"a::b\"\nfn = \"f\"\nreason = \"y\"\n";
        assert!(parse(fn_on_source).is_err(), "fn key on a source declaration");
    }

    #[test]
    fn rejects_missing_reason() {
        let text = "[[allow]]\npath = \"x\"\nrule = \"no-panic\"\n";
        assert!(parse(text).is_err());
    }

    #[test]
    fn rejects_unknown_keys() {
        let text = "[[allow]]\npath = \"x\"\nrule = \"no-panic\"\nreason = \"y\"\nsev = \"z\"\n";
        assert!(parse(text).is_err());
    }

    #[test]
    fn rejects_unknown_rule_names() {
        let allow = "[[allow]]\npath = \"x\"\nrule = \"no-painc\"\nreason = \"y\"\n";
        let err = parse(allow).expect_err("typo'd lint rule");
        assert!(err.contains("unknown lint rule"), "{err}");

        let waiver = "[[hotpath]]\npath = \"x\"\nrule = \"no-panic\"\nreason = \"y\"\n";
        let err = parse(waiver).expect_err("lint rule in a flow waiver");
        assert!(err.contains("unknown flow rule"), "{err}");

        let construct =
            "[[hotpath]]\npath = \"x\"\nrule = \"hot-alloc\"\nconstruct = \"colect\"\nreason = \"y\"\n";
        let err = parse(construct).expect_err("typo'd construct");
        assert!(err.contains("unknown construct"), "{err}");
    }

    #[test]
    fn rejects_bad_hotpath_tables() {
        let both = "[[hotpath]]\nentry = \"a::b\"\npath = \"x\"\nreason = \"y\"\n";
        assert!(parse(both).is_err(), "entry + path in one table");

        let neither = "[[hotpath]]\nreason = \"y\"\n";
        assert!(parse(neither).is_err(), "neither entry nor path");

        let bad_policy = "[[hotpath]]\nentry = \"a::b\"\npolicy = \"stedy\"\nreason = \"y\"\n";
        let err = parse(bad_policy).expect_err("typo'd policy");
        assert!(err.contains("unknown policy"), "{err}");

        let no_policy = "[[hotpath]]\nentry = \"a::b\"\nreason = \"y\"\n";
        assert!(parse(no_policy).is_err(), "entry without policy");

        let waiver_policy =
            "[[hotpath]]\npath = \"x\"\nrule = \"hot-alloc\"\npolicy = \"panic\"\nreason = \"y\"\n";
        assert!(parse(waiver_policy).is_err(), "policy on a waiver");
    }

    #[test]
    fn rejects_unknown_tables_and_bad_acquire() {
        assert!(parse("[[waive]]\npath = \"x\"\n").is_err(), "unknown table name");
        let bad = "[[lock]]\nname = \"a\"\nacquire = \"lock cell\"\nrank = 0\n";
        let err = parse(bad).expect_err("acquire with a space");
        assert!(err.contains("dotted identifier path"), "{err}");
    }

    #[test]
    fn rejects_bad_lock_entries() {
        assert!(parse("[[lock]]\nname = \"a\"\nacquire = \"b\"\n").is_err(), "missing rank");
        assert!(
            parse("[[lock]]\nname = \"a\"\nacquire = \"b\"\nrank = \"zero\"\n").is_err(),
            "non-integer rank"
        );
        assert!(parse("[[lock]]\nacquire = \"b\"\nrank = 1\n").is_err(), "missing name");
    }
}
