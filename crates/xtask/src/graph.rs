//! Workspace symbol table and interprocedural call graph for `cargo xtask
//! flow`.
//!
//! Built from the same lexer the concurrency rules use ([`crate::ast`]):
//! every first-party `.rs` file is scrubbed, lexed, and scanned for
//! function definitions (with their enclosing `impl` type), call sites
//! (bare, path-qualified, turbofish, method), and the panic/allocation
//! constructs the flow analyses care about. Resolution is name-based and
//! deliberately over-approximate — no type inference, no trait-object or
//! closure resolution (DESIGN.md §10 documents the imprecision):
//!
//! * `Type::name(..)` / `some_crate::..::name(..)` resolve through the
//!   qualifier (impl type and/or crate ident).
//! * `self.name(..)` resolves within the enclosing impl, then the crate.
//! * `recv.name(..)` resolves to *every* workspace method of that name —
//!   except [`AMBIENT_METHODS`] (names shadowed by std's iterator and
//!   collection vocabulary), which resolve only via `self` or a qualified
//!   path: resolving `xs.map(..)` to `ComputePool::map` would poison the
//!   whole graph with false hot-path edges.
//! * bare `name(..)` prefers the defining crate, then falls back to any
//!   crate (cross-crate `use` imports).
//!
//! Closure bodies are attributed to the function that *defines* them (the
//! call through the closure variable itself does not resolve), and
//! `#[cfg(test)]` regions are excluded entirely.

use crate::ast::Ast;
use crate::scrub::scrub;
use std::collections::{HashMap, HashSet};
use std::ops::Range;
use std::path::{Path, PathBuf};

/// Rules the flow pass can flag (and `[[hotpath]]` waivers can name).
pub const FLOW_RULES: &[&str] = &["panic-reach", "hot-alloc"];

/// Construct slugs the flow pass detects, for `[[hotpath]]` waiver
/// validation. The first five are `panic-reach`, the rest `hot-alloc`.
pub const CONSTRUCTS: &[&str] = &[
    "unwrap",
    "expect",
    "panic-macro",
    "index",
    "div",
    "collect",
    "format",
    "vec-macro",
    "box-new",
    "to-vec",
    "to-string",
    "push",
    "vec-new",
    "clone",
];

/// Method names shadowed by std's iterator/collection vocabulary. A
/// `recv.name(..)` call with one of these names resolves only when the
/// receiver is `self` or the call is path-qualified; otherwise virtually
/// every `.map(..)`/`.push(..)` in the workspace would edge into the
/// workspace functions that happen to share the name.
pub const AMBIENT_METHODS: &[&str] = &[
    "map",
    "filter",
    "len",
    "get",
    "push",
    "insert",
    "extend",
    "iter",
    "iter_mut",
    "clone",
    "collect",
    "min",
    "max",
    "sum",
    "find",
    "position",
    "take",
    "skip",
    "chain",
    "zip",
    "fold",
    "rev",
    "sort",
    "contains",
    "count",
    "next",
    "last",
    "first",
    "split",
    "join",
    "abs",
    "send",
    "recv",
    "wait",
    "to_string",
    "to_vec",
    "into_iter",
    "expect",
    "unwrap",
    "into",
    "from",
    "new",
];

const KEYWORDS: &[&str] = &[
    "fn", "if", "else", "while", "for", "loop", "match", "return", "let", "in", "as", "move",
    "unsafe", "ref", "mut", "pub", "impl", "trait", "struct", "enum", "use", "mod", "where",
    "const", "static", "type", "dyn", "crate", "super", "async", "await", "break", "continue",
    "self", "Self",
];

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// How a call site names its target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// `name(..)` with no qualifier.
    Bare,
    /// `a::b::name(..)`.
    Path,
    /// `self.name(..)`.
    MethodSelf,
    /// `recv.name(..)` for any other receiver.
    Method,
}

/// One call site inside a function body.
#[derive(Debug)]
pub struct CallSite {
    pub name: String,
    /// Path segments before the final name (empty unless [`CallKind::Path`]).
    pub qualifier: Vec<String>,
    pub kind: CallKind,
    /// Simple-identifier receiver of a [`CallKind::Method`] call
    /// (`recv.name(..)` where `recv` is a single ident, not a field or
    /// call chain) — lets resolution consult the enclosing function's
    /// typed parameters.
    pub receiver: Option<String>,
}

/// One panic/allocation construct inside a function body.
#[derive(Debug)]
pub struct ConstructSite {
    /// `panic-reach` or `hot-alloc`.
    pub rule: &'static str,
    /// Construct slug (see [`CONSTRUCTS`]).
    pub construct: &'static str,
    pub line: usize,
    pub snippet: String,
    /// True for sized-allocation constructs (`push`, `vec-new`) that a
    /// visible `with_capacity`/`reserve` in the same function sanctions.
    pub capacity_gated: bool,
}

/// One function definition in the workspace.
#[derive(Debug)]
pub struct FnDef {
    /// Library ident of the defining crate (e.g. `rtse_gsp`).
    pub crate_ident: String,
    /// Enclosing `impl` type, when the function is a method.
    pub impl_type: Option<String>,
    pub name: String,
    /// Repo-relative file path.
    pub file: String,
    pub line: usize,
    /// Parameter names: a bare call to one of these is a closure-parameter
    /// invocation and resolves to nothing (the closure's body is already
    /// attributed to the function that defines it).
    pub params: Vec<String>,
    /// `(name, type ident)` for parameters whose declared type names a
    /// single capitalised path head (`obs: &ObsHandle` → `ObsHandle`);
    /// method calls through such a parameter resolve by impl type.
    pub param_types: Vec<(String, String)>,
    pub calls: Vec<CallSite>,
    pub constructs: Vec<ConstructSite>,
    /// Whether the body contains `with_capacity`/`reserve`/`reserve_exact`.
    pub capacity_hint: bool,
}

impl FnDef {
    /// `crate::Type::name` / `crate::name` — the display form used in
    /// traces, reports, and `[[hotpath]]` `entry` declarations.
    pub fn qualified(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{}::{}::{}", self.crate_ident, t, self.name),
            None => format!("{}::{}", self.crate_ident, self.name),
        }
    }
}

/// The resolved workspace call graph.
pub struct CallGraph {
    /// All function definitions, sorted by (file, line).
    pub fns: Vec<FnDef>,
    /// `callees[i]` = sorted, deduplicated indices `fns[i]` may call.
    pub callees: Vec<Vec<usize>>,
    /// Call sites that resolved to no workspace function (std calls,
    /// closures, ambient-name method calls).
    pub unresolved_calls: usize,
    pub files_scanned: usize,
    /// Library idents of the crates scanned, sorted.
    pub crates: Vec<String>,
    /// Transitive `[dependencies]` closure per crate ident — the
    /// visibility map resolution filtered candidates through. Kept on the
    /// graph so downstream passes (taint) can re-resolve call sites they
    /// discover themselves under the same policy.
    pub deps: HashMap<String, HashSet<String>>,
}

impl CallGraph {
    /// Indices of functions matching an entry spec
    /// `crate_ident::[Type::]name`.
    pub fn resolve_entry(&self, spec: &str) -> Vec<usize> {
        let segs: Vec<&str> = spec.split("::").collect();
        let (crate_ident, impl_type, name) = match segs.len() {
            2 => (segs[0], None, segs[1]),
            3 => (segs[0], Some(segs[1]), segs[2]),
            _ => return Vec::new(),
        };
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| {
                f.crate_ident == crate_ident
                    && f.name == name
                    && impl_type.is_none_or(|t| f.impl_type.as_deref() == Some(t))
            })
            .map(|(i, _)| i)
            .collect()
    }
}

/// Scans the workspace under `root` and builds the call graph.
///
/// Covered: `crates/*/src/**/*.rs` (excluding `crates/xtask`, which is
/// tooling, and `src/bin/` directories, whose binaries may panic freely)
/// plus the facade crate's root `src/`.
pub fn build(root: &Path) -> Result<CallGraph, String> {
    let mut sources: Vec<(String, PathBuf, String)> = Vec::new(); // (ident, path, rel)
    let mut deps: HashMap<String, HashSet<String>> = HashMap::new();
    let crates_dir = root.join("crates");
    let entries =
        std::fs::read_dir(&crates_dir).map_err(|e| format!("reading {crates_dir:?}: {e}"))?;
    let mut dirs: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    dirs.sort();
    for dir in dirs {
        let Some(dir_name) = dir.file_name().and_then(|n| n.to_str()).map(str::to_string) else {
            continue;
        };
        if dir_name == "xtask" {
            continue;
        }
        let src = dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let ident = crate_ident(&dir).unwrap_or_else(|| dir_name.replace('-', "_"));
        deps.insert(ident.clone(), crate_deps(&dir));
        collect_sources(&src, root, &ident, &mut sources)?;
    }
    if root.join("src").is_dir() {
        let ident = crate_ident(root).unwrap_or_else(|| "crowd_rtse".into());
        deps.insert(ident.clone(), crate_deps(root));
        collect_sources(&root.join("src"), root, &ident, &mut sources)?;
    }
    sources.sort_by(|a, b| a.2.cmp(&b.2));
    let deps = transitive_deps(deps);

    let mut fns: Vec<FnDef> = Vec::new();
    for (ident, path, rel) in &sources {
        let src = std::fs::read_to_string(path).map_err(|e| format!("reading {rel}: {e}"))?;
        scan_file(ident, rel, &src, &mut fns);
    }
    fns.sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));

    let (callees, unresolved_calls) = resolve_calls(&fns, &deps);
    let mut crates: Vec<String> = sources.iter().map(|(i, _, _)| i.clone()).collect();
    crates.sort();
    crates.dedup();
    Ok(CallGraph { callees, unresolved_calls, files_scanned: sources.len(), crates, fns, deps })
}

/// Library ident of the crate rooted at `dir` (package name with `-`
/// mapped to `_`), read from its `Cargo.toml`.
fn crate_ident(dir: &Path) -> Option<String> {
    let manifest = std::fs::read_to_string(dir.join("Cargo.toml")).ok()?;
    for line in manifest.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("name") {
            let rest = rest.trim_start();
            if let Some(v) = rest.strip_prefix('=') {
                let v = v.trim().trim_matches('"');
                return Some(v.replace('-', "_"));
            }
        }
    }
    None
}

/// Direct `[dependencies]` idents of the crate rooted at `dir`
/// (dev-dependencies deliberately excluded: test-only edges must not put
/// a crate on a hot path).
fn crate_deps(dir: &Path) -> HashSet<String> {
    let mut out = HashSet::new();
    let Ok(manifest) = std::fs::read_to_string(dir.join("Cargo.toml")) else {
        return out;
    };
    let mut in_deps = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_deps = line == "[dependencies]";
            continue;
        }
        if !in_deps || line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(name) = line.split(['=', '.', ' ']).next() {
            if !name.is_empty() {
                out.insert(name.replace('-', "_"));
            }
        }
    }
    out
}

/// Transitive closure of the dependency map (a crate "sees" its deps'
/// deps through re-exports).
fn transitive_deps(direct: HashMap<String, HashSet<String>>) -> HashMap<String, HashSet<String>> {
    let mut out: HashMap<String, HashSet<String>> = HashMap::new();
    for ident in direct.keys() {
        let mut seen: HashSet<String> = HashSet::new();
        let mut stack: Vec<&String> = vec![ident];
        while let Some(cur) = stack.pop() {
            if let Some(ds) = direct.get(cur) {
                for d in ds {
                    if seen.insert(d.clone()) {
                        stack.push(d);
                    }
                }
            }
        }
        seen.insert(ident.clone());
        out.insert(ident.clone(), seen);
    }
    out
}

fn collect_sources(
    dir: &Path,
    root: &Path,
    ident: &str,
    out: &mut Vec<(String, PathBuf, String)>,
) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("reading {dir:?}: {e}"))?;
    for entry in entries.flatten() {
        let path = entry.path();
        let rel = path.strip_prefix(root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
        if path.is_dir() {
            // Binaries may panic and allocate freely; they are never
            // reachable *from* library entry points, and their local fn
            // names would only add spurious same-name edges.
            if rel.ends_with("/bin") {
                continue;
            }
            collect_sources(&path, root, ident, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push((ident.to_string(), path, rel));
        }
    }
    Ok(())
}

/// A function definition found during the raw scan (token coordinates).
/// Exposed to the taint pass, which re-lexes files to get statement-level
/// token ranges the [`FnDef`] summary does not keep.
pub(crate) struct RawFn {
    pub(crate) name_idx: usize,
    pub(crate) body: Range<usize>,
    /// Parameter names, for closure-parameter call suppression.
    pub(crate) params: Vec<String>,
    /// Parameters whose declared type resolved to a single type ident.
    #[allow(dead_code)]
    pub(crate) param_types: Vec<(String, String)>,
}

pub(crate) fn is_keyword(word: &str) -> bool {
    KEYWORDS.contains(&word)
}

/// Scans one file for function definitions, impl spans, calls, and
/// constructs, appending completed [`FnDef`]s to `out`.
fn scan_file(crate_ident: &str, rel: &str, src: &str, out: &mut Vec<FnDef>) {
    let sc = scrub(src);
    let ast = Ast::lex(src, &sc);
    let impls = find_impls(&ast);
    let raw = find_fns(&ast);

    // Innermost-enclosing-fn assignment: body ranges nest, so the
    // narrowest range containing a token wins.
    let owner_of = |tok: usize| -> Option<usize> {
        raw.iter()
            .enumerate()
            .filter(|(_, f)| f.body.contains(&tok))
            .min_by_key(|(_, f)| f.body.end - f.body.start)
            .map(|(i, _)| i)
    };

    let mut defs: Vec<FnDef> = raw
        .iter()
        .map(|f| {
            let impl_type = impls
                .iter()
                .filter(|(_, r)| r.contains(&f.name_idx))
                .min_by_key(|(_, r)| r.end - r.start)
                .map(|(t, _)| t.clone());
            FnDef {
                crate_ident: crate_ident.to_string(),
                impl_type,
                name: ast.text_of(f.name_idx).to_string(),
                file: rel.to_string(),
                line: ast.line(f.name_idx),
                params: f.params.clone(),
                param_types: f.param_types.clone(),
                calls: Vec::new(),
                constructs: Vec::new(),
                capacity_hint: false,
            }
        })
        .collect();

    scan_events(&ast, &mut defs, owner_of);
    out.append(&mut defs);
}

/// Finds `impl` blocks: `(type name, body token range)`. The type is the
/// last path segment before the body brace (after `for` when present),
/// with generic argument lists skipped.
pub(crate) fn find_impls(ast: &Ast) -> Vec<(String, Range<usize>)> {
    let mut out = Vec::new();
    for idx in 0..ast.len() {
        if !ast.is_ident(idx, "impl") || ast.in_test(idx) {
            continue;
        }
        let mut i = idx + 1;
        let mut angle = 0i32;
        let mut last: Option<String> = None;
        while i < ast.len() {
            if ast.is_punct(i, b'<') {
                angle += 1;
            } else if ast.is_punct(i, b'>') && !ast.is_punct(i.wrapping_sub(1), b'-') {
                angle -= 1;
            } else if ast.is_punct(i, b'(') || ast.is_punct(i, b'[') {
                // Fn-trait bounds (`F: Fn(A) -> B`) and array types.
                i = match ast.closer_of(i) {
                    Some(c) => c,
                    None => break,
                };
            } else if angle == 0 {
                if ast.is_punct(i, b'{') {
                    if let (Some(t), Some(close)) = (last.take(), ast.closer_of(i)) {
                        out.push((t, i..close));
                    }
                    break;
                }
                if ast.is_ident(i, "where") {
                    // Bound idents would overwrite the type; the body
                    // brace still terminates the scan.
                    while i < ast.len() && !ast.is_punct(i, b'{') {
                        i += 1;
                    }
                    continue;
                }
                if ast.is_ident(i, "for") {
                    last = None;
                } else if let Some(word) = ast.ident_at(i) {
                    if !is_keyword(word) {
                        last = Some(word.to_string());
                    }
                }
            }
            i += 1;
        }
    }
    out
}

/// Finds function definitions with bodies (trait-method declarations
/// ending in `;` are skipped), excluding `#[cfg(test)]` regions.
pub(crate) fn find_fns(ast: &Ast) -> Vec<RawFn> {
    let mut out = Vec::new();
    for idx in 0..ast.len().saturating_sub(1) {
        if !ast.is_ident(idx, "fn") || ast.in_test(idx) {
            continue;
        }
        let name_idx = idx + 1;
        if ast.ident_at(name_idx).is_none() {
            continue;
        }
        // Body: the first top-level `{` after the signature; `(..)` and
        // `[..]` groups (parameters, Fn-trait bounds, array types) are
        // skipped whole via delimiter pairing. The first paren group is
        // the parameter list; a top-level ident immediately followed by a
        // single `:` inside it is a parameter name.
        let mut i = name_idx + 1;
        let mut body = None;
        let mut params: Vec<String> = Vec::new();
        let mut param_types: Vec<(String, String)> = Vec::new();
        let mut saw_params = false;
        while i < ast.len() {
            if ast.is_punct(i, b'(') || ast.is_punct(i, b'[') {
                match ast.closer_of(i) {
                    Some(c) => {
                        if !saw_params && ast.is_punct(i, b'(') {
                            saw_params = true;
                            for j in i + 1..c {
                                if ast.ident_at(j).is_some()
                                    && ast.is_punct(j + 1, b':')
                                    && !ast.is_punct(j + 2, b':')
                                    && !ast.is_punct(j.wrapping_sub(1), b':')
                                {
                                    let name = ast.text_of(j).to_string();
                                    if let Some(ty) = param_type_ident(ast, j + 2, c) {
                                        param_types.push((name.clone(), ty));
                                    }
                                    params.push(name);
                                }
                            }
                        }
                        i = c + 1;
                    }
                    None => break,
                }
            } else if ast.is_punct(i, b'{') {
                let end = ast.closer_of(i).unwrap_or(ast.len());
                body = Some(i + 1..end);
                break;
            } else if ast.is_punct(i, b';') {
                break;
            } else {
                i += 1;
            }
        }
        if let Some(body) = body {
            out.push(RawFn { name_idx, body, params, param_types });
        }
    }
    out
}

/// The single capitalised type ident a parameter's declared type reduces
/// to, scanning from just past the `:` at `start` to the next top-level
/// `,` (or `end`): `&ObsHandle` → `ObsHandle`, `&mut Graph` → `Graph`,
/// `Shared<'_>` → `Shared`, `obs::ObsHandle` → `ObsHandle`. `None` for
/// primitives, tuples, slices, closures, and `dyn` trait objects —
/// anything a method call cannot be resolved through by name.
fn param_type_ident(ast: &Ast, start: usize, end: usize) -> Option<String> {
    let mut angle = 0i32;
    let mut i = start;
    while i < end {
        if angle == 0 && ast.is_punct(i, b',') {
            return None;
        }
        if ast.is_punct(i, b'<') {
            angle += 1;
        } else if ast.is_punct(i, b'>') && !ast.is_punct(i.wrapping_sub(1), b'-') {
            angle -= 1;
        } else if ast.is_punct(i, b'(') || ast.is_punct(i, b'[') {
            return None; // tuple/array/slice types, `impl Fn(..)` bounds
        } else if angle == 0 {
            if let Some(word) = ast.ident_at(i) {
                if ast.is_punct(i.wrapping_sub(1), b'\'') {
                    i += 1;
                    continue; // lifetime (`&'a Graph`)
                }
                if word == "dyn" {
                    return None;
                }
                if !is_keyword(word) {
                    // Module path segments (`obs::ObsHandle`) are skipped;
                    // the path head decides.
                    if ast.is_punct(i + 1, b':') && ast.is_punct(i + 2, b':') {
                        i += 3;
                        continue;
                    }
                    return word
                        .chars()
                        .next()
                        .is_some_and(char::is_uppercase)
                        .then(|| word.to_string());
                }
            }
        }
        i += 1;
    }
    None
}

/// Scans the token stream once for call sites and constructs, assigning
/// each to its innermost enclosing function.
fn scan_events(ast: &Ast, defs: &mut [FnDef], owner_of: impl Fn(usize) -> Option<usize>) {
    let mut idx = 0;
    while idx < ast.len() {
        // Attributes (`#[..]`) contain call-shaped tokens (`derive(..)`,
        // `cfg(..)`); skip them whole.
        if ast.is_punct(idx, b'#') && ast.is_punct(idx + 1, b'[') {
            if let Some(close) = ast.closer_of(idx + 1) {
                idx = close + 1;
                continue;
            }
        }
        if ast.in_test(idx) {
            idx += 1;
            continue;
        }
        let Some(owner) = owner_of(idx) else {
            idx += 1;
            continue;
        };
        scan_one(ast, idx, &mut defs[owner]);
        idx += 1;
    }
    for def in defs.iter_mut() {
        def.capacity_hint = def.capacity_hint
            || def
                .calls
                .iter()
                .any(|c| matches!(c.name.as_str(), "with_capacity" | "reserve" | "reserve_exact"));
    }
}

/// Token index just past a turbofish (`:: < .. >`) starting at `idx`, or
/// `idx` unchanged when there is none.
pub(crate) fn skip_turbofish(ast: &Ast, idx: usize) -> usize {
    if !(ast.is_punct(idx, b':') && ast.is_punct(idx + 1, b':') && ast.is_punct(idx + 2, b'<')) {
        return idx;
    }
    let mut depth = 0i32;
    let mut i = idx + 2;
    while i < ast.len() {
        if ast.is_punct(i, b'<') {
            depth += 1;
        } else if ast.is_punct(i, b'>') && !ast.is_punct(i.wrapping_sub(1), b'-') {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    idx
}

/// Examines the token at `idx` for one call/construct event and records
/// it on `def`.
fn scan_one(ast: &Ast, idx: usize, def: &mut FnDef) {
    // Method call: `. name [::<..>] (` — `self.name(..)` resolves within
    // the impl; other receivers resolve by bare name (ambient-filtered).
    if ast.is_punct(idx, b'.') {
        if let Some(name) = ast.ident_at(idx + 1) {
            if name.as_bytes().first().is_some_and(u8::is_ascii_digit) {
                return; // tuple-field access / float literal
            }
            let after = skip_turbofish(ast, idx + 2);
            if ast.is_punct(after, b'(') {
                let recv_self = idx > 0
                    && ast.is_ident(idx - 1, "self")
                    && !ast.is_punct(idx.wrapping_sub(2), b'.');
                let kind = if recv_self { CallKind::MethodSelf } else { CallKind::Method };
                // A simple-ident receiver (`obs.record(..)`, not a field
                // access or call chain) can be typed via the parameters.
                let receiver = if recv_self || ast.is_punct(idx.wrapping_sub(2), b'.') {
                    None
                } else {
                    idx.checked_sub(1).and_then(|p| ast.ident_at(p)).map(str::to_string)
                };
                record_method_constructs(ast, idx + 1, name, def);
                def.calls.push(CallSite {
                    name: name.to_string(),
                    qualifier: Vec::new(),
                    kind,
                    receiver,
                });
            }
        }
        return;
    }

    // Macro: `name !` — panic family and allocating macros are constructs.
    if let Some(name) = ast.ident_at(idx) {
        if ast.is_punct(idx + 1, b'!') {
            if PANIC_MACROS.contains(&name) {
                push_construct(ast, idx, def, "panic-reach", "panic-macro", false);
            } else if name == "format" {
                push_construct(ast, idx, def, "hot-alloc", "format", false);
            } else if name == "vec" {
                push_construct(ast, idx, def, "hot-alloc", "vec-macro", false);
            }
            return;
        }
        // Path or bare call: `[q:: ..] name [::<..>] (`, skipping
        // definitions, keywords, and qualifier segments (the final
        // segment is handled when the scan reaches it).
        if is_keyword(name) || (idx > 0 && ast.is_ident(idx - 1, "fn")) {
            return;
        }
        if idx > 0 && ast.is_punct(idx - 1, b'.') {
            return; // handled as a method call at the `.`
        }
        let after = skip_turbofish(ast, idx + 1);
        if !ast.is_punct(after, b'(') {
            // Not a call; but `name [` may be an indexing expression.
            detect_index_and_div(ast, idx, def);
            return;
        }
        // Walk the qualifier backwards: `a :: b :: name`.
        let mut qualifier: Vec<String> = Vec::new();
        let mut i = idx;
        while i >= 3 && ast.is_punct(i - 1, b':') && ast.is_punct(i - 2, b':') {
            match ast.ident_at(i - 3) {
                Some(seg) if !ast.is_punct(i.wrapping_sub(4), b'<') => {
                    qualifier.insert(0, seg.to_string());
                    i -= 3;
                }
                _ => break,
            }
        }
        let kind = if qualifier.is_empty() { CallKind::Bare } else { CallKind::Path };
        record_path_constructs(ast, idx, name, &qualifier, def);
        def.calls.push(CallSite { name: name.to_string(), qualifier, kind, receiver: None });
        return;
    }

    detect_index_and_div(ast, idx, def);
}

/// Allocation/panic constructs expressed as method calls.
fn record_method_constructs(ast: &Ast, name_idx: usize, name: &str, def: &mut FnDef) {
    let (rule, construct, gated) = match name {
        "unwrap" => ("panic-reach", "unwrap", false),
        "expect" => ("panic-reach", "expect", false),
        "collect" => ("hot-alloc", "collect", false),
        "to_vec" => ("hot-alloc", "to-vec", false),
        "to_string" | "to_owned" => ("hot-alloc", "to-string", false),
        "clone" => ("hot-alloc", "clone", false),
        "push" | "extend" | "extend_from_slice" | "insert" => ("hot-alloc", "push", true),
        _ => return,
    };
    push_construct(ast, name_idx, def, rule, construct, gated);
}

/// Allocation constructs expressed as path calls (`Box::new`, `Vec::new`,
/// `String::from`); `Arc::clone`/`Rc::clone` are refcount bumps, not
/// allocations, and stay legal.
fn record_path_constructs(
    ast: &Ast,
    name_idx: usize,
    name: &str,
    qualifier: &[String],
    def: &mut FnDef,
) {
    let Some(last) = qualifier.last().map(String::as_str) else { return };
    let (rule, construct, gated) = match (last, name) {
        ("Box", "new") => ("hot-alloc", "box-new", false),
        ("Vec" | "VecDeque", "new") => ("hot-alloc", "vec-new", true),
        ("String", "from") => ("hot-alloc", "to-string", false),
        _ => return,
    };
    push_construct(ast, name_idx, def, rule, construct, gated);
}

/// Indexing (`recv[..]`) and division/remainder by a non-literal.
fn detect_index_and_div(ast: &Ast, idx: usize, def: &mut FnDef) {
    let prev_is_value = idx > 0
        && (ast.is_punct(idx - 1, b')')
            || ast.is_punct(idx - 1, b']')
            || ast.ident_at(idx - 1).is_some_and(|w| !is_keyword(w)));
    if ast.is_punct(idx, b'[') {
        if prev_is_value {
            push_construct(ast, idx, def, "panic-reach", "index", false);
        }
        return;
    }
    if (ast.is_punct(idx, b'/') || ast.is_punct(idx, b'%')) && prev_is_value {
        // Divisor token: step over a compound-assign `=` and a unary `-`.
        let mut j = idx + 1;
        if ast.is_punct(j, b'=') {
            j += 1;
        }
        if ast.is_punct(j, b'-') {
            j += 1;
        }
        let divisor_literal =
            ast.ident_at(j).is_some_and(|w| w.as_bytes().first().is_some_and(u8::is_ascii_digit));
        if divisor_literal {
            return;
        }
        // Integer division by zero panics in release; float division does
        // not. Types are invisible lexically, so a line with any float
        // marker is taken as float arithmetic (documented imprecision).
        let line = ast.src_line(idx);
        if line.contains("f64") || line.contains("f32") || has_float_literal(line) {
            return;
        }
        push_construct(ast, idx, def, "panic-reach", "div", false);
    }
}

pub(crate) fn has_float_literal(line: &str) -> bool {
    let b = line.as_bytes();
    (1..b.len().saturating_sub(1))
        .any(|i| b[i] == b'.' && b[i - 1].is_ascii_digit() && b[i + 1].is_ascii_digit())
}

fn push_construct(
    ast: &Ast,
    idx: usize,
    def: &mut FnDef,
    rule: &'static str,
    construct: &'static str,
    capacity_gated: bool,
) {
    def.constructs.push(ConstructSite {
        rule,
        construct,
        line: ast.line(idx),
        snippet: ast.src_line(idx).to_string(),
        capacity_gated,
    });
}

/// Reusable call-site resolution under the module's policy: candidate
/// lookup by name, visibility filtering through the dependency closure,
/// then [`resolve_one`]'s kind-specific heuristics. Built once per
/// analysis; borrowed by both the flow adjacency construction and the
/// taint pass (which discovers its own call sites with token positions
/// and needs them resolved identically).
pub struct Resolver<'g> {
    fns: &'g [FnDef],
    deps: &'g HashMap<String, HashSet<String>>,
    by_name: HashMap<&'g str, Vec<usize>>,
    crate_idents: HashSet<&'g str>,
    impl_types: HashSet<&'g str>,
}

impl<'g> Resolver<'g> {
    pub fn new(fns: &'g [FnDef], deps: &'g HashMap<String, HashSet<String>>) -> Self {
        let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.name.as_str()).or_default().push(i);
        }
        let crate_idents: HashSet<&str> = fns.iter().map(|f| f.crate_ident.as_str()).collect();
        let impl_types: HashSet<&str> = fns.iter().filter_map(|f| f.impl_type.as_deref()).collect();
        Resolver { fns, deps, by_name, crate_idents, impl_types }
    }

    /// Workspace function indices a call site may land in (empty = std,
    /// trait object, ambient method, or closure parameter).
    pub fn resolve(&self, caller: &FnDef, call: &CallSite) -> Vec<usize> {
        // A call cannot land in a crate the caller does not (transitively)
        // depend on. Crates absent from the map are unconstrained (the
        // unit-test path).
        let visible = self.deps.get(&caller.crate_ident);
        let candidates = self.by_name.get(call.name.as_str()).map(Vec::as_slice).unwrap_or(&[]);
        let candidates: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&j| visible.is_none_or(|v| v.contains(&self.fns[j].crate_ident)))
            .collect();
        resolve_one(self.fns, caller, call, &candidates, &self.crate_idents, &self.impl_types)
    }
}

/// True when a bare call invokes a closure (or `fn`-pointer) parameter of
/// the enclosing function. Resolution deliberately returns no edge for
/// these — the closure's body is attributed to the function that writes
/// it — but that suppression is *not* a proof the value flow stops: the
/// PR 6 flow pass could ignore it (panics inside the closure body are
/// still seen at the definition site), while the taint pass must treat
/// such calls as taint-preserving pass-throughs (`f(tainted)` may return
/// the tainted value). Callers that care use this predicate to apply the
/// conservative assume-tainted fallback.
pub fn is_closure_param_call(caller: &FnDef, call: &CallSite) -> bool {
    call.kind == CallKind::Bare && caller.params.iter().any(|p| p == &call.name)
}

/// Resolves every call site to workspace function indices, producing the
/// adjacency list and the unresolved-call count.
fn resolve_calls(
    fns: &[FnDef],
    deps: &HashMap<String, HashSet<String>>,
) -> (Vec<Vec<usize>>, usize) {
    let resolver = Resolver::new(fns, deps);
    let mut callees: Vec<Vec<usize>> = vec![Vec::new(); fns.len()];
    let mut unresolved = 0usize;
    for (i, f) in fns.iter().enumerate() {
        for call in &f.calls {
            let resolved = resolver.resolve(f, call);
            if resolved.is_empty() {
                unresolved += 1;
            } else {
                callees[i].extend(resolved);
            }
        }
        callees[i].sort_unstable();
        callees[i].dedup();
    }
    (callees, unresolved)
}

/// Resolution for one call site; see the module docs for the policy.
fn resolve_one(
    fns: &[FnDef],
    caller: &FnDef,
    call: &CallSite,
    candidates: &[usize],
    crate_idents: &std::collections::HashSet<&str>,
    impl_types: &std::collections::HashSet<&str>,
) -> Vec<usize> {
    if candidates.is_empty() {
        return Vec::new();
    }
    let same_crate = |ids: &[usize]| -> Vec<usize> {
        ids.iter().copied().filter(|&j| fns[j].crate_ident == caller.crate_ident).collect()
    };
    match call.kind {
        CallKind::Bare => {
            // A bare call to a parameter name invokes a closure argument;
            // the closure's own body is attributed where it is written,
            // so the call site itself resolves to nothing.
            if caller.params.iter().any(|p| p == &call.name) {
                return Vec::new();
            }
            let local = same_crate(candidates);
            if !local.is_empty() {
                return local;
            }
            candidates.to_vec()
        }
        CallKind::MethodSelf => {
            if let Some(ty) = &caller.impl_type {
                let typed: Vec<usize> = candidates
                    .iter()
                    .copied()
                    .filter(|&j| {
                        fns[j].crate_ident == caller.crate_ident
                            && fns[j].impl_type.as_deref() == Some(ty)
                    })
                    .collect();
                if !typed.is_empty() {
                    return typed;
                }
            }
            let local = same_crate(candidates);
            if !local.is_empty() {
                return local;
            }
            candidates.to_vec()
        }
        CallKind::Method => {
            // A receiver that is a typed parameter of the enclosing
            // function resolves precisely by impl type — overriding the
            // ambient-name filter (`pool.map(..)` with `pool: &ComputePool`
            // IS `ComputePool::map`) and the crate heuristics both. An
            // empty match means the method lives on std or a trait object;
            // blanket-impl methods are the documented miss (DESIGN.md §10).
            if let Some(recv) = &call.receiver {
                if let Some((_, ty)) = caller.param_types.iter().find(|(name, _)| name == recv) {
                    if impl_types.contains(ty.as_str()) {
                        return candidates
                            .iter()
                            .copied()
                            .filter(|&j| fns[j].impl_type.as_deref() == Some(ty))
                            .collect();
                    }
                }
            }
            if AMBIENT_METHODS.contains(&call.name.as_str()) {
                return Vec::new();
            }
            // Receiver types are invisible lexically; prefer same-crate
            // methods of the name (most method calls stay within a crate)
            // before the global fallback for imported types.
            let local = same_crate(candidates);
            if !local.is_empty() {
                return local;
            }
            candidates.to_vec()
        }
        CallKind::Path => {
            let mut crate_hint: Option<String> = None;
            let mut type_hint: Option<String> = None;
            let first = call.qualifier.first().map(String::as_str).unwrap_or("");
            let last = call.qualifier.last().map(String::as_str).unwrap_or("");
            if first == "self" || first == "crate" {
                crate_hint = Some(caller.crate_ident.clone());
            } else if first == "Self" {
                crate_hint = Some(caller.crate_ident.clone());
                type_hint = caller.impl_type.clone();
            } else if crate_idents.contains(first) {
                crate_hint = Some(first.to_string());
            }
            if call.qualifier.len() > 1 || crate_hint.is_none() {
                // A capitalised final qualifier segment is read as an impl
                // type; lowercase segments are modules (ignored).
                if last != "self"
                    && last != "crate"
                    && last != "Self"
                    && last.chars().next().is_some_and(char::is_uppercase)
                {
                    type_hint = Some(last.to_string());
                }
            }
            // A type qualifier that is no workspace impl type is foreign —
            // std or a trait (`Duration::from_secs`, `Default::default`);
            // resolving it by bare name would invent edges.
            if let Some(t) = type_hint.as_deref() {
                if !impl_types.contains(t) {
                    return Vec::new();
                }
            }
            let matches = |j: usize, want_crate: bool, want_type: bool| -> bool {
                let f = &fns[j];
                (!want_crate || crate_hint.as_deref() == Some(f.crate_ident.as_str()))
                    && (!want_type || type_hint.as_deref() == f.impl_type.as_deref())
            };
            for (want_crate, want_type) in [
                (crate_hint.is_some(), type_hint.is_some()),
                (crate_hint.is_some(), false),
                (false, type_hint.is_some()),
            ] {
                if !want_crate && !want_type {
                    continue;
                }
                let hit: Vec<usize> = candidates
                    .iter()
                    .copied()
                    .filter(|&j| matches(j, want_crate, want_type))
                    .collect();
                if !hit.is_empty() {
                    return hit;
                }
            }
            let local = same_crate(candidates);
            if !local.is_empty() {
                return local;
            }
            candidates.to_vec()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> Vec<FnDef> {
        let mut out = Vec::new();
        scan_file("test_crate", "crates/test/src/lib.rs", src, &mut out);
        out
    }

    fn graph_of(files: &[(&str, &str, &str)]) -> CallGraph {
        let mut fns = Vec::new();
        for (ident, rel, src) in files {
            scan_file(ident, rel, src, &mut fns);
        }
        fns.sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));
        let (callees, unresolved_calls) = resolve_calls(&fns, &HashMap::new());
        let mut crates: Vec<String> = fns.iter().map(|f| f.crate_ident.clone()).collect();
        crates.sort();
        crates.dedup();
        CallGraph {
            callees,
            unresolved_calls,
            files_scanned: files.len(),
            crates,
            fns,
            deps: HashMap::new(),
        }
    }

    fn fn_named<'g>(g: &'g CallGraph, name: &str) -> (usize, &'g FnDef) {
        g.fns
            .iter()
            .enumerate()
            .find(|(_, f)| f.name == name)
            .unwrap_or_else(|| panic!("no fn {name}"))
    }

    #[test]
    fn finds_fns_with_impl_types() {
        let defs = scan(
            "pub struct Foo;\nimpl Foo {\n    pub fn new() -> Self { Foo }\n    fn helper(&self) {}\n}\nfn free() {}\n",
        );
        let names: Vec<(Option<&str>, &str)> =
            defs.iter().map(|d| (d.impl_type.as_deref(), d.name.as_str())).collect();
        assert_eq!(names, vec![(Some("Foo"), "new"), (Some("Foo"), "helper"), (None, "free")]);
    }

    #[test]
    fn trait_impls_use_the_self_type() {
        let defs = scan("impl Display for Foo<T> {\n    fn fmt(&self) { nested(); }\n}\n");
        assert_eq!(defs[0].impl_type.as_deref(), Some("Foo"));
        assert_eq!(defs[0].name, "fmt");
    }

    #[test]
    fn generic_signatures_and_where_clauses_parse() {
        let defs = scan(
            "fn apply<F: Fn(usize) -> f64>(f: F) -> f64 where F: Send { f(3) }\n\
             impl<T: Clone> Holder<T> where T: Send {\n    fn get_all(&self) -> Vec<T> { self.items.to_vec() }\n}\n",
        );
        assert_eq!(defs[0].name, "apply");
        assert_eq!(defs[1].impl_type.as_deref(), Some("Holder"));
    }

    #[test]
    fn nested_fns_own_their_constructs() {
        let defs = scan(
            "fn outer() {\n    fn inner(x: Option<u32>) -> u32 { x.unwrap() }\n    inner(None);\n}\n",
        );
        let outer = defs.iter().find(|d| d.name == "outer").expect("outer");
        let inner = defs.iter().find(|d| d.name == "inner").expect("inner");
        assert!(outer.constructs.is_empty(), "{:?}", outer.constructs);
        assert_eq!(inner.constructs.len(), 1);
        assert_eq!(inner.constructs[0].construct, "unwrap");
        assert!(outer.calls.iter().any(|c| c.name == "inner"));
    }

    #[test]
    fn closure_param_calls_are_identified_not_just_dropped() {
        // `f(n)` inside `apply` is a call through the closure parameter:
        // it must resolve to no edge (the closure body lives at the call
        // site of `apply`), but the predicate must still expose it so the
        // taint pass can treat it as a taint-preserving pass-through
        // instead of silently ending the flow (the PR 6 imprecision).
        let g = graph_of(&[(
            "app",
            "crates/app/src/lib.rs",
            "fn apply(n: usize, f: impl Fn(usize) -> usize) -> usize { f(n) }\n\
             fn free(n: usize) -> usize { helper(n) }\n\
             fn helper(n: usize) -> usize { n }\n",
        )]);
        let (ai, apply) = fn_named(&g, "apply");
        let fcall = apply.calls.iter().find(|c| c.name == "f").expect("call f(n)");
        assert!(is_closure_param_call(apply, fcall));
        assert!(g.callees[ai].is_empty(), "closure-param call must not edge anywhere");
        let (_, free) = fn_named(&g, "free");
        let hcall = free.calls.iter().find(|c| c.name == "helper").expect("call helper(n)");
        assert!(!is_closure_param_call(free, hcall));
    }

    #[test]
    fn turbofish_call_sites_resolve() {
        let defs = scan(
            "fn f(xs: &[u32]) -> Vec<u32> { xs.iter().copied().collect::<Vec<u32>>() }\n\
             fn g() { helper::<Vec<Vec<u8>>>(1); }\n",
        );
        assert!(defs[0].constructs.iter().any(|c| c.construct == "collect"));
        assert!(defs[1].calls.iter().any(|c| c.name == "helper" && c.kind == CallKind::Bare));
    }

    #[test]
    fn index_and_div_detection() {
        let defs = scan(
            "fn f(v: &[u64], i: usize, n: u64) -> u64 {\n    let x = v[i];\n    let arr = [0u64; 4];\n    x / n\n}\n\
             fn g(a: u64) -> u64 { a / 2 }\n\
             fn h(a: f64, b: f64) -> f64 { a / b * 1.5 }\n",
        );
        let f = &defs[0];
        assert!(f.constructs.iter().any(|c| c.construct == "index"));
        assert!(f.constructs.iter().any(|c| c.construct == "div"));
        // Array literal `[0u64; 4]` is not indexing.
        assert_eq!(f.constructs.iter().filter(|c| c.construct == "index").count(), 1);
        assert!(defs[1].constructs.is_empty(), "literal divisor is safe: {:?}", defs[1].constructs);
        assert!(defs[2].constructs.is_empty(), "float division: {:?}", defs[2].constructs);
    }

    #[test]
    fn capacity_hint_gates_push() {
        let defs = scan(
            "fn sized(n: usize) -> Vec<u32> {\n    let mut v = Vec::with_capacity(n);\n    v.push(1);\n    v\n}\n\
             fn unsized_(n: usize) -> Vec<u32> {\n    let mut v = Vec::new();\n    v.push(1);\n    v\n}\n",
        );
        assert!(defs[0].capacity_hint);
        assert!(!defs[1].capacity_hint);
        assert!(defs[1].constructs.iter().any(|c| c.construct == "vec-new" && c.capacity_gated));
        assert!(defs[1].constructs.iter().any(|c| c.construct == "push" && c.capacity_gated));
    }

    #[test]
    fn arc_clone_is_not_an_alloc_construct() {
        let defs =
            scan("fn f(a: &Arc<u32>) -> Arc<u32> { Arc::clone(a) }\nfn g(v: &Vec<u32>) -> Vec<u32> { v.clone() }\n");
        assert!(defs[0].constructs.is_empty(), "{:?}", defs[0].constructs);
        assert!(defs[1].constructs.iter().any(|c| c.construct == "clone"));
    }

    #[test]
    fn cross_crate_path_calls_resolve_by_crate_ident() {
        let g = graph_of(&[
            ("app", "crates/app/src/lib.rs", "pub fn entry() { util_crate::helper(); }\n"),
            (
                "util_crate",
                "crates/util/src/lib.rs",
                "pub fn helper() {}\nfn helper_private() {}\n",
            ),
        ]);
        let (entry_idx, _) = fn_named(&g, "entry");
        let (helper_idx, _) = fn_named(&g, "helper");
        assert!(g.callees[entry_idx].contains(&helper_idx));
    }

    #[test]
    fn bare_calls_prefer_the_local_crate() {
        let g = graph_of(&[
            ("a", "crates/a/src/lib.rs", "pub fn work() { step(); }\nfn step() {}\n"),
            ("b", "crates/b/src/lib.rs", "pub fn step() {}\n"),
        ]);
        let (work, _) = fn_named(&g, "work");
        assert_eq!(g.callees[work].len(), 1);
        assert_eq!(g.fns[g.callees[work][0]].crate_ident, "a");
    }

    #[test]
    fn ambient_method_names_do_not_resolve() {
        let g = graph_of(&[
            (
                "a",
                "crates/a/src/lib.rs",
                "pub fn work(xs: Vec<u32>, pool: &Pool) { xs.map(|x| x); pool.run_items(); }\n",
            ),
            (
                "b",
                "crates/b/src/lib.rs",
                "impl Pool {\n    pub fn map(&self) {}\n    pub fn run_items(&self) {}\n}\n",
            ),
        ]);
        let (work, _) = fn_named(&g, "work");
        let names: Vec<&str> = g.callees[work].iter().map(|&j| g.fns[j].name.as_str()).collect();
        assert!(!names.contains(&"map"), "ambient `.map(..)` must not edge into Pool::map");
        assert!(names.contains(&"run_items"), "non-ambient methods resolve by name: {names:?}");
    }

    #[test]
    fn typed_parameter_receivers_resolve_by_impl_type() {
        let g = graph_of(&[
            (
                "a",
                "crates/a/src/lib.rs",
                "pub fn work(obs: &ObsHandle, pool: &Pool, xs: &[u32]) {\n    obs.record(1);\n    pool.map(xs);\n}\npub fn untyped(xs: &[u32]) {\n    xs.record(2);\n}\n",
            ),
            (
                "b",
                "crates/b/src/lib.rs",
                "impl ObsHandle {\n    pub fn record(&self, v: u64) {}\n}\nimpl Pool {\n    pub fn map(&self, xs: &[u32]) {}\n}\nimpl Store {\n    pub fn record(&self, v: u64) {}\n}\n",
            ),
        ]);
        let (work, _) = fn_named(&g, "work");
        let targets: Vec<String> = g.callees[work].iter().map(|&j| g.fns[j].qualified()).collect();
        // `obs: &ObsHandle` pins `.record(..)` to ObsHandle, never Store.
        assert!(targets.contains(&"b::ObsHandle::record".to_string()), "{targets:?}");
        assert!(!targets.contains(&"b::Store::record".to_string()), "{targets:?}");
        // A typed receiver overrides the ambient-name filter for `.map(..)`.
        assert!(targets.contains(&"b::Pool::map".to_string()), "{targets:?}");
        // `xs: &[u32]` has no nameable type: `.record(..)` falls back to
        // every workspace candidate of the name.
        let (untyped, _) = fn_named(&g, "untyped");
        let fallback: Vec<String> =
            g.callees[untyped].iter().map(|&j| g.fns[j].qualified()).collect();
        assert!(fallback.contains(&"b::Store::record".to_string()), "{fallback:?}");
    }

    #[test]
    fn self_method_calls_resolve_within_the_impl() {
        let g = graph_of(&[(
            "a",
            "crates/a/src/lib.rs",
            "impl Solver {\n    pub fn run(&self) { self.step(); }\n    fn step(&self) {}\n}\n\
             impl Other {\n    fn step(&self) {}\n}\n",
        )]);
        let (run, _) = fn_named(&g, "run");
        assert_eq!(g.callees[run].len(), 1);
        assert_eq!(g.fns[g.callees[run][0]].impl_type.as_deref(), Some("Solver"));
    }

    #[test]
    fn entry_specs_resolve() {
        let g = graph_of(&[(
            "rtse_gsp",
            "crates/gsp/src/solver.rs",
            "impl GspSolver {\n    pub fn propagate(&self) {}\n}\npub fn free_fn() {}\n",
        )]);
        assert_eq!(g.resolve_entry("rtse_gsp::GspSolver::propagate").len(), 1);
        assert_eq!(g.resolve_entry("rtse_gsp::free_fn").len(), 1);
        assert!(g.resolve_entry("rtse_gsp::Missing::propagate").is_empty());
        assert!(g.resolve_entry("wrong_crate::free_fn").is_empty());
    }

    #[test]
    fn test_modules_are_excluded() {
        let defs = scan(
            "fn lib_fn() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); lib_fn(); }\n}\n",
        );
        assert_eq!(defs.len(), 1);
        assert_eq!(defs[0].name, "lib_fn");
    }

    #[test]
    fn attributes_do_not_produce_calls() {
        let defs = scan("#[derive(Clone, Debug)]\npub struct S;\nfn f() { real_call(); }\n");
        let f = defs.iter().find(|d| d.name == "f").expect("f");
        assert_eq!(f.calls.len(), 1);
        assert_eq!(f.calls[0].name, "real_call");
    }
}
