//! The three source-policy rules behind `cargo xtask lint`.
//!
//! All rules operate on scrubbed text (comments, literals, and
//! `#[cfg(test)]` regions removed — see [`crate::scrub`]), so a doc
//! comment mentioning `unwrap()` or a test asserting `x == 0.5` never
//! trips them. Scope:
//!
//! * `no-panic` — `.unwrap()`, `.expect()`, `panic!`, `unreachable!`,
//!   `todo!`, `unimplemented!` are banned in the library code of the
//!   pipeline crates (graph, math, rtf, ocs, gsp, core, data, pool,
//!   serve). Contract
//!   `assert!`s stay legal; `rtse_check::fail` is the sanctioned abort.
//! * `float-eq` — direct `==`/`!=` against a float literal.
//! * `float-cast` — `as usize`-family casts whose source expression is
//!   visibly float-valued with no explicit rounding step.
//! * `raw-thread` — `thread::spawn` / `thread::scope` in library code
//!   outside `rtse-pool`; OS threads belong in the shared `ComputePool`,
//!   which carries the serial-equivalence guarantees and tests.

use crate::scrub::Scrubbed;

/// One rule violation at a source location.
#[derive(Debug)]
pub struct Violation {
    /// Rule slug (`no-panic`, `float-eq`, `float-cast`).
    pub rule: &'static str,
    /// 1-based line number.
    pub line: usize,
    /// The offending line, trimmed.
    pub snippet: String,
    /// What the rule objects to.
    pub message: String,
}

/// Crates whose library code must be panic-free (everything on the
/// query path; bins/benches/tests may still panic).
pub const NO_PANIC_CRATES: &[&str] =
    &["graph", "math", "rtf", "ocs", "gsp", "core", "data", "pool", "serve", "obs", "sync", "edge"];

/// Every rule slug `cargo xtask lint` can emit — the legal values for an
/// `[[allow]]` entry's `rule` key. A typo'd rule name would otherwise
/// never match and only surface later as a confusing stale-entry failure.
pub const LINT_RULES: &[&str] = &[
    "no-panic",
    "float-eq",
    "float-cast",
    "raw-thread",
    "raw-sync",
    "relaxed-ordering",
    "seqcst-ordering",
    "stale-annotation",
    "lock-order",
];

/// Thread primitives that must be routed through `rtse_pool::ComputePool`.
const THREAD_PRIMITIVES: &[&str] = &["spawn", "scope"];

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

/// Methods that make a float-to-int cast deliberate.
const ROUNDERS: &[&str] = &["floor", "ceil", "round", "trunc", "clamp", "min", "max"];
/// Methods whose receiver/result is float-valued.
const FLOAT_METHODS: &[&str] =
    &["sqrt", "powf", "powi", "exp", "ln", "log2", "log10", "fract", "recip", "hypot", "abs"];
const INT_TARGETS: &[&str] =
    &["usize", "isize", "u8", "u16", "u32", "u64", "u128", "i8", "i16", "i32", "i64", "i128"];

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn line_snippet(src: &str, offset: usize) -> String {
    let start = src[..offset].rfind('\n').map_or(0, |p| p + 1);
    let end = src[offset..].find('\n').map_or(src.len(), |p| offset + p);
    src[start..end].trim().to_string()
}

fn prev_non_ws(text: &[u8], mut i: usize) -> Option<(usize, u8)> {
    while i > 0 {
        i -= 1;
        if !text[i].is_ascii_whitespace() {
            return Some((i, text[i]));
        }
    }
    None
}

fn next_non_ws(text: &[u8], mut i: usize) -> Option<(usize, u8)> {
    while i < text.len() {
        if !text[i].is_ascii_whitespace() {
            return Some((i, text[i]));
        }
        i += 1;
    }
    None
}

/// Every occurrence of `word` as a whole identifier in `text`.
fn ident_occurrences(text: &[u8], word: &str) -> Vec<usize> {
    let needle = word.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = crate::scrub::find(text, needle, from) {
        from = pos + 1;
        let before_ok = pos == 0 || !is_ident(text[pos - 1]);
        let after = pos + needle.len();
        let after_ok = after >= text.len() || !is_ident(text[after]);
        if before_ok && after_ok {
            out.push(pos);
        }
    }
    out
}

/// `no-panic`: bans the panic family in library code.
pub fn no_panic(src: &str, sc: &Scrubbed) -> Vec<Violation> {
    let mut out = Vec::new();
    for &method in PANIC_METHODS {
        for pos in ident_occurrences(&sc.text, method) {
            if sc.in_test[pos] {
                continue;
            }
            // Must be a method call: `.name(`.
            let dot = matches!(prev_non_ws(&sc.text, pos), Some((_, b'.')));
            let call = matches!(next_non_ws(&sc.text, pos + method.len()), Some((_, b'(')));
            if dot && call {
                out.push(Violation {
                    rule: "no-panic",
                    line: sc.line_of(pos),
                    snippet: line_snippet(src, pos),
                    message: format!(
                        ".{method}() in library code; return a typed error or use rtse_check::fail"
                    ),
                });
            }
        }
    }
    for &mac in PANIC_MACROS {
        for pos in ident_occurrences(&sc.text, mac) {
            if sc.in_test[pos] {
                continue;
            }
            let bang = sc.text.get(pos + mac.len()) == Some(&b'!');
            // `.expect()` handled above; here only bare macro invocations.
            let not_method = !matches!(prev_non_ws(&sc.text, pos), Some((_, b'.')));
            if bang && not_method {
                out.push(Violation {
                    rule: "no-panic",
                    line: sc.line_of(pos),
                    snippet: line_snippet(src, pos),
                    message: format!("{mac}! in library code; return a typed error instead"),
                });
            }
        }
    }
    out
}

/// `raw-thread`: bans `thread::spawn` / `thread::scope` in library code.
/// The pool crate is the one sanctioned home for OS threads (exempted by
/// the caller); anything else must submit work to `ComputePool`, which
/// carries the panic-forwarding and serial-equivalence machinery. Plain
/// `thread::sleep` and the like stay legal.
pub fn raw_thread(src: &str, sc: &Scrubbed) -> Vec<Violation> {
    let mut out = Vec::new();
    for pos in ident_occurrences(&sc.text, "thread") {
        if sc.in_test[pos] {
            continue;
        }
        // Expect `::` after the `thread` path segment, then the callee.
        let after = pos + "thread".len();
        let Some((c1, b1)) = next_non_ws(&sc.text, after) else { continue };
        if b1 != b':' || sc.text.get(c1 + 1) != Some(&b':') {
            continue;
        }
        let Some((callee_pos, _)) = next_non_ws(&sc.text, c1 + 2) else { continue };
        for &callee in THREAD_PRIMITIVES {
            if crate::scrub::find(&sc.text, callee.as_bytes(), callee_pos) != Some(callee_pos) {
                continue;
            }
            let end = callee_pos + callee.len();
            if end < sc.text.len() && is_ident(sc.text[end]) {
                continue;
            }
            out.push(Violation {
                rule: "raw-thread",
                line: sc.line_of(pos),
                snippet: line_snippet(src, pos),
                message: format!(
                    "thread::{callee} in library code; route the work through rtse_pool::ComputePool"
                ),
            });
        }
    }
    out
}

/// Parses a float literal forward from `i`; true when `text[i..]` starts
/// with one (e.g. `0.5`, `1.`, `1e-3`, `2f64`).
fn float_literal_ahead(text: &[u8], mut i: usize) -> bool {
    let start = i;
    while i < text.len() && (text[i].is_ascii_digit() || text[i] == b'_') {
        i += 1;
    }
    if i == start {
        return false;
    }
    let mut floaty = false;
    if i < text.len() && text[i] == b'.' {
        // Distinguish `1.0` / `1.` from a method call `1.max(..)` and from
        // range syntax `0..n`.
        let after_dot = text.get(i + 1).copied();
        if after_dot != Some(b'.')
            && (after_dot.is_none_or(|b| !is_ident(b))
                || after_dot.is_some_and(|b| b.is_ascii_digit()))
        {
            floaty = true;
            i += 1;
            while i < text.len() && (text[i].is_ascii_digit() || text[i] == b'_') {
                i += 1;
            }
        }
    }
    if i < text.len() && (text[i] == b'e' || text[i] == b'E') {
        let mut j = i + 1;
        if j < text.len() && (text[j] == b'+' || text[j] == b'-') {
            j += 1;
        }
        if j < text.len() && text[j].is_ascii_digit() {
            floaty = true;
        }
    }
    if crate::scrub::find(text, b"f32", i) == Some(i)
        || crate::scrub::find(text, b"f64", i) == Some(i)
    {
        floaty = true;
    }
    floaty
}

/// True when the token ending at `end` (exclusive) is a float literal.
fn float_literal_behind(text: &[u8], end: usize) -> bool {
    let mut i = end;
    while i > 0 && (is_ident(text[i - 1]) || text[i - 1] == b'.') {
        i -= 1;
        // `1.0e-3`: step over a sign that belongs to an exponent.
        if i >= 2
            && (text[i - 1] == b'-' || text[i - 1] == b'+')
            && (text[i - 2] == b'e' || text[i - 2] == b'E')
        {
            i -= 1;
        }
    }
    // A token starting with a non-digit (e.g. `self.0`) is a field access
    // or identifier, not a literal.
    i < end && text[i].is_ascii_digit() && float_literal_ahead(text, i)
}

/// `float-eq`: flags `==` / `!=` with a float literal on either side.
pub fn float_eq(src: &str, sc: &Scrubbed) -> Vec<Violation> {
    let mut out = Vec::new();
    let text = &sc.text;
    for i in 0..text.len().saturating_sub(1) {
        if text[i + 1] != b'=' || (text[i] != b'=' && text[i] != b'!') {
            continue;
        }
        // Skip `==` read mid-token (`<=`, `>=`, `a != b` is fine to parse;
        // `===` cannot appear) and `x =="` style is impossible post-scrub.
        if text[i] == b'=' && i > 0 && matches!(text[i - 1], b'=' | b'!' | b'<' | b'>') {
            continue;
        }
        if sc.in_test[i] {
            continue;
        }
        let op = if text[i] == b'=' { "==" } else { "!=" };
        let lhs = prev_non_ws(text, i).map(|(p, _)| p + 1).unwrap_or(0);
        let rhs = next_non_ws(text, i + 2).map(|(p, _)| p);
        let flagged =
            float_literal_behind(text, lhs) || rhs.is_some_and(|p| float_literal_ahead(text, p));
        if flagged {
            out.push(Violation {
                rule: "float-eq",
                line: sc.line_of(i),
                snippet: line_snippet(src, i),
                message: format!(
                    "`{op}` against a float literal; compare with a tolerance (approx_eq) or justify in lint.toml"
                ),
            });
        }
    }
    out
}

/// `float-cast`: flags `expr as usize` (and friends) when `expr` is
/// visibly float-valued and contains no explicit rounding step.
pub fn float_cast(src: &str, sc: &Scrubbed) -> Vec<Violation> {
    let mut out = Vec::new();
    let text = &sc.text;
    for pos in ident_occurrences(text, "as") {
        if sc.in_test[pos] {
            continue;
        }
        let Some((tpos, _)) = next_non_ws(text, pos + 2) else { continue };
        let target_end = (tpos..text.len()).find(|&k| !is_ident(text[k])).unwrap_or(text.len());
        let target = std::str::from_utf8(&text[tpos..target_end]).unwrap_or("");
        if !INT_TARGETS.contains(&target) {
            continue;
        }
        // Walk back over the postfix expression feeding the cast.
        let Some((mut i, _)) = prev_non_ws(text, pos) else { continue };
        let expr_end = i + 1;
        loop {
            match text[i] {
                b')' | b']' => {
                    let close = text[i];
                    let open = if close == b')' { b'(' } else { b'[' };
                    let mut depth = 0i32;
                    loop {
                        if text[i] == close {
                            depth += 1;
                        } else if text[i] == open {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        if i == 0 {
                            break;
                        }
                        i -= 1;
                    }
                }
                b'.' => {}
                b if is_ident(b) => {
                    while i > 0 && is_ident(text[i - 1]) {
                        i -= 1;
                    }
                }
                _ => {
                    i += 1;
                    break;
                }
            }
            match prev_non_ws(text, i) {
                Some((p, b)) if b == b'.' || b == b')' || b == b']' || is_ident(b) => i = p,
                _ => break,
            }
        }
        let expr = std::str::from_utf8(&text[i..expr_end]).unwrap_or("");
        let has_float =
            FLOAT_METHODS.iter().any(|m| contains_ident(expr, m)) || expr_has_float_literal(expr);
        let rounded = ROUNDERS.iter().any(|m| contains_ident(expr, m));
        if has_float && !rounded {
            out.push(Violation {
                rule: "float-cast",
                line: sc.line_of(pos),
                snippet: line_snippet(src, pos),
                message: format!(
                    "float-valued expression cast to `{target}` without floor/ceil/round"
                ),
            });
        }
    }
    out
}

fn contains_ident(s: &str, word: &str) -> bool {
    !ident_occurrences(s.as_bytes(), word).is_empty()
}

fn expr_has_float_literal(s: &str) -> bool {
    let b = s.as_bytes();
    (0..b.len()).any(|i| {
        b[i].is_ascii_digit()
            && (i == 0 || !(is_ident(b[i - 1]) || b[i - 1] == b'.'))
            && float_literal_ahead(b, i)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scrub::scrub;

    fn run(rule: fn(&str, &Scrubbed) -> Vec<Violation>, src: &str) -> Vec<Violation> {
        rule(src, &scrub(src))
    }

    #[test]
    fn no_panic_catches_methods_and_macros() {
        let v = run(no_panic, "fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"n\"); }");
        assert_eq!(v.len(), 3);
        assert!(v.iter().all(|v| v.rule == "no-panic"));
    }

    #[test]
    fn no_panic_skips_tests_and_lookalikes() {
        let src = "fn f() { x.unwrap_or(0); s.expectation(); }\n#[cfg(test)]\nmod t { fn g() { x.unwrap(); } }";
        assert!(run(no_panic, src).is_empty());
    }

    #[test]
    fn float_eq_catches_literal_comparisons() {
        let v = run(float_eq, "fn f() { if x == 0.0 { } if 1.5 != y { } if a == b { } }");
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn float_eq_ignores_ints_and_tuple_fields() {
        assert!(run(float_eq, "fn f() { if n == 0 { } if p.0 == q.0 { } }").is_empty());
    }

    #[test]
    fn raw_thread_catches_spawn_and_scope() {
        let v = run(
            raw_thread,
            "fn f() { std::thread::spawn(|| {}); thread::scope(|s| { s.spawn(|| {}); }); }",
        );
        // `std::thread::spawn`, `thread::scope`; `s.spawn` has no
        // `thread::` path prefix and stays legal.
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|v| v.rule == "raw-thread"));
    }

    #[test]
    fn raw_thread_skips_sleep_tests_and_lookalikes() {
        let src = "fn f() { thread::sleep(d); WorkerPool::spawn(&g); rayon_scope(|| {}); }\n\
                   #[cfg(test)]\nmod t { fn g() { std::thread::spawn(|| {}); } }";
        assert!(run(raw_thread, src).is_empty());
    }

    #[test]
    fn float_cast_requires_rounding() {
        let bad = run(float_cast, "fn f(x: f64) { let i = (x * 2.0) as usize; }");
        assert_eq!(bad.len(), 1);
        let ok = run(float_cast, "fn f(x: f64) { let i = (x * 2.0).floor() as usize; }");
        assert!(ok.is_empty());
        let int = run(float_cast, "fn f(n: u32) { let i = n as usize; }");
        assert!(int.is_empty());
    }
}
