//! Source scrubbing: blanks out the parts of a Rust file the lint rules
//! must not look at (comments, string/char literals, `#[cfg(test)]`
//! modules) while preserving byte offsets and line structure, so every
//! rule can scan the scrubbed text with plain string searches and still
//! report accurate line numbers.

/// A source file reduced to lintable text.
pub struct Scrubbed {
    /// Same length as the input; comments and literals replaced by spaces.
    pub text: Vec<u8>,
    /// `true` for bytes inside a `#[cfg(test)]` item (attribute included).
    pub in_test: Vec<bool>,
}

impl Scrubbed {
    /// 1-based line number of a byte offset.
    pub fn line_of(&self, offset: usize) -> usize {
        1 + self.text[..offset].iter().filter(|&&b| b == b'\n').count()
    }
}

/// Blanks comments (line, nested block), string literals (plain, raw,
/// byte), and char literals. Newlines inside blanked regions survive so
/// line numbers stay exact.
pub fn scrub(src: &str) -> Scrubbed {
    let bytes = src.as_bytes();
    let mut out = bytes.to_vec();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    out[i] = b' ';
                    i += 1;
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                let mut depth = 0usize;
                while i < bytes.len() {
                    if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                        depth += 1;
                        blank(&mut out, i, 2);
                        i += 2;
                    } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                        depth -= 1;
                        blank(&mut out, i, 2);
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        if bytes[i] != b'\n' {
                            out[i] = b' ';
                        }
                        i += 1;
                    }
                }
            }
            b'r' | b'b' if is_raw_string_start(bytes, i) => {
                i = blank_raw_string(bytes, &mut out, i);
            }
            b'"' => {
                i = blank_plain_string(bytes, &mut out, i);
            }
            b'b' if i + 1 < bytes.len() && bytes[i + 1] == b'"' => {
                out[i] = b' ';
                i = blank_plain_string(bytes, &mut out, i + 1);
            }
            b'\'' => {
                i = maybe_blank_char_literal(bytes, &mut out, i);
            }
            _ => i += 1,
        }
    }

    let in_test = mark_test_regions(&out);
    Scrubbed { text: out, in_test }
}

fn blank(out: &mut [u8], at: usize, len: usize) {
    let end = (at + len).min(out.len());
    for b in &mut out[at..end] {
        if *b != b'\n' {
            *b = b' ';
        }
    }
}

/// Detects `r"`, `r#"`, `br"`, `br#"` openings at `i`.
fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if j >= bytes.len() || bytes[j] != b'r' {
        return false;
    }
    j += 1;
    while j < bytes.len() && bytes[j] == b'#' {
        j += 1;
    }
    j < bytes.len() && bytes[j] == b'"'
}

fn blank_raw_string(bytes: &[u8], out: &mut [u8], start: usize) -> usize {
    let mut i = start;
    if bytes[i] == b'b' {
        out[i] = b' ';
        i += 1;
    }
    out[i] = b' '; // the `r`
    i += 1;
    let mut hashes = 0usize;
    while i < bytes.len() && bytes[i] == b'#' {
        out[i] = b' ';
        hashes += 1;
        i += 1;
    }
    out[i] = b' '; // opening quote
    i += 1;
    while i < bytes.len() {
        if bytes[i] == b'"'
            && bytes[i + 1..].iter().take(hashes).filter(|&&b| b == b'#').count() == hashes
        {
            blank(out, i, 1 + hashes);
            return i + 1 + hashes;
        }
        if bytes[i] != b'\n' {
            out[i] = b' ';
        }
        i += 1;
    }
    i
}

fn blank_plain_string(bytes: &[u8], out: &mut [u8], start: usize) -> usize {
    let mut i = start;
    out[i] = b' ';
    i += 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => {
                blank(out, i, 2);
                i += 2;
            }
            b'"' => {
                out[i] = b' ';
                return i + 1;
            }
            b'\n' => i += 1,
            _ => {
                out[i] = b' ';
                i += 1;
            }
        }
    }
    i
}

/// Distinguishes char literals (`'x'`, `'\n'`) from lifetimes (`'a`).
fn maybe_blank_char_literal(bytes: &[u8], out: &mut [u8], i: usize) -> usize {
    if i + 2 < bytes.len() && bytes[i + 1] == b'\\' {
        // Escaped char: blank to the closing quote.
        let mut j = i + 2;
        while j < bytes.len() && bytes[j] != b'\'' && j < i + 12 {
            j += 1;
        }
        if j < bytes.len() && bytes[j] == b'\'' {
            blank(out, i, j - i + 1);
            return j + 1;
        }
        return i + 1;
    }
    if i + 2 < bytes.len() && bytes[i + 2] == b'\'' {
        blank(out, i, 3);
        return i + 3;
    }
    i + 1 // lifetime
}

/// Marks byte ranges belonging to `#[cfg(test)]`-gated items by matching
/// the braces of the item that follows the attribute.
fn mark_test_regions(text: &[u8]) -> Vec<bool> {
    let mut mask = vec![false; text.len()];
    let needle = b"#[cfg(test)]";
    let mut from = 0;
    while let Some(pos) = find(text, needle, from) {
        from = pos + needle.len();
        // Find the opening brace of the gated item.
        let mut i = from;
        let mut depth_paren = 0i32;
        while i < text.len() {
            match text[i] {
                b'{' if depth_paren == 0 => break,
                b'(' | b'[' => depth_paren += 1,
                b')' | b']' => depth_paren -= 1,
                b';' if depth_paren == 0 => {
                    // Braceless gated item (e.g. `#[cfg(test)] use ...;`).
                    i = usize::MAX;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        if i >= text.len() {
            continue;
        }
        let mut depth = 0i32;
        let start = pos;
        let mut end = text.len();
        let mut j = i;
        while j < text.len() {
            match text[j] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = j + 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        for m in &mut mask[start..end] {
            *m = true;
        }
        from = end;
    }
    mask
}

/// First occurrence of `needle` in `haystack[from..]`.
pub fn find(haystack: &[u8], needle: &[u8], from: usize) -> Option<usize> {
    if from >= haystack.len() || needle.is_empty() {
        return None;
    }
    haystack[from..].windows(needle.len()).position(|w| w == needle).map(|p| p + from)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn text(s: &str) -> String {
        String::from_utf8(scrub(s).text).expect("scrub keeps utf8 structure")
    }

    #[test]
    fn blanks_comments_and_strings() {
        let s = text("let x = \"a.unwrap()\"; // .unwrap()\nlet y = 1;");
        assert!(!s.contains("unwrap"));
        assert!(s.contains("let y = 1;"));
        assert_eq!(s.matches('\n').count(), 1);
    }

    #[test]
    fn keeps_lifetimes_blanks_chars() {
        let s = text("fn f<'a>(x: &'a str) { let c = '\"'; let d = 'x'; }");
        assert!(s.contains("'a str"));
        assert!(!s.contains("'x'"));
    }

    #[test]
    fn raw_strings_blanked() {
        let s = text(r####"let x = r#"panic!("no")"#; let y = 2;"####);
        assert!(!s.contains("panic"));
        assert!(s.contains("let y = 2;"));
    }

    #[test]
    fn test_mod_masked() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\nfn tail() {}\n";
        let sc = scrub(src);
        let pos = find(&sc.text, b"unwrap", 0).expect("unwrap kept in text");
        assert!(sc.in_test[pos]);
        let tail = find(&sc.text, b"tail", 0).expect("tail present");
        assert!(!sc.in_test[tail]);
    }
}
