//! Workspace automation driver (`cargo xtask <command>`).
//!
//! `cargo xtask lint` is the workspace's static-analysis gate:
//!
//! 1. **Policy rules** — dependency-free source checks with a scoped
//!    allowlist in `lint.toml`:
//!    * text-level ([`rules`]): no panics in library code, no
//!      float-literal `==`, no unrounded float→int casts, no raw
//!      `thread::spawn`/`thread::scope` outside the rtse-pool crate;
//!    * token-level ([`ast`]): no `std::sync` outside the rtse-sync shim,
//!      the atomic-ordering policy (`Relaxed` only on annotated counters,
//!      no `SeqCst` in library code), and lock-acquisition-order checking
//!      against the `[[lock]]` hierarchy declared in `lint.toml`;
//! 2. `cargo fmt --all --check`;
//! 3. `cargo clippy --workspace --all-targets -- -D warnings`.
//!
//! `--policy-only` runs just step 1 (fast, no compilation). The driver is
//! intentionally std-only so it builds in seconds and works offline.
//!
//! `cargo xtask flow` is the interprocedural hot-path gate: it builds a
//! workspace call graph ([`graph`]) and runs panic-reachability and
//! allocation-discipline analyses ([`flow`]) from the `[[hotpath]]` entry
//! points declared in `lint.toml`, writing `flow-report.json` (or, with
//! `--check`, verifying the committed report is current). See DESIGN.md
//! §10.

mod allow;
mod ast;
mod bench_gate;
mod flow;
mod graph;
mod rules;
mod scrub;
mod taint;

use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("flow") => flow_cmd(&args[1..]),
        Some("taint") => taint_cmd(&args[1..]),
        Some("bench-gate") => bench_gate::bench_gate_cmd(&args[1..], &workspace_root()),
        Some("help") | None => {
            print_usage();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown xtask command `{other}`\n");
            print_usage();
            ExitCode::from(2)
        }
    }
}

fn print_usage() {
    eprintln!(
        "usage: cargo xtask <command>\n\n\
         commands:\n  \
         lint [--policy-only]   policy rules + fmt --check + clippy -D warnings\n  \
         flow [--check]         hot-path reachability analysis; writes flow-report.json\n  \
         \x20                      (--check: verify the committed report instead)\n  \
         taint [--check]        wire-input taint analysis; writes taint-report.json\n  \
         \x20                      (--check: verify the committed report instead)\n  \
         bench-gate [--check]   run the gate benches; writes bench-baseline.json\n  \
         \x20                      (--check: compare against the committed baseline)\n  \
         help                   this message"
    );
}

fn workspace_root() -> PathBuf {
    // xtask lives at <root>/crates/xtask.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| Path::new(env!("CARGO_MANIFEST_DIR")).join("../.."))
}

fn lint(flags: &[String]) -> ExitCode {
    let policy_only = flags.iter().any(|f| f == "--policy-only");
    if let Some(bad) = flags.iter().find(|f| *f != "--policy-only") {
        eprintln!("unknown flag `{bad}` for xtask lint");
        return ExitCode::from(2);
    }
    let root = workspace_root();
    let mut failed = false;

    match run_policy(&root) {
        Ok(0) => println!("policy: ok"),
        Ok(violations) => {
            println!("policy: {violations} violation(s)");
            failed = true;
        }
        Err(e) => {
            eprintln!("policy: error: {e}");
            failed = true;
        }
    }

    if !policy_only {
        for (label, cmd_args) in [
            ("fmt", vec!["fmt", "--all", "--check"]),
            (
                "clippy",
                vec!["clippy", "--workspace", "--all-targets", "-q", "--", "-D", "warnings"],
            ),
        ] {
            let status = Command::new("cargo").args(&cmd_args).current_dir(&root).status();
            match status {
                Ok(s) if s.success() => println!("{label}: ok"),
                Ok(_) => {
                    println!("{label}: FAILED (run `cargo {}`)", cmd_args.join(" "));
                    failed = true;
                }
                Err(e) => {
                    eprintln!("{label}: could not run cargo: {e}");
                    failed = true;
                }
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        println!("xtask lint: all checks passed");
        ExitCode::SUCCESS
    }
}

/// `cargo xtask flow`: interprocedural hot-path analysis. Fail-closed:
/// a missing `lint.toml` or an empty `[[hotpath]]` entry inventory is an
/// error, not a trivially-clean pass.
fn flow_cmd(flags: &[String]) -> ExitCode {
    let check = flags.iter().any(|f| f == "--check");
    if let Some(bad) = flags.iter().find(|f| *f != "--check") {
        eprintln!("unknown flag `{bad}` for xtask flow");
        return ExitCode::from(2);
    }
    let root = workspace_root();
    let toml_path = root.join("lint.toml");
    let cfg = match std::fs::read_to_string(&toml_path) {
        Ok(text) => match allow::parse(&text) {
            Ok(cfg) => cfg,
            Err(e) => {
                eprintln!("flow: {e}");
                return ExitCode::FAILURE;
            }
        },
        Err(e) => {
            eprintln!("flow: reading lint.toml: {e}");
            return ExitCode::FAILURE;
        }
    };
    if cfg.entries.is_empty() {
        eprintln!(
            "flow: lint.toml declares no [[hotpath]] entry points; the hot-path surface must \
             be inventoried explicitly (see DESIGN.md §10)"
        );
        return ExitCode::FAILURE;
    }
    let outcome = match flow::analyze(&root, &cfg) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("flow: {e}");
            return ExitCode::FAILURE;
        }
    };
    for v in &outcome.violations {
        println!("{}", v.render());
    }
    for s in &outcome.stale {
        println!("{s}");
    }
    let report_path = root.join("flow-report.json");
    if check {
        match std::fs::read_to_string(&report_path) {
            Ok(committed) if committed == outcome.report => println!("flow-report.json: current"),
            Ok(_) => {
                println!(
                    "flow-report.json: STALE — regenerate with `cargo xtask flow` and commit \
                     the diff"
                );
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("flow: reading flow-report.json: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else if let Err(e) = std::fs::write(&report_path, &outcome.report) {
        eprintln!("flow: writing flow-report.json: {e}");
        return ExitCode::FAILURE;
    }
    if outcome.is_clean() {
        println!(
            "flow: ok ({} entr{}, {} waiver(s))",
            cfg.entries.len(),
            if cfg.entries.len() == 1 { "y" } else { "ies" },
            cfg.waivers.len()
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "flow: {} violation(s), {} stale entr{}",
            outcome.violations.len(),
            outcome.stale.len(),
            if outcome.stale.len() == 1 { "y" } else { "ies" }
        );
        ExitCode::FAILURE
    }
}

/// `cargo xtask taint`: interprocedural untrusted-input taint analysis.
/// Fail-closed like `flow`: a missing `lint.toml` or an empty `[[taint]]`
/// source or sink inventory is an error, not a trivially-clean pass.
fn taint_cmd(flags: &[String]) -> ExitCode {
    let check = flags.iter().any(|f| f == "--check");
    if let Some(bad) = flags.iter().find(|f| *f != "--check") {
        eprintln!("unknown flag `{bad}` for xtask taint");
        return ExitCode::from(2);
    }
    let root = workspace_root();
    let toml_path = root.join("lint.toml");
    let cfg = match std::fs::read_to_string(&toml_path) {
        Ok(text) => match allow::parse(&text) {
            Ok(cfg) => cfg,
            Err(e) => {
                eprintln!("taint: {e}");
                return ExitCode::FAILURE;
            }
        },
        Err(e) => {
            eprintln!("taint: reading lint.toml: {e}");
            return ExitCode::FAILURE;
        }
    };
    if cfg.taint_sources.is_empty() || cfg.taint_sinks.is_empty() {
        eprintln!(
            "taint: lint.toml declares no [[taint]] source/sink inventory; the untrusted-input \
             surface must be inventoried explicitly (see DESIGN.md §14)"
        );
        return ExitCode::FAILURE;
    }
    let outcome = match taint::analyze(&root, &cfg) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("taint: {e}");
            return ExitCode::FAILURE;
        }
    };
    for v in &outcome.violations {
        println!("{}", v.render());
    }
    for s in &outcome.stale {
        println!("{s}");
    }
    let report_path = root.join("taint-report.json");
    if check {
        match std::fs::read_to_string(&report_path) {
            Ok(committed) if committed == outcome.report => {
                println!("taint-report.json: current")
            }
            Ok(_) => {
                println!(
                    "taint-report.json: STALE — regenerate with `cargo xtask taint` and commit \
                     the diff"
                );
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("taint: reading taint-report.json: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else if let Err(e) = std::fs::write(&report_path, &outcome.report) {
        eprintln!("taint: writing taint-report.json: {e}");
        return ExitCode::FAILURE;
    }
    if outcome.is_clean() {
        println!(
            "taint: ok ({} source(s), {} sink kind(s), {} waiver(s))",
            cfg.taint_sources.len(),
            cfg.taint_sinks.len(),
            cfg.taint_waivers.len()
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "taint: {} violation(s), {} stale entr{}",
            outcome.violations.len(),
            outcome.stale.len(),
            if outcome.stale.len() == 1 { "y" } else { "ies" }
        );
        ExitCode::FAILURE
    }
}

/// Runs the policy rules over first-party sources. Returns the violation
/// count (after allowlisting) or an I/O / config error.
fn run_policy(root: &Path) -> Result<usize, String> {
    let allow_path = root.join("lint.toml");
    let cfg = if allow_path.exists() {
        let text =
            std::fs::read_to_string(&allow_path).map_err(|e| format!("reading lint.toml: {e}"))?;
        allow::parse(&text)?
    } else {
        allow::Config::default()
    };
    let allows = &cfg.allows;
    let mut used = vec![false; allows.len()];
    let mut lock_used = vec![false; cfg.locks.len()];

    let mut files: Vec<PathBuf> = Vec::new();
    let crates_dir = root.join("crates");
    let entries =
        std::fs::read_dir(&crates_dir).map_err(|e| format!("reading {crates_dir:?}: {e}"))?;
    for entry in entries.flatten() {
        let src = entry.path().join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    collect_rs(&root.join("src"), &mut files)?;
    files.sort();

    let mut violations = 0usize;
    for file in &files {
        let rel = file.strip_prefix(root).unwrap_or(file);
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        // Binaries may panic; policy rules cover library code only. The
        // xtask driver itself is exempt (it is tooling, not pipeline code).
        if rel_str.contains("/bin/") || rel_str.starts_with("crates/xtask/") {
            continue;
        }
        let in_no_panic_scope =
            rules::NO_PANIC_CRATES.iter().any(|c| rel_str.starts_with(&format!("crates/{c}/src/")));
        let src = std::fs::read_to_string(file).map_err(|e| format!("reading {rel_str}: {e}"))?;
        let sc = scrub::scrub(&src);

        let mut found = Vec::new();
        if in_no_panic_scope {
            found.extend(rules::no_panic(&src, &sc));
            found.extend(rules::float_cast(&src, &sc));
        }
        found.extend(rules::float_eq(&src, &sc));
        // rtse-pool is the one sanctioned home for OS threads; everywhere
        // else library code must go through ComputePool.
        if !rel_str.starts_with("crates/pool/src/") {
            found.extend(rules::raw_thread(&src, &sc));
        }
        let tree = ast::Ast::lex(&src, &sc);
        // rtse-sync is the one sanctioned importer of std::sync — it *is*
        // the shim the rule routes everyone else through.
        if !rel_str.starts_with("crates/sync/src/") {
            found.extend(ast::raw_sync(&tree));
        }
        found.extend(ast::atomic_orderings(&tree));
        found.extend(ast::lock_order(&tree, &cfg.locks, &mut lock_used));

        for v in found {
            if let Some(idx) = allows.iter().position(|a| a.matches(&rel_str, v.rule, &v.snippet)) {
                used[idx] = true;
                continue;
            }
            println!("{rel_str}:{}: [{}] {}\n    {}", v.line, v.rule, v.message, v.snippet);
            violations += 1;
        }
    }

    for (entry, used) in allows.iter().zip(&used) {
        if !used {
            println!(
                "lint.toml: stale allow entry (path = \"{}\", rule = \"{}\", reason = \"{}\") — no longer matches anything; remove it",
                entry.path, entry.rule, entry.reason
            );
            violations += 1;
        }
    }
    for (entry, used) in cfg.locks.iter().zip(&lock_used) {
        if !used {
            println!(
                "lint.toml: stale lock entry (name = \"{}\", acquire = \"{}\") — matches no acquisition site; remove it or fix the path",
                entry.name, entry.acquire
            );
            violations += 1;
        }
    }
    Ok(violations)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    if !dir.is_dir() {
        return Ok(());
    }
    let entries = std::fs::read_dir(dir).map_err(|e| format!("reading {dir:?}: {e}"))?;
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
