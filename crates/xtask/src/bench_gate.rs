//! `cargo xtask bench-gate`: the criterion regression gate.
//!
//! Runs the `bench_gate` criterion target (`crates/bench/benches/
//! bench_gate.rs`), reads the persisted medians from
//! `target/criterion/<id>/new/estimates.json`, and normalizes each
//! workload by the `gate_calib` machine-calibration bench so the numbers
//! compare across hosts:
//!
//! * without flags, writes the normalized ratios to `bench-baseline.json`
//!   at the workspace root (check the file in to set a new baseline);
//! * with `--check`, compares fresh ratios against the checked-in
//!   baseline and fails when a workload regressed beyond
//!   [`TOLERANCE`]× its baseline ratio. Faster-than-baseline runs pass
//!   (improvements re-baseline at the maintainer's leisure).
//!
//! Independent of any baseline, `--check` also enforces the relational
//! invariant that motivates delta propagation at all: the
//! single-moved-observation delta round must be strictly faster than the
//! cold full round. If the frontier machinery ever degenerates into full
//! sweeps, the gate fails even on a fresh machine with a stale baseline.
//!
//! Everything here is std-only (like the rest of xtask): the JSON
//! reader is a purpose-built scanner for the two fixed schemas it
//! consumes, not a general parser.

use std::path::Path;
use std::process::{Command, ExitCode};

/// Gate workload IDs — keep in sync with `benches/bench_gate.rs`.
const CALIB: &str = "gate_calib";
const WORKLOADS: [&str; 2] = ["gate_gsp_full", "gate_gsp_delta"];

/// A workload fails `--check` when its machine-normalized ratio exceeds
/// this multiple of the baseline ratio. Generous by design: CI machines
/// are noisy and the calibration bench absorbs only first-order speed
/// differences. Real regressions (an accidental O(n²), a lost fast path)
/// move medians by integer factors, which this still catches.
const TOLERANCE: f64 = 3.0;

pub fn bench_gate_cmd(flags: &[String], root: &Path) -> ExitCode {
    let check = flags.iter().any(|f| f == "--check");
    if let Some(bad) = flags.iter().find(|f| *f != "--check") {
        eprintln!("unknown flag `{bad}` for xtask bench-gate");
        return ExitCode::from(2);
    }

    let status = Command::new("cargo")
        .args(["bench", "-p", "rtse-bench", "--bench", "bench_gate"])
        .current_dir(root)
        .status();
    match status {
        Ok(s) if s.success() => {}
        Ok(_) => {
            eprintln!("bench-gate: cargo bench failed");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("bench-gate: could not run cargo: {e}");
            return ExitCode::FAILURE;
        }
    }

    let median = |id: &str| -> Result<f64, String> {
        let path = root.join("target").join("criterion").join(id).join("new/estimates.json");
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        median_point_estimate(&text)
            .ok_or_else(|| format!("no median.point_estimate in {}", path.display()))
    };
    let calib = match median(CALIB) {
        Ok(v) if v > 0.0 => v,
        Ok(v) => {
            eprintln!("bench-gate: calibration median {v} ns is not positive");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("bench-gate: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut fresh = Vec::new();
    for id in WORKLOADS {
        match median(id) {
            Ok(v) => fresh.push((id, v, v / calib)),
            Err(e) => {
                eprintln!("bench-gate: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    for &(id, ns, ratio) in &fresh {
        println!("bench-gate: {id}: median {ns:.0} ns, {ratio:.3}x calibration");
    }

    let baseline_path = root.join("bench-baseline.json");
    if !check {
        let mut json = String::from("{\n");
        json.push_str(&format!("  \"calibration\": \"{CALIB}\",\n"));
        json.push_str("  \"ratios\": {\n");
        for (i, &(id, _, ratio)) in fresh.iter().enumerate() {
            let comma = if i + 1 == fresh.len() { "" } else { "," };
            json.push_str(&format!("    \"{id}\": {ratio:.4}{comma}\n"));
        }
        json.push_str("  }\n}\n");
        if let Err(e) = std::fs::write(&baseline_path, json) {
            eprintln!("bench-gate: cannot write {}: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
        println!("bench-gate: wrote {}", baseline_path.display());
        return ExitCode::SUCCESS;
    }

    let baseline_text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!(
                "bench-gate: cannot read {} ({e}); run `cargo xtask bench-gate` to create it",
                baseline_path.display()
            );
            return ExitCode::FAILURE;
        }
    };

    let mut failed = false;
    for &(id, _, ratio) in &fresh {
        let Some(baseline) = key_number(&baseline_text, id) else {
            eprintln!("bench-gate: {id} missing from {}", baseline_path.display());
            failed = true;
            continue;
        };
        if ratio > baseline * TOLERANCE {
            eprintln!(
                "bench-gate: {id} REGRESSED: {ratio:.3}x calibration vs baseline {baseline:.3}x \
                 (tolerance {TOLERANCE}x)"
            );
            failed = true;
        } else {
            println!("bench-gate: {id}: ok ({ratio:.3}x vs baseline {baseline:.3}x)");
        }
    }

    // Relational invariant, baseline-free: a one-observation delta round
    // must beat the cold full round outright.
    let full = fresh.iter().find(|(id, ..)| *id == "gate_gsp_full").map(|&(_, ns, _)| ns);
    let delta = fresh.iter().find(|(id, ..)| *id == "gate_gsp_delta").map(|&(_, ns, _)| ns);
    match (full, delta) {
        (Some(full), Some(delta)) if delta < full => {
            println!("bench-gate: delta round faster than full ({delta:.0} ns < {full:.0} ns)");
        }
        (Some(full), Some(delta)) => {
            eprintln!(
                "bench-gate: delta round is NOT faster than full ({delta:.0} ns >= {full:.0} ns)"
            );
            failed = true;
        }
        _ => unreachable!("both workloads were read above"),
    }

    if failed {
        ExitCode::FAILURE
    } else {
        println!("bench-gate: all workloads within tolerance");
        ExitCode::SUCCESS
    }
}

/// Extracts `median.point_estimate` from a criterion `estimates.json`.
fn median_point_estimate(text: &str) -> Option<f64> {
    let median = text.find("\"median\"")?;
    key_number(&text[median..], "point_estimate")
}

/// Finds `"key": <number>` and parses the number. Scanner for the two
/// fixed schemas this gate consumes; keys are known identifiers, so the
/// first match is the right one.
fn key_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start();
    let rest = rest.strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| {
            !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e' || c == 'E')
        })
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_median_point_estimate() {
        let text = r#"{
  "median": { "point_estimate": 1234.5 },
  "mean": { "point_estimate": 2000 }
}"#;
        assert!((median_point_estimate(text).expect("parses") - 1234.5).abs() < 1e-9);
    }

    #[test]
    fn reads_baseline_ratios() {
        let text = r#"{ "calibration": "gate_calib", "ratios": { "gate_gsp_full": 1.5, "gate_gsp_delta": 0.25 } }"#;
        assert!((key_number(text, "gate_gsp_full").expect("full") - 1.5).abs() < 1e-9);
        assert!((key_number(text, "gate_gsp_delta").expect("delta") - 0.25).abs() < 1e-9);
        assert!(key_number(text, "gate_missing").is_none());
    }

    #[test]
    fn malformed_numbers_are_rejected() {
        assert!(key_number(r#""k": "oops""#, "k").is_none());
        assert!(median_point_estimate("{}").is_none());
    }
}
