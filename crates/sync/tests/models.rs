//! Loom models of the workspace's four riskiest sync protocols.
//!
//! Each model mirrors the corresponding production code path statement
//! for statement — same primitives, same orderings — against shapes
//! small enough to explore exhaustively (2–3 threads, a handful of
//! operations). Compiled with `RUSTFLAGS="--cfg rtse_loom"`, `check`
//! explores every interleaving under the bounded-preemption explorer;
//! in a plain `cargo test` run the same code executes as a bounded
//! stress smoke over real OS threads (`loom-smoke`), so tier-1 CI still
//! exercises the protocols.
//!
//! | model | production code |
//! |---|---|
//! | seqlock write/read | `rtse-serve/src/coherence.rs` |
//! | cold-miss coalescing + coherent publication | `rtse-serve/src/cache.rs::round_for_published` |
//! | once-per-slot build | `crates/core/src/offline.rs::corr_entry` |
//! | histogram record/merge | `rtse-obs/src/hist.rs` |

use rtse_sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering};
use rtse_sync::{model, thread, Arc, Mutex, OnceLock, PoisonError};

/// Mirror of `rtse_serve::coherence::Coherence` (same orderings).
#[derive(Default)]
struct Coherence {
    seq: AtomicU64,
    writer: Mutex<()>,
}

impl Coherence {
    fn write<T>(&self, update: impl FnOnce() -> T) -> T {
        let _exclusive = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        self.seq.fetch_add(1, Ordering::AcqRel);
        let out = update();
        self.seq.fetch_add(1, Ordering::Release);
        out
    }

    fn read<T>(&self, mut load: impl FnMut() -> T) -> T {
        loop {
            let before = self.seq.load(Ordering::Acquire);
            if before % 2 == 1 {
                rtse_sync::hint::spin_loop();
                continue;
            }
            let out = load();
            fence(Ordering::Acquire);
            if self.seq.load(Ordering::Relaxed) == before {
                return out;
            }
        }
    }
}

/// Protocol 1a — seqlock reader coherence: a reader racing one writer
/// never observes the linked counters mid-write (writer exclusivity is
/// protocol 1b below).
#[test]
fn coherence_reader_never_observes_a_torn_write() {
    model::check(|| {
        let gate = Arc::new(Coherence::default());
        let a = Arc::new(AtomicU64::new(0));
        let b = Arc::new(AtomicU64::new(0));
        let (gate2, a2, b2) = (Arc::clone(&gate), Arc::clone(&a), Arc::clone(&b));
        let writer = thread::spawn(move || {
            gate2.write(|| {
                a2.fetch_add(1, Ordering::Relaxed);
                b2.fetch_add(1, Ordering::Relaxed);
            });
        });
        let (x, y) = gate.read(|| (a.load(Ordering::Relaxed), b.load(Ordering::Relaxed)));
        assert_eq!(x, y, "coherent read observed a half-applied write");
        writer.join().expect("writer thread");
        assert_eq!(a.load(Ordering::Relaxed), 1);
        assert_eq!(b.load(Ordering::Relaxed), 1);
    });
}

/// Protocol 1b — seqlock writer exclusivity: two concurrent writers
/// serialize on the writer mutex, so the sequence number ends even and
/// every reader retry terminates with the final state.
#[test]
fn coherence_writers_serialize_and_retries_terminate() {
    model::check(|| {
        let gate = Arc::new(Coherence::default());
        let a = Arc::new(AtomicU64::new(0));
        let b = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let (gate, a, b) = (Arc::clone(&gate), Arc::clone(&a), Arc::clone(&b));
                thread::spawn(move || {
                    gate.write(|| {
                        a.fetch_add(1, Ordering::Relaxed);
                        b.fetch_add(1, Ordering::Relaxed);
                    });
                })
            })
            .collect();
        let (x, y) = gate.read(|| (a.load(Ordering::Relaxed), b.load(Ordering::Relaxed)));
        assert_eq!(x, y, "coherent read observed a half-applied write");
        for h in handles {
            h.join().expect("writer thread");
        }
        assert_eq!(gate.seq.load(Ordering::Relaxed) % 2, 0, "a write section never closed");
        assert_eq!(a.load(Ordering::Relaxed), 2, "a writer's update was lost");
        assert_eq!(b.load(Ordering::Relaxed), 2, "a writer's update was lost");
    });
}

/// Mirror of `AnswerCache`'s per-slot state (`rtse-serve/src/cache.rs`):
/// the slot lock is held across `compute`, and the generation store plus
/// the rounds bump publish inside one coherence write section. Freshness
/// is a boolean here (loom has no clock): `fresh` = cached entries hit.
struct SlotCache {
    cell: Mutex<SlotCell>,
}

struct SlotCell {
    generation: u64,
    round: Option<u64>,
}

impl SlotCache {
    fn new() -> Self {
        Self { cell: Mutex::new(SlotCell { generation: 0, round: None }) }
    }

    /// `round_for_published` for one slot, freshness fixed at `fresh`.
    fn round_for(
        &self,
        fresh: bool,
        gate: &Coherence,
        builds: &AtomicUsize,
        rounds: &AtomicU64,
    ) -> u64 {
        let mut cell = self.cell.lock().unwrap_or_else(PoisonError::into_inner);
        if fresh {
            if let Some(round) = cell.round {
                return round;
            }
        }
        let generation = cell.generation + 1;
        builds.fetch_add(1, Ordering::Relaxed);
        let value = generation * 10;
        gate.write(|| {
            cell.generation = generation;
            rounds.fetch_add(1, Ordering::Relaxed);
        });
        cell.round = Some(value);
        value
    }

    fn generation(&self) -> u64 {
        self.cell.lock().unwrap_or_else(PoisonError::into_inner).generation
    }
}

/// Protocol 2a — cold-miss coalescing: two concurrent cold callers of
/// one fresh slot share a single build (no double builds), and both get
/// the same round.
#[test]
fn answer_cache_cold_misses_coalesce_into_one_build() {
    model::check(|| {
        let cache = Arc::new(SlotCache::new());
        let gate = Arc::new(Coherence::default());
        let builds = Arc::new(AtomicUsize::new(0));
        let rounds = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let (cache, gate, builds, rounds) = (
                    Arc::clone(&cache),
                    Arc::clone(&gate),
                    Arc::clone(&builds),
                    Arc::clone(&rounds),
                );
                thread::spawn(move || cache.round_for(true, &gate, &builds, &rounds))
            })
            .collect();
        let values: Vec<u64> = handles.into_iter().map(|h| h.join().expect("caller")).collect();
        assert_eq!(builds.load(Ordering::Relaxed), 1, "cold misses did not coalesce");
        assert_eq!(values[0], values[1], "coalesced callers saw different rounds");
        assert_eq!(cache.generation(), 1);
        assert_eq!(rounds.load(Ordering::Relaxed), 1);
    });
}

/// Protocol 2b — no lost generation bumps, coherently published: two
/// stale-forcing callers each rebuild; every bump lands (generation 2,
/// rounds 2) and a concurrent coherent reader never sees
/// `rounds != generation` (the `Σ generations == rounds` serving
/// invariant, modeled on one slot).
#[test]
fn answer_cache_generation_bumps_publish_coherently() {
    model::check(|| {
        let cache = Arc::new(SlotCache::new());
        let gate = Arc::new(Coherence::default());
        let builds = Arc::new(AtomicUsize::new(0));
        let rounds = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let (cache, gate, builds, rounds) = (
                    Arc::clone(&cache),
                    Arc::clone(&gate),
                    Arc::clone(&builds),
                    Arc::clone(&rounds),
                );
                thread::spawn(move || cache.round_for(false, &gate, &builds, &rounds))
            })
            .collect();
        let (r, g) = gate.read(|| (rounds.load(Ordering::Relaxed), cache.generation()));
        assert_eq!(r, g, "rounds and generations tore apart under a coherent read");
        for h in handles {
            h.join().expect("caller");
        }
        assert_eq!(builds.load(Ordering::Relaxed), 2);
        assert_eq!(cache.generation(), 2, "a generation bump was lost");
        assert_eq!(rounds.load(Ordering::Relaxed), 2);
    });
}

/// Protocol 3a — corr-cache slot protocol (`core::offline::corr_entry`):
/// concurrent cold callers of one `OnceLock` slot run the builder exactly
/// once and all observe the same value.
#[test]
fn corr_cache_slot_builds_exactly_once() {
    model::check(|| {
        let slot: Arc<OnceLock<u64>> = Arc::new(OnceLock::new());
        let builds = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let (slot, builds) = (Arc::clone(&slot), Arc::clone(&builds));
                thread::spawn(move || {
                    *slot.get_or_init(|| {
                        builds.fetch_add(1, Ordering::Relaxed);
                        42u64
                    })
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().expect("builder"), 42);
        }
        assert_eq!(builds.load(Ordering::Relaxed), 1, "corr table built twice for one slot");
    });
}

/// Protocol 3b — per-slot independence: a warm read of one slot
/// completes correctly while another slot's cold build is in flight
/// (the no-head-of-line-blocking property PR 3 fixed; a regression to a
/// cache-wide gate would deadlock or double-build here).
#[test]
fn corr_cache_warm_read_proceeds_during_cold_build() {
    model::check(|| {
        let warm: Arc<OnceLock<u64>> = Arc::new(OnceLock::new());
        let cold: Arc<OnceLock<u64>> = Arc::new(OnceLock::new());
        let builds = Arc::new(AtomicUsize::new(0));
        warm.get_or_init(|| 7u64);
        let (cold2, builds2) = (Arc::clone(&cold), Arc::clone(&builds));
        let builder = thread::spawn(move || {
            *cold2.get_or_init(|| {
                builds2.fetch_add(1, Ordering::Relaxed);
                99u64
            })
        });
        // Interleaves with every point of the cold build.
        assert_eq!(*warm.get_or_init(|| 0u64), 7, "warm slot returned a wrong value");
        assert_eq!(builder.join().expect("builder"), 99);
        assert_eq!(builds.load(Ordering::Relaxed), 1);
    });
}

/// Mirror of `rtse_obs::hist::LogLinearHistogram`'s record / merge_from
/// paths (same orderings), shrunk to 2 buckets so the model stays small.
struct MiniHist {
    buckets: [AtomicU64; 2],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl MiniHist {
    fn new() -> Self {
        Self {
            buckets: [AtomicU64::new(0), AtomicU64::new(0)],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    fn record(&self, value: u64) {
        self.buckets[usize::from(value != 0)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    fn merge_from(&self, other: &MiniHist) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum.fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min.fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max.fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

/// Protocol 4 — histogram merge loses no counts: a recorder racing a
/// merge into the same shared histogram; afterwards every recorded value
/// is accounted for in buckets, count, sum, and extremes.
#[test]
fn histogram_merge_never_loses_counts() {
    model::check(|| {
        let shared = Arc::new(MiniHist::new());
        let local = Arc::new(MiniHist::new());
        local.record(0);
        local.record(5);
        let shared2 = Arc::clone(&shared);
        let recorder = thread::spawn(move || {
            shared2.record(3);
        });
        shared.merge_from(&local);
        recorder.join().expect("recorder");
        assert_eq!(shared.count.load(Ordering::Relaxed), 3, "merge lost a count");
        assert_eq!(shared.sum.load(Ordering::Relaxed), 8, "merge lost recorded value mass");
        let per_bucket: u64 = shared.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum();
        assert_eq!(per_bucket, 3, "bucket totals diverged from the count");
        assert_eq!(shared.min.load(Ordering::Relaxed), 0);
        assert_eq!(shared.max.load(Ordering::Relaxed), 5);
    });
}
