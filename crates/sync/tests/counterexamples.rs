//! Counterexample regressions: seeded protocol bugs the model checker
//! must keep finding.
//!
//! Each test runs a deliberately broken variant of one modeled protocol
//! (`tests/models.rs`) under the vendored checker and asserts the search
//! finds the bug. They drive `rtse_sync::loom` explicitly, so they are
//! deterministic, run in a plain `cargo test` (no `rtse_loom` cfg
//! needed), and pin the checker's bug-finding power: if a scheduler
//! change ever stops exploring the failing interleaving, these fail.

use loom::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use loom::sync::{Arc, Mutex, OnceLock, PoisonError};
use loom::thread;
use rtse_sync::loom;

/// Runs `f` under the checker expecting a failure; returns the failure
/// message.
fn must_find_bug(name: &str, f: impl Fn() + Send + Sync + 'static) -> String {
    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| loom::model(f)));
    match out {
        Ok(explored) => panic!(
            "checker explored {explored} executions of `{name}` without finding the seeded bug"
        ),
        Err(payload) => {
            if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else {
                String::from("<non-string panic payload>")
            }
        }
    }
}

/// Seqlock without the odd-sequence retry: a reader that ignores the
/// "write section open" parity observes the linked counters mid-write.
#[test]
fn seqlock_without_odd_check_tears() {
    let msg = must_find_bug("seqlock-no-odd-check", || {
        let seq = Arc::new(AtomicU64::new(0));
        let a = Arc::new(AtomicU64::new(0));
        let b = Arc::new(AtomicU64::new(0));
        let (seq2, a2, b2) = (Arc::clone(&seq), Arc::clone(&a), Arc::clone(&b));
        let writer = thread::spawn(move || {
            seq2.fetch_add(1, Ordering::AcqRel);
            a2.fetch_add(1, Ordering::Relaxed);
            b2.fetch_add(1, Ordering::Relaxed);
            seq2.fetch_add(1, Ordering::Release);
        });
        // BUG: no parity check, no validation re-read.
        let x = a.load(Ordering::Relaxed);
        let y = b.load(Ordering::Relaxed);
        assert_eq!(x, y, "torn read");
        writer.join().expect("writer");
    });
    assert!(msg.contains("torn read"), "unexpected failure: {msg}");
}

/// Seqlock without the validation re-read: the reader honours the parity
/// check but skips comparing the sequence afterwards, so a write section
/// that opens *between* its two data loads goes unnoticed.
#[test]
fn seqlock_without_validation_reread_tears() {
    let msg = must_find_bug("seqlock-no-validation", || {
        let seq = Arc::new(AtomicU64::new(0));
        let a = Arc::new(AtomicU64::new(0));
        let b = Arc::new(AtomicU64::new(0));
        let (seq2, a2, b2) = (Arc::clone(&seq), Arc::clone(&a), Arc::clone(&b));
        let writer = thread::spawn(move || {
            seq2.fetch_add(1, Ordering::AcqRel);
            a2.fetch_add(1, Ordering::Relaxed);
            b2.fetch_add(1, Ordering::Relaxed);
            seq2.fetch_add(1, Ordering::Release);
        });
        loop {
            let before = seq.load(Ordering::Acquire);
            if before % 2 == 1 {
                loom::hint::spin_loop();
                continue;
            }
            let x = a.load(Ordering::Relaxed);
            let y = b.load(Ordering::Relaxed);
            // BUG: `seq` is not re-read; a write racing past the loads
            // is accepted as coherent.
            assert_eq!(x, y, "torn read");
            break;
        }
        writer.join().expect("writer");
    });
    assert!(msg.contains("torn read"), "unexpected failure: {msg}");
}

/// Answer-cache rebuild that drops the slot lock across `compute`: two
/// stale callers both read generation 0, both build, and one bump is
/// lost (`rounds` says 2, the generation says 1).
#[test]
fn cache_rebuild_outside_the_slot_lock_loses_a_bump() {
    let msg = must_find_bug("cache-unlocked-rebuild", || {
        let cell = Arc::new(Mutex::new(0u64));
        let rounds = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let (cell, rounds) = (Arc::clone(&cell), Arc::clone(&rounds));
                thread::spawn(move || {
                    // BUG: the generation is read under the lock, but the
                    // lock is released across the compute + store.
                    let generation = *cell.lock().unwrap_or_else(PoisonError::into_inner) + 1;
                    rounds.fetch_add(1, Ordering::Relaxed);
                    *cell.lock().unwrap_or_else(PoisonError::into_inner) = generation;
                })
            })
            .collect();
        for h in handles {
            h.join().expect("caller");
        }
        let generation = *cell.lock().unwrap_or_else(PoisonError::into_inner);
        assert_eq!(rounds.load(Ordering::Relaxed), generation, "a generation bump was lost");
    });
    assert!(msg.contains("generation bump was lost"), "unexpected failure: {msg}");
}

/// Corr-cache init via check-then-set instead of `get_or_init`: two cold
/// callers both see the slot empty and both run the builder.
#[test]
fn corr_cache_check_then_set_double_builds() {
    let msg = must_find_bug("corr-cache-check-then-set", || {
        let slot: Arc<OnceLock<u64>> = Arc::new(OnceLock::new());
        let builds = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let (slot, builds) = (Arc::clone(&slot), Arc::clone(&builds));
                thread::spawn(move || {
                    // BUG: get() + set() instead of get_or_init();
                    // the emptiness check races the other builder.
                    if slot.get().is_none() {
                        builds.fetch_add(1, Ordering::Relaxed);
                        let _ = slot.set(42);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("builder");
        }
        assert_eq!(builds.load(Ordering::Relaxed), 1, "corr table built twice");
    });
    assert!(msg.contains("built twice"), "unexpected failure: {msg}");
}

/// Histogram merge via load-then-store instead of `fetch_add`: a record
/// racing the merge vanishes.
#[test]
fn histogram_merge_via_load_store_loses_counts() {
    let msg = must_find_bug("hist-merge-load-store", || {
        let count = Arc::new(AtomicU64::new(0));
        let count2 = Arc::clone(&count);
        let recorder = thread::spawn(move || {
            count2.fetch_add(1, Ordering::Relaxed);
        });
        // BUG: merge adds the other histogram's count with a separate
        // load and store instead of one RMW.
        let merged = count.load(Ordering::Relaxed) + 2;
        count.store(merged, Ordering::Relaxed);
        recorder.join().expect("recorder");
        assert_eq!(count.load(Ordering::Relaxed), 3, "merge lost a count");
    });
    assert!(msg.contains("merge lost a count"), "unexpected failure: {msg}");
}
