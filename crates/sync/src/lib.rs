//! The workspace's single sanctioned import path for `std::sync`.
//!
//! Every concurrency primitive in the pipeline — atomics, mutexes,
//! condvars, `OnceLock`, spawned threads — comes through this shim
//! instead of `std::sync` directly (the `raw-sync` xtask rule enforces
//! it, mirroring the raw-thread rule that funnels OS threads through
//! `rtse-pool`). Normally the shim is a zero-cost re-export of the std
//! types; compiled with `RUSTFLAGS="--cfg rtse_loom"` it swaps to the
//! [`loom`] model-checked types, so the protocol models in this crate's
//! `tests/` explore *every* thread interleaving of the real production
//! code paths rather than a transliteration of them.
//!
//! Two deliberate gaps keep the shim fail-closed rather than silently
//! unfaithful:
//!
//! * `mpsc`, `RwLock`, and `std::thread::scope` have no loom
//!   counterparts here, so they are only re-exported when the cfg is
//!   off. Code using them (`rtse-pool`, `rtse-serve` request plumbing,
//!   `rtse-gsp` parallel state) cannot be compiled into a loom model by
//!   accident — attempting it is a compile error, not a wrong answer.
//! * The loom backend is sequentially consistent: it validates protocol
//!   logic (lost updates, double builds, torn reads, deadlock), while
//!   the per-site ordering table in DESIGN.md §8 plus the
//!   `atomic-ordering` lint govern the weak-memory axis.
//!
//! The vendored checker itself is additionally exposed as
//! [`loom`](mod@loom) so regression tests for checker-found
//! counterexamples can drive `loom::model` explicitly in a plain
//! `cargo test` run, without the cfg.

/// Which backend this build of the shim compiled against.
#[cfg(rtse_loom)]
pub const BACKEND: &str = "loom";
/// Which backend this build of the shim compiled against.
#[cfg(not(rtse_loom))]
pub const BACKEND: &str = "std";

// Re-export the vendored checker so tests can use `rtse_sync::loom`
// explicitly (counterexample regressions, checker self-checks) even when
// the shim itself is on the std backend.
pub use loom;

#[cfg(rtse_loom)]
pub use loom::sync::{Arc, Condvar, LockResult, Mutex, MutexGuard, OnceLock, PoisonError};

#[cfg(not(rtse_loom))]
pub use std::sync::{Arc, Condvar, LockResult, Mutex, MutexGuard, OnceLock, PoisonError};

// No loom counterpart: available on the std backend only (fail-closed —
// see the crate docs).
#[cfg(not(rtse_loom))]
pub use std::sync::{mpsc, Barrier, RwLock, RwLockReadGuard, RwLockWriteGuard};

pub mod atomic {
    //! `std::sync::atomic` through the shim.

    #[cfg(rtse_loom)]
    pub use loom::sync::atomic::{
        fence, AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicUsize, Ordering,
    };

    #[cfg(not(rtse_loom))]
    pub use std::sync::atomic::{
        fence, AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicUsize, Ordering,
    };
}

pub mod hint {
    //! Spin-wait hint; under loom this deschedules the spinner so retry
    //! loops cannot starve the progress they are waiting on.

    #[cfg(rtse_loom)]
    pub use loom::hint::spin_loop;

    #[cfg(not(rtse_loom))]
    pub use std::hint::spin_loop;
}

pub mod thread {
    //! Thread spawn/yield through the shim. Production code must keep
    //! using `rtse-pool` for OS threads (the raw-thread lint still
    //! applies); this module exists so protocol models and sync tests
    //! can spawn model threads through one import path.

    #[cfg(rtse_loom)]
    pub use loom::thread::{spawn, yield_now, JoinHandle};

    #[cfg(not(rtse_loom))]
    pub use std::thread::{spawn, yield_now, JoinHandle};
}

pub mod model {
    //! Entry point for protocol models: exhaustive exploration under the
    //! loom backend, a bounded stress loop otherwise — so the same test
    //! source is a model under `--cfg rtse_loom` and a smoke test in a
    //! plain `cargo test` run.

    /// Iterations [`check`] runs per model on the std backend.
    pub const STRESS_ITERS: usize = 200;

    /// Runs `f` under the active backend: every interleaving (bounded
    /// preemptions, see the vendored checker docs) under `rtse_loom`,
    /// [`STRESS_ITERS`] repetitions with OS scheduling otherwise.
    #[cfg(rtse_loom)]
    pub fn check<F: Fn()>(f: F) {
        loom::model(f);
    }

    /// Runs `f` under the active backend: every interleaving (bounded
    /// preemptions, see the vendored checker docs) under `rtse_loom`,
    /// [`STRESS_ITERS`] repetitions with OS scheduling otherwise.
    #[cfg(not(rtse_loom))]
    pub fn check<F: Fn()>(f: F) {
        loom::stress(STRESS_ITERS, f);
    }
}
