//! Error metrics: APE, MAPE, FER, MAE, RMSE.

use rtse_graph::RoadId;

/// The paper's false-estimation threshold `φ`.
pub const DEFAULT_FER_THRESHOLD: f64 = 0.2;

/// Absolute percentage error `|ŷ − y| / y`.
///
/// Ground truths at (numerically) zero are undefined for APE; this returns
/// `f64::INFINITY` for them so they surface as false estimations rather
/// than silently vanishing.
#[inline]
pub fn ape(estimate: f64, truth: f64) -> f64 {
    if truth.abs() < 1e-9 {
        return f64::INFINITY;
    }
    (estimate - truth).abs() / truth
}

/// Aggregate error report over a set of test cases.
///
/// ```
/// use rtse_eval::ErrorReport;
/// use rtse_graph::RoadId;
///
/// let estimates = [52.0, 30.0, 61.0];
/// let truth = [50.0, 40.0, 60.0];
/// let queried = [RoadId(0), RoadId(1), RoadId(2)];
/// let report = ErrorReport::evaluate_default(&estimates, &truth, &queried);
/// // APEs are 0.04, 0.25, 0.0167 — one exceeds the φ = 0.2 threshold.
/// assert!((report.fer - 1.0 / 3.0).abs() < 1e-12);
/// assert!(report.mape < 0.11);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorReport {
    /// Mean absolute percentage error.
    pub mape: f64,
    /// False-estimation rate at the `φ` used to build the report.
    pub fer: f64,
    /// Mean absolute error (km/h).
    pub mae: f64,
    /// Root mean squared error (km/h).
    pub rmse: f64,
    /// Number of test cases.
    pub count: usize,
    /// Raw APE values (kept for DAPE plots).
    pub apes: Vec<f64>,
}

impl ErrorReport {
    /// Builds a report from parallel estimate/truth slices restricted to
    /// `queried` road indices, with false-estimation threshold `phi`.
    ///
    /// # Panics
    /// Panics when the slices' lengths differ or a queried id is out of
    /// range.
    pub fn evaluate(estimates: &[f64], truths: &[f64], queried: &[RoadId], phi: f64) -> Self {
        assert_eq!(estimates.len(), truths.len(), "estimate/truth length mismatch");
        let mut apes = Vec::with_capacity(queried.len());
        let mut abs_sum = 0.0;
        let mut sq_sum = 0.0;
        for &r in queried {
            let (e, t) = (estimates[r.index()], truths[r.index()]);
            apes.push(ape(e, t));
            abs_sum += (e - t).abs();
            sq_sum += (e - t) * (e - t);
        }
        let n = queried.len();
        if n == 0 {
            return Self { mape: 0.0, fer: 0.0, mae: 0.0, rmse: 0.0, count: 0, apes };
        }
        let finite_mape = {
            // Infinite APEs (zero ground truth) are counted as errors but
            // excluded from the mean to keep MAPE meaningful.
            let finite: Vec<f64> = apes.iter().copied().filter(|a| a.is_finite()).collect();
            if finite.is_empty() {
                f64::INFINITY
            } else {
                finite.iter().sum::<f64>() / finite.len() as f64
            }
        };
        Self {
            mape: finite_mape,
            fer: apes.iter().filter(|&&a| a > phi).count() as f64 / n as f64,
            mae: abs_sum / n as f64,
            rmse: (sq_sum / n as f64).sqrt(),
            count: n,
            apes,
        }
    }

    /// Shortcut with the paper's `φ = 0.2`.
    pub fn evaluate_default(estimates: &[f64], truths: &[f64], queried: &[RoadId]) -> Self {
        Self::evaluate(estimates, truths, queried, DEFAULT_FER_THRESHOLD)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ape_hand_values() {
        assert_eq!(ape(11.0, 10.0), 0.1);
        assert_eq!(ape(8.0, 10.0), 0.2);
        assert!(ape(5.0, 0.0).is_infinite());
    }

    #[test]
    fn report_hand_example() {
        let est = [11.0, 8.0, 30.0];
        let truth = [10.0, 10.0, 20.0];
        let q = [RoadId(0), RoadId(1), RoadId(2)];
        let r = ErrorReport::evaluate(&est, &truth, &q, 0.2);
        // APEs: .1, .2, .5 → MAPE = .2667; FER: only .5 > .2 → 1/3.
        assert!((r.mape - (0.1 + 0.2 + 0.5) / 3.0).abs() < 1e-12);
        assert!((r.fer - 1.0 / 3.0).abs() < 1e-12);
        assert!((r.mae - (1.0 + 2.0 + 10.0) / 3.0).abs() < 1e-12);
        assert_eq!(r.count, 3);
    }

    #[test]
    fn subset_restriction() {
        let est = [100.0, 10.0];
        let truth = [1.0, 10.0];
        let r = ErrorReport::evaluate(&est, &truth, &[RoadId(1)], 0.2);
        assert_eq!(r.mape, 0.0);
        assert_eq!(r.fer, 0.0);
    }

    #[test]
    fn empty_queried_graceful() {
        let r = ErrorReport::evaluate(&[1.0], &[1.0], &[], 0.2);
        assert_eq!(r.count, 0);
        assert_eq!(r.mape, 0.0);
    }

    #[test]
    fn zero_truth_counts_as_false_estimation() {
        let r = ErrorReport::evaluate(&[5.0], &[0.0], &[RoadId(0)], 0.2);
        assert_eq!(r.fer, 1.0);
        assert!(r.mape.is_infinite(), "no finite APEs at all");
    }

    #[test]
    fn perfect_estimation_zero_errors() {
        let v = [10.0, 20.0, 30.0];
        let q = [RoadId(0), RoadId(1), RoadId(2)];
        let r = ErrorReport::evaluate(&v, &v, &q, 0.2);
        assert_eq!(r.mape, 0.0);
        assert_eq!(r.fer, 0.0);
        assert_eq!(r.rmse, 0.0);
    }

    proptest! {
        #[test]
        fn fer_bounded_and_monotone_in_phi(
            pairs in proptest::collection::vec((1.0..100.0f64, 1.0..100.0f64), 1..32),
        ) {
            let est: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let truth: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            let q: Vec<RoadId> = (0..pairs.len()).map(RoadId::from).collect();
            let strict = ErrorReport::evaluate(&est, &truth, &q, 0.05);
            let loose = ErrorReport::evaluate(&est, &truth, &q, 0.5);
            prop_assert!((0.0..=1.0).contains(&strict.fer));
            prop_assert!(loose.fer <= strict.fer);
            prop_assert!(strict.rmse + 1e-12 >= strict.mae);
        }
    }
}
