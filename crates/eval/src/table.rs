//! Plain-text and CSV table rendering for the experiment binaries.

use std::fmt::Write as _;

/// A simple column-aligned table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    ///
    /// # Panics
    /// Panics when the cell count differs from the header count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Convenience: formats `f64` cells with 4 significant decimals.
    pub fn push_numeric_row(&mut self, label: impl Into<String>, values: &[f64]) {
        let mut cells = vec![label.into()];
        cells.extend(values.iter().map(|v| format!("{v:.4}")));
        self.push_row(cells);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders an aligned plain-text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "== {} ==", self.title);
        }
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (cell, w) in cells.iter().zip(widths.iter()) {
                let _ = write!(s, "{cell:>w$}  ", w = w);
            }
            s.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        let _ = writeln!(out, "{}", "-".repeat(total.saturating_sub(2)));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Renders RFC-4180-ish CSV (cells containing commas/quotes get
    /// quoted).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ =
            writeln!(out, "{}", self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["k", "value"]);
        t.push_row(vec!["a".into(), "1".into()]);
        t.push_row(vec!["long-label".into(), "2.5".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long-label"));
        // Every data line ends aligned; just check both rows present.
        assert_eq!(s.lines().count(), 5);
    }

    #[test]
    fn numeric_row_formatting() {
        let mut t = Table::new("", &["label", "x", "y"]);
        t.push_numeric_row("row", &[1.0, 0.123456]);
        assert!(t.render().contains("0.1235"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new("", &["name", "note"]);
        t.push_row(vec!["a,b".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }
}
