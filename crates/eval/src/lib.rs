//! Evaluation metrics and experiment utilities (Section VII).
//!
//! The paper compares estimators on four axes:
//! * **MAPE** — mean absolute percentage error;
//! * **FER** — false-estimation rate: fraction of cases whose APE exceeds
//!   `φ = 0.2`;
//! * **DAPE** — the distribution of APE (histogram);
//! * **running time**.
//!
//! Plus Table III's 1-hop/2-hop coverage of the queried roads by the
//! selected crowdsourced roads. This crate implements all of them, along
//! with plain-text/CSV table rendering shared by the experiment binaries.

pub mod bootstrap;
pub mod coverage;
pub mod dape;
pub mod geojson;
pub mod metrics;
pub mod results;
pub mod table;
pub mod timing;

pub use bootstrap::{bootstrap_mean, bootstrap_paired_diff, quantile, Interval};
pub use coverage::k_hop_coverage;
pub use dape::dape_histogram;
pub use geojson::{to_geojson, ScalarLayer};
pub use metrics::{ape, ErrorReport, DEFAULT_FER_THRESHOLD};
pub use results::{results_dir_from_args, ResultsDir};
pub use table::Table;
pub use timing::{time_it, time_mean};
