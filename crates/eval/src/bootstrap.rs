//! Bootstrap confidence intervals and paired method comparison.
//!
//! The paper reports point estimates; when two methods are close (e.g.
//! GSP vs LASSO at large budgets) a resampled interval tells whether the
//! gap is real. Resampling uses a deterministic splitmix64 stream so
//! experiment output is reproducible.

/// A two-sided percentile bootstrap interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Point estimate on the original sample.
    pub point: f64,
    /// Lower percentile bound.
    pub lo: f64,
    /// Upper percentile bound.
    pub hi: f64,
}

impl Interval {
    /// True when the interval excludes zero (a "significant" paired gap).
    pub fn excludes_zero(&self) -> bool {
        self.lo > 0.0 || self.hi < 0.0
    }
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Empirical quantile with linear interpolation; `q ∈ [0, 1]`.
///
/// # Panics
/// Panics on empty input or out-of-range `q`.
pub fn quantile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile level out of range");
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "input must be sorted");
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Percentile-bootstrap interval for the mean of `sample` at confidence
/// `1 − alpha` using `reps` resamples.
///
/// # Panics
/// Panics on an empty sample, `reps == 0`, or `alpha` outside `(0, 1)`.
pub fn bootstrap_mean(sample: &[f64], reps: usize, alpha: f64, seed: u64) -> Interval {
    assert!(!sample.is_empty(), "bootstrap of empty sample");
    assert!(reps > 0, "need at least one resample");
    assert!(alpha > 0.0 && alpha < 1.0, "alpha out of range");
    let n = sample.len();
    let point = sample.iter().sum::<f64>() / n as f64;
    let mut state = seed;
    let mut means = Vec::with_capacity(reps);
    for _ in 0..reps {
        let mut acc = 0.0;
        for _ in 0..n {
            let idx = (splitmix(&mut state) % n as u64) as usize;
            acc += sample[idx];
        }
        means.push(acc / n as f64);
    }
    means.sort_by(|a, b| a.partial_cmp(b).expect("finite means"));
    Interval { point, lo: quantile(&means, alpha / 2.0), hi: quantile(&means, 1.0 - alpha / 2.0) }
}

/// Paired-difference bootstrap: interval for `mean(a_i − b_i)` where `a`
/// and `b` are per-case scores of two methods on the same cases (e.g.
/// APE of GSP and of LASSO on the same queried roads).
///
/// # Panics
/// Panics when lengths differ or inputs are empty.
pub fn bootstrap_paired_diff(a: &[f64], b: &[f64], reps: usize, alpha: f64, seed: u64) -> Interval {
    assert_eq!(a.len(), b.len(), "paired samples must align");
    let diffs: Vec<f64> = a.iter().zip(b.iter()).map(|(x, y)| x - y).collect();
    bootstrap_mean(&diffs, reps, alpha, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_hand_values() {
        let s = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&s, 0.0), 1.0);
        assert_eq!(quantile(&s, 1.0), 4.0);
        assert_eq!(quantile(&s, 0.5), 2.5);
    }

    #[test]
    fn interval_brackets_the_mean() {
        let sample: Vec<f64> = (0..100).map(|i| (i % 10) as f64).collect();
        let iv = bootstrap_mean(&sample, 500, 0.05, 42);
        assert!((iv.point - 4.5).abs() < 1e-12);
        assert!(iv.lo <= iv.point && iv.point <= iv.hi);
        // The interval should be tight-ish for n = 100.
        assert!(iv.hi - iv.lo < 2.0);
    }

    #[test]
    fn deterministic_in_seed() {
        let sample = [1.0, 5.0, 2.0, 8.0, 3.0];
        let a = bootstrap_mean(&sample, 200, 0.1, 7);
        let b = bootstrap_mean(&sample, 200, 0.1, 7);
        assert_eq!(a, b);
        let c = bootstrap_mean(&sample, 200, 0.1, 8);
        assert!(a.lo != c.lo || a.hi != c.hi);
    }

    #[test]
    fn clear_paired_gap_is_significant() {
        let a: Vec<f64> = (0..50).map(|i| 10.0 + (i % 3) as f64).collect();
        let b: Vec<f64> = (0..50).map(|i| 2.0 + (i % 3) as f64).collect();
        let iv = bootstrap_paired_diff(&a, &b, 500, 0.05, 1);
        assert!(iv.excludes_zero());
        assert!((iv.point - 8.0).abs() < 1e-12);
    }

    #[test]
    fn noise_only_gap_is_not_significant() {
        // a and b differ by symmetric noise with zero mean.
        let a: Vec<f64> = (0..60).map(|i| 5.0 + ((i * 37 % 11) as f64 - 5.0) * 0.1).collect();
        let b: Vec<f64> = (0..60).map(|i| 5.0 + ((i * 53 % 11) as f64 - 5.0) * 0.1).collect();
        let iv = bootstrap_paired_diff(&a, &b, 500, 0.05, 2);
        assert!(!iv.excludes_zero(), "interval {iv:?} should straddle zero");
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_rejected() {
        bootstrap_mean(&[], 10, 0.05, 1);
    }
}
