//! Persisting experiment output.
//!
//! Each experiment binary prints its tables and, when asked, also writes
//! them as CSV under a results directory so plots/regressions can consume
//! them without scraping stdout.

use crate::table::Table;
use std::io;
use std::path::{Path, PathBuf};

/// A sink for experiment tables: `results/<experiment>/<table>.csv`.
#[derive(Debug, Clone)]
pub struct ResultsDir {
    root: PathBuf,
}

impl ResultsDir {
    /// Creates (if needed) `root/experiment`.
    pub fn create(root: impl AsRef<Path>, experiment: &str) -> io::Result<Self> {
        let root = root.as_ref().join(experiment);
        std::fs::create_dir_all(&root)?;
        Ok(Self { root })
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.root
    }

    /// Writes one table as `<name>.csv`; returns the file path.
    pub fn write_table(&self, name: &str, table: &Table) -> io::Result<PathBuf> {
        assert!(
            !name.is_empty() && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
            "table name must be a simple identifier, got {name:?}"
        );
        let path = self.root.join(format!("{name}.csv"));
        std::fs::write(&path, table.to_csv())?;
        Ok(path)
    }
}

/// Checks the process args for `--csv` and returns a sink rooted at
/// `results/` when present (the experiment binaries' shared convention).
pub fn results_dir_from_args(experiment: &str) -> Option<ResultsDir> {
    if std::env::args().any(|a| a == "--csv") {
        match ResultsDir::create("results", experiment) {
            Ok(dir) => Some(dir),
            Err(e) => {
                eprintln!("warning: cannot create results dir: {e}");
                None
            }
        }
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        let mut t = Table::new("demo", &["k", "v"]);
        t.push_row(vec!["a".into(), "1".into()]);
        t
    }

    #[test]
    fn writes_csv_file() {
        let tmp = std::env::temp_dir().join("rtse_results_test");
        let dir = ResultsDir::create(&tmp, "exp_demo").unwrap();
        let path = dir.write_table("table1", &sample_table()).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("k,v"));
        assert!(text.contains("a,1"));
        std::fs::remove_dir_all(&tmp).ok();
    }

    #[test]
    #[should_panic(expected = "simple identifier")]
    fn rejects_path_traversal_names() {
        let tmp = std::env::temp_dir().join("rtse_results_test2");
        let dir = ResultsDir::create(&tmp, "exp_demo").unwrap();
        let _ = dir.write_table("../evil", &sample_table());
    }

    #[test]
    fn overwrites_existing_file() {
        let tmp = std::env::temp_dir().join("rtse_results_test3");
        let dir = ResultsDir::create(&tmp, "exp_demo").unwrap();
        dir.write_table("t", &sample_table()).unwrap();
        let mut t2 = Table::new("", &["x"]);
        t2.push_row(vec!["9".into()]);
        let path = dir.write_table("t", &t2).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("x"));
        std::fs::remove_dir_all(&tmp).ok();
    }
}
