//! Wall-clock timing helper for the running-time experiments
//! (Figs. 4a/4b).

use std::time::{Duration, Instant};

/// Runs `f` and returns its result together with the elapsed wall time.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Runs `f` `reps` times and returns the mean duration (result of the last
/// run is discarded; use for cheap, repeatable operations).
pub fn time_mean(reps: usize, mut f: impl FnMut()) -> Duration {
    assert!(reps > 0, "need at least one repetition");
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed() / reps as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_it_returns_value_and_duration() {
        let (v, d) = time_it(|| 6 * 7);
        assert_eq!(v, 42);
        assert!(d < Duration::from_secs(1));
    }

    #[test]
    fn time_mean_averages() {
        let d = time_mean(4, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert!(d < Duration::from_millis(100));
    }

    #[test]
    #[should_panic(expected = "at least one repetition")]
    fn zero_reps_rejected() {
        time_mean(0, || {});
    }
}
