//! k-hop coverage of queried roads (Table III).

use rtse_graph::{hop_distances, Graph, RoadId};

/// Number of queried roads lying within `hops` hops of any selected road
/// (selected roads that are themselves queried count at every `hops ≥ 0`).
pub fn k_hop_coverage(
    graph: &Graph,
    queried: &[RoadId],
    selected: &[RoadId],
    hops: usize,
) -> usize {
    if selected.is_empty() {
        return 0;
    }
    let dist = hop_distances(graph, selected);
    queried.iter().filter(|r| dist[r.index()] <= hops).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtse_graph::generators::path;

    #[test]
    fn coverage_on_path() {
        let g = path(6); // 0-1-2-3-4-5
        let queried: Vec<RoadId> = (0u32..6).map(RoadId).collect();
        let selected = [RoadId(2)];
        assert_eq!(k_hop_coverage(&g, &queried, &selected, 0), 1);
        assert_eq!(k_hop_coverage(&g, &queried, &selected, 1), 3);
        assert_eq!(k_hop_coverage(&g, &queried, &selected, 2), 5);
        assert_eq!(k_hop_coverage(&g, &queried, &selected, 5), 6);
    }

    #[test]
    fn multiple_selected_union() {
        let g = path(6);
        let queried: Vec<RoadId> = (0u32..6).map(RoadId).collect();
        let selected = [RoadId(0), RoadId(5)];
        assert_eq!(k_hop_coverage(&g, &queried, &selected, 1), 4);
    }

    #[test]
    fn empty_cases() {
        let g = path(3);
        assert_eq!(k_hop_coverage(&g, &[RoadId(0)], &[], 2), 0);
        assert_eq!(k_hop_coverage(&g, &[], &[RoadId(0)], 2), 0);
    }

    #[test]
    fn coverage_monotone_in_hops_and_selection() {
        let g = path(8);
        let queried: Vec<RoadId> = (0u32..8).map(RoadId).collect();
        let small = [RoadId(3)];
        let large = [RoadId(3), RoadId(6)];
        for hops in 0..4 {
            let a = k_hop_coverage(&g, &queried, &small, hops);
            let b = k_hop_coverage(&g, &queried, &small, hops + 1);
            assert!(b >= a);
            let c = k_hop_coverage(&g, &queried, &large, hops);
            assert!(c >= a);
        }
    }
}
