//! DAPE — distribution of absolute percentage error (Fig. 3, row 3).

use rtse_math::Histogram;

/// Buckets APE values into a histogram over `[0, cap)` with `bins` equal
/// bins plus an overflow bin (APE ≥ cap, including the infinite APEs of
/// zero ground truths).
pub fn dape_histogram(apes: &[f64], cap: f64, bins: usize) -> Histogram {
    let mut h = Histogram::new(0.0, cap, bins);
    for &a in apes {
        h.add(if a.is_finite() { a } else { f64::INFINITY });
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_apes() {
        let apes = [0.05, 0.15, 0.15, 0.45, 2.0, f64::INFINITY];
        let h = dape_histogram(&apes, 1.0, 10);
        assert_eq!(h.total(), 6);
        // 0.05 in bin 0, the two 0.15s in bin 1, 0.45 in bin 4, 2.0 and inf
        // in overflow.
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[1], 2);
        assert_eq!(h.counts()[4], 1);
        assert_eq!(*h.counts().last().unwrap(), 2);
    }

    #[test]
    fn fractions_sum_to_one_with_overflow() {
        let apes = [0.1, 0.5, 5.0];
        let h = dape_histogram(&apes, 1.0, 4);
        let s: f64 = h.fractions().iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_input_empty_histogram() {
        let h = dape_histogram(&[], 1.0, 5);
        assert_eq!(h.total(), 0);
    }
}
