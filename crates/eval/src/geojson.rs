//! GeoJSON export of network state.
//!
//! Writes the road network with any per-road scalar (estimates, posterior
//! stds, APE, …) as a GeoJSON `FeatureCollection` of points at the road
//! midpoints, ready for kepler.gl / geojson.io / QGIS. Hand-rolled JSON —
//! the structure is fixed and tiny, no serde needed.

use rtse_graph::Graph;
use std::fmt::Write as _;

/// One named scalar layer to attach to every road feature.
pub struct ScalarLayer<'a> {
    /// Property name in the GeoJSON output.
    pub name: &'a str,
    /// One value per road.
    pub values: &'a [f64],
}

/// Renders the network as a GeoJSON `FeatureCollection`.
///
/// Synthetic coordinates live in the unit square; they are mapped onto a
/// small lon/lat window (around Hong Kong, fittingly) so GIS tools render
/// them at a sane scale.
///
/// # Panics
/// Panics when a layer's length differs from the road count.
pub fn to_geojson(graph: &Graph, layers: &[ScalarLayer<'_>]) -> String {
    for layer in layers {
        assert_eq!(layer.values.len(), graph.num_roads(), "layer {:?} length mismatch", layer.name);
    }
    let mut out = String::with_capacity(128 * graph.num_roads());
    out.push_str("{\"type\":\"FeatureCollection\",\"features\":[");
    for (i, road) in graph.roads().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let (x, y) = road.position;
        // Unit square -> ~0.2° window anchored near Hong Kong.
        let lon = 114.05 + 0.2 * x;
        let lat = 22.25 + 0.2 * y;
        let _ = write!(
            out,
            "{{\"type\":\"Feature\",\"geometry\":{{\"type\":\"Point\",\
             \"coordinates\":[{lon:.6},{lat:.6}]}},\"properties\":{{\
             \"road\":{},\"class\":\"{:?}\",\"length_m\":{:.1}",
            road.id.0, road.class, road.length_m
        );
        for layer in layers {
            let v = layer.values[i];
            if v.is_finite() {
                let _ = write!(out, ",\"{}\":{v:.4}", layer.name);
            } else {
                let _ = write!(out, ",\"{}\":null", layer.name);
            }
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtse_graph::generators::grid;

    #[test]
    fn produces_valid_feature_collection_shape() {
        let g = grid(2, 2);
        let speeds = vec![30.0, 40.0, 50.0, 60.0];
        let json = to_geojson(&g, &[ScalarLayer { name: "speed", values: &speeds }]);
        assert!(json.starts_with("{\"type\":\"FeatureCollection\""));
        assert_eq!(json.matches("\"type\":\"Feature\"").count(), 4);
        assert!(json.contains("\"speed\":40.0000"));
        assert!(json.ends_with("]}"));
        // Balanced braces (cheap well-formedness check).
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn non_finite_values_become_null() {
        let g = grid(1, 2);
        let vals = vec![f64::NAN, 1.0];
        let json = to_geojson(&g, &[ScalarLayer { name: "x", values: &vals }]);
        assert!(json.contains("\"x\":null"));
        assert!(json.contains("\"x\":1.0000"));
    }

    #[test]
    fn multiple_layers_attach() {
        let g = grid(1, 2);
        let a = vec![1.0, 2.0];
        let b = vec![3.0, 4.0];
        let json = to_geojson(
            &g,
            &[ScalarLayer { name: "est", values: &a }, ScalarLayer { name: "std", values: &b }],
        );
        assert!(json.contains("\"est\":1.0000"));
        assert!(json.contains("\"std\":4.0000"));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_layer_length_rejected() {
        let g = grid(2, 2);
        to_geojson(&g, &[ScalarLayer { name: "bad", values: &[1.0] }]);
    }

    #[test]
    fn parses_as_json() {
        // The eval crate has no serde; validate with a minimal structural
        // scan: every quote is paired inside the output and serde_json in
        // the facade integration tests does the full parse.
        let g = grid(2, 3);
        let v = vec![1.0; 6];
        let json = to_geojson(&g, &[ScalarLayer { name: "v", values: &v }]);
        assert_eq!(json.matches('"').count() % 2, 0);
    }
}
