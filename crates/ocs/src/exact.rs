//! Exact OCS by branch-and-bound.
//!
//! OCS is NP-hard (Thm. 1), so this solver is exponential in the candidate
//! count; it exists to validate the greedy algorithms on small instances —
//! in particular the empirical check of Thm. 2's `(1 − 1/e)/2` ratio.

use crate::objective::SelectionState;
use crate::problem::{OcsInstance, Selection};

/// Exhaustive branch-and-bound over candidate subsets.
///
/// Pruning bound: the current value plus the optimistic remaining gain
/// (every queried road jumps to the best correlation offered by any
/// still-affordable candidate). Admissible because Eq. (13) is a weighted
/// max — gains only shrink as the selection grows.
///
/// # Panics
/// Panics when the instance has more than 24 candidates (an accident
/// guard: the search is exponential).
pub fn exact_solve(inst: &OcsInstance<'_>) -> Selection {
    inst.validate();
    assert!(
        inst.candidates.len() <= 24,
        "exact_solve is exponential; got {} candidates",
        inst.candidates.len()
    );
    let mut best = Selection::empty();
    let mut state = SelectionState::new(inst);
    dfs(inst, &mut state, 0, &mut best);
    crate::problem::debug_validate_selection(inst, &best);
    best
}

fn dfs(inst: &OcsInstance<'_>, state: &mut SelectionState<'_>, from: usize, best: &mut Selection) {
    if state.value() > best.value {
        *best = Selection {
            roads: state.chosen().to_vec(),
            value: state.value(),
            spent: state.spent(),
        };
    }
    // Optimistic bound on what the remaining candidates could still add.
    let mut bound = 0.0;
    for &q in inst.queried {
        let current = inst.corr.road_set_corr(q, state.chosen());
        let reachable = inst.candidates[from..]
            .iter()
            .filter(|&&r| inst.cost(r) <= state.remaining_budget())
            .map(|&r| inst.corr.corr(q, r))
            .fold(0.0, f64::max);
        bound += inst.sigma[q.index()] * (reachable - current).max(0.0);
    }
    if state.value() + bound <= best.value + 1e-15 {
        return;
    }
    for idx in from..inst.candidates.len() {
        let r = inst.candidates[idx];
        if !state.is_feasible_addition(r) {
            continue;
        }
        // Branch: include r (state cloning keeps the code simple; instances
        // here are tiny by construction).
        let mut with = state.clone();
        with.add(r);
        dfs(inst, &mut with, idx + 1, best);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::test_support::table;
    use crate::solvers::hybrid_greedy;
    use proptest::prelude::*;
    use rtse_graph::RoadId;

    #[test]
    fn exact_beats_greedy_on_example1() {
        let (_g, table) = table(3, &[(0, 2, 0.5), (1, 2, 0.9)]);
        let sigma = vec![1.0; 3];
        let costs = vec![1, 4, 1];
        let queried = [RoadId(2)];
        let candidates = [RoadId(0), RoadId(1)];
        let inst = OcsInstance {
            sigma: &sigma,
            corr: &table,
            queried: &queried,
            candidates: &candidates,
            costs: &costs,
            budget: 4,
            theta: 1.0,
        };
        let exact = exact_solve(&inst);
        assert_eq!(exact.roads, vec![RoadId(1)]);
        assert!((exact.value - 0.9).abs() < 1e-12);
    }

    #[test]
    fn exact_handles_empty_instance() {
        let (_g, table) = table(2, &[(0, 1, 0.5)]);
        let sigma = vec![1.0; 2];
        let costs = vec![1, 1];
        let queried: [RoadId; 0] = [];
        let candidates: [RoadId; 0] = [];
        let inst = OcsInstance {
            sigma: &sigma,
            corr: &table,
            queried: &queried,
            candidates: &candidates,
            costs: &costs,
            budget: 3,
            theta: 1.0,
        };
        assert_eq!(exact_solve(&inst), Selection::empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// Thm. 2, empirically: Hybrid-Greedy ≥ (1 − 1/e)/2 × OPT on random
        /// small instances, and exact ≥ every greedy.
        #[test]
        fn hybrid_meets_approximation_ratio(
            edges in proptest::collection::vec((0u32..7, 0u32..7, 0.05..0.95f64), 4..16),
            costs in proptest::collection::vec(1u32..5, 7),
            budget in 1u32..10,
            theta in 0.6..1.0f64,
        ) {
            let edges: Vec<(u32, u32, f64)> =
                edges.into_iter().filter(|(a, b, _)| a != b).collect();
            prop_assume!(!edges.is_empty());
            let (_g, table) = table(7, &edges);
            let sigma: Vec<f64> = (0..7).map(|i| 0.5 + 0.25 * i as f64).collect();
            let queried = [RoadId(0), RoadId(2)];
            let candidates = [RoadId(1), RoadId(3), RoadId(4), RoadId(5), RoadId(6)];
            let inst = OcsInstance {
                sigma: &sigma,
                corr: &table,
                queried: &queried,
                candidates: &candidates,
                costs: &costs,
                budget,
                theta,
            };
            let opt = exact_solve(&inst);
            let hybrid = hybrid_greedy(&inst);
            prop_assert!(opt.value + 1e-9 >= hybrid.value, "exact below greedy");
            let ratio_bound = (1.0 - 1.0 / std::f64::consts::E) / 2.0;
            prop_assert!(
                hybrid.value + 1e-9 >= ratio_bound * opt.value,
                "hybrid {} < {} * opt {}",
                hybrid.value, ratio_bound, opt.value
            );
        }
    }
}
