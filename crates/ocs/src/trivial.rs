//! Remark 2 — the trivial cases of OCS.
//!
//! When `θ = 1` and every cost is 1, two situations admit a closed-form
//! optimum:
//!
//! 1. `|R^w| ≤ K` — the budget is over-adequate: select everything.
//! 2. `|R^q| ≤ K` — one unit per queried road suffices: select, for each
//!    queried road, its highest-correlated candidate.
//!
//! The engine consults this before running a greedy solver; it also gives
//! the tests an independent optimum to compare against.

use crate::objective::ocs_value;
use crate::problem::{OcsInstance, Selection};

/// Returns the exact optimum when the instance is one of Remark 2's
/// trivial cases, `None` otherwise.
pub fn trivial_solution(inst: &OcsInstance<'_>) -> Option<Selection> {
    inst.validate();
    let unit_costs = inst.candidates.iter().all(|&r| inst.cost(r) == 1);
    if inst.theta < 1.0 || !unit_costs {
        return None;
    }
    // Case 1: budget covers every candidate.
    if inst.candidates.len() as u32 <= inst.budget {
        let roads = inst.candidates.to_vec();
        let value = ocs_value(inst, &roads);
        let spent = roads.len() as u32;
        let sel = Selection { roads, value, spent };
        crate::problem::debug_validate_selection(inst, &sel);
        return Some(sel);
    }
    // Case 2: one unit per queried road suffices — take the argmax
    // candidate per queried road (deduplicated).
    if inst.queried.len() as u32 <= inst.budget && !inst.queried.is_empty() {
        let mut roads = Vec::new();
        for &q in inst.queried {
            let best = inst.candidates.iter().copied().max_by(|&a, &b| {
                inst.corr.corr(q, a).total_cmp(&inst.corr.corr(q, b)).then(b.cmp(&a))
                // deterministic: lower id wins ties
            })?;
            if !roads.contains(&best) {
                roads.push(best);
            }
        }
        let value = ocs_value(inst, &roads);
        let spent = roads.len() as u32;
        let sel = Selection { roads, value, spent };
        crate::problem::debug_validate_selection(inst, &sel);
        return Some(sel);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_solve;
    use crate::objective::test_support::table;
    use rtse_graph::RoadId;

    struct Fixture {
        table: rtse_rtf::CorrelationTable,
        sigma: Vec<f64>,
        costs: Vec<u32>,
        queried: Vec<RoadId>,
        candidates: Vec<RoadId>,
    }

    impl Fixture {
        fn new() -> Self {
            let (_g, table) =
                table(5, &[(0, 2, 0.9), (1, 2, 0.4), (0, 3, 0.5), (1, 4, 0.8), (3, 4, 0.3)]);
            Fixture {
                table,
                sigma: vec![1.0, 2.0, 1.0, 1.0, 1.0],
                costs: vec![1; 5],
                queried: vec![RoadId(2), RoadId(4)],
                candidates: vec![RoadId(0), RoadId(1), RoadId(3)],
            }
        }

        fn instance(&self, budget: u32, theta: f64) -> OcsInstance<'_> {
            OcsInstance {
                sigma: &self.sigma,
                corr: &self.table,
                queried: &self.queried,
                candidates: &self.candidates,
                costs: &self.costs,
                budget,
                theta,
            }
        }
    }

    #[test]
    fn over_adequate_budget_selects_everything() {
        let f = Fixture::new();
        let inst = f.instance(10, 1.0);
        let sol = trivial_solution(&inst).expect("case 1 applies");
        assert_eq!(sol.roads.len(), 3);
        assert!(sol.is_feasible(&inst));
        // Matches the exact optimum.
        let opt = exact_solve(&inst);
        assert!((sol.value - opt.value).abs() < 1e-12);
    }

    #[test]
    fn per_query_argmax_when_queried_fits() {
        let f = Fixture::new();
        let inst = f.instance(2, 1.0);
        let sol = trivial_solution(&inst).expect("case 2 applies");
        // Best for query 2 is candidate 0 (.9); best for query 4 is 1 (.8).
        assert_eq!(sol.roads, vec![RoadId(0), RoadId(1)]);
        let opt = exact_solve(&inst);
        assert!((sol.value - opt.value).abs() < 1e-12);
    }

    #[test]
    fn not_applicable_with_theta_below_one() {
        let f = Fixture::new();
        assert!(trivial_solution(&f.instance(10, 0.9)).is_none());
    }

    #[test]
    fn not_applicable_with_non_unit_costs() {
        let mut f = Fixture::new();
        f.costs[0] = 3;
        assert!(trivial_solution(&f.instance(10, 1.0)).is_none());
    }

    #[test]
    fn not_applicable_when_budget_tight() {
        let f = Fixture::new();
        // budget 1 < |R^q| = 2 < |R^w| = 3.
        assert!(trivial_solution(&f.instance(1, 1.0)).is_none());
    }

    #[test]
    fn empty_candidates_case_one() {
        let f = Fixture::new();
        let inst = OcsInstance { candidates: &[], ..f.instance(5, 1.0) };
        let sol = trivial_solution(&inst).expect("empty is trivially over-adequate");
        assert!(sol.roads.is_empty());
        assert_eq!(sol.value, 0.0);
    }
}
