//! Problem instance and solution types.

use rtse_graph::RoadId;
use rtse_rtf::CorrelationRead;

/// One OCS instance: everything a solver needs, borrowed from the offline
/// model.
///
/// `sigma[r]` is `σ_r^t` for the query's time slot (only queried roads'
/// entries are read); `costs[r]` is the per-road crowdsourcing cost in
/// payment units (the minimum number of answers to buy — Section V-A).
#[derive(Debug, Clone)]
pub struct OcsInstance<'a> {
    /// Periodicity-intensity weights per road (indexed by `RoadId`).
    pub sigma: &'a [f64],
    /// Offline correlation table `Γ` for the slot — dense or sparse,
    /// behind the [`CorrelationRead`] trait (a `&CorrelationTable` or
    /// `&SparseCorrelationTable` coerces here unchanged).
    pub corr: &'a dyn CorrelationRead,
    /// The queried roads `R^q`.
    pub queried: &'a [RoadId],
    /// The candidate roads `R^w` (roads with workers present).
    pub candidates: &'a [RoadId],
    /// Cost per road (indexed by `RoadId`; entries for non-candidates are
    /// ignored). Every candidate cost must be ≥ 1.
    pub costs: &'a [u32],
    /// Total budget `K`.
    pub budget: u32,
    /// Redundancy threshold `θ ∈ (0, 1]`.
    pub theta: f64,
}

impl<'a> OcsInstance<'a> {
    /// Validates invariants; solvers call this on entry.
    ///
    /// # Panics
    /// Panics on malformed instances (zero-cost candidates, θ out of range,
    /// ids out of bounds) — these are programming errors, not data errors.
    pub fn validate(&self) {
        assert!(self.theta > 0.0 && self.theta <= 1.0, "θ must be in (0, 1]");
        let n = self.corr.num_roads();
        assert_eq!(self.sigma.len(), n, "sigma length mismatch");
        assert_eq!(self.costs.len(), n, "costs length mismatch");
        for &q in self.queried {
            assert!(q.index() < n, "queried road {q} out of range");
        }
        for &c in self.candidates {
            assert!(c.index() < n, "candidate road {c} out of range");
            assert!(self.costs[c.index()] >= 1, "candidate {c} has zero cost");
        }
    }

    /// Cost of one road.
    #[inline]
    pub fn cost(&self, r: RoadId) -> u32 {
        self.costs[r.index()]
    }
}

/// A solver's output.
#[derive(Debug, Clone, PartialEq)]
pub struct Selection {
    /// The crowdsourced roads `R^c`, in selection order.
    pub roads: Vec<RoadId>,
    /// Objective value `ocs(R^c)` (Eq. 13).
    pub value: f64,
    /// Total cost spent (`≤` budget).
    pub spent: u32,
}

impl Selection {
    /// An empty selection (zero value, zero cost).
    pub fn empty() -> Self {
        Self { roads: Vec::new(), value: 0.0, spent: 0 }
    }

    /// Checks feasibility against an instance: membership in `R^w`, budget,
    /// pairwise redundancy, no duplicates.
    pub fn is_feasible(&self, inst: &OcsInstance<'_>) -> bool {
        let mut seen = std::collections::HashSet::new();
        let mut spent = 0u32;
        for &r in &self.roads {
            if !inst.candidates.contains(&r) || !seen.insert(r) {
                return false;
            }
            spent += inst.cost(r);
        }
        if spent > inst.budget || spent != self.spent {
            return false;
        }
        for (i, &a) in self.roads.iter().enumerate() {
            for &b in &self.roads[i + 1..] {
                if inst.corr.corr(a, b) > inst.theta + 1e-12 {
                    return false;
                }
            }
        }
        true
    }
}

/// Contract between an OCS solver's output and its instance: candidate
/// membership, no duplicates, spent-cost bookkeeping, budget respected,
/// pairwise redundancy below `θ`, and a finite, consistent objective value
/// (Eq. 13). This is [`Selection::is_feasible`] with a structured verdict —
/// solvers compiled with the `validate` feature fail closed on it.
pub fn validate_selection(
    inst: &OcsInstance<'_>,
    sel: &Selection,
) -> Result<(), rtse_check::InvariantViolation> {
    use rtse_check::ensure;
    let mut seen = std::collections::HashSet::new();
    let mut spent = 0u32;
    for &r in &sel.roads {
        ensure(inst.candidates.contains(&r), "ocs.member_of_candidates", || {
            format!("selected road {r} is not in R^w")
        })?;
        ensure(seen.insert(r), "ocs.no_duplicates", || format!("road {r} selected twice"))?;
        spent += inst.cost(r);
    }
    ensure(spent == sel.spent, "ocs.spent_consistent", || {
        format!("selection claims spent = {} but costs sum to {spent}", sel.spent)
    })?;
    ensure(spent <= inst.budget, "ocs.budget", || {
        format!("spent {spent} exceeds budget {}", inst.budget)
    })?;
    for (i, &a) in sel.roads.iter().enumerate() {
        for &b in &sel.roads[i + 1..] {
            let c = inst.corr.corr(a, b);
            ensure(c <= inst.theta + 1e-12, "ocs.theta_redundancy", || {
                format!("corr({a}, {b}) = {c} exceeds θ = {}", inst.theta)
            })?;
        }
    }
    let value = crate::objective::ocs_value(inst, &sel.roads);
    ensure(
        sel.value.is_finite() && (sel.value - value).abs() <= 1e-9,
        "ocs.value_consistent",
        || format!("selection claims value {} but Eq. 13 gives {value}", sel.value),
    )?;
    Ok(())
}

/// Fail-closed wrapper used by the solvers when the `validate` feature is
/// on; a no-op otherwise.
#[inline]
pub(crate) fn debug_validate_selection(inst: &OcsInstance<'_>, sel: &Selection) {
    #[cfg(feature = "validate")]
    if let Err(v) = validate_selection(inst, sel) {
        rtse_check::fail(&v);
    }
    #[cfg(not(feature = "validate"))]
    let _ = (inst, sel);
}
