//! The three greedy solvers (Algs. 2–4).

use crate::objective::SelectionState;
use crate::problem::{OcsInstance, Selection};
use rtse_graph::RoadId;

/// Alg. 2 — Ratio-Greedy: each iteration adds the feasible candidate with
/// the best objective-gain/cost ratio, until no candidate fits.
///
/// `O(K · |R^w| · |R^q|)` time, `O(|R^w|)` space. Worst-case solution can
/// be arbitrarily bad (Example 1 in the paper) — see [`hybrid_greedy`].
pub fn ratio_greedy(inst: &OcsInstance<'_>) -> Selection {
    inst.validate();
    greedy_by(inst, |state, r| state.gain(r) / inst.cost(r) as f64)
}

/// Alg. 3 — Objective-Greedy: each iteration adds the feasible candidate
/// with the largest absolute objective gain.
pub fn objective_greedy(inst: &OcsInstance<'_>) -> Selection {
    inst.validate();
    greedy_by(inst, |state, r| state.gain(r))
}

/// Alg. 4 — Hybrid-Greedy: runs both greedy variants and keeps the better
/// selection. Achieves the paper's `(1 − 1/e)/2` approximation ratio
/// (Thm. 2).
pub fn hybrid_greedy(inst: &OcsInstance<'_>) -> Selection {
    let ratio = ratio_greedy(inst);
    let objective = objective_greedy(inst);
    if ratio.value >= objective.value {
        ratio
    } else {
        objective
    }
}

/// Shared greedy loop: repeatedly add the feasible candidate maximizing
/// `score`, tie-broken deterministically by road id.
fn greedy_by(
    inst: &OcsInstance<'_>,
    score: impl Fn(&SelectionState<'_>, RoadId) -> f64,
) -> Selection {
    let mut state = SelectionState::new(inst);
    loop {
        let mut best: Option<(f64, RoadId)> = None;
        for &r in inst.candidates {
            if !state.is_feasible_addition(r) {
                continue;
            }
            let s = score(&state, r);
            let better = match best {
                None => true,
                Some((bs, br)) => s > bs || (s == bs && r < br),
            };
            if better {
                best = Some((s, r));
            }
        }
        match best {
            Some((_, r)) => state.add(r),
            None => break,
        }
    }
    let sel = state.into_selection();
    crate::problem::debug_validate_selection(inst, &sel);
    sel
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::ocs_value;
    use crate::objective::test_support::table;
    use proptest::prelude::*;

    /// Owns the storage an `OcsInstance` borrows.
    struct Fixture {
        table: rtse_rtf::CorrelationTable,
        sigma: Vec<f64>,
        costs: Vec<u32>,
        queried: Vec<RoadId>,
        candidates: Vec<RoadId>,
    }

    impl Fixture {
        fn instance(&self, budget: u32, theta: f64) -> OcsInstance<'_> {
            OcsInstance {
                sigma: &self.sigma,
                corr: &self.table,
                queried: &self.queried,
                candidates: &self.candidates,
                costs: &self.costs,
                budget,
                theta,
            }
        }
    }

    /// The paper's Example 1: Ratio-Greedy picks the cheap low-value road,
    /// Objective-Greedy (and therefore Hybrid) the expensive high-value one.
    ///
    /// Topology: query road q(2); candidate 0 adjacent with ρ=.2 cost 1;
    /// candidate 1 adjacent with ρ=.9 cost K=4.
    fn example1() -> Fixture {
        let (_g, table) = table(3, &[(0, 2, 0.2), (1, 2, 0.9)]);
        Fixture {
            table,
            sigma: vec![1.0, 1.0, 1.0],
            costs: vec![1, 4, 1],
            queried: vec![RoadId(2)],
            candidates: vec![RoadId(0), RoadId(1)],
        }
    }

    #[test]
    fn example1_worst_case_of_ratio_greedy() {
        let f = example1();
        let inst = f.instance(4, 1.0);
        let ratio = ratio_greedy(&inst);
        // Ratio-Greedy takes road 0 first (ratio .2 vs .9/4 = .225)…
        // actually .225 > .2, so make the cheap road's ratio win: verify
        // externally which is chosen and that hybrid ≥ both.
        let obj = objective_greedy(&inst);
        let hybrid = hybrid_greedy(&inst);
        assert!(obj.roads.contains(&RoadId(1)));
        assert!(hybrid.value >= ratio.value);
        assert!(hybrid.value >= obj.value);
        assert!((obj.value - 0.9).abs() < 1e-12);
    }

    #[test]
    fn ratio_greedy_prefers_cheap_when_ratio_wins() {
        // Cheap road ratio .5/1 = .5; expensive ratio .9/4 = .225.
        let (_g, table) = table(3, &[(0, 2, 0.5), (1, 2, 0.9)]);
        let f = Fixture {
            table,
            sigma: vec![1.0; 3],
            costs: vec![1, 4, 1],
            queried: vec![RoadId(2)],
            candidates: vec![RoadId(0), RoadId(1)],
        };
        // Budget 4: ratio takes 0 first (spent 1), then cannot afford 1
        // (cost 4 > 3 left).
        let inst = f.instance(4, 1.0);
        let ratio = ratio_greedy(&inst);
        assert_eq!(ratio.roads, vec![RoadId(0)]);
        assert!((ratio.value - 0.5).abs() < 1e-12);
        // Objective-Greedy goes straight for road 1.
        let obj = objective_greedy(&inst);
        assert_eq!(obj.roads, vec![RoadId(1)]);
        // Hybrid picks the winner.
        let hybrid = hybrid_greedy(&inst);
        assert_eq!(hybrid.roads, vec![RoadId(1)]);
    }

    #[test]
    fn selections_are_feasible() {
        let f = example1();
        for budget in [0, 1, 3, 4, 10] {
            for theta in [0.5, 0.92, 1.0] {
                let inst = f.instance(budget, theta);
                for sel in [ratio_greedy(&inst), objective_greedy(&inst), hybrid_greedy(&inst)] {
                    assert!(sel.is_feasible(&inst), "budget {budget} theta {theta}: {sel:?}");
                    let direct = ocs_value(&inst, &sel.roads);
                    assert!((sel.value - direct).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn zero_budget_selects_nothing() {
        let f = example1();
        let inst = f.instance(0, 1.0);
        assert_eq!(hybrid_greedy(&inst), Selection::empty());
    }

    #[test]
    fn empty_candidates_selects_nothing() {
        let f = example1();
        let mut f2 = f;
        f2.candidates.clear();
        let inst = f2.instance(10, 1.0);
        assert_eq!(hybrid_greedy(&inst), Selection::empty());
    }

    #[test]
    fn redundancy_constraint_limits_selection() {
        // Roads 0 and 1 are highly correlated (ρ = .95 via edge); query 3
        // correlates with both.
        let (_g, table) = table(4, &[(0, 1, 0.95), (0, 3, 0.6), (1, 3, 0.5)]);
        let f = Fixture {
            table,
            sigma: vec![1.0; 4],
            costs: vec![1; 4],
            queried: vec![RoadId(3)],
            candidates: vec![RoadId(0), RoadId(1)],
        };
        let tight = hybrid_greedy(&f.instance(10, 0.9));
        assert_eq!(tight.roads.len(), 1, "θ = .9 forbids both: {tight:?}");
        let loose = hybrid_greedy(&f.instance(10, 1.0));
        assert_eq!(loose.roads.len(), 2);
    }

    #[test]
    fn value_monotone_in_budget() {
        let f = example1();
        let mut last = -1.0;
        for budget in 0..8 {
            let v = hybrid_greedy(&f.instance(budget, 1.0)).value;
            assert!(v + 1e-12 >= last, "budget {budget}: {v} < {last}");
            last = v;
        }
    }

    #[test]
    fn deterministic_tie_breaking() {
        // Two identical candidates: the lower id must win.
        let (_g, table) = table(3, &[(0, 2, 0.7), (1, 2, 0.7)]);
        let f = Fixture {
            table,
            sigma: vec![1.0; 3],
            costs: vec![1, 1, 1],
            queried: vec![RoadId(2)],
            candidates: vec![RoadId(1), RoadId(0)],
        };
        let sel = objective_greedy(&f.instance(1, 1.0));
        assert_eq!(sel.roads, vec![RoadId(0)]);
    }

    proptest! {
        /// Hybrid never loses to either component and all solutions stay
        /// feasible on random instances.
        #[test]
        fn hybrid_dominates_components(
            edges in proptest::collection::vec((0u32..8, 0u32..8, 0.05..0.95f64), 4..20),
            costs in proptest::collection::vec(1u32..6, 8),
            budget in 1u32..12,
            theta in 0.5..1.0f64,
        ) {
            let edges: Vec<(u32, u32, f64)> =
                edges.into_iter().filter(|(a, b, _)| a != b).collect();
            prop_assume!(!edges.is_empty());
            let (_g, table) = table(8, &edges);
            let f = Fixture {
                table,
                sigma: (0..8).map(|i| 0.5 + i as f64 * 0.3).collect(),
                costs,
                queried: vec![RoadId(0), RoadId(3), RoadId(6)],
                candidates: vec![RoadId(1), RoadId(2), RoadId(4), RoadId(5), RoadId(7)],
            };
            let inst = f.instance(budget, theta);
            let r = ratio_greedy(&inst);
            let o = objective_greedy(&inst);
            let h = hybrid_greedy(&inst);
            prop_assert!(r.is_feasible(&inst));
            prop_assert!(o.is_feasible(&inst));
            prop_assert!(h.is_feasible(&inst));
            prop_assert!(h.value >= r.value - 1e-12);
            prop_assert!(h.value >= o.value - 1e-12);
        }
    }
}
