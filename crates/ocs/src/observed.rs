//! Instrumented wrapper around OCS solves.
//!
//! The solver entry points are plain functions over borrowed
//! [`OcsInstance`](crate::OcsInstance)s, and [`Selection`] equality is
//! load-bearing in the lazy-vs-plain regression tests — so neither can
//! grow an observability field. Instead the engine routes every solve
//! through [`observed_select`], which times the solve as one
//! `ocs.select` span and leaves the returned [`Selection`] untouched.

use crate::problem::Selection;
use rtse_obs::{ObsHandle, Stage};

/// Runs `solve` under one `ocs.select` span on `obs`.
///
/// The closure's result is returned unchanged, so any solver (greedy,
/// lazy, exact, random) can be wrapped without perturbing its output:
/// instrumented and uninstrumented selections are identical.
pub fn observed_select(obs: &ObsHandle, solve: impl FnOnce() -> Selection) -> Selection {
    let _span = obs.span(Stage::OcsSelect);
    solve()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtse_graph::RoadId;

    #[test]
    fn wrapper_returns_the_solver_output_unchanged() {
        let obs = ObsHandle::fresh();
        let picked = observed_select(&obs, || Selection {
            roads: vec![RoadId(3), RoadId(1)],
            value: 1.5,
            spent: 2,
        });
        assert_eq!(picked.roads, vec![RoadId(3), RoadId(1)]);
        if obs.is_enabled() {
            let reg = obs.registry().expect("fresh handle has a registry");
            assert_eq!(reg.count(Stage::OcsSelect), 1);
        }
    }

    #[test]
    fn noop_handle_counts_nothing() {
        let obs = ObsHandle::noop();
        let picked = observed_select(&obs, Selection::empty);
        assert!(picked.roads.is_empty());
    }
}
