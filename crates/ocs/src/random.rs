//! Random selection — the "Rand" baseline of Fig. 3 and Table III.
//!
//! Shuffles the candidates and adds them in order while they remain
//! feasible (budget and redundancy respected, so the comparison against
//! the greedy algorithms isolates *which* roads are picked, not whether
//! the constraints were honored).

use crate::objective::SelectionState;
use crate::problem::{OcsInstance, Selection};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Random feasible selection, deterministic in `seed`.
pub fn random_select(inst: &OcsInstance<'_>, seed: u64) -> Selection {
    inst.validate();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order = inst.candidates.to_vec();
    order.shuffle(&mut rng);
    let mut state = SelectionState::new(inst);
    for r in order {
        if state.is_feasible_addition(r) {
            state.add(r);
        }
    }
    let sel = state.into_selection();
    crate::problem::debug_validate_selection(inst, &sel);
    sel
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::test_support::table;
    use crate::solvers::hybrid_greedy;
    use rtse_graph::RoadId;

    fn instance_parts() -> (rtse_rtf::CorrelationTable, Vec<f64>, Vec<u32>) {
        let (_g, t) = table(6, &[(0, 1, 0.9), (1, 2, 0.8), (2, 3, 0.7), (3, 4, 0.6), (4, 5, 0.5)]);
        (t, vec![1.0; 6], vec![1, 2, 1, 2, 1, 2])
    }

    #[test]
    fn random_selection_is_feasible_and_deterministic() {
        let (t, sigma, costs) = instance_parts();
        let queried = [RoadId(0), RoadId(5)];
        let candidates = [RoadId(1), RoadId(2), RoadId(3), RoadId(4)];
        let inst = OcsInstance {
            sigma: &sigma,
            corr: &t,
            queried: &queried,
            candidates: &candidates,
            costs: &costs,
            budget: 3,
            theta: 0.92,
        };
        let a = random_select(&inst, 42);
        let b = random_select(&inst, 42);
        assert_eq!(a, b);
        assert!(a.is_feasible(&inst));
        let c = random_select(&inst, 43);
        assert!(c.is_feasible(&inst));
    }

    #[test]
    fn hybrid_typically_beats_random() {
        let (t, sigma, costs) = instance_parts();
        let queried = [RoadId(0), RoadId(5)];
        let candidates = [RoadId(1), RoadId(2), RoadId(3), RoadId(4)];
        let inst = OcsInstance {
            sigma: &sigma,
            corr: &t,
            queried: &queried,
            candidates: &candidates,
            costs: &costs,
            budget: 2,
            theta: 1.0,
        };
        let hybrid = hybrid_greedy(&inst);
        let avg_random: f64 = (0..20).map(|s| random_select(&inst, s).value).sum::<f64>() / 20.0;
        assert!(hybrid.value >= avg_random, "hybrid {} vs avg random {avg_random}", hybrid.value);
    }
}
