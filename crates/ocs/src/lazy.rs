//! Lazy-evaluation greedy (accelerated Objective-Greedy).
//!
//! The OCS objective (Eq. 13) is monotone submodular in `R^c` — adding a
//! road can only shrink another road's marginal gain. The classic
//! lazy-greedy trick (Minoux) therefore applies: keep candidates in a
//! max-heap keyed by their *last known* gain; pop the top, recompute its
//! gain, and only if it still tops the heap commit it. Output is identical
//! to [`crate::objective_greedy`] (asserted by tests) but large instances
//! skip most gain evaluations.
//!
//! (Submodularity does not extend across the redundancy constraint — a
//! candidate that was infeasible can never become feasible again as the
//! selection grows, so stale "infeasible" verdicts remain safe to keep.)

use crate::objective::SelectionState;
use crate::problem::{OcsInstance, Selection};
use rtse_graph::RoadId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(PartialEq)]
struct HeapItem {
    gain: f64,
    road: RoadId,
    /// Selection size when the gain was computed (staleness stamp).
    round: usize,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Gains are finite by construction; `total_cmp` keeps the order
        // total without an abort path.
        self.gain.total_cmp(&other.gain).then(other.road.cmp(&self.road)) // lower id wins ties
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Objective-Greedy with lazy gain evaluation. Identical selections to
/// [`crate::objective_greedy`], asymptotically fewer gain computations.
pub fn lazy_objective_greedy(inst: &OcsInstance<'_>) -> Selection {
    lazy_greedy_by(inst, |state, road| state.gain(road))
}

/// Ratio-Greedy with lazy gain evaluation. Identical selections to
/// [`crate::ratio_greedy`] — the gain/cost score is submodular divided by a
/// constant per candidate, so stale scores remain upper bounds and the
/// Minoux argument still applies.
pub fn lazy_ratio_greedy(inst: &OcsInstance<'_>) -> Selection {
    lazy_greedy_by(inst, |state, road| state.gain(road) / inst.cost(road) as f64)
}

/// Hybrid-Greedy (Alg. 4) built from the two lazy components.
pub fn lazy_hybrid_greedy(inst: &OcsInstance<'_>) -> Selection {
    let ratio = lazy_ratio_greedy(inst);
    let objective = lazy_objective_greedy(inst);
    if ratio.value >= objective.value {
        ratio
    } else {
        objective
    }
}

fn lazy_greedy_by(
    inst: &OcsInstance<'_>,
    score: impl Fn(&SelectionState<'_>, RoadId) -> f64,
) -> Selection {
    inst.validate();
    let mut state = SelectionState::new(inst);
    let mut heap: BinaryHeap<HeapItem> = inst
        .candidates
        .iter()
        .map(|&road| HeapItem { gain: f64::INFINITY, road, round: usize::MAX })
        .collect();
    loop {
        let round = state.chosen().len();
        let mut committed = false;
        while let Some(top) = heap.pop() {
            if !state.is_feasible_addition(top.road) {
                continue; // never feasible again; drop permanently
            }
            if top.round == round {
                // Fresh gain and on top of every (possibly stale, hence
                // upper-bounded) competitor: commit. Tie-breaking matches
                // the plain greedy because fresh ties sort by road id.
                state.add(top.road);
                committed = true;
                break;
            }
            // Stale: refresh and reinsert; never commit on a stale stamp so
            // equal-gain ties are always resolved among fresh entries.
            let fresh = score(&state, top.road);
            heap.push(HeapItem { gain: fresh, road: top.road, round });
        }
        if !committed {
            break;
        }
    }
    let sel = state.into_selection();
    crate::problem::debug_validate_selection(inst, &sel);
    sel
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::test_support::table;
    use crate::solvers::objective_greedy;
    use proptest::prelude::*;

    #[test]
    fn matches_plain_objective_greedy_on_example() {
        let (_g, t) = table(
            6,
            &[(0, 1, 0.9), (1, 2, 0.8), (2, 3, 0.7), (3, 4, 0.6), (4, 5, 0.5), (0, 5, 0.4)],
        );
        let sigma: Vec<f64> = (0..6).map(|i| 1.0 + 0.4 * i as f64).collect();
        let costs = vec![1, 2, 3, 1, 2, 3];
        let queried = [RoadId(0), RoadId(3)];
        let candidates = [RoadId(1), RoadId(2), RoadId(4), RoadId(5)];
        for budget in 0..10 {
            let inst = OcsInstance {
                sigma: &sigma,
                corr: &t,
                queried: &queried,
                candidates: &candidates,
                costs: &costs,
                budget,
                theta: 0.95,
            };
            let lazy = lazy_objective_greedy(&inst);
            let plain = objective_greedy(&inst);
            assert_eq!(lazy, plain, "budget {budget}");
        }
    }

    proptest! {
        /// Lazy and plain variants agree on random instances, for all three
        /// solver families.
        #[test]
        fn lazy_equals_plain(
            edges in proptest::collection::vec((0u32..8, 0u32..8, 0.05..0.95f64), 4..20),
            costs in proptest::collection::vec(1u32..6, 8),
            budget in 0u32..15,
            theta in 0.5..1.0f64,
        ) {
            let edges: Vec<(u32, u32, f64)> =
                edges.into_iter().filter(|(a, b, _)| a != b).collect();
            prop_assume!(!edges.is_empty());
            let (_g, t) = table(8, &edges);
            let sigma: Vec<f64> = (0..8).map(|i| 0.5 + 0.3 * i as f64).collect();
            let queried = [RoadId(0), RoadId(4)];
            let candidates = [RoadId(1), RoadId(2), RoadId(3), RoadId(5), RoadId(6), RoadId(7)];
            let inst = OcsInstance {
                sigma: &sigma,
                corr: &t,
                queried: &queried,
                candidates: &candidates,
                costs: &costs,
                budget,
                theta,
            };
            prop_assert_eq!(lazy_objective_greedy(&inst), objective_greedy(&inst));
            prop_assert_eq!(lazy_ratio_greedy(&inst), crate::solvers::ratio_greedy(&inst));
            prop_assert_eq!(lazy_hybrid_greedy(&inst), crate::solvers::hybrid_greedy(&inst));
        }
    }
}
