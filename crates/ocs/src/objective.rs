//! The OCS objective (Eq. 13) and an incremental evaluation state.
//!
//! Greedy solvers evaluate `ocs(R^c + r) − ocs(R^c)` for every feasible
//! candidate each iteration; recomputing Eq. (13) from scratch would cost
//! `O(|R^q| · |R^c|)` per probe. [`SelectionState`] keeps the per-query
//! best correlation, making a gain probe `O(|R^q|)` and an insertion
//! `O(|R^q| + |R^c|)`.

use crate::problem::{OcsInstance, Selection};
use rtse_graph::RoadId;

/// Direct evaluation of `ocs(R^c)` (Eq. 13). Used by tests and the exact
/// solver; greedy code paths use [`SelectionState`].
pub fn ocs_value(inst: &OcsInstance<'_>, chosen: &[RoadId]) -> f64 {
    inst.queried.iter().map(|&q| inst.sigma[q.index()] * inst.corr.road_set_corr(q, chosen)).sum()
}

/// Incremental selection state shared by the greedy solvers.
#[derive(Debug, Clone)]
pub struct SelectionState<'a> {
    inst: &'a OcsInstance<'a>,
    chosen: Vec<RoadId>,
    /// `max_{c ∈ chosen} corr(q, c)` per queried road (parallel to
    /// `inst.queried`).
    best: Vec<f64>,
    value: f64,
    spent: u32,
}

impl<'a> SelectionState<'a> {
    /// Fresh empty state.
    pub fn new(inst: &'a OcsInstance<'a>) -> Self {
        Self { inst, chosen: Vec::new(), best: vec![0.0; inst.queried.len()], value: 0.0, spent: 0 }
    }

    /// Roads chosen so far.
    pub fn chosen(&self) -> &[RoadId] {
        &self.chosen
    }

    /// Current objective value.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Budget spent so far.
    pub fn spent(&self) -> u32 {
        self.spent
    }

    /// Remaining budget.
    pub fn remaining_budget(&self) -> u32 {
        self.inst.budget - self.spent
    }

    /// Objective gain of adding `r` (Eq. 13 marginal).
    pub fn gain(&self, r: RoadId) -> f64 {
        self.inst
            .queried
            .iter()
            .zip(self.best.iter())
            .map(|(&q, &b)| {
                let c = self.inst.corr.corr(q, r);
                self.inst.sigma[q.index()] * (c - b).max(0.0)
            })
            .sum()
    }

    /// True when `r` can be added: affordable, not already chosen, and not
    /// redundant (`corr(r, chosen) ≤ θ` pairwise).
    pub fn is_feasible_addition(&self, r: RoadId) -> bool {
        if self.chosen.contains(&r) || self.inst.cost(r) > self.remaining_budget() {
            return false;
        }
        self.chosen.iter().all(|&c| self.inst.corr.corr(r, c) <= self.inst.theta)
    }

    /// Adds `r`, updating value, spend and per-query bests.
    ///
    /// # Panics
    /// Panics (debug) when the addition is infeasible.
    pub fn add(&mut self, r: RoadId) {
        debug_assert!(self.is_feasible_addition(r), "infeasible addition {r}");
        for (slot, &q) in self.best.iter_mut().zip(self.inst.queried.iter()) {
            let c = self.inst.corr.corr(q, r);
            if c > *slot {
                self.value += self.inst.sigma[q.index()] * (c - *slot);
                *slot = c;
            }
        }
        self.spent += self.inst.cost(r);
        self.chosen.push(r);
    }

    /// Freezes the state into a [`Selection`].
    pub fn into_selection(self) -> Selection {
        Selection { roads: self.chosen, value: self.value, spent: self.spent }
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    //! Shared fixture builders for OCS solver tests.

    use rtse_data::{SlotOfDay, SLOTS_PER_DAY};
    use rtse_graph::{Graph, GraphBuilder, RoadClass, RoadId};
    use rtse_rtf::{params::SlotParams, CorrelationTable, PathCorrelation, RtfModel};

    /// Builds a graph + correlation table with explicit per-edge ρ.
    pub fn table(n: usize, edges: &[(u32, u32, f64)]) -> (Graph, CorrelationTable) {
        let mut b = GraphBuilder::new();
        for i in 0..n {
            b.add_road(RoadClass::Secondary, (i as f64, 0.0));
        }
        let mut rho = Vec::new();
        for &(x, y, r) in edges {
            if b.add_edge(RoadId(x), RoadId(y)) {
                rho.push(r);
            }
        }
        let g = b.build();
        let slots: Vec<SlotParams> = (0..SLOTS_PER_DAY)
            .map(|_| SlotParams { mu: vec![0.0; n], sigma: vec![1.0; n], rho: rho.clone() })
            .collect();
        let model = RtfModel::from_slots(n, g.num_edges(), slots);
        let table = CorrelationTable::build(&g, &model, SlotOfDay(0), PathCorrelation::MaxProduct);
        (g, table)
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::table;
    use super::*;

    #[test]
    fn ocs_value_hand_example() {
        // 0-1 (ρ .8), 1-2 (ρ .6); query {0, 2} with σ = 2 and 3.
        let (_g, t) = table(3, &[(0, 1, 0.8), (1, 2, 0.6)]);
        let sigma = vec![2.0, 1.0, 3.0];
        let costs = vec![1, 1, 1];
        let queried = [RoadId(0), RoadId(2)];
        let candidates = [RoadId(1)];
        let inst = OcsInstance {
            sigma: &sigma,
            corr: &t,
            queried: &queried,
            candidates: &candidates,
            costs: &costs,
            budget: 5,
            theta: 1.0,
        };
        // corr(0,1)=.8, corr(2,1)=.6 → 2*.8 + 3*.6 = 3.4
        let v = ocs_value(&inst, &[RoadId(1)]);
        assert!((v - 3.4).abs() < 1e-12);
        assert_eq!(ocs_value(&inst, &[]), 0.0);
    }

    #[test]
    fn state_matches_direct_evaluation() {
        let (_g, t) = table(4, &[(0, 1, 0.9), (1, 2, 0.7), (2, 3, 0.5)]);
        let sigma = vec![1.0, 2.0, 1.5, 0.5];
        let costs = vec![1, 2, 1, 3];
        let queried = [RoadId(0), RoadId(3)];
        let candidates = [RoadId(1), RoadId(2)];
        let inst = OcsInstance {
            sigma: &sigma,
            corr: &t,
            queried: &queried,
            candidates: &candidates,
            costs: &costs,
            budget: 10,
            theta: 1.0,
        };
        let mut st = SelectionState::new(&inst);
        let g1 = st.gain(RoadId(1));
        assert!((g1 - ocs_value(&inst, &[RoadId(1)])).abs() < 1e-12);
        st.add(RoadId(1));
        let g2 = st.gain(RoadId(2));
        let direct = ocs_value(&inst, &[RoadId(1), RoadId(2)]) - ocs_value(&inst, &[RoadId(1)]);
        assert!((g2 - direct).abs() < 1e-12);
        st.add(RoadId(2));
        assert!((st.value() - ocs_value(&inst, &[RoadId(1), RoadId(2)])).abs() < 1e-12);
        assert_eq!(st.spent(), 3);
    }

    #[test]
    fn feasibility_checks() {
        let (_g, t) = table(3, &[(0, 1, 0.95), (1, 2, 0.6)]);
        let sigma = vec![1.0; 3];
        let costs = vec![2, 2, 2];
        let queried = [RoadId(2)];
        let candidates = [RoadId(0), RoadId(1)];
        let inst = OcsInstance {
            sigma: &sigma,
            corr: &t,
            queried: &queried,
            candidates: &candidates,
            costs: &costs,
            budget: 4,
            theta: 0.9,
        };
        let mut st = SelectionState::new(&inst);
        assert!(st.is_feasible_addition(RoadId(0)));
        st.add(RoadId(0));
        // Duplicate rejected.
        assert!(!st.is_feasible_addition(RoadId(0)));
        // corr(0,1) = .95 > θ = .9: redundant.
        assert!(!st.is_feasible_addition(RoadId(1)));
    }

    #[test]
    fn budget_exhaustion_blocks_addition() {
        let (_g, t) = table(2, &[(0, 1, 0.5)]);
        let sigma = vec![1.0; 2];
        let costs = vec![3, 3];
        let queried = [RoadId(0)];
        let candidates = [RoadId(0), RoadId(1)];
        let inst = OcsInstance {
            sigma: &sigma,
            corr: &t,
            queried: &queried,
            candidates: &candidates,
            costs: &costs,
            budget: 5,
            theta: 1.0,
        };
        let mut st = SelectionState::new(&inst);
        st.add(RoadId(0));
        assert_eq!(st.remaining_budget(), 2);
        assert!(!st.is_feasible_addition(RoadId(1)));
    }
}
