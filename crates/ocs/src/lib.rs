//! OCS — Optimal Crowdsourced-roads Selection (Section V of the paper).
//!
//! Given queried roads `R^q`, worker-covered candidate roads `R^w`,
//! per-road costs, a budget `K` and a redundancy threshold `θ`, OCS picks
//! the crowdsourced set `R^c ⊆ R^w` maximizing the periodicity-weighted
//! correlation (Eq. 13)
//!
//! ```text
//! ocs(R^c) = Σ_{r_i ∈ R^q} σ_i^t · max_{r_j ∈ R^c} corr^t(r_i, r_j)
//! ```
//!
//! subject to `Σ c_i ≤ K` and `corr(r_i, r_j) ≤ θ` for all pairs in `R^c`.
//! The problem is NP-hard (reduction from Maximum k-Coverage, Thm. 1).
//!
//! Solvers:
//! * [`ratio_greedy`] — Alg. 2, best objective-gain/cost ratio each step;
//! * [`objective_greedy`] — Alg. 3, best absolute objective gain;
//! * [`hybrid_greedy`] — Alg. 4, the better of the two, with the paper's
//!   `(1 − 1/e)/2` approximation guarantee (Thm. 2);
//! * [`random_select`] — the "Rand" baseline of Fig. 3 / Table III;
//! * [`exact::exact_solve`] — branch-and-bound ground truth for small
//!   instances (test/validation use).

pub mod exact;
pub mod lazy;
pub mod objective;
pub mod observed;
pub mod problem;
pub mod random;
pub mod solvers;
pub mod trivial;

pub use exact::exact_solve;
pub use lazy::{lazy_hybrid_greedy, lazy_objective_greedy, lazy_ratio_greedy};
pub use objective::{ocs_value, SelectionState};
pub use observed::observed_select;
pub use problem::{validate_selection, OcsInstance, Selection};
pub use random::random_select;
pub use solvers::{hybrid_greedy, objective_greedy, ratio_greedy};
pub use trivial::trivial_solution;
