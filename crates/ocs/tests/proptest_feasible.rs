//! Property tests for OCS solver feasibility: on arbitrary random
//! instances, every solver's output must satisfy the rtse-check selection
//! contract — within budget, pairwise redundancy at most `θ`, candidate
//! membership, no duplicates, and a consistent Eq. (13) value.

use proptest::prelude::*;
use rtse_data::{SlotOfDay, SLOTS_PER_DAY};
use rtse_graph::{GraphBuilder, RoadClass, RoadId};
use rtse_ocs::{
    exact_solve, hybrid_greedy, lazy_hybrid_greedy, lazy_objective_greedy, lazy_ratio_greedy,
    objective_greedy, random_select, ratio_greedy, trivial_solution, validate_selection,
    OcsInstance, Selection,
};
use rtse_rtf::params::SlotParams;
use rtse_rtf::{CorrelationTable, PathCorrelation, RtfModel};

const N: usize = 9;

/// Owns the storage an [`OcsInstance`] borrows.
struct Fixture {
    table: CorrelationTable,
    sigma: Vec<f64>,
    costs: Vec<u32>,
    queried: Vec<RoadId>,
    candidates: Vec<RoadId>,
    budget: u32,
    theta: f64,
}

impl Fixture {
    fn instance(&self) -> OcsInstance<'_> {
        OcsInstance {
            sigma: &self.sigma,
            corr: &self.table,
            queried: &self.queried,
            candidates: &self.candidates,
            costs: &self.costs,
            budget: self.budget,
            theta: self.theta,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn fixture(
    edges: Vec<(u32, u32, f64)>,
    sigma: Vec<f64>,
    costs: Vec<u32>,
    split: usize,
    budget: u32,
    theta: f64,
) -> Fixture {
    let mut b = GraphBuilder::new();
    for i in 0..N {
        b.add_road(RoadClass::Secondary, (i as f64, 0.0));
    }
    let mut rho = Vec::new();
    for (x, y, r) in edges {
        if x != y && b.add_edge(RoadId(x), RoadId(y)) {
            rho.push(r);
        }
    }
    let g = b.build();
    let slots: Vec<SlotParams> = (0..SLOTS_PER_DAY)
        .map(|_| SlotParams { mu: vec![0.0; N], sigma: vec![1.0; N], rho: rho.clone() })
        .collect();
    let model = RtfModel::from_slots(N, g.num_edges(), slots);
    let table = CorrelationTable::build(&g, &model, SlotOfDay(0), PathCorrelation::MaxProduct);
    // Disjoint queried/candidate split at `split`.
    let queried: Vec<RoadId> = (0..split as u32).map(RoadId).collect();
    let candidates: Vec<RoadId> = (split as u32..N as u32).map(RoadId).collect();
    Fixture { table, sigma, costs, queried, candidates, budget, theta }
}

fn assert_contract(inst: &OcsInstance<'_>, sel: &Selection, solver: &str) {
    if let Err(v) = validate_selection(inst, sel) {
        panic!("{solver}: {v} (selection {sel:?})");
    }
    assert!(sel.spent <= inst.budget, "{solver} overspent: {} > {}", sel.spent, inst.budget);
    for (i, &a) in sel.roads.iter().enumerate() {
        for &b in &sel.roads[i + 1..] {
            let c = inst.corr.corr(a, b);
            assert!(c <= inst.theta + 1e-12, "{solver}: corr({a},{b}) = {c} > θ = {}", inst.theta);
        }
    }
}

proptest! {
    /// Every solver — greedy, lazy, random, trivial, exact — returns a
    /// budget- and θ-feasible selection on random instances.
    #[test]
    fn all_solvers_feasible_on_random_instances(
        edges in proptest::collection::vec(
            (0u32..N as u32, 0u32..N as u32, 0.05..0.95f64),
            2..24,
        ),
        sigma in proptest::collection::vec(0.3..4.0f64, N),
        costs in proptest::collection::vec(1u32..5, N),
        split in 1usize..5,
        budget in 0u32..14,
        theta in 0.3..1.0f64,
    ) {
        let f = fixture(edges, sigma, costs, split, budget, theta);
        let inst = f.instance();
        assert_contract(&inst, &ratio_greedy(&inst), "ratio_greedy");
        assert_contract(&inst, &objective_greedy(&inst), "objective_greedy");
        assert_contract(&inst, &hybrid_greedy(&inst), "hybrid_greedy");
        assert_contract(&inst, &lazy_ratio_greedy(&inst), "lazy_ratio_greedy");
        assert_contract(&inst, &lazy_objective_greedy(&inst), "lazy_objective_greedy");
        assert_contract(&inst, &lazy_hybrid_greedy(&inst), "lazy_hybrid_greedy");
        assert_contract(&inst, &random_select(&inst, 7), "random_select");
        assert_contract(&inst, &exact_solve(&inst), "exact_solve");
        if let Some(sel) = trivial_solution(&inst) {
            assert_contract(&inst, &sel, "trivial_solution");
        }
    }

    /// The θ constraint binds: with θ below every positive pairwise
    /// candidate correlation, no two correlated candidates are co-selected
    /// even with unlimited budget.
    #[test]
    fn theta_respected_with_loose_budget(
        edges in proptest::collection::vec(
            (0u32..N as u32, 0u32..N as u32, 0.4..0.95f64),
            4..24,
        ),
        theta in 0.05..0.35f64,
    ) {
        let f = fixture(edges, vec![1.0; N], vec![1; N], 3, 100, theta);
        let inst = f.instance();
        for sel in [hybrid_greedy(&inst), lazy_hybrid_greedy(&inst), random_select(&inst, 3)] {
            assert_contract(&inst, &sel, "loose-budget solver");
        }
    }
}
