//! Baseline estimators the paper compares GSP against (Section VII-C):
//!
//! * **Per** ([`Per`]) — purely periodic: returns the RTF slot means and
//!   ignores the realtime probes entirely;
//! * **LASSO** ([`LassoEstimator`]) — per-target L1-regularized regression
//!   from the probed roads' speeds, trained on history (correlation-only);
//! * **GRMC** ([`Grmc`]) — graph-regularized matrix completion: a
//!   latent-factor model over the roads × days matrix with a graph
//!   Laplacian smoothness term, completed with the partially observed
//!   current column.
//!
//! All estimators implement the [`Estimator`] trait so the evaluation
//! harness can sweep them uniformly; the GSP wrapper lives in
//! `crowd-rtse-core` (it needs the `rtse-gsp` crate).

pub mod grmc;
pub mod lasso_est;
pub mod per;
pub mod traits;

pub use grmc::Grmc;
pub use lasso_est::LassoEstimator;
pub use per::Per;
pub use traits::{EstimationContext, Estimator};
