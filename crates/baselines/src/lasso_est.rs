//! LASSO regression baseline.
//!
//! For each non-observed road, fit an L1-regularized linear regression
//! from the *observed* roads' speeds to the target road's speed, trained
//! on historical days (a window of slots around the query slot enlarges
//! the sample), then predict with the realtime probes. This is the
//! correlation-only estimator family the paper calls LASSO [32]; its
//! parameters were tuned in `0..0.5` with 0.1 best — the default here.
//!
//! Retraining happens per query because the observed-road set changes with
//! every crowdsourcing round (the paper's core argument against fixed
//! observation sites cuts against pre-trained regressors).

use crate::traits::{EstimationContext, Estimator};
use rtse_data::{SlotOfDay, SLOTS_PER_DAY};
use rtse_graph::RoadId;
use rtse_math::{lasso_coordinate_descent, LassoConfig, Matrix};

/// The LASSO baseline estimator.
#[derive(Debug, Clone)]
pub struct LassoEstimator {
    /// L1 penalty (paper: tuned to 0.1).
    pub lambda: f64,
    /// Half-width of the slot window used to build training samples: the
    /// design matrix pools days × slots in `t ± window`.
    pub window: usize,
    /// When set, only these roads are regressed; all others keep the
    /// periodic mean. Per-query regressions are the expensive part of this
    /// baseline, and the paper's metrics only score the queried roads —
    /// restricting the targets changes nothing in the evaluation while
    /// keeping the sweeps tractable.
    pub targets: Option<Vec<RoadId>>,
}

impl Default for LassoEstimator {
    fn default() -> Self {
        Self::paper_tuned()
    }
}

impl LassoEstimator {
    /// The paper-tuned configuration (λ = 0.1) regressing every road.
    pub fn paper_tuned() -> Self {
        Self { lambda: 0.1, window: 2, targets: None }
    }

    /// Paper-tuned configuration restricted to `targets`.
    pub fn for_targets(targets: Vec<RoadId>) -> Self {
        Self { targets: Some(targets), ..Self::paper_tuned() }
    }
}

impl LassoEstimator {
    /// Slots pooled for training (clamped to the day).
    fn training_slots(&self, t: SlotOfDay) -> Vec<SlotOfDay> {
        let lo = t.index().saturating_sub(self.window);
        let hi = (t.index() + self.window).min(SLOTS_PER_DAY - 1);
        (lo..=hi).map(|s| SlotOfDay(s as u16)).collect()
    }
}

impl Estimator for LassoEstimator {
    fn name(&self) -> &'static str {
        "LASSO"
    }

    fn estimate(&self, ctx: &EstimationContext<'_>, observations: &[(RoadId, f64)]) -> Vec<f64> {
        let n = ctx.graph.num_roads();
        // Fall back to periodic means when there is nothing to regress on.
        let mut out = ctx.model.slot(ctx.slot).mu.clone();
        if observations.is_empty() {
            return out;
        }
        let observed_roads: Vec<RoadId> = observations.iter().map(|&(r, _)| r).collect();
        let observed_values: Vec<f64> = observations.iter().map(|&(_, v)| v).collect();
        for (&r, &v) in observed_roads.iter().zip(observed_values.iter()) {
            out[r.index()] = v;
        }

        // Build the pooled training design: rows = (day, slot) pairs where
        // every observed road has a sample; columns = observed roads.
        let slots = self.training_slots(ctx.slot);
        let mut rows: Vec<Vec<f64>> = Vec::new();
        let mut row_keys: Vec<(usize, SlotOfDay)> = Vec::new();
        'outer: for day in 0..ctx.history.num_days() {
            for &s in &slots {
                let mut row = Vec::with_capacity(observed_roads.len());
                for &orow in &observed_roads {
                    match ctx.history.get(day, s, orow) {
                        Some(v) => row.push(v),
                        None => continue 'outer,
                    }
                }
                rows.push(row);
                row_keys.push((day, s));
            }
        }
        if rows.is_empty() {
            return out; // no usable history: stay periodic
        }
        let flat: Vec<f64> = rows.iter().flatten().copied().collect();
        let x = Matrix::from_vec(rows.len(), observed_roads.len(), flat);
        let cfg = LassoConfig { lambda: self.lambda, ..Default::default() };

        let observed_mask: Vec<bool> = {
            let mut m = vec![false; n];
            for &r in &observed_roads {
                m[r.index()] = true;
            }
            m
        };
        let target_mask: Option<Vec<bool>> = self.targets.as_ref().map(|targets| {
            let mut m = vec![false; n];
            for &r in targets {
                m[r.index()] = true;
            }
            m
        });
        for target in ctx.graph.road_ids() {
            if observed_mask[target.index()] {
                continue;
            }
            if let Some(mask) = &target_mask {
                if !mask[target.index()] {
                    continue; // non-target roads keep the periodic mean
                }
            }
            let y: Vec<f64> = row_keys
                .iter()
                .map(|&(day, s)| ctx.history.get(day, s, target))
                .map(|v| v.unwrap_or(f64::NAN))
                .collect();
            if y.iter().any(|v| v.is_nan()) {
                // Incomplete target history: filter the rows instead of
                // dropping the road.
                let keep: Vec<usize> =
                    y.iter().enumerate().filter(|(_, v)| !v.is_nan()).map(|(i, _)| i).collect();
                if keep.len() < 4 {
                    continue; // too little data: keep the periodic mean
                }
                let mut xs = Vec::with_capacity(keep.len() * observed_roads.len());
                let mut ys = Vec::with_capacity(keep.len());
                for &i in &keep {
                    xs.extend_from_slice(x.row(i));
                    ys.push(y[i]);
                }
                let xm = Matrix::from_vec(keep.len(), observed_roads.len(), xs);
                let sol = lasso_coordinate_descent(&xm, &ys, &cfg);
                out[target.index()] = sol.predict(&observed_values).max(0.0);
            } else {
                let sol = lasso_coordinate_descent(&x, &y, &cfg);
                out[target.index()] = sol.predict(&observed_values).max(0.0);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::test_support::fixture;

    fn ctx(f: &crate::traits::test_support::Fixture, slot: SlotOfDay) -> EstimationContext<'_> {
        EstimationContext { graph: &f.graph, model: &f.model, history: &f.dataset.history, slot }
    }

    #[test]
    fn no_observations_falls_back_to_periodic() {
        let f = fixture(2);
        let slot = SlotOfDay::from_hm(9, 0);
        let est = LassoEstimator::default().estimate(&ctx(&f, slot), &[]);
        assert_eq!(est, f.model.slot(slot).mu);
    }

    #[test]
    fn observed_roads_echo_observations() {
        let f = fixture(2);
        let slot = SlotOfDay::from_hm(9, 0);
        let obs = [(RoadId(3), 17.0), (RoadId(10), 44.0)];
        let est = LassoEstimator::default().estimate(&ctx(&f, slot), &obs);
        assert_eq!(est[3], 17.0);
        assert_eq!(est[10], 44.0);
    }

    #[test]
    fn estimates_are_finite_and_nonnegative() {
        let f = fixture(3);
        let slot = SlotOfDay::from_hm(18, 0);
        let truth = f.dataset.ground_truth_snapshot(slot);
        let obs: Vec<(RoadId, f64)> =
            [0usize, 5, 10, 15].iter().map(|&i| (RoadId::from(i), truth[i])).collect();
        let est = LassoEstimator::default().estimate(&ctx(&f, slot), &obs);
        assert_eq!(est.len(), f.graph.num_roads());
        assert!(est.iter().all(|v| v.is_finite() && *v >= 0.0));
    }

    #[test]
    fn beats_wild_guess_on_correlated_network() {
        // With generous observations, LASSO should land closer to truth
        // than a constant 0 guess (sanity floor, not a strong claim).
        let f = fixture(4);
        let slot = SlotOfDay::from_hm(12, 0);
        let truth = f.dataset.ground_truth_snapshot(slot).to_vec();
        let obs: Vec<(RoadId, f64)> =
            (0..f.graph.num_roads()).step_by(2).map(|i| (RoadId::from(i), truth[i])).collect();
        let est = LassoEstimator::default().estimate(&ctx(&f, slot), &obs);
        let mae: f64 = est.iter().zip(truth.iter()).map(|(e, t)| (e - t).abs()).sum::<f64>()
            / truth.len() as f64;
        let zero_mae: f64 = truth.iter().map(|t| t.abs()).sum::<f64>() / truth.len() as f64;
        assert!(mae < 0.5 * zero_mae, "mae {mae} vs zero-guess {zero_mae}");
    }

    #[test]
    fn window_slots_clamped_at_day_edges() {
        let est = LassoEstimator { window: 3, ..Default::default() };
        let early = est.training_slots(SlotOfDay(1));
        assert_eq!(early.first().unwrap().index(), 0);
        assert_eq!(early.last().unwrap().index(), 4);
        let late = est.training_slots(SlotOfDay(287));
        assert_eq!(late.last().unwrap().index(), 287);
    }
}

#[cfg(test)]
mod target_tests {
    use super::*;
    use crate::traits::test_support::fixture;

    #[test]
    fn target_restriction_leaves_others_periodic() {
        let f = fixture(10);
        let slot = SlotOfDay::from_hm(9, 0);
        let ctx = EstimationContext {
            graph: &f.graph,
            model: &f.model,
            history: &f.dataset.history,
            slot,
        };
        let truth = f.dataset.ground_truth_snapshot(slot);
        let obs = [(RoadId(0), truth[0]), (RoadId(10), truth[10])];
        let restricted = LassoEstimator::for_targets(vec![RoadId(5)]).estimate(&ctx, &obs);
        let mu = &f.model.slot(slot).mu;
        // Non-target, non-observed roads keep μ; the target may differ.
        for r in f.graph.road_ids() {
            let i = r.index();
            if i == 0 || i == 10 || i == 5 {
                continue;
            }
            assert_eq!(restricted[i], mu[i], "road {r} should stay periodic");
        }
        // The target matches the unrestricted run.
        let full = LassoEstimator::paper_tuned().estimate(&ctx, &obs);
        assert_eq!(restricted[5], full[5]);
    }
}
