//! GRMC — Graph-Regularized Matrix Completion baseline.
//!
//! Let `M` be the roads × days matrix of speeds at the query slot, with
//! one extra column for "today" that is observed only at the crowdsourced
//! roads. GRMC factorizes `M ≈ U Vᵀ` over the observed entries with ridge
//! penalties and a graph-Laplacian smoothness term on the road factors
//! (adjacent roads get similar latent vectors — the Graph Laplacian factor
//! of the paper's refs [17, 33, 16]):
//!
//! ```text
//! min Σ_{(i,j) observed} (M_ij − u_i·v_j)²
//!     + λ (‖U‖² + ‖V‖²) + γ Σ_{(a,b) ∈ E} ‖u_a − u_b‖²
//! ```
//!
//! Speeds are centered per road before factorization (the factors model
//! day-to-day deviations, not absolute levels). Optimization is full-batch
//! gradient descent with step halving; initialization is deterministic.

use crate::traits::{EstimationContext, Estimator};
use rtse_graph::RoadId;

/// The GRMC baseline estimator.
#[derive(Debug, Clone, Copy)]
pub struct Grmc {
    /// Latent dimension (paper: tuned in 5–20, 10 best).
    pub latent_dim: usize,
    /// Ridge penalty λ.
    pub lambda: f64,
    /// Graph-smoothness weight γ.
    pub graph_gamma: f64,
    /// Gradient-descent iterations.
    pub iters: usize,
    /// Initial learning rate (halved whenever the loss regresses).
    pub learning_rate: f64,
    /// Seed of the deterministic initializer.
    pub seed: u64,
}

impl Default for Grmc {
    fn default() -> Self {
        Self {
            latent_dim: 10,
            lambda: 0.1,
            graph_gamma: 0.5,
            iters: 150,
            learning_rate: 0.02,
            seed: 0x6472_6D63,
        }
    }
}

/// splitmix64 stream producing uniforms in `[-0.5, 0.5)` — rand-free
/// deterministic initialization.
fn uniform_stream(seed: u64) -> impl FnMut() -> f64 {
    let mut state = seed;
    move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z = z ^ (z >> 31);
        (z >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    }
}

impl Estimator for Grmc {
    fn name(&self) -> &'static str {
        "GRMC"
    }

    fn estimate(&self, ctx: &EstimationContext<'_>, observations: &[(RoadId, f64)]) -> Vec<f64> {
        let n = ctx.graph.num_roads();
        let days = ctx.history.num_days();
        let cols = days + 1; // + today's partial column
        let k = self.latent_dim;

        // Per-road centering means (from the RTF slot means, which are the
        // sample means of the same history).
        let means = &ctx.model.slot(ctx.slot).mu;

        // Observed entries as (road, col, centered value).
        let mut entries: Vec<(usize, usize, f64)> = Vec::with_capacity(n * cols);
        for day in 0..days {
            for r in ctx.graph.road_ids() {
                if let Some(v) = ctx.history.get(day, ctx.slot, r) {
                    entries.push((r.index(), day, v - means[r.index()]));
                }
            }
        }
        for &(r, v) in observations {
            entries.push((r.index(), days, v - means[r.index()]));
        }

        // Deterministic small init.
        let mut next = uniform_stream(self.seed);
        let mut u = vec![0.0_f64; n * k];
        let mut v = vec![0.0_f64; cols * k];
        for x in u.iter_mut().chain(v.iter_mut()) {
            *x = 0.2 * next();
        }

        let mut lr = self.learning_rate;
        let mut last_loss = f64::INFINITY;
        let mut du = vec![0.0_f64; n * k];
        let mut dv = vec![0.0_f64; cols * k];
        for _ in 0..self.iters {
            du.iter_mut().for_each(|x| *x = 0.0);
            dv.iter_mut().for_each(|x| *x = 0.0);
            let mut loss = 0.0;
            for &(i, j, m) in &entries {
                let (ui, vj) = (&u[i * k..(i + 1) * k], &v[j * k..(j + 1) * k]);
                let pred: f64 = ui.iter().zip(vj.iter()).map(|(a, b)| a * b).sum();
                let e = pred - m;
                loss += e * e;
                for d in 0..k {
                    du[i * k + d] += 2.0 * e * vj[d];
                    dv[j * k + d] += 2.0 * e * ui[d];
                }
            }
            // Ridge terms.
            for (g, x) in du.iter_mut().zip(u.iter()) {
                *g += 2.0 * self.lambda * x;
            }
            for (g, x) in dv.iter_mut().zip(v.iter()) {
                *g += 2.0 * self.lambda * x;
            }
            loss += self.lambda
                * (u.iter().map(|x| x * x).sum::<f64>() + v.iter().map(|x| x * x).sum::<f64>());
            // Graph Laplacian smoothness on road factors.
            for &(a, b) in ctx.graph.edges() {
                for d in 0..k {
                    let diff = u[a.index() * k + d] - u[b.index() * k + d];
                    loss += self.graph_gamma * diff * diff;
                    du[a.index() * k + d] += 2.0 * self.graph_gamma * diff;
                    du[b.index() * k + d] -= 2.0 * self.graph_gamma * diff;
                }
            }
            // Normalize by entry count so lr is scale-free.
            let scale = lr / entries.len().max(1) as f64;
            for (x, g) in u.iter_mut().zip(du.iter()) {
                *x -= scale * g;
            }
            for (x, g) in v.iter_mut().zip(dv.iter()) {
                *x -= scale * g;
            }
            if loss > last_loss {
                lr *= 0.5;
            }
            last_loss = loss;
        }

        // Today's column prediction, de-centered; observed roads echo the
        // probe.
        let vtoday = &v[days * k..(days + 1) * k];
        let mut out: Vec<f64> = (0..n)
            .map(|i| {
                let pred: f64 =
                    u[i * k..(i + 1) * k].iter().zip(vtoday.iter()).map(|(a, b)| a * b).sum();
                (means[i] + pred).max(0.0)
            })
            .collect();
        for &(r, val) in observations {
            out[r.index()] = val;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::test_support::fixture;
    use rtse_data::SlotOfDay;

    fn ctx(f: &crate::traits::test_support::Fixture, slot: SlotOfDay) -> EstimationContext<'_> {
        EstimationContext { graph: &f.graph, model: &f.model, history: &f.dataset.history, slot }
    }

    #[test]
    fn observed_roads_echo_observations() {
        let f = fixture(5);
        let slot = SlotOfDay::from_hm(8, 0);
        let obs = [(RoadId(2), 19.5)];
        let est = Grmc::default().estimate(&ctx(&f, slot), &obs);
        assert_eq!(est[2], 19.5);
        assert_eq!(est.len(), f.graph.num_roads());
    }

    #[test]
    fn estimates_finite_nonnegative() {
        let f = fixture(6);
        let slot = SlotOfDay::from_hm(17, 30);
        let truth = f.dataset.ground_truth_snapshot(slot);
        let obs: Vec<(RoadId, f64)> =
            [1usize, 7, 13].iter().map(|&i| (RoadId::from(i), truth[i])).collect();
        let est = Grmc::default().estimate(&ctx(&f, slot), &obs);
        assert!(est.iter().all(|x| x.is_finite() && *x >= 0.0));
    }

    #[test]
    fn deterministic_in_seed() {
        let f = fixture(7);
        let slot = SlotOfDay::from_hm(12, 0);
        let obs = [(RoadId(0), 40.0), (RoadId(9), 35.0)];
        let a = Grmc::default().estimate(&ctx(&f, slot), &obs);
        let b = Grmc::default().estimate(&ctx(&f, slot), &obs);
        assert_eq!(a, b);
    }

    #[test]
    fn without_observations_stays_near_periodic_mean() {
        // With no probe the latent model only sees history; today's column
        // has no observations so its factor stays near init, and estimates
        // should land near the periodic means.
        let f = fixture(8);
        let slot = SlotOfDay::from_hm(10, 0);
        let est = Grmc::default().estimate(&ctx(&f, slot), &[]);
        let mu = &f.model.slot(slot).mu;
        let mad: f64 =
            est.iter().zip(mu.iter()).map(|(a, b)| (a - b).abs()).sum::<f64>() / mu.len() as f64;
        assert!(mad < 3.0, "mean deviation from μ too large: {mad}");
    }

    #[test]
    fn more_latent_dims_do_not_break() {
        let f = fixture(9);
        let slot = SlotOfDay::from_hm(9, 30);
        let grmc = Grmc { latent_dim: 20, iters: 60, ..Default::default() };
        let est = grmc.estimate(&ctx(&f, slot), &[(RoadId(4), 33.0)]);
        assert!(est.iter().all(|x| x.is_finite()));
    }
}
