//! The periodicity-only baseline.

use crate::traits::{EstimationContext, Estimator};
use rtse_graph::RoadId;

/// "Per … purely relies on the periodicity and provides the periodic
/// traffic speeds as its estimation" (Section VII-C). It reads the RTF
/// slot means and ignores the crowdsourced observations — which is exactly
/// why it cannot see incidents.
#[derive(Debug, Clone, Copy, Default)]
pub struct Per;

impl Estimator for Per {
    fn name(&self) -> &'static str {
        "Per"
    }

    fn estimate(&self, ctx: &EstimationContext<'_>, _observations: &[(RoadId, f64)]) -> Vec<f64> {
        ctx.model.slot(ctx.slot).mu.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::test_support::fixture;
    use rtse_data::SlotOfDay;

    #[test]
    fn returns_slot_means_and_ignores_observations() {
        let f = fixture(1);
        let ctx = EstimationContext {
            graph: &f.graph,
            model: &f.model,
            history: &f.dataset.history,
            slot: SlotOfDay::from_hm(8, 30),
        };
        let no_obs = Per.estimate(&ctx, &[]);
        let with_obs = Per.estimate(&ctx, &[(RoadId(0), 1.0)]);
        assert_eq!(no_obs, with_obs);
        assert_eq!(no_obs, f.model.slot(ctx.slot).mu);
        assert_eq!(no_obs.len(), f.graph.num_roads());
    }
}
