//! The estimator interface shared by GSP and the baselines.

use rtse_data::{HistoryStore, SlotOfDay};
use rtse_graph::{Graph, RoadId};
use rtse_rtf::RtfModel;

/// Everything an estimator may consult: the network, the trained offline
/// model, the raw history, and the query slot.
#[derive(Clone, Copy)]
pub struct EstimationContext<'a> {
    /// The road network.
    pub graph: &'a Graph,
    /// The trained RTF (slot means/stds/correlations).
    pub model: &'a RtfModel,
    /// Raw historical records (regression/completion baselines retrain on
    /// these per query).
    pub history: &'a HistoryStore,
    /// The queried time slot.
    pub slot: SlotOfDay,
}

/// A realtime speed estimator: maps the crowdsourced observations to a
/// full-network speed estimate (one value per road).
pub trait Estimator {
    /// Short display name used in experiment tables ("GSP", "LASSO", …).
    fn name(&self) -> &'static str;

    /// Produces estimates for every road. Implementations must return
    /// exactly `ctx.graph.num_roads()` finite values and must echo the
    /// observed value for observed roads (except estimators that by
    /// definition ignore observations, like Per).
    fn estimate(&self, ctx: &EstimationContext<'_>, observations: &[(RoadId, f64)]) -> Vec<f64>;
}

#[cfg(test)]
pub(crate) mod test_support {
    //! Shared dataset fixture for baseline tests.

    use rtse_data::{SynthConfig, SynthDataset, TrafficGenerator};
    use rtse_graph::generators::grid;
    use rtse_graph::Graph;
    use rtse_rtf::{moment_estimate, RtfModel};

    pub struct Fixture {
        pub graph: Graph,
        pub dataset: SynthDataset,
        pub model: RtfModel,
    }

    /// A 4x5 grid with 25 days of clean history (no incidents in history,
    /// deterministic in `seed`).
    pub fn fixture(seed: u64) -> Fixture {
        let graph = grid(4, 5);
        let cfg = SynthConfig { days: 25, incidents_per_day: 0.5, seed, ..SynthConfig::default() };
        let dataset = TrafficGenerator::new(&graph, cfg).generate();
        let model = moment_estimate(&graph, &dataset.history);
        Fixture { graph, dataset, model }
    }
}
