//! Admission boundary tests for [`ServerHandle::submit`]'s budget bounds.
//!
//! The deadline and staleness bounds are admission *checks*, not clamps:
//! a budget exactly at the bound must be admitted (the server can honor
//! it), one past the bound must come back as the typed error echoing
//! both the request and the bound. These tests pin the boundary on both
//! sides for both budgets, including the operator-vouched case where
//! `default_deadline` stretches the deadline bound past the TTL.

use crowd_rtse_core::{CrowdRtse, OfflineArtifacts, OnlineConfig};
use rtse_crowd::{uniform_costs, CostRange, WorkerPool};
use rtse_data::{SlotOfDay, SynthConfig, SynthDataset, TrafficGenerator};
use rtse_graph::generators::grid;
use rtse_graph::{Graph, RoadId};
use rtse_serve::{serve, ServeConfig, ServeError, ServeRequest, ServeWorld};
use std::time::Duration;

struct Fixture {
    graph: Graph,
    dataset: SynthDataset,
    pool: WorkerPool,
    costs: Vec<u32>,
}

fn fixture(seed: u64) -> Fixture {
    let graph = grid(4, 5);
    let cfg = SynthConfig { days: 8, seed, ..SynthConfig::small_test() };
    let dataset = TrafficGenerator::new(&graph, cfg).generate();
    let pool = WorkerPool::spawn(&graph, 40, 0.5, (0.3, 1.0), seed.wrapping_add(7));
    let costs = uniform_costs(graph.num_roads(), CostRange::C2, seed);
    Fixture { graph, dataset, pool, costs }
}

fn engine(f: &Fixture) -> CrowdRtse<'_> {
    let model = rtse_rtf::moment_estimate(&f.graph, &f.dataset.history);
    CrowdRtse::new(&f.graph, OfflineArtifacts::from_model(model))
}

fn world<'w>(f: &'w Fixture) -> ServeWorld<'w> {
    ServeWorld { workers: &f.pool, costs: &f.costs, truth: &f.dataset }
}

const TTL: Duration = Duration::from_secs(60);

fn config(default_deadline: Option<Duration>) -> ServeConfig {
    ServeConfig {
        batch_window: Duration::ZERO,
        workers: 1,
        ttl: TTL,
        default_deadline,
        online: OnlineConfig { budget: 15, ..Default::default() },
        ..Default::default()
    }
}

fn request() -> ServeRequest {
    ServeRequest::new(vec![RoadId(0), RoadId(1)], SlotOfDay(9))
}

#[test]
fn deadline_exactly_at_bound_is_admitted_one_past_is_rejected() {
    let f = fixture(21);
    let e = engine(&f);
    let cfg = config(None);
    let bound = cfg.deadline_bound();
    assert_eq!(bound, TTL, "without a default deadline the bound is the TTL");
    serve(&e, &world(&f), &cfg, |handle| {
        handle.pause();
        assert!(
            handle.submit(request().with_deadline(bound)).is_ok(),
            "a deadline exactly at the bound must be admitted"
        );
        let over = bound + Duration::from_nanos(1);
        match handle.submit(request().with_deadline(over)) {
            Err(ServeError::DeadlineOutOfBounds { requested, bound: reported }) => {
                assert_eq!(requested, over);
                assert_eq!(reported, bound);
            }
            other => panic!("expected DeadlineOutOfBounds, got {other:?}"),
        }
        handle.resume();
    })
    .expect("server starts");
}

#[test]
fn staleness_exactly_at_ttl_is_admitted_one_past_is_rejected() {
    let f = fixture(22);
    let e = engine(&f);
    let cfg = config(None);
    let bound = cfg.staleness_bound();
    assert_eq!(bound, TTL, "the staleness bound is the TTL");
    serve(&e, &world(&f), &cfg, |handle| {
        handle.pause();
        assert!(
            handle.submit(request().with_max_staleness(bound)).is_ok(),
            "a staleness budget exactly at the TTL must be admitted"
        );
        let over = bound + Duration::from_nanos(1);
        match handle.submit(request().with_max_staleness(over)) {
            Err(ServeError::StalenessOutOfBounds { requested, bound: reported }) => {
                assert_eq!(requested, over);
                assert_eq!(reported, bound);
            }
            other => panic!("expected StalenessOutOfBounds, got {other:?}"),
        }
        handle.resume();
    })
    .expect("server starts");
}

#[test]
fn operator_vouched_default_deadline_stretches_the_bound_past_the_ttl() {
    let f = fixture(23);
    let e = engine(&f);
    let default = TTL * 2;
    let cfg = config(Some(default));
    let bound = cfg.deadline_bound();
    assert_eq!(bound, default, "the bound never undercuts the configured default");
    serve(&e, &world(&f), &cfg, |handle| {
        handle.pause();
        // Past the TTL but within the vouched default: admitted.
        assert!(handle.submit(request().with_deadline(TTL + Duration::from_secs(1))).is_ok());
        assert!(handle.submit(request().with_deadline(bound)).is_ok());
        let over = bound + Duration::from_nanos(1);
        assert!(matches!(
            handle.submit(request().with_deadline(over)),
            Err(ServeError::DeadlineOutOfBounds { .. })
        ));
        // The staleness bound stays pinned to the TTL regardless.
        assert!(matches!(
            handle.submit(request().with_max_staleness(TTL + Duration::from_nanos(1))),
            Err(ServeError::StalenessOutOfBounds { .. })
        ));
        handle.resume();
    })
    .expect("server starts");
}
