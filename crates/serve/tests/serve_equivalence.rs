//! Acceptance tests for the serving layer: batched/cached answers are
//! bit-identical to fresh engine answers, coalescing strictly shares GSP
//! rounds across concurrent clients, and overload/lateness surface as
//! typed errors — never as stale estimates or silent drops.

use crowd_rtse_core::{CrowdRtse, OfflineArtifacts, OnlineConfig, SpeedQuery};
use proptest::prelude::*;
use rtse_crowd::{uniform_costs, CostRange, WorkerPool};
use rtse_data::{SlotOfDay, SynthConfig, SynthDataset, TrafficGenerator};
use rtse_graph::generators::grid;
use rtse_graph::{Graph, RoadId};
use rtse_serve::{serve, ServeConfig, ServeError, ServeRequest, ServeWorld};
use std::time::Duration;

struct Fixture {
    graph: Graph,
    dataset: SynthDataset,
    pool: WorkerPool,
    costs: Vec<u32>,
}

fn fixture(seed: u64) -> Fixture {
    let graph = grid(4, 5);
    let cfg = SynthConfig { days: 8, seed, ..SynthConfig::small_test() };
    let dataset = TrafficGenerator::new(&graph, cfg).generate();
    let pool = WorkerPool::spawn(&graph, 40, 0.5, (0.3, 1.0), seed.wrapping_add(7));
    let costs = uniform_costs(graph.num_roads(), CostRange::C2, seed);
    Fixture { graph, dataset, pool, costs }
}

fn engine(f: &Fixture) -> CrowdRtse<'_> {
    let model = rtse_rtf::moment_estimate(&f.graph, &f.dataset.history);
    CrowdRtse::new(&f.graph, OfflineArtifacts::from_model(model))
}

fn world<'w>(f: &'w Fixture) -> ServeWorld<'w> {
    ServeWorld { workers: &f.pool, costs: &f.costs, truth: &f.dataset }
}

/// Serving config with deterministic knobs for tests: no timing-dependent
/// batch window (batching is staged via pause/resume), one serving loop.
fn test_config() -> ServeConfig {
    ServeConfig {
        batch_window: Duration::ZERO,
        workers: 1,
        online: OnlineConfig { budget: 15, ..Default::default() },
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A served answer is bit-identical to a fresh `answer_query` for the
    /// same canonical query, slot, and seed: serving adds concurrency
    /// machinery, never numerics.
    #[test]
    fn served_answer_is_bit_identical_to_fresh_engine_answer(
        seed in 0u64..200,
        slot in 0u16..288,
        first in 0usize..15,
        len in 1usize..6,
    ) {
        let f = fixture(seed);
        let e = engine(&f);
        let roads: Vec<RoadId> = (first..first + len).map(|i| RoadId(i as u32)).collect();
        let slot = SlotOfDay(slot);
        let config = test_config();

        let served = serve(&e, &world(&f), &config, |handle| {
            handle.query(ServeRequest::new(roads.clone(), slot))
        })
        .expect("server starts")
        .value
        .expect("query answered");

        let query = SpeedQuery::new(roads, slot);
        let fresh = e.answer_query(
            &query,
            &f.pool,
            &f.costs,
            f.dataset.ground_truth_snapshot(slot),
            &config.online,
        );
        prop_assert_eq!(&served.roads, &query.roads);
        // Bit-identity, not approximate equality: the shared round and the
        // fresh answer must be the same floats.
        prop_assert_eq!(&served.estimates, &fresh.estimates);
        prop_assert_eq!(served.generation, 1);
        prop_assert!(!served.cache_hit);
    }
}

/// Staged same-slot burst: all requests coalesce into one batch whose
/// shared round equals a fresh `answer_query` over the merged query —
/// every waiter's estimates are bit-identical reads from it.
#[test]
fn paused_burst_coalesces_into_one_round_with_merged_query_semantics() {
    let f = fixture(11);
    let e = engine(&f);
    let slot = SlotOfDay(96);
    let config = test_config();
    let clients: Vec<Vec<RoadId>> =
        (0..6).map(|i| (i..i + 4).map(|r| RoadId(r as u32)).collect()).collect();

    let outcome = serve(&e, &world(&f), &config, |handle| {
        handle.pause();
        let tickets: Vec<_> = clients
            .iter()
            .map(|roads| handle.submit(ServeRequest::new(roads.clone(), slot)).expect("admitted"))
            .collect();
        assert_eq!(handle.queue_len(), clients.len());
        handle.resume();
        tickets.into_iter().map(|t| t.wait().expect("answered")).collect::<Vec<_>>()
    })
    .expect("server starts");

    let union: Vec<RoadId> = (0..9).map(RoadId).collect();
    let merged = SpeedQuery::new(union, slot);
    let fresh = e.answer_query(
        &merged,
        &f.pool,
        &f.costs,
        f.dataset.ground_truth_snapshot(slot),
        &config.online,
    );

    for (answer, roads) in outcome.value.iter().zip(&clients) {
        assert_eq!(answer.batch_size, clients.len());
        assert_eq!(&answer.roads, roads);
        let expected: Vec<f64> = roads.iter().map(|r| fresh.all_values[r.index()]).collect();
        assert_eq!(answer.estimates, expected, "batched answer must read the shared round");
    }
    let m = outcome.metrics;
    assert_eq!(m.answered, clients.len() as u64);
    assert_eq!(m.rounds, 1, "one staged burst must cost exactly one GSP round");
    assert!(m.coalescing_ratio() < 1.0);
    assert_eq!(m.shed, 0);
}

/// A repeat query within the TTL hits the slot cache and returns the
/// generating round's floats bit-identically; the second query costs no
/// GSP round.
#[test]
fn cache_hits_are_bit_identical_and_cost_no_round() {
    let f = fixture(23);
    let e = engine(&f);
    let slot = SlotOfDay(140);
    let roads: Vec<RoadId> = vec![RoadId(2), RoadId(5), RoadId(9)];
    let config = test_config();

    let outcome = serve(&e, &world(&f), &config, |handle| {
        let first = handle.query(ServeRequest::new(roads.clone(), slot)).expect("answered");
        let second = handle.query(ServeRequest::new(roads.clone(), slot)).expect("answered");
        (first, second)
    })
    .expect("server starts");

    let (first, second) = outcome.value;
    assert!(!first.cache_hit);
    assert!(second.cache_hit, "repeat within TTL must hit");
    assert_eq!(first.generation, second.generation);
    assert_eq!(first.estimates, second.estimates, "cache hit must share the round's floats");
    let m = outcome.metrics;
    assert_eq!(m.rounds, 1);
    assert_eq!(m.answered, 2);
    assert!(m.cache_hit_rate() > 0.0);
    assert!(m.coalescing_ratio() < 1.0);
}

/// `max_staleness: ZERO` opts out of the cache: a new generation is
/// computed even though a fresh entry exists.
#[test]
fn zero_staleness_forces_a_new_generation() {
    let f = fixture(29);
    let e = engine(&f);
    let slot = SlotOfDay(30);
    let roads = vec![RoadId(1), RoadId(3)];
    let config = test_config();

    let outcome = serve(&e, &world(&f), &config, |handle| {
        let warm = handle.query(ServeRequest::new(roads.clone(), slot)).expect("answered");
        let fresh = handle
            .query(ServeRequest::new(roads.clone(), slot).with_max_staleness(Duration::ZERO))
            .expect("answered");
        (warm, fresh)
    })
    .expect("server starts");

    let (warm, fresh) = outcome.value;
    assert_eq!(warm.generation, 1);
    assert_eq!(fresh.generation, 2, "zero staleness must recompute");
    assert!(!fresh.cache_hit);
    // Determinism: the recomputed round is still the same floats.
    assert_eq!(warm.estimates, fresh.estimates);
    assert_eq!(outcome.metrics.rounds, 2);
}

/// Requests past their deadline are shed with the typed error before any
/// estimate is produced for them — a late client never receives a stale
/// or late answer.
#[test]
fn expired_requests_shed_with_typed_errors_never_estimates() {
    let f = fixture(37);
    let e = engine(&f);
    let slot = SlotOfDay(200);
    let config = test_config();

    let outcome = serve(&e, &world(&f), &config, |handle| {
        handle.pause();
        let doomed = handle
            .submit(ServeRequest::new(vec![RoadId(0)], slot).with_deadline(Duration::ZERO))
            .expect("admitted");
        let alive = handle.submit(ServeRequest::new(vec![RoadId(1)], slot)).expect("admitted");
        handle.resume();
        (doomed.wait(), alive.wait())
    })
    .expect("server starts");

    let (doomed, alive) = outcome.value;
    match doomed {
        Err(ServeError::DeadlineExceeded { .. }) => {}
        other => panic!("expired request must get the typed deadline error, got {other:?}"),
    }
    assert!(alive.is_ok(), "deadline-free request in the same batch still answered");
    let m = outcome.metrics;
    assert_eq!(m.shed, 1);
    assert_eq!(m.answered, 1);
    assert_eq!(m.submitted, 2, "every admitted request is accounted: answered or shed");
}

/// Admission control: the bounded queue rejects overflow with the typed
/// error and the backpressure signal tracks occupancy; drained requests
/// are still answered.
#[test]
fn full_queue_rejects_with_typed_error_and_backpressure_signal() {
    let f = fixture(43);
    let e = engine(&f);
    let slot = SlotOfDay(60);
    let config = ServeConfig { queue_depth: 2, ..test_config() };

    let outcome = serve(&e, &world(&f), &config, |handle| {
        handle.pause();
        let a = handle.submit(ServeRequest::new(vec![RoadId(0)], slot)).expect("admitted");
        let b = handle.submit(ServeRequest::new(vec![RoadId(1)], slot)).expect("admitted");
        assert!((handle.pressure() - 1.0).abs() < 1e-12, "queue is full");
        let overflow = handle.submit(ServeRequest::new(vec![RoadId(2)], slot));
        assert_eq!(overflow.err(), Some(ServeError::QueueFull { depth: 2 }));
        handle.resume();
        (a.wait(), b.wait())
    })
    .expect("server starts");

    let (a, b) = outcome.value;
    assert!(a.is_ok() && b.is_ok(), "admitted requests are answered on drain");
    assert_eq!(outcome.metrics.rejected, 1);
}

/// Malformed requests are rejected at admission with typed errors: empty
/// road lists (via `SpeedQuery::try_new`), out-of-range roads, and
/// out-of-range slots.
#[test]
fn admission_rejects_malformed_requests_with_typed_errors() {
    let f = fixture(47);
    let e = engine(&f);
    let num_roads = f.graph.num_roads();
    let config = test_config();

    let outcome = serve(&e, &world(&f), &config, |handle| {
        let empty = handle.submit(ServeRequest::new(vec![], SlotOfDay(0)));
        assert_eq!(empty.err(), Some(ServeError::EmptyQuery));

        let bogus_road =
            handle.submit(ServeRequest::new(vec![RoadId(num_roads as u32)], SlotOfDay(0)));
        assert_eq!(
            bogus_road.err(),
            Some(ServeError::RoadOutOfRange { road: RoadId(num_roads as u32), num_roads })
        );

        let bogus_slot = handle.submit(ServeRequest::new(vec![RoadId(0)], SlotOfDay(288)));
        assert_eq!(bogus_slot.err(), Some(ServeError::SlotOutOfRange { slot: SlotOfDay(288) }));
    })
    .expect("server starts");
    assert_eq!(outcome.metrics.submitted, 0);
}

/// A bad deployment is rejected up front with typed errors, not panics:
/// invalid config and world dimension mismatches.
#[test]
fn bad_deployments_are_rejected_up_front() {
    let f = fixture(53);
    let e = engine(&f);

    let bad_config = ServeConfig { queue_depth: 0, ..test_config() };
    let err = serve(&e, &world(&f), &bad_config, |_| ()).expect_err("rejected");
    assert!(matches!(err, ServeError::InvalidConfig(_)), "got {err:?}");

    let short_costs = vec![1u32; f.graph.num_roads() - 1];
    let bad_world = ServeWorld { workers: &f.pool, costs: &short_costs, truth: &f.dataset };
    let err = serve(&e, &bad_world, &test_config(), |_| ()).expect_err("rejected");
    assert_eq!(
        err,
        ServeError::WorldMismatch {
            what: "costs",
            expected: f.graph.num_roads(),
            got: f.graph.num_roads() - 1,
        }
    );
}

/// The headline acceptance criterion: N ≥ 8 concurrent clients querying
/// the same slot are served with strictly fewer GSP propagations than
/// queries, and every answer is a bit-identical read from a shared round.
#[test]
fn eight_concurrent_clients_share_rounds_and_floats() {
    let f = fixture(59);
    let e = engine(&f);
    let slot = SlotOfDay(110);
    let clients = 8;
    let config = ServeConfig { workers: 2, ..test_config() };

    let outcome = serve(&e, &world(&f), &config, |handle| {
        handle.pause();
        let answers: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|i| {
                    let handle = &handle;
                    scope.spawn(move || {
                        let roads = vec![RoadId(i as u32), RoadId((i + 2) as u32)];
                        handle.query(ServeRequest::new(roads, slot))
                    })
                })
                .collect();
            // All clients are admitted (blocked waiting) before any batch
            // is assembled, so sharing is guaranteed, not timing luck.
            while handle.queue_len() < clients {
                std::thread::yield_now();
            }
            handle.resume();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
                .collect()
        });
        answers
    })
    .expect("server starts");

    let answers: Vec<_> =
        outcome.value.into_iter().map(|a| a.expect("every client answered")).collect();
    assert_eq!(answers.len(), clients);

    // All answers come from the same generation of the same slot round, so
    // shared roads carry the same floats across clients.
    for pair in answers.windows(2) {
        assert_eq!(pair[0].generation, pair[1].generation);
        for (i, &road) in pair[0].roads.iter().enumerate() {
            if let Some(v) = pair[1].estimate_for(road) {
                assert!(pair[0].estimates[i] == v, "shared roads must carry identical floats");
            }
        }
    }
    let m = outcome.metrics;
    assert_eq!(m.answered, clients as u64);
    assert_eq!(m.shed, 0);
    assert!(
        m.rounds < m.answered,
        "{} rounds for {} queries: concurrency must share propagations",
        m.rounds,
        m.answered
    );
}

/// `prewarm_slots` builds the listed slots' correlation tables before the
/// run closure (and therefore before any admission): the engine's obs
/// registry already holds one `corr.dijkstra_row` span per road per listed
/// slot at run start, and the first query of a prewarmed slot triggers no
/// further Dijkstra rows.
#[test]
fn prewarm_builds_corr_tables_before_admission() {
    let f = fixture(11);
    let obs = rtse_obs::ObsHandle::fresh();
    let model = rtse_rtf::moment_estimate(&f.graph, &f.dataset.history);
    let artifacts = OfflineArtifacts::from_model(model).with_obs(obs.clone());
    let e = CrowdRtse::new(&f.graph, artifacts);
    let slot = SlotOfDay::from_hm(8, 30);
    let config = ServeConfig { prewarm_slots: vec![slot, slot], ..test_config() };
    let rows = |o: &rtse_obs::ObsHandle| {
        o.registry().map_or(0, |r| r.count(rtse_obs::Stage::CorrDijkstraRow))
    };
    let n = f.graph.num_roads() as u64;
    let outcome = serve(&e, &world(&f), &config, |handle| {
        let at_start = rows(&obs);
        let ticket = handle
            .submit(ServeRequest {
                roads: vec![RoadId(0)],
                slot,
                deadline: None,
                max_staleness: None,
            })
            .expect("admit");
        ticket.wait().expect("answer");
        (at_start, rows(&obs))
    })
    .expect("serve");
    let (at_start, after_query) = outcome.value;
    assert_eq!(at_start, n, "duplicate prewarm slots coalesce into one build");
    assert_eq!(after_query, n, "prewarmed slot's first query must not rebuild");
}
