//! The per-slot answer cache.
//!
//! GSP's output covers the whole network, so one shared round answers
//! every road anyone asks about in that slot. The cache stores that round
//! per slot with a generation counter and a computation timestamp, and
//! coalesces duplicate rebuilds the same way `core::offline` coalesces
//! correlation-table builds: one lock per slot, held across the rebuild,
//! so concurrent cold callers of the *same* slot share a single build
//! while other slots stay unblocked (no head-of-line blocking).
//!
//! Unlike the offline `OnceLock` cache, entries here age out: serving
//! answers are staleness-bounded, so a hit requires the cached round to be
//! younger than the caller's freshness requirement.

use crate::coherence::Coherence;
use rtse_data::{SlotOfDay, SLOTS_PER_DAY};
use rtse_graph::RoadId;
use rtse_sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// What a compute closure produces: the published full-network values
/// plus the crowd observations that produced them. The cache keeps the
/// pair together so the *next* recompute of the same slot can seed a
/// delta propagation from it (`compute` receives the stale entry).
#[derive(Debug, Clone, Default)]
pub struct RoundData {
    /// Full-network estimate (one value per road) — GSP's `all_values`.
    pub values: Vec<f64>,
    /// The crowd observations the round propagated.
    pub observations: Vec<(RoadId, f64)>,
}

/// One computed slot round, shared by every waiter it answers.
#[derive(Debug)]
pub struct CachedRound {
    /// Full-network estimate (one value per road) — GSP's `all_values`.
    pub values: Vec<f64>,
    /// The crowd observations that produced `values` (the delta seed for
    /// the slot's next recompute).
    pub observations: Vec<(RoadId, f64)>,
    /// Which rebuild of this slot produced the round (1 = first).
    pub generation: u64,
    /// When the round finished computing; ages the entry.
    pub computed_at: Instant,
}

/// What a cache lookup produced.
#[derive(Debug, Clone)]
pub struct CacheOutcome {
    /// The round that answers the caller.
    pub round: Arc<CachedRound>,
    /// Whether the round was served from cache (false = computed by this
    /// call, or by a concurrent call this one coalesced into).
    pub hit: bool,
}

struct CacheCell {
    generation: u64,
    round: Option<Arc<CachedRound>>,
}

/// Slot-keyed answer cache with TTL/staleness bounds and generation
/// counters.
pub struct AnswerCache {
    cells: Vec<Mutex<CacheCell>>,
}

fn lock_cell<'m>(cell: &'m Mutex<CacheCell>) -> MutexGuard<'m, CacheCell> {
    cell.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Default for AnswerCache {
    fn default() -> Self {
        Self::new()
    }
}

impl AnswerCache {
    /// An empty cache covering every slot of the day.
    pub fn new() -> Self {
        Self {
            cells: (0..SLOTS_PER_DAY)
                .map(|_| Mutex::new(CacheCell { generation: 0, round: None }))
                .collect(),
        }
    }

    /// Returns the slot's cached round when it is younger than `max_age`,
    /// otherwise computes a new generation via `compute` and caches it.
    ///
    /// `compute` receives the new generation number and the **stale
    /// previous entry** of the same slot, if one exists — the warm-start
    /// seed for delta re-propagation. A fresh slot (including the first
    /// round after a rollover: cells are per-slot) passes `None`, so a
    /// stale fixed point can never seed a different slot's round.
    ///
    /// The slot's lock is held across `compute`, so concurrent callers of
    /// one cold slot coalesce into a single build (late arrivals block,
    /// then hit the freshly cached round); callers of other slots proceed
    /// unblocked in parallel.
    ///
    /// A compute error is returned to the caller and leaves the previous
    /// entry (if any) in place; the generation counter only advances on
    /// success.
    ///
    /// Slots outside `0..288` never cache (the server rejects them at
    /// admission; this path computes-through defensively, always without
    /// a seed).
    pub fn round_for<E>(
        &self,
        slot: SlotOfDay,
        max_age: Duration,
        compute: impl FnOnce(u64, Option<&CachedRound>) -> Result<RoundData, E>,
    ) -> Result<CacheOutcome, E> {
        self.round_for_published(slot, max_age, &Coherence::new(), compute, || {})
    }

    /// [`Self::round_for`] with coherent publication: on a successful
    /// compute, the generation store and the caller's `publish` side
    /// effect run inside one [`Coherence::write`] section, so a
    /// [`Coherence::read`] over the cache's generations plus whatever
    /// `publish` updates (the serving layer's `rounds` counter) sees the
    /// pair move in lockstep — never the torn half-state where one has
    /// advanced and the other has not.
    ///
    /// `publish` runs only when `compute` succeeds. For out-of-range
    /// slots (which never cache) it still runs, inside a write section of
    /// its own, but no generation advances — callers relying on the
    /// `Σ generations == rounds` invariant must reject such slots before
    /// computing, as the server's admission path does.
    pub fn round_for_published<E>(
        &self,
        slot: SlotOfDay,
        max_age: Duration,
        coherence: &Coherence,
        compute: impl FnOnce(u64, Option<&CachedRound>) -> Result<RoundData, E>,
        publish: impl FnOnce(),
    ) -> Result<CacheOutcome, E> {
        let Some(cell) = self.cells.get(slot.index()) else {
            let data = compute(1, None)?;
            coherence.write(publish);
            let round = Arc::new(CachedRound {
                values: data.values,
                observations: data.observations,
                generation: 1,
                computed_at: Instant::now(),
            });
            return Ok(CacheOutcome { round, hit: false });
        };
        let mut cell = lock_cell(cell);
        if let Some(round) = &cell.round {
            if round.computed_at.elapsed() <= max_age {
                return Ok(CacheOutcome { round: Arc::clone(round), hit: true });
            }
        }
        let generation = cell.generation + 1;
        // The expired entry stays in place until the recompute succeeds —
        // and doubles as its warm-start seed (same slot by construction).
        let data = compute(generation, cell.round.as_deref())?;
        coherence.write(|| {
            cell.generation = generation;
            publish();
        });
        let round = Arc::new(CachedRound {
            values: data.values,
            observations: data.observations,
            generation,
            computed_at: Instant::now(),
        });
        cell.round = Some(Arc::clone(&round));
        Ok(CacheOutcome { round, hit: false })
    }

    /// The slot's current generation (0 = never computed). Diagnostics.
    pub fn generation(&self, slot: SlotOfDay) -> u64 {
        self.cells.get(slot.index()).map_or(0, |cell| lock_cell(cell).generation)
    }

    /// Every slot's generation, in slot order. A bare call can tear
    /// against the rounds counter; read it inside the same
    /// [`Coherence::read`] the writers publish under for the lockstep
    /// guarantee (that is what `ServerHandle::coherent_snapshot` does).
    pub fn generations(&self) -> Vec<u64> {
        self.cells.iter().map(|cell| lock_cell(cell).generation).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::convert::Infallible;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    fn ok(
        values: Vec<f64>,
    ) -> impl FnOnce(u64, Option<&CachedRound>) -> Result<RoundData, Infallible> {
        move |_, _| Ok(RoundData { values, observations: vec![] })
    }

    #[test]
    fn fresh_entries_hit_and_share_the_arc() {
        let cache = AnswerCache::new();
        let slot = SlotOfDay(7);
        let first =
            cache.round_for(slot, Duration::from_secs(60), ok(vec![1.0, 2.0])).expect("infallible");
        assert!(!first.hit);
        assert_eq!(first.round.generation, 1);
        let second =
            cache.round_for(slot, Duration::from_secs(60), ok(vec![9.0, 9.0])).expect("infallible");
        assert!(second.hit, "fresh entry must hit");
        assert!(Arc::ptr_eq(&first.round, &second.round));
        assert_eq!(cache.generation(slot), 1);
    }

    #[test]
    fn zero_max_age_forces_a_new_generation() {
        let cache = AnswerCache::new();
        let slot = SlotOfDay(3);
        let a = cache.round_for(slot, Duration::ZERO, ok(vec![1.0])).expect("infallible");
        let b = cache.round_for(slot, Duration::ZERO, ok(vec![2.0])).expect("infallible");
        assert!(!a.hit && !b.hit);
        assert_eq!(b.round.generation, 2);
        assert_eq!(b.round.values, vec![2.0]);
    }

    #[test]
    fn slots_age_independently() {
        let cache = AnswerCache::new();
        cache.round_for(SlotOfDay(0), Duration::ZERO, ok(vec![1.0])).expect("infallible");
        let other =
            cache.round_for(SlotOfDay(1), Duration::from_secs(60), ok(vec![2.0])).expect("ok");
        assert_eq!(other.round.generation, 1);
        assert_eq!(cache.generation(SlotOfDay(0)), 1);
        assert_eq!(cache.generation(SlotOfDay(2)), 0);
    }

    #[test]
    fn recompute_receives_the_stale_round_as_seed() {
        let cache = AnswerCache::new();
        let slot = SlotOfDay(11);
        let first = cache
            .round_for(slot, Duration::ZERO, |_, stale| {
                assert!(stale.is_none(), "a fresh slot has no seed");
                Ok::<_, Infallible>(RoundData {
                    values: vec![3.0],
                    observations: vec![(RoadId(0), 3.0)],
                })
            })
            .expect("infallible");
        assert_eq!(first.round.observations, vec![(RoadId(0), 3.0)]);
        let second = cache
            .round_for(slot, Duration::ZERO, |_, stale| {
                let stale = stale.expect("expired entry must be offered as the seed");
                assert_eq!(stale.generation, 1);
                assert_eq!(stale.values, vec![3.0]);
                assert_eq!(stale.observations, vec![(RoadId(0), 3.0)]);
                Ok::<_, Infallible>(RoundData { values: vec![4.0], observations: vec![] })
            })
            .expect("infallible");
        assert_eq!(second.round.generation, 2);
        // Different slots never share a seed: the cells are per-slot.
        cache
            .round_for(SlotOfDay(12), Duration::ZERO, |_, stale| {
                assert!(stale.is_none(), "seeds must never cross slots");
                Ok::<_, Infallible>(RoundData { values: vec![5.0], observations: vec![] })
            })
            .expect("infallible");
    }

    #[test]
    fn compute_errors_do_not_advance_the_generation() {
        let cache = AnswerCache::new();
        let slot = SlotOfDay(5);
        let err: Result<CacheOutcome, &str> =
            cache.round_for(slot, Duration::ZERO, |_, _| Err("no"));
        assert_eq!(err.err(), Some("no"));
        assert_eq!(cache.generation(slot), 0);
        let after = cache.round_for(slot, Duration::ZERO, ok(vec![4.0])).expect("infallible");
        assert_eq!(after.round.generation, 1);
    }

    #[test]
    fn out_of_range_slots_compute_through_without_caching() {
        let cache = AnswerCache::new();
        let bogus = SlotOfDay(999);
        let a = cache.round_for(bogus, Duration::from_secs(60), ok(vec![1.0])).expect("ok");
        let b = cache.round_for(bogus, Duration::from_secs(60), ok(vec![2.0])).expect("ok");
        assert!(!a.hit && !b.hit);
        assert_eq!(b.round.values, vec![2.0]);
        assert_eq!(cache.generation(bogus), 0);
    }

    /// The offline-cache coalescing property, generation-aware: concurrent
    /// cold builds of one slot run `compute` exactly once; late arrivals
    /// block on the slot lock and then hit.
    #[test]
    fn concurrent_cold_builds_coalesce() {
        let cache = AnswerCache::new();
        let slot = SlotOfDay(42);
        let builds = AtomicUsize::new(0);
        let racers = 4;
        let start = Barrier::new(racers);
        let outcomes: Vec<CacheOutcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..racers)
                .map(|_| {
                    scope.spawn(|| {
                        start.wait();
                        cache
                            .round_for(slot, Duration::from_secs(60), |generation, _| {
                                builds.fetch_add(1, Ordering::SeqCst);
                                std::thread::sleep(Duration::from_millis(20));
                                Ok::<_, Infallible>(RoundData {
                                    values: vec![generation as f64],
                                    observations: vec![],
                                })
                            })
                            .expect("infallible")
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
                .collect()
        });
        assert_eq!(builds.load(Ordering::SeqCst), 1, "duplicate builds must coalesce");
        assert_eq!(outcomes.iter().filter(|o| !o.hit).count(), 1);
        for o in &outcomes[1..] {
            assert!(Arc::ptr_eq(&outcomes[0].round, &o.round));
        }
    }

    /// The coherent-publication contract: with writers publishing through
    /// [`AnswerCache::round_for_published`], a [`Coherence::read`] over
    /// (rounds, Σ generations) sees the pair in lockstep at every instant,
    /// even while rounds complete concurrently on several slots.
    #[test]
    fn published_rounds_and_generations_never_tear() {
        let cache = AnswerCache::new();
        let rounds = AtomicUsize::new(0);
        let gate = Coherence::new();
        let writers = 4usize;
        let per_writer = 40usize;
        std::thread::scope(|scope| {
            for w in 0..writers {
                let cache = &cache;
                let rounds = &rounds;
                let gate = &gate;
                scope.spawn(move || {
                    for i in 0..per_writer {
                        let slot = SlotOfDay(((w * 71 + i * 13) % 288) as u16);
                        cache
                            .round_for_published(slot, Duration::ZERO, gate, ok(vec![1.0]), || {
                                rounds.fetch_add(1, Ordering::Relaxed);
                            })
                            .expect("infallible");
                    }
                });
            }
            scope.spawn(|| {
                for _ in 0..200 {
                    let (r, g) = gate.read(|| {
                        (
                            rounds.load(Ordering::Relaxed),
                            cache.generations().iter().sum::<u64>() as usize,
                        )
                    });
                    assert_eq!(r, g, "rounds and generations tore apart");
                }
            });
        });
        assert_eq!(rounds.load(Ordering::SeqCst), writers * per_writer);
        assert_eq!(
            cache.generations().iter().sum::<u64>() as usize,
            writers * per_writer,
            "every published round advances exactly one slot generation"
        );
    }
}
