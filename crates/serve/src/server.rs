//! The serving loop: admission → slot-aware micro-batching → shared
//! rounds → fan-out.
//!
//! ## Shape
//!
//! [`serve`] owns the whole lifecycle. It spins up `workers` serving
//! loops on an [`rtse_pool::ComputePool`] scope (the workspace's one
//! sanctioned home for OS threads), hands the caller a [`ServerHandle`],
//! and drains cleanly when the caller's closure returns — every pending
//! request resolves; none is silently dropped.
//!
//! ## Batching semantics
//!
//! Requests are grouped by slot. A worker that picks up a request also
//! takes every queued request for the same slot, then holds the batch
//! open for [`crate::ServeConfig::batch_window`] to catch stragglers. The
//! batch is answered by **one** OCS→crowd→GSP round over the union of the
//! batch's roads: GSP's output covers the whole network, so the shared
//! round answers every waiter exactly as a fresh
//! [`CrowdRtse::answer_query`] for the merged query would — bit-identical
//! (property-tested in `tests/serve_equivalence.rs`).
//!
//! ## Admission control
//!
//! The request queue is bounded ([`crate::ServeError::QueueFull`]),
//! deadlines shed late requests with a typed error before *and* after the
//! round (never a stale estimate), and [`ServerHandle::pressure`] exposes
//! queue occupancy as the backpressure signal.

use crate::cache::{AnswerCache, CacheOutcome, CachedRound, RoundData};
use crate::coherence::Coherence;
use crate::config::ServeConfig;
use crate::error::ServeError;
use crate::metrics::{MetricsSnapshot, ServeMetrics, ServeSnapshot};
use crate::request::{ServeRequest, ServedAnswer, Ticket};
use crowd_rtse_core::{CrowdRtse, PrevRound, SpeedQuery};
use rtse_crowd::WorkerPool;
use rtse_data::{SlotOfDay, SLOTS_PER_DAY};
use rtse_graph::RoadId;
use rtse_obs::Stage;
use rtse_pool::ComputePool;
use rtse_sync::mpsc::{channel, Sender};
use rtse_sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// The physical world one serving deployment probes: the live crowd, the
/// per-road answer costs, and the ground truth the simulated workers
/// measure (in a real deployment that last one is reality itself).
pub struct ServeWorld<'w> {
    /// The crowd whose coverage defines the candidate set `R^w`.
    pub workers: &'w WorkerPool,
    /// Per-road answer requirements (length = number of roads).
    pub costs: &'w [u32],
    /// Ground-truth snapshots the campaign's workers observe.
    pub truth: &'w dyn TruthSource,
}

/// Ground-truth provider for the serving loop. Implementations must be
/// cheap (called once per computed round) and thread-safe.
pub trait TruthSource: Sync {
    /// Speeds (one per road) the crowd would measure at `slot`.
    fn snapshot(&self, slot: SlotOfDay) -> &[f64];
}

impl TruthSource for rtse_data::SynthDataset {
    fn snapshot(&self, slot: SlotOfDay) -> &[f64] {
        self.ground_truth_snapshot(slot)
    }
}

type Reply = Result<ServedAnswer, ServeError>;

/// One admitted request waiting in the queue.
struct Pending {
    /// Canonical (sorted, deduplicated) roads.
    roads: Vec<RoadId>,
    slot: SlotOfDay,
    deadline: Option<Instant>,
    max_staleness: Option<Duration>,
    submitted_at: Instant,
    reply: Sender<Reply>,
}

struct QueueState {
    queue: VecDeque<Pending>,
    /// Gate for staging deterministic bursts (see [`ServerHandle::pause`]).
    paused: bool,
    /// New submissions are admitted only while true.
    accepting: bool,
    /// Workers exit once this is set and the queue is drained.
    shutdown: bool,
}

struct Shared<'a> {
    state: Mutex<QueueState>,
    arrivals: Condvar,
    cache: AnswerCache,
    metrics: ServeMetrics,
    /// Keeps the linked (rounds, generations) updates torn-read-free; see
    /// [`crate::coherence`] and [`ServerHandle::coherent_snapshot`].
    coherence: Coherence,
    engine: &'a CrowdRtse<'a>,
    world: &'a ServeWorld<'a>,
    config: &'a ServeConfig,
}

fn lock<'m>(mutex: &'m Mutex<QueueState>) -> MutexGuard<'m, QueueState> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// What [`serve`] returns: the caller closure's value plus the final
/// (quiescent, exact) metrics.
#[derive(Debug)]
pub struct ServeOutcome<R> {
    /// The closure's return value.
    pub value: R,
    /// Counters after the queue fully drained.
    pub metrics: MetricsSnapshot,
}

/// Runs a serving deployment for the duration of `run`.
///
/// Checks the entry contract first — the config's invariants and the
/// world's dimensions — and returns a typed error instead of panicking on
/// a bad setup. Then spawns the serving loops on a pool scope, calls
/// `run` with the [`ServerHandle`] clients submit through, and on return
/// stops admission, drains every pending request (each resolves to an
/// answer or a typed error), joins the loops, and reports final metrics.
pub fn serve<R>(
    engine: &CrowdRtse<'_>,
    world: &ServeWorld<'_>,
    config: &ServeConfig,
    run: impl FnOnce(&ServerHandle<'_>) -> R,
) -> Result<ServeOutcome<R>, ServeError> {
    if let Err(v) = rtse_check::Validate::validate(config) {
        return Err(ServeError::InvalidConfig(v));
    }
    let num_roads = engine.graph().num_roads();
    if world.costs.len() != num_roads {
        return Err(ServeError::WorldMismatch {
            what: "costs",
            expected: num_roads,
            got: world.costs.len(),
        });
    }
    if let Some(max) = world.workers.covered_roads().iter().map(|r| r.index()).max() {
        if max >= num_roads {
            return Err(ServeError::WorldMismatch {
                what: "worker pool coverage",
                expected: num_roads,
                got: max + 1,
            });
        }
    }

    // Prewarm the per-slot correlation caches before any request is
    // admitted: a cold Γ build inside the first batch's compute would
    // stack on the batch window and surface as a `serve.queue_wait` tail
    // (BENCH_serve.json's steady_mixed p99 regression). `corr_table` is
    // per-slot get-or-init, so duplicate slots coalesce and already-warm
    // slots return immediately.
    for &slot in &config.prewarm_slots {
        let _ = engine.offline().corr_table(engine.graph(), slot);
    }

    let shared = Shared {
        state: Mutex::new(QueueState {
            queue: VecDeque::new(),
            paused: false,
            accepting: true,
            shutdown: false,
        }),
        arrivals: Condvar::new(),
        cache: AnswerCache::new(),
        metrics: ServeMetrics::with_obs(config.obs.clone()),
        coherence: Coherence::new(),
        engine,
        world,
        config,
    };

    let workers = match config.workers {
        0 => rtse_pool::env_threads(),
        n => n,
    };
    // One spare thread keeps the pool multi-threaded even for a single
    // serving loop: at width 1 `ComputePool::scoped` runs jobs inline on
    // submission, which would run the loop on the caller's thread and
    // deadlock before `run` ever executed.
    let pool = ComputePool::new(workers + 1);
    let value = pool.scoped(|scope| {
        for _ in 0..workers {
            let shared = &shared;
            scope.submit(Box::new(move || worker_loop(shared)));
        }
        // Signals shutdown when `run` returns — or unwinds — so the loops
        // always exit and the pool scope always joins.
        let _guard = ShutdownGuard { shared: &shared };
        run(&ServerHandle { shared: &shared })
    });
    Ok(ServeOutcome { value, metrics: shared.metrics.snapshot() })
}

struct ShutdownGuard<'a, 'b> {
    shared: &'a Shared<'b>,
}

impl Drop for ShutdownGuard<'_, '_> {
    fn drop(&mut self) {
        let mut st = lock(&self.shared.state);
        st.accepting = false;
        st.shutdown = true;
        st.paused = false;
        drop(st);
        self.shared.arrivals.notify_all();
    }
}

/// Client-side handle: submit queries, observe backpressure and metrics.
/// Shareable across client threads (`&ServerHandle` is `Send + Sync`).
pub struct ServerHandle<'a> {
    shared: &'a Shared<'a>,
}

impl ServerHandle<'_> {
    /// Admits a request, returning a [`Ticket`] that resolves when the
    /// serving workers answer it.
    ///
    /// Typed rejections at admission: an empty road list
    /// ([`ServeError::EmptyQuery`]), an out-of-range road or slot, a full
    /// queue ([`ServeError::QueueFull`] — the backpressure path), or a
    /// draining server ([`ServeError::ShuttingDown`]).
    pub fn submit(&self, request: ServeRequest) -> Result<Ticket, ServeError> {
        let now = Instant::now();
        let ServeRequest { roads, slot, deadline, max_staleness } = request;
        let query = SpeedQuery::try_new(roads, slot)?;
        let num_roads = self.shared.engine.graph().num_roads();
        if let Some(&road) = query.roads.iter().find(|r| r.index() >= num_roads) {
            return Err(ServeError::RoadOutOfRange { road, num_roads });
        }
        if slot.index() >= SLOTS_PER_DAY {
            return Err(ServeError::SlotOutOfRange { slot });
        }
        // Budget bounds are admission checks, not clamps: a hostile
        // deadline must not park a request past the promised freshness,
        // and a loose max_staleness must not let a cached round older
        // than the TTL answer it (the batch freshness bound is the
        // minimum over members — a lone request is its own batch).
        if let Some(budget) = deadline {
            let bound = self.shared.config.deadline_bound();
            if budget > bound {
                return Err(ServeError::DeadlineOutOfBounds { requested: budget, bound });
            }
        }
        if let Some(budget) = max_staleness {
            let bound = self.shared.config.staleness_bound();
            if budget > bound {
                return Err(ServeError::StalenessOutOfBounds { requested: budget, bound });
            }
        }
        let deadline = deadline
            .or(self.shared.config.default_deadline)
            .and_then(|budget| now.checked_add(budget));
        let (tx, rx) = channel();
        let pending = Pending {
            roads: query.roads,
            slot,
            deadline,
            max_staleness,
            submitted_at: now,
            reply: tx,
        };
        {
            let mut st = lock(&self.shared.state);
            if !st.accepting {
                return Err(ServeError::ShuttingDown);
            }
            if st.queue.len() >= self.shared.config.queue_depth {
                self.shared.metrics.note_rejected();
                return Err(ServeError::QueueFull { depth: self.shared.config.queue_depth });
            }
            st.queue.push_back(pending);
        }
        self.shared.metrics.note_submitted();
        self.shared.arrivals.notify_all();
        Ok(Ticket { rx })
    }

    /// Submits and blocks for the answer — the one-call client path.
    pub fn query(&self, request: ServeRequest) -> Result<ServedAnswer, ServeError> {
        self.submit(request)?.wait()
    }

    /// Queue occupancy in `[0, 1]` — the backpressure signal. Clients
    /// seeing values near 1 should back off before hitting
    /// [`ServeError::QueueFull`].
    pub fn pressure(&self) -> f64 {
        let queued = lock(&self.shared.state).queue.len();
        queued as f64 / self.shared.config.queue_depth.max(1) as f64
    }

    /// Requests currently queued (admitted, not yet picked up).
    pub fn queue_len(&self) -> usize {
        lock(&self.shared.state).queue.len()
    }

    /// Live counters (quiescently consistent; exact after drain).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Current cache generation of a slot (0 = never computed).
    pub fn cache_generation(&self, slot: SlotOfDay) -> u64 {
        self.shared.cache.generation(slot)
    }

    /// One coherent view of the counters *and* the per-slot cache
    /// generations.
    ///
    /// [`Self::metrics`] and [`Self::cache_generation`] are two separate
    /// reads; a round can complete between them, so differencing their
    /// results (e.g. `rounds − Σ generations` as an "in-flight" gauge)
    /// tears. This read runs inside the same coherence section the round
    /// publication writes under, so the returned snapshot always satisfies
    /// `metrics.rounds == total_generations()` — exactly, at any moment
    /// under load, not just after a drain.
    pub fn coherent_snapshot(&self) -> ServeSnapshot {
        self.shared.coherence.read(|| ServeSnapshot {
            metrics: self.shared.metrics.snapshot(),
            generations: self.shared.cache.generations(),
        })
    }

    /// Holds the serving workers: admitted requests queue up but none is
    /// picked up until [`Self::resume`]. Load generators and tests use
    /// this to stage a burst and measure pure coalescing deterministically.
    pub fn pause(&self) {
        lock(&self.shared.state).paused = true;
    }

    /// Releases a [`Self::pause`] gate.
    pub fn resume(&self) {
        lock(&self.shared.state).paused = false;
        self.shared.arrivals.notify_all();
    }
}

/// One serving loop: repeatedly assemble a same-slot batch and answer it.
fn worker_loop(shared: &Shared<'_>) {
    while let Some(mut batch) = next_batch(shared) {
        extend_batch_over_window(shared, &mut batch);
        serve_batch(shared, batch);
    }
}

/// Blocks until a request is available and returns it together with every
/// queued request for the same slot; `None` once shutdown has drained the
/// queue.
fn next_batch(shared: &Shared<'_>) -> Option<Vec<Pending>> {
    let mut st = lock(&shared.state);
    loop {
        if !st.paused || st.shutdown {
            if let Some(first) = st.queue.pop_front() {
                let slot = first.slot;
                let mut batch = vec![first];
                drain_slot(&mut st.queue, slot, &mut batch);
                return Some(batch);
            }
            if st.shutdown {
                return None;
            }
        }
        st = shared.arrivals.wait(st).unwrap_or_else(PoisonError::into_inner);
    }
}

/// Moves every queued request for `slot` into `batch` (queue order kept).
fn drain_slot(queue: &mut VecDeque<Pending>, slot: SlotOfDay, batch: &mut Vec<Pending>) {
    let mut i = 0;
    while i < queue.len() {
        if queue[i].slot == slot {
            if let Some(p) = queue.remove(i) {
                batch.push(p);
            }
        } else {
            i += 1;
        }
    }
}

/// Holds the batch open for the configured window, absorbing same-slot
/// stragglers as they arrive. Returns early on shutdown.
fn extend_batch_over_window(shared: &Shared<'_>, batch: &mut Vec<Pending>) {
    let window = shared.config.batch_window;
    if window.is_zero() {
        return;
    }
    let Some(slot) = batch.first().map(|p| p.slot) else { return };
    let Some(until) = Instant::now().checked_add(window) else { return };
    let mut st = lock(&shared.state);
    loop {
        drain_slot(&mut st.queue, slot, batch);
        if st.shutdown {
            return;
        }
        let left = until.saturating_duration_since(Instant::now());
        if left.is_zero() {
            return;
        }
        let (guard, _timed_out) =
            shared.arrivals.wait_timeout(st, left).unwrap_or_else(PoisonError::into_inner);
        st = guard;
    }
}

/// Answers one same-slot batch from the cache or a single shared round,
/// shedding expired requests with typed errors on both sides of the
/// compute.
fn serve_batch(shared: &Shared<'_>, batch: Vec<Pending>) {
    let now = Instant::now();
    let mut live: Vec<Pending> = Vec::with_capacity(batch.len());
    for pending in batch {
        if shed_if_expired(shared, &pending, now) {
            continue;
        }
        // Queue wait measured at pickup: admission to the start of the
        // batch that will answer (or shed) the request.
        shared.config.obs.record_duration(
            Stage::ServeQueueWait,
            now.saturating_duration_since(pending.submitted_at),
        );
        live.push(pending);
    }
    let Some(slot) = live.first().map(|p| p.slot) else { return };

    // The strictest waiter decides how fresh the round must be.
    let ttl = shared.config.ttl;
    let max_age = live.iter().map(|p| p.max_staleness.unwrap_or(ttl)).min().unwrap_or(ttl);

    // Canonical batch query: the union of every waiter's roads. One round
    // over the union answers everyone (GSP output covers the network).
    let mut union: Vec<RoadId> = live.iter().flat_map(|p| p.roads.iter().copied()).collect();
    union.sort_unstable();
    union.dedup();

    // The rounds counter is published inside the same coherence write
    // section as the slot's generation store, keeping
    // `Σ generations == rounds` observable at every instant (see
    // `ServerHandle::coherent_snapshot`).
    let outcome = shared.cache.round_for_published(
        slot,
        max_age,
        &shared.coherence,
        |_generation, stale| compute_round(shared, union, slot, stale),
        || shared.metrics.note_round(),
    );
    match outcome {
        Ok(cached) => {
            let batch_size = live.len();
            shared.metrics.note_batch(batch_size);
            for pending in live {
                respond(shared, pending, &cached, batch_size);
            }
        }
        Err(e) => {
            for pending in live {
                let _ = pending.reply.send(Err(e.clone()));
            }
        }
    }
}

/// Sheds `pending` with the typed deadline error if it is past due at
/// `now`. Returns whether it was shed.
fn shed_if_expired(shared: &Shared<'_>, pending: &Pending, now: Instant) -> bool {
    let Some(deadline) = pending.deadline else { return false };
    if now <= deadline {
        return false;
    }
    shared.metrics.note_shed();
    let missed_by = now.saturating_duration_since(deadline);
    let _ = pending.reply.send(Err(ServeError::DeadlineExceeded { missed_by }));
    true
}

/// Runs the shared OCS→crowd→GSP round for a slot over the merged roads.
///
/// `stale` is the slot's expired previous round, lent by the cache for
/// the duration of the recompute: under a delta policy the engine seeds
/// its propagation from it (`gsp.delta_*` stages), and the first round of
/// a slot — including right after a rollover, since cache cells are
/// per-slot — arrives with `None` and propagates cold.
fn compute_round(
    shared: &Shared<'_>,
    union: Vec<RoadId>,
    slot: SlotOfDay,
    stale: Option<&CachedRound>,
) -> Result<RoundData, ServeError> {
    let truth = shared.world.truth.snapshot(slot);
    let num_roads = shared.engine.graph().num_roads();
    if truth.len() != num_roads {
        return Err(ServeError::WorldMismatch {
            what: "truth snapshot",
            expected: num_roads,
            got: truth.len(),
        });
    }
    let prev =
        stale.map(|round| PrevRound { values: &round.values, observations: &round.observations });
    let query = SpeedQuery::new(union, slot);
    let _span = shared.config.obs.span(Stage::ServeRound);
    let answer = shared.engine.answer_query_warm(
        &query,
        shared.world.workers,
        shared.world.costs,
        truth,
        &shared.config.online,
        prev,
    );
    Ok(RoundData { values: answer.all_values, observations: answer.observations })
}

/// Fans one waiter's answer out of the shared round, re-checking its
/// deadline so a request that expired *during* the round still gets the
/// typed rejection and never a late estimate.
fn respond(shared: &Shared<'_>, pending: Pending, cached: &CacheOutcome, batch_size: usize) {
    let now = Instant::now();
    if shed_if_expired(shared, &pending, now) {
        return;
    }
    // Sized fill, not `collect`: the answer length is known up front and
    // this runs once per waiter per round (`cargo xtask flow` hot-alloc
    // discipline; see DESIGN.md §10).
    let mut estimates: Vec<f64> = Vec::with_capacity(pending.roads.len());
    estimates.extend(pending.roads.iter().map(|r| cached.round.values[r.index()]));
    let answer = ServedAnswer {
        roads: pending.roads,
        estimates,
        slot: pending.slot,
        generation: cached.round.generation,
        age: now.saturating_duration_since(cached.round.computed_at),
        batch_size,
        cache_hit: cached.hit,
        wait: now.saturating_duration_since(pending.submitted_at),
    };
    #[cfg(feature = "validate")]
    {
        if let Err(v) = rtse_check::Validate::validate(&answer) {
            rtse_check::fail(&v);
        }
    }
    shared.metrics.note_answered(cached.hit);
    let _ = pending.reply.send(Ok(answer));
}
