//! rtse-serve — concurrent query serving for the crowdsourced
//! speed-estimation engine.
//!
//! The offline/online pipeline in `crowd-rtse-core` answers one
//! [`SpeedQuery`](crowd_rtse_core::SpeedQuery) per call. A deployment
//! faces many concurrent clients whose queries cluster on the *current*
//! slot — and one OCS→crowd→GSP round already produces estimates for the
//! whole network. This crate exploits that: it puts a serving layer in
//! front of the engine that
//!
//! - **micro-batches** concurrent same-slot queries into one shared round
//!   ([`serve`], [`ServeConfig::batch_window`]),
//! - **caches** each slot's round with TTL/staleness bounds and generation
//!   counters ([`AnswerCache`]),
//! - **admits** work through a bounded queue with deadline-based load
//!   shedding — overload and lateness surface as typed [`ServeError`]s,
//!   never as silent drops or stale estimates.
//!
//! Shared answers are bit-identical to fresh single-query answers for the
//! same slot and seed: the engine is deterministic and estimates are reads
//! out of the round's full-network `all_values` either way.
//!
//! ```no_run
//! use rtse_serve::{serve, ServeConfig, ServeRequest, ServeWorld};
//! # fn demo(engine: &crowd_rtse_core::CrowdRtse<'_>, world: &ServeWorld<'_>) {
//! let config = ServeConfig::from_env();
//! let outcome = serve(engine, world, &config, |handle| {
//!     handle.query(ServeRequest::new(vec![rtse_graph::RoadId(3)], rtse_data::SlotOfDay(96)))
//! });
//! # let _ = outcome;
//! # }
//! ```

pub mod cache;
pub mod coherence;
pub mod config;
pub mod error;
pub mod metrics;
pub mod request;
pub mod server;

pub use cache::{AnswerCache, CacheOutcome, CachedRound, RoundData};
pub use coherence::Coherence;
pub use config::{
    ServeConfig, BATCH_WINDOW_ENV, DEADLINE_ENV, MAX_BATCH_WINDOW, MAX_TTL, MAX_WORKERS,
    QUEUE_DEPTH_ENV,
};
pub use error::ServeError;
pub use metrics::{MetricsSnapshot, ServeMetrics, ServeSnapshot};
pub use request::{ServeRequest, ServedAnswer, Ticket};
pub use server::{serve, ServeOutcome, ServeWorld, ServerHandle, TruthSource};
