//! Typed serving errors.
//!
//! Every way a request can fail to produce an estimate is a variant here;
//! the server never panics on a bad request and never drops one silently —
//! each submitted request's ticket resolves to `Ok(answer)` or to one of
//! these errors.

use crowd_rtse_core::QueryError;
use rtse_check::InvariantViolation;
use rtse_data::SlotOfDay;
use rtse_graph::RoadId;
use std::error::Error;
use std::fmt;
use std::time::Duration;

/// Why a request was not answered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Admission control: the bounded request queue is at capacity.
    /// Back off and retry; [`crate::ServerHandle::pressure`] is the
    /// backpressure signal to watch.
    QueueFull {
        /// The configured queue capacity that was hit.
        depth: usize,
    },
    /// The request's deadline expired before an answer could be produced.
    /// Shed requests get this typed rejection — never a stale estimate,
    /// never a silent drop.
    DeadlineExceeded {
        /// How far past the deadline the server was when it shed the
        /// request.
        missed_by: Duration,
    },
    /// The server is draining: no new requests are admitted (pending ones
    /// still resolve).
    ShuttingDown,
    /// The query named no roads ([`crowd_rtse_core::SpeedQuery::try_new`]).
    EmptyQuery,
    /// A queried road id is not a road of the served network.
    RoadOutOfRange {
        /// The offending road id.
        road: RoadId,
        /// Roads in the served network.
        num_roads: usize,
    },
    /// The requested slot is not a slot of the day (`0..288`).
    SlotOutOfRange {
        /// The offending slot.
        slot: SlotOfDay,
    },
    /// The serving world is dimensionally inconsistent with the engine's
    /// network (e.g. a truth snapshot or cost vector of the wrong length).
    WorldMismatch {
        /// Which input was inconsistent.
        what: &'static str,
        /// Roads in the served network.
        expected: usize,
        /// Entries actually provided.
        got: usize,
    },
    /// The request's deadline exceeds the server's admissible bound
    /// ([`crate::ServeConfig::deadline_bound`]). Rejected at admission:
    /// a hostile budget must not park a request in the queue past the
    /// freshness the server promises.
    DeadlineOutOfBounds {
        /// The requested latency budget.
        requested: Duration,
        /// The server's bound.
        bound: Duration,
    },
    /// The request's staleness budget exceeds the server's TTL
    /// ([`crate::ServeConfig::staleness_bound`]). Rejected at admission —
    /// not silently clamped — because a loose `max_staleness` in a batch
    /// would otherwise let a cached round *older than the TTL* answer it
    /// (the batch freshness bound is the minimum over its members, and a
    /// lone request is its own batch).
    StalenessOutOfBounds {
        /// The requested staleness budget.
        requested: Duration,
        /// The server's bound (its TTL).
        bound: Duration,
    },
    /// The serve configuration violates its contract
    /// ([`rtse_check::Validate`] on [`crate::ServeConfig`]).
    InvalidConfig(InvariantViolation),
    /// The server dropped the reply channel without answering. This is
    /// defensive: the drain-on-shutdown protocol answers every pending
    /// request, so seeing this indicates a server bug.
    ChannelClosed,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::QueueFull { depth } => {
                write!(f, "request queue full (capacity {depth}); back off and retry")
            }
            ServeError::DeadlineExceeded { missed_by } => {
                write!(f, "deadline exceeded by {missed_by:?}; request shed")
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::EmptyQuery => write!(f, "{}", QueryError::EmptyRoads),
            ServeError::RoadOutOfRange { road, num_roads } => {
                write!(f, "queried road {road} is out of range (network has {num_roads} roads)")
            }
            ServeError::SlotOutOfRange { slot } => {
                write!(f, "slot {} is not a slot of the day (0..288)", slot.0)
            }
            ServeError::WorldMismatch { what, expected, got } => {
                write!(f, "{what} has {got} entries but the network has {expected} roads")
            }
            ServeError::DeadlineOutOfBounds { requested, bound } => {
                write!(f, "deadline {requested:?} exceeds the server's {bound:?} bound")
            }
            ServeError::StalenessOutOfBounds { requested, bound } => {
                write!(f, "max_staleness {requested:?} exceeds the server's {bound:?} TTL")
            }
            ServeError::InvalidConfig(v) => write!(f, "invalid serve config: {v}"),
            ServeError::ChannelClosed => {
                write!(f, "server closed the reply channel without answering")
            }
        }
    }
}

impl Error for ServeError {}

impl From<QueryError> for ServeError {
    fn from(e: QueryError) -> Self {
        match e {
            QueryError::EmptyRoads => ServeError::EmptyQuery,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        let cases: Vec<(ServeError, &str)> = vec![
            (ServeError::QueueFull { depth: 4 }, "capacity 4"),
            (
                ServeError::DeadlineExceeded { missed_by: Duration::from_millis(3) },
                "deadline exceeded",
            ),
            (ServeError::ShuttingDown, "shutting down"),
            (ServeError::EmptyQuery, "no roads"),
            (ServeError::RoadOutOfRange { road: RoadId(9), num_roads: 5 }, "out of range"),
            (ServeError::SlotOutOfRange { slot: SlotOfDay(400) }, "400"),
            (ServeError::WorldMismatch { what: "costs", expected: 5, got: 3 }, "costs"),
            (
                ServeError::DeadlineOutOfBounds {
                    requested: Duration::from_secs(900),
                    bound: Duration::from_secs(60),
                },
                "bound",
            ),
            (
                ServeError::StalenessOutOfBounds {
                    requested: Duration::from_secs(900),
                    bound: Duration::from_secs(60),
                },
                "TTL",
            ),
            (ServeError::ChannelClosed, "without answering"),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
        }
    }

    #[test]
    fn query_error_converts() {
        assert_eq!(ServeError::from(QueryError::EmptyRoads), ServeError::EmptyQuery);
    }
}
