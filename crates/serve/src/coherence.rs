//! Cross-counter coherence for the serving metrics.
//!
//! ## The torn-read problem
//!
//! The serving layer maintains two families of counters that are linked
//! by an invariant: every successfully computed round advances exactly
//! one slot's cache generation **and** bumps the `rounds` metric, so at
//! any quiescent moment `Σ generations == rounds`. Both families are
//! individually atomic, but a reader that loads them with two separate
//! calls can interleave with a round completing in between and observe
//! `rounds == n + 1` while the generations still sum to `n` (or vice
//! versa, depending on read order) — a *torn read*. Dashboards and load
//! harnesses that difference the two values then report phantom
//! in-flight rounds that never existed.
//!
//! ## The fix
//!
//! [`Coherence`] is a writer-exclusive sequence lock. Writers wrap the
//! linked updates (generation store + rounds bump) in [`Coherence::write`];
//! readers wrap the linked loads in [`Coherence::read`], which retries
//! until it observes a quiet, unchanged sequence number. Because every
//! protected value is itself an atomic, the retry loop involves no torn
//! *memory* — only torn *relationships* — so no `unsafe` is needed and
//! the workspace's `unsafe_code = "deny"` lint holds.
//!
//! Writers serialize on an internal mutex (round publications are rare
//! and short); readers never block writers and never take the writer
//! mutex — they spin only while a write section is open or raced past
//! them, both bounded by the tiny write-section body.

use rtse_sync::atomic::{fence, AtomicU64, Ordering};
use rtse_sync::{Mutex, MutexGuard, PoisonError};

/// A writer-exclusive seqlock guarding *relationships* between atomics.
#[derive(Debug, Default)]
pub struct Coherence {
    /// Even = quiet, odd = a write section is open.
    seq: AtomicU64,
    /// Serializes writers; readers never touch it.
    writer: Mutex<()>,
}

fn lock_writer(mutex: &Mutex<()>) -> MutexGuard<'_, ()> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Coherence {
    /// A fresh, quiet coherence gate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `update` as one coherent write section: no [`Self::read`]
    /// section overlapping any part of it will return.
    ///
    /// Orderings (the crossbeam seqlock pattern; DESIGN.md §8): the entry
    /// increment is `AcqRel` — its release half publishes "section open"
    /// before any protected store, its acquire half keeps those stores
    /// from floating above it; the exit increment is `Release` so every
    /// protected store is visible before the section reads as closed.
    pub fn write<T>(&self, update: impl FnOnce() -> T) -> T {
        let _exclusive = lock_writer(&self.writer);
        self.seq.fetch_add(1, Ordering::AcqRel);
        let out = update();
        self.seq.fetch_add(1, Ordering::Release);
        out
    }

    /// Runs `load` until it executes without overlapping any write
    /// section, and returns that consistent result. `load` must be a pure
    /// read (it may run several times).
    ///
    /// Orderings: the pre-load is `Acquire` (protected loads cannot float
    /// above it); the validation re-read may be `Relaxed` because the
    /// [`fence`]`(Acquire)` before it orders the protected loads ahead of
    /// it, pairing with the writer's `Release` exit.
    pub fn read<T>(&self, mut load: impl FnMut() -> T) -> T {
        loop {
            let before = self.seq.load(Ordering::Acquire);
            if before % 2 == 1 {
                rtse_sync::hint::spin_loop();
                continue;
            }
            let out = load();
            fence(Ordering::Acquire);
            if self.seq.load(Ordering::Relaxed) == before {
                return out;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Barrier;

    /// The torn-read case, deterministically: a write section is held open
    /// at the exact point where the two linked counters disagree. A raw
    /// two-load read observes the tear; a coherent read does not return
    /// until the writer closes the section, and then sees both updates.
    #[test]
    fn coherent_read_never_observes_a_half_applied_write() {
        let gate = Coherence::new();
        let rounds = AtomicU64::new(0);
        let generations = AtomicU64::new(0);
        let mid_write = Barrier::new(2);
        let finish_write = Barrier::new(2);

        std::thread::scope(|scope| {
            scope.spawn(|| {
                gate.write(|| {
                    rounds.fetch_add(1, Ordering::SeqCst);
                    mid_write.wait(); // tear is now observable to raw readers
                    finish_write.wait(); // held open until the main thread has seen it
                    generations.fetch_add(1, Ordering::SeqCst);
                });
            });

            mid_write.wait();
            // Raw reads tear: the linked counters disagree mid-write.
            let raw = (rounds.load(Ordering::SeqCst), generations.load(Ordering::SeqCst));
            assert_eq!(raw, (1, 0), "raw two-load read observes the torn state");

            // A coherent read started now must NOT resolve to the torn
            // state: it spins until the write section closes.
            let reader = scope.spawn(|| {
                gate.read(|| (rounds.load(Ordering::SeqCst), generations.load(Ordering::SeqCst)))
            });
            finish_write.wait();
            let coherent = reader.join().unwrap_or_else(|e| std::panic::resume_unwind(e));
            assert_eq!(coherent, (1, 1), "coherent read sees both linked updates or neither");
        });
    }

    /// Concurrent writers serialize and readers always see the invariant
    /// (the two counters move in lockstep, so coherent reads see equality).
    #[test]
    fn invariant_holds_under_concurrent_writers_and_readers() {
        let gate = Coherence::new();
        let a = AtomicU64::new(0);
        let b = AtomicU64::new(0);
        let writers = 4;
        let per_writer = 200;
        std::thread::scope(|scope| {
            for _ in 0..writers {
                scope.spawn(|| {
                    for _ in 0..per_writer {
                        gate.write(|| {
                            a.fetch_add(1, Ordering::Relaxed);
                            b.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
            scope.spawn(|| {
                for _ in 0..500 {
                    let (x, y) =
                        gate.read(|| (a.load(Ordering::Relaxed), b.load(Ordering::Relaxed)));
                    assert_eq!(x, y, "coherent read must see the counters in lockstep");
                }
            });
        });
        assert_eq!(a.load(Ordering::SeqCst), writers * per_writer);
        assert_eq!(b.load(Ordering::SeqCst), writers * per_writer);
    }

    #[test]
    fn write_returns_its_value_and_quiet_reads_do_not_spin() {
        let gate = Coherence::new();
        assert_eq!(gate.write(|| 7), 7);
        assert_eq!(gate.read(|| 9), 9);
    }
}
