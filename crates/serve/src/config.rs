//! Serving configuration and its environment knobs.

use crowd_rtse_core::OnlineConfig;
use rtse_check::InvariantViolation;
use rtse_data::{SlotOfDay, SLOTS_PER_DAY};
use rtse_obs::ObsHandle;
use std::time::Duration;

/// Environment override for the micro-batch coalescing window, in
/// milliseconds.
pub const BATCH_WINDOW_ENV: &str = "RTSE_SERVE_BATCH_WINDOW_MS";
/// Environment override for the bounded request-queue depth.
pub const QUEUE_DEPTH_ENV: &str = "RTSE_SERVE_QUEUE_DEPTH";
/// Environment override for the default per-request deadline, in
/// milliseconds (unset = no deadline).
pub const DEADLINE_ENV: &str = "RTSE_SERVE_DEADLINE_MS";

/// Longest admissible batch window. Coalescing beyond this adds latency
/// without adding sharing — the answer cache already covers slow repeats.
pub const MAX_BATCH_WINDOW: Duration = Duration::from_secs(10);
/// Longest admissible answer TTL: one slot length. A served estimate must
/// never outlive the 5-minute slot whose traffic it describes.
pub const MAX_TTL: Duration = Duration::from_secs(300);
/// Most serving workers a config may ask for.
pub const MAX_WORKERS: usize = 1024;

/// Knobs of one serving deployment.
///
/// The defaults favor throughput under bursty same-slot load: a couple of
/// milliseconds of coalescing, a queue deep enough to absorb bursts, no
/// deadline (callers opt in per request or via [`DEADLINE_ENV`]).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// How long a worker holds a batch open for more same-slot arrivals
    /// after the first request is picked up. Zero disables coalescing-by-
    /// waiting (queued same-slot requests still merge).
    pub batch_window: Duration,
    /// Bounded admission queue depth; submissions beyond it are rejected
    /// with [`crate::ServeError::QueueFull`].
    pub queue_depth: usize,
    /// Deadline applied to requests that do not carry their own. `None`
    /// means unlimited.
    pub default_deadline: Option<Duration>,
    /// Answer freshness bound: a cached slot round older than this is
    /// recomputed. Requests may demand stricter freshness via
    /// [`crate::ServeRequest::max_staleness`].
    pub ttl: Duration,
    /// Serving worker threads (batch assemblers/executors). `0` sizes from
    /// `RTSE_THREADS` / host parallelism like [`rtse_pool::ComputePool`].
    pub workers: usize,
    /// Slots whose correlation tables are built *before* the serving loops
    /// start accepting requests. A cold Γ build takes `|R|` Dijkstras; when
    /// it lands inside the first batch's compute it stacks on the batch
    /// window and shows up as a multi-millisecond `serve.queue_wait` tail
    /// for every request queued behind it. Deployments that know their
    /// traffic slots list them here to keep the first rounds warm; empty
    /// (the default) preserves fully-lazy builds.
    pub prewarm_slots: Vec<SlotOfDay>,
    /// Engine configuration used for every shared round.
    pub online: OnlineConfig,
    /// Observability handle the serving layer records into: shared rounds
    /// become `serve.round` spans, per-request queue time becomes
    /// `serve.queue_wait` samples, cache hits mirror into
    /// `serve.cache_hit`. No-op (zero overhead) by default; point it at a
    /// registry shared with the engine's [`CrowdRtse::with_obs`] handle
    /// for one combined per-stage snapshot.
    ///
    /// [`CrowdRtse::with_obs`]: crowd_rtse_core::CrowdRtse::with_obs
    pub obs: ObsHandle,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            batch_window: Duration::from_millis(2),
            queue_depth: 256,
            default_deadline: None,
            ttl: Duration::from_secs(60),
            workers: 0,
            prewarm_slots: Vec::new(),
            online: OnlineConfig::default(),
            obs: ObsHandle::noop(),
        }
    }
}

impl ServeConfig {
    /// The default configuration with any `RTSE_SERVE_*` environment
    /// overrides applied (see [`Self::with_env_overrides`]).
    pub fn from_env() -> Self {
        Self::default().with_env_overrides()
    }

    /// Applies the `RTSE_SERVE_*` environment overrides to `self`:
    /// [`BATCH_WINDOW_ENV`], [`QUEUE_DEPTH_ENV`], [`DEADLINE_ENV`].
    /// Unset or unparsable variables leave the field untouched.
    pub fn with_env_overrides(mut self) -> Self {
        if let Some(ms) = env_u64(BATCH_WINDOW_ENV) {
            self.batch_window = Duration::from_millis(ms);
        }
        if let Some(depth) = env_u64(QUEUE_DEPTH_ENV) {
            if depth >= 1 {
                self.queue_depth = usize::try_from(depth).unwrap_or(usize::MAX);
            }
        }
        if let Some(ms) = env_u64(DEADLINE_ENV) {
            self.default_deadline = Some(Duration::from_millis(ms));
        }
        self
    }

    /// Longest per-request deadline this deployment admits. A deadline is
    /// permission to stay queued; letting one run past the TTL would let a
    /// request be *answered* later than the freshness the server promises,
    /// so the bound is the TTL (never below the configured default
    /// deadline, which the operator vouched for explicitly).
    pub fn deadline_bound(&self) -> Duration {
        match self.default_deadline {
            Some(default) => self.ttl.max(default),
            None => self.ttl,
        }
    }

    /// Longest per-request `max_staleness` this deployment admits: the
    /// TTL. The batch freshness bound is the *minimum* over a batch's
    /// members, and a lone request is its own batch — so admitting a
    /// looser budget would let a cached round older than the TTL answer
    /// it. Out-of-bounds budgets are a typed reject at admission
    /// ([`crate::ServeError::StalenessOutOfBounds`]), not a silent clamp.
    pub fn staleness_bound(&self) -> Duration {
        self.ttl
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|raw| raw.trim().parse::<u64>().ok())
}

impl rtse_check::Validate for ServeConfig {
    fn validate(&self) -> Result<(), InvariantViolation> {
        rtse_check::ensure(self.queue_depth >= 1, "serve.queue_depth_positive", || {
            "queue_depth is 0; the server could never admit a request".into()
        })?;
        rtse_check::ensure(
            self.batch_window <= MAX_BATCH_WINDOW,
            "serve.batch_window_bounded",
            || {
                format!(
                    "batch_window {:?} exceeds the {:?} bound",
                    self.batch_window, MAX_BATCH_WINDOW
                )
            },
        )?;
        rtse_check::ensure(self.ttl <= MAX_TTL, "serve.ttl_within_slot", || {
            format!("ttl {:?} exceeds the slot length ({:?})", self.ttl, MAX_TTL)
        })?;
        rtse_check::ensure(self.workers <= MAX_WORKERS, "serve.workers_bounded", || {
            format!("workers {} exceeds the {MAX_WORKERS} bound", self.workers)
        })?;
        rtse_check::ensure(
            self.prewarm_slots.len() <= SLOTS_PER_DAY,
            "serve.prewarm_bounded",
            || {
                format!(
                    "{} prewarm slots exceed the {SLOTS_PER_DAY} slots of a day",
                    self.prewarm_slots.len()
                )
            },
        )?;
        rtse_check::ensure(
            self.online.theta.is_finite() && self.online.theta > 0.0 && self.online.theta <= 1.0,
            "serve.theta_in_range",
            || format!("theta {} outside (0, 1]", self.online.theta),
        )?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtse_check::Validate;

    #[test]
    fn default_config_is_valid() {
        assert!(ServeConfig::default().validate().is_ok());
    }

    #[test]
    fn contract_rejects_bad_knobs() {
        let zero_queue = ServeConfig { queue_depth: 0, ..Default::default() };
        assert_eq!(
            zero_queue.validate().expect_err("must fail").invariant,
            "serve.queue_depth_positive"
        );

        let wide_window =
            ServeConfig { batch_window: Duration::from_secs(11), ..Default::default() };
        assert_eq!(
            wide_window.validate().expect_err("must fail").invariant,
            "serve.batch_window_bounded"
        );

        let stale = ServeConfig { ttl: Duration::from_secs(301), ..Default::default() };
        assert_eq!(stale.validate().expect_err("must fail").invariant, "serve.ttl_within_slot");

        let armies = ServeConfig { workers: MAX_WORKERS + 1, ..Default::default() };
        assert_eq!(armies.validate().expect_err("must fail").invariant, "serve.workers_bounded");

        let all_day = ServeConfig {
            prewarm_slots: (0..=SLOTS_PER_DAY).map(|_| SlotOfDay(0)).collect(),
            ..Default::default()
        };
        assert_eq!(all_day.validate().expect_err("must fail").invariant, "serve.prewarm_bounded");

        let mut bad_theta = ServeConfig::default();
        bad_theta.online.theta = 1.5;
        assert_eq!(bad_theta.validate().expect_err("must fail").invariant, "serve.theta_in_range");
    }

    #[test]
    fn env_overrides_parse_and_ignore_garbage() {
        // Env mutation is process-global; run the combinations in one test
        // to avoid cross-test races.
        let base = ServeConfig::default();
        std::env::set_var(BATCH_WINDOW_ENV, "25");
        std::env::set_var(QUEUE_DEPTH_ENV, "not a number");
        std::env::set_var(DEADLINE_ENV, " 150 ");
        let cfg = base.clone().with_env_overrides();
        assert_eq!(cfg.batch_window, Duration::from_millis(25));
        assert_eq!(cfg.queue_depth, base.queue_depth, "garbage depth ignored");
        assert_eq!(cfg.default_deadline, Some(Duration::from_millis(150)));
        std::env::remove_var(BATCH_WINDOW_ENV);
        std::env::remove_var(QUEUE_DEPTH_ENV);
        std::env::remove_var(DEADLINE_ENV);
        let cfg = ServeConfig::from_env();
        assert_eq!(cfg.batch_window, base.batch_window);
        assert_eq!(cfg.default_deadline, None);
    }
}
