//! Serving counters and their consistent snapshot.
//!
//! All counters are monotone atomics updated by the serving workers and
//! the admission path; [`ServeMetrics::snapshot`] reads them into a plain
//! [`MetricsSnapshot`] with the derived ratios the load harness records
//! (coalescing ratio, cache hit rate).
//!
//! The metrics double-book onto the workspace observability registry
//! (`rtse-obs`) when constructed with [`ServeMetrics::with_obs`]: cache
//! hits mirror into the `serve.cache_hit` stage counter, so one
//! `Registry::snapshot_json` carries the serving layer alongside the
//! engine stages. Cross-counter coherence with the answer cache's
//! generations is provided by [`ServeSnapshot`] (see
//! [`crate::coherence`]).

use rtse_obs::{ObsHandle, Stage};
use rtse_sync::atomic::{AtomicU64, Ordering};

/// Live serving counters (shared, lock-free).
#[derive(Debug, Default)]
pub struct ServeMetrics {
    submitted: AtomicU64,
    answered: AtomicU64,
    shed: AtomicU64,
    rejected: AtomicU64,
    rounds: AtomicU64,
    cache_hit_queries: AtomicU64,
    batches: AtomicU64,
    batched_queries: AtomicU64,
    /// Mirror of the cache-hit counter onto the shared stage registry.
    obs: ObsHandle,
}

impl ServeMetrics {
    /// Counters that mirror onto `obs` (`serve.cache_hit`) as they
    /// accumulate. `ServeMetrics::default()` mirrors into a no-op handle.
    pub fn with_obs(obs: ObsHandle) -> Self {
        Self { obs, ..Self::default() }
    }

    pub(crate) fn note_submitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed); // lint: relaxed-counter
    }

    pub(crate) fn note_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed); // lint: relaxed-counter
    }

    pub(crate) fn note_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed); // lint: relaxed-counter
    }

    pub(crate) fn note_round(&self) {
        self.rounds.fetch_add(1, Ordering::Relaxed); // lint: relaxed-counter
    }

    pub(crate) fn note_batch(&self, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed); // lint: relaxed-counter
        self.batched_queries.fetch_add(size as u64, Ordering::Relaxed); // lint: relaxed-counter
    }

    pub(crate) fn note_answered(&self, cache_hit: bool) {
        self.answered.fetch_add(1, Ordering::Relaxed); // lint: relaxed-counter
        if cache_hit {
            self.cache_hit_queries.fetch_add(1, Ordering::Relaxed); // lint: relaxed-counter
            self.obs.incr(Stage::ServeCacheHit);
        }
    }

    /// Reads every counter. Individual counters are exact; the snapshot as
    /// a whole is only quiescently consistent (take it after the load
    /// drains, as [`crate::serve`] does, for exact cross-counter ratios).
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed), // lint: relaxed-counter
            answered: self.answered.load(Ordering::Relaxed),   // lint: relaxed-counter
            shed: self.shed.load(Ordering::Relaxed),           // lint: relaxed-counter
            rejected: self.rejected.load(Ordering::Relaxed),   // lint: relaxed-counter
            rounds: self.rounds.load(Ordering::Relaxed),       // lint: relaxed-counter
            cache_hit_queries: self.cache_hit_queries.load(Ordering::Relaxed), // lint: relaxed-counter
            batches: self.batches.load(Ordering::Relaxed), // lint: relaxed-counter
            batched_queries: self.batched_queries.load(Ordering::Relaxed), // lint: relaxed-counter
        }
    }
}

/// A point-in-time copy of the serving counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Requests admitted into the queue.
    pub submitted: u64,
    /// Requests answered with an estimate.
    pub answered: u64,
    /// Requests shed past their deadline (typed rejection).
    pub shed: u64,
    /// Requests rejected at admission (queue full).
    pub rejected: u64,
    /// OCS→crowd→GSP rounds actually executed.
    pub rounds: u64,
    /// Answered requests served from the slot cache.
    pub cache_hit_queries: u64,
    /// Batches fanned out (each batch shares one round or one cached
    /// round).
    pub batches: u64,
    /// Total requests across those batches.
    pub batched_queries: u64,
}

/// One coherent cross-structure view of a serving deployment: the metric
/// counters together with every slot's cache generation, read inside a
/// single [`crate::coherence::Coherence::read`] section so the linked
/// pair (`metrics.rounds`, `Σ generations`) is never torn (see
/// `ServerHandle::coherent_snapshot`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeSnapshot {
    /// The serving counters.
    pub metrics: MetricsSnapshot,
    /// Cache generation per slot of the day (0 = never computed).
    pub generations: Vec<u64>,
}

impl ServeSnapshot {
    /// Total rebuilds across all slots. Equals `metrics.rounds` in any
    /// snapshot taken coherently on a server that admits only in-range
    /// slots — the invariant the coherence layer exists to protect.
    pub fn total_generations(&self) -> u64 {
        self.generations.iter().sum()
    }
}

impl MetricsSnapshot {
    /// GSP propagations per answered query: 1.0 means every query paid for
    /// its own round; below 1.0, batching/caching shared rounds across
    /// queries. The paper-facing headline is [`Self::rounds_per_100`].
    pub fn coalescing_ratio(&self) -> f64 {
        self.rounds as f64 / self.answered.max(1) as f64
    }

    /// GSP rounds per 100 queries served (lower = more sharing).
    pub fn rounds_per_100(&self) -> f64 {
        100.0 * self.coalescing_ratio()
    }

    /// Fraction of answered queries served from the slot cache.
    pub fn cache_hit_rate(&self) -> f64 {
        self.cache_hit_queries as f64 / self.answered.max(1) as f64
    }

    /// Mean queries per fanned-out batch.
    pub fn mean_batch_size(&self) -> f64 {
        self.batched_queries as f64 / self.batches.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_ratios_derive() {
        let m = ServeMetrics::default();
        for _ in 0..10 {
            m.note_submitted();
        }
        m.note_rejected();
        m.note_shed();
        m.note_round();
        m.note_batch(4);
        m.note_batch(4);
        for i in 0..8 {
            m.note_answered(i >= 2);
        }
        let s = m.snapshot();
        assert_eq!(s.submitted, 10);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.shed, 1);
        assert_eq!(s.rounds, 1);
        assert_eq!(s.answered, 8);
        assert_eq!(s.cache_hit_queries, 6);
        assert!((s.coalescing_ratio() - 1.0 / 8.0).abs() < 1e-12);
        assert!((s.rounds_per_100() - 12.5).abs() < 1e-12);
        assert!((s.cache_hit_rate() - 0.75).abs() < 1e-12);
        assert!((s.mean_batch_size() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_snapshot_has_safe_ratios() {
        let s = MetricsSnapshot::default();
        assert!((s.coalescing_ratio()).abs() < 1e-12);
        assert!((s.cache_hit_rate()).abs() < 1e-12);
        assert!((s.mean_batch_size()).abs() < 1e-12);
    }
}
