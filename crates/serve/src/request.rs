//! Request, ticket, and answer types of the serving API.

use crate::error::ServeError;
use rtse_check::InvariantViolation;
use rtse_data::SlotOfDay;
use rtse_graph::RoadId;
use rtse_sync::mpsc::Receiver;
use std::time::Duration;

/// One client request: "what is the speed of these roads in this slot?"
/// plus the client's latency and freshness budgets.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeRequest {
    /// The queried roads (deduplicated at admission).
    pub roads: Vec<RoadId>,
    /// The queried slot of the day.
    pub slot: SlotOfDay,
    /// Latency budget from submission; past it the request is shed with
    /// [`ServeError::DeadlineExceeded`]. `None` defers to the server's
    /// configured default.
    pub deadline: Option<Duration>,
    /// Oldest cached answer the client accepts. `None` defers to the
    /// server's TTL; `Some(Duration::ZERO)` forces a fresh round.
    pub max_staleness: Option<Duration>,
}

impl ServeRequest {
    /// A request with no deadline and default freshness.
    pub fn new(roads: Vec<RoadId>, slot: SlotOfDay) -> Self {
        Self { roads, slot, deadline: None, max_staleness: None }
    }

    /// Sets the latency budget.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the freshness bound.
    pub fn with_max_staleness(mut self, max_staleness: Duration) -> Self {
        self.max_staleness = Some(max_staleness);
        self
    }
}

/// The server's answer to one request.
#[derive(Debug, Clone, PartialEq)]
pub struct ServedAnswer {
    /// The canonical (sorted, deduplicated) roads that were asked.
    pub roads: Vec<RoadId>,
    /// Estimated speed per road, parallel to `roads`.
    pub estimates: Vec<f64>,
    /// The answered slot.
    pub slot: SlotOfDay,
    /// Cache generation of the slot round that produced the estimates.
    pub generation: u64,
    /// Age of that round when the answer was fanned out (staleness).
    pub age: Duration,
    /// How many requests shared the round this answer came from.
    pub batch_size: usize,
    /// Whether the round was served from the slot cache.
    pub cache_hit: bool,
    /// Time from submission to fan-out (queueing + batching + compute).
    pub wait: Duration,
}

impl ServedAnswer {
    /// The estimate for one queried road (`None` if it was not asked).
    pub fn estimate_for(&self, road: RoadId) -> Option<f64> {
        self.roads.iter().position(|&r| r == road).map(|i| self.estimates[i])
    }
}

impl rtse_check::Validate for ServedAnswer {
    fn validate(&self) -> Result<(), InvariantViolation> {
        rtse_check::ensure(
            self.estimates.len() == self.roads.len(),
            "serve.answer_parallel_arrays",
            || format!("{} roads but {} estimates", self.roads.len(), self.estimates.len()),
        )?;
        rtse_check::ensure(!self.roads.is_empty(), "serve.answer_nonempty", || {
            "answer covers no roads".into()
        })?;
        rtse_check::ensure(
            self.roads.windows(2).all(|w| w[0] < w[1]),
            "serve.answer_roads_canonical",
            || "answered roads are not sorted/deduplicated".into(),
        )?;
        rtse_check::ensure_finite(&self.estimates, "serve.answer_finite")?;
        rtse_check::ensure(
            self.estimates.iter().all(|&v| v >= 0.0),
            "serve.answer_nonnegative",
            || "an estimated speed is negative".into(),
        )?;
        rtse_check::ensure(self.generation >= 1, "serve.answer_generation_positive", || {
            "answer carries generation 0 (never computed)".into()
        })?;
        rtse_check::ensure(self.batch_size >= 1, "serve.answer_batch_positive", || {
            "answer claims an empty batch".into()
        })?;
        Ok(())
    }
}

/// A pending answer: blocks on [`Ticket::wait`] until the serving workers
/// resolve the request one way or the other.
///
/// Tickets own their reply channel and may outlive the server scope —
/// answers sent before shutdown remain readable afterwards. Dropping a
/// ticket abandons the request (the server computes and discards the
/// reply).
#[derive(Debug)]
pub struct Ticket {
    pub(crate) rx: Receiver<Result<ServedAnswer, ServeError>>,
}

impl Ticket {
    /// Blocks until the request resolves.
    pub fn wait(self) -> Result<ServedAnswer, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::ChannelClosed))
    }

    /// Non-blocking poll: `None` while the request is still in flight.
    pub fn poll(&self) -> Option<Result<ServedAnswer, ServeError>> {
        self.rx.try_recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtse_check::Validate;
    use std::sync::mpsc::channel;

    fn answer() -> ServedAnswer {
        ServedAnswer {
            roads: vec![RoadId(1), RoadId(4)],
            estimates: vec![31.5, 48.0],
            slot: SlotOfDay(100),
            generation: 1,
            age: Duration::ZERO,
            batch_size: 1,
            cache_hit: false,
            wait: Duration::from_millis(2),
        }
    }

    #[test]
    fn builder_sets_budgets() {
        let r = ServeRequest::new(vec![RoadId(0)], SlotOfDay(3))
            .with_deadline(Duration::from_millis(50))
            .with_max_staleness(Duration::ZERO);
        assert_eq!(r.deadline, Some(Duration::from_millis(50)));
        assert_eq!(r.max_staleness, Some(Duration::ZERO));
    }

    #[test]
    fn estimate_lookup() {
        let a = answer();
        assert_eq!(a.estimate_for(RoadId(4)), Some(48.0));
        assert_eq!(a.estimate_for(RoadId(2)), None);
    }

    #[test]
    fn answer_contract_accepts_good_and_rejects_bad() {
        assert!(answer().validate().is_ok());

        let mut skewed = answer();
        skewed.estimates.pop();
        assert_eq!(
            skewed.validate().expect_err("must fail").invariant,
            "serve.answer_parallel_arrays"
        );

        let mut unsorted = answer();
        unsorted.roads.swap(0, 1);
        assert_eq!(
            unsorted.validate().expect_err("must fail").invariant,
            "serve.answer_roads_canonical"
        );

        let mut nan = answer();
        nan.estimates[0] = f64::NAN;
        assert_eq!(nan.validate().expect_err("must fail").invariant, "serve.answer_finite");

        let mut negative = answer();
        negative.estimates[1] = -1.0;
        assert_eq!(
            negative.validate().expect_err("must fail").invariant,
            "serve.answer_nonnegative"
        );

        let mut stillborn = answer();
        stillborn.generation = 0;
        assert_eq!(
            stillborn.validate().expect_err("must fail").invariant,
            "serve.answer_generation_positive"
        );
    }

    #[test]
    fn ticket_resolves_and_poll_is_nonblocking() {
        let (tx, rx) = channel();
        let ticket = Ticket { rx };
        assert!(ticket.poll().is_none());
        tx.send(Ok(answer())).expect("receiver alive");
        let got = ticket.wait().expect("answer sent");
        assert_eq!(got.estimates, vec![31.5, 48.0]);
    }

    #[test]
    fn dropped_sender_yields_typed_error() {
        let (tx, rx) = channel::<Result<ServedAnswer, ServeError>>();
        drop(tx);
        assert_eq!(Ticket { rx }.wait(), Err(ServeError::ChannelClosed));
    }
}
