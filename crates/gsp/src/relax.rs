//! Over-relaxation and warm-started propagation.
//!
//! Two practical accelerations on top of Alg. 5:
//!
//! * **SOR** ([`DampedGsp`]) — each coordinate moves `ω` of the way to its
//!   Eq. (18) argmax. `ω = 1` is plain Gauss–Seidel; `1 < ω < 2`
//!   over-relaxes and typically converges in fewer rounds on diffusion-like
//!   systems (the fixed point is unchanged: it is the unique zero of the
//!   update displacement for any `ω ∈ (0, 2)`).
//! * **Warm starts** ([`propagate_warm`]) — realtime estimation is
//!   incremental: the next 5-minute round's solution is close to the
//!   previous one, and late-arriving probes refine an existing estimate.
//!   Starting the sweep from the previous values instead of the slot means
//!   cuts rounds substantially.

use crate::schedule::UpdateSchedule;
use crate::solver::{GspResult, GspSolver};
use rtse_graph::{Graph, RoadId};
use rtse_obs::{ObsHandle, Stage};
use rtse_rtf::likelihood::optimal_update;
use rtse_rtf::params::SlotParams;

/// GSP with successive over-relaxation.
#[derive(Debug, Clone, Copy)]
pub struct DampedGsp {
    /// Base solver settings (`ε`, round cap, trace).
    pub base: GspSolver,
    /// Relaxation factor `ω ∈ (0, 2)`.
    pub omega: f64,
}

impl Default for DampedGsp {
    fn default() -> Self {
        Self { base: GspSolver::default(), omega: 1.4 }
    }
}

impl DampedGsp {
    /// Runs the relaxed propagation.
    ///
    /// # Panics
    /// Panics when `omega` is outside `(0, 2)` (the scheme diverges) or on
    /// dimension mismatches.
    pub fn propagate(
        &self,
        graph: &Graph,
        params: &SlotParams,
        observations: &[(RoadId, f64)],
    ) -> GspResult {
        assert!(
            self.omega > 0.0 && self.omega < 2.0,
            "SOR requires ω in (0, 2), got {}",
            self.omega
        );
        run(graph, params, observations, None, &self.base, self.omega)
    }
}

/// Alg. 5 initialized from `warm_start` instead of the slot means.
///
/// Sampled roads still snap to their observed values; everything else
/// begins at the warm-start value. The fixed point is the same as the cold
/// start (the objective has a unique maximizer) — only the round count
/// changes.
///
/// # Panics
/// Panics when `warm_start.len()` differs from the road count.
pub fn propagate_warm(
    solver: &GspSolver,
    graph: &Graph,
    params: &SlotParams,
    observations: &[(RoadId, f64)],
    warm_start: &[f64],
) -> GspResult {
    propagate_warm_observed(solver, graph, params, observations, warm_start, &ObsHandle::noop())
}

/// [`propagate_warm`] with instrumentation: one `gsp.round` span for the
/// run plus the sweep count in `gsp.iters_to_converge`, mirroring
/// [`GspSolver::propagate_observed`]. Estimates are bit-identical to the
/// unobserved call.
///
/// # Panics
/// Panics when `warm_start.len()` differs from the road count.
pub fn propagate_warm_observed(
    solver: &GspSolver,
    graph: &Graph,
    params: &SlotParams,
    observations: &[(RoadId, f64)],
    warm_start: &[f64],
    obs: &ObsHandle,
) -> GspResult {
    let _span = obs.span(Stage::GspRound);
    assert_eq!(warm_start.len(), graph.num_roads(), "warm start length mismatch");
    let result = run(graph, params, observations, Some(warm_start), solver, 1.0);
    obs.record(Stage::GspItersToConverge, result.rounds as u64);
    result
}

fn run(
    graph: &Graph,
    params: &SlotParams,
    observations: &[(RoadId, f64)],
    warm_start: Option<&[f64]>,
    base: &GspSolver,
    omega: f64,
) -> GspResult {
    assert_eq!(params.mu.len(), graph.num_roads(), "params/graph mismatch");
    let mut values = match warm_start {
        Some(w) => w.to_vec(),
        None => params.mu.clone(),
    };
    for &(r, v) in observations {
        values[r.index()] = v;
    }
    let sampled: Vec<RoadId> = observations.iter().map(|&(r, _)| r).collect();
    let schedule = UpdateSchedule::new(graph, &sampled);

    let mut trace = Vec::new();
    let mut rounds = 0;
    let mut converged = sampled.is_empty() || schedule.num_scheduled() == 0;
    while !converged && rounds < base.max_rounds {
        rounds += 1;
        let mut max_delta = 0.0_f64;
        for layer in schedule.layers() {
            for &r in layer {
                let target = optimal_update(graph, params, &values, r);
                let next = (1.0 - omega) * values[r.index()] + omega * target;
                max_delta = max_delta.max((next - values[r.index()]).abs());
                values[r.index()] = next;
            }
        }
        if base.record_trace {
            trace.push(max_delta);
        }
        converged = max_delta < base.epsilon;
    }
    GspResult {
        values,
        rounds,
        converged,
        unreachable: schedule.unreachable().to_vec(),
        delta_trace: trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtse_graph::generators::grid;

    fn params_for(graph: &Graph, mu: f64, sigma: f64, rho: f64) -> SlotParams {
        SlotParams {
            mu: vec![mu; graph.num_roads()],
            sigma: vec![sigma; graph.num_roads()],
            rho: vec![rho; graph.num_edges()],
        }
    }

    #[test]
    fn sor_reaches_same_fixed_point() {
        let g = grid(4, 5);
        let p = params_for(&g, 40.0, 2.5, 0.9);
        let obs = [(RoadId(0), 25.0), (RoadId(19), 52.0)];
        let tight = GspSolver { epsilon: 1e-10, max_rounds: 10_000, record_trace: false };
        let plain = tight.propagate(&g, &p, &obs);
        let sor = DampedGsp { base: tight, omega: 1.5 }.propagate(&g, &p, &obs);
        assert!(plain.converged && sor.converged);
        for r in g.road_ids() {
            assert!((plain.speed(r) - sor.speed(r)).abs() < 1e-6, "road {r}");
        }
    }

    #[test]
    fn sor_converges_in_fewer_rounds_on_strongly_coupled_grid() {
        let g = grid(6, 6);
        let p = params_for(&g, 40.0, 3.0, 0.95);
        let obs = [(RoadId(0), 20.0)];
        let tight = GspSolver { epsilon: 1e-9, max_rounds: 10_000, record_trace: false };
        let plain = tight.propagate(&g, &p, &obs);
        let sor = DampedGsp { base: tight, omega: 1.5 }.propagate(&g, &p, &obs);
        assert!(plain.converged && sor.converged);
        assert!(
            sor.rounds < plain.rounds,
            "SOR rounds {} should beat plain {}",
            sor.rounds,
            plain.rounds
        );
    }

    #[test]
    #[should_panic(expected = "SOR requires")]
    fn omega_out_of_range_rejected() {
        let g = grid(2, 2);
        let p = params_for(&g, 30.0, 2.0, 0.5);
        DampedGsp { omega: 2.0, ..Default::default() }.propagate(&g, &p, &[]);
    }

    #[test]
    fn warm_start_agrees_with_cold_after_new_observation() {
        // Adding an observation changes the BFS schedule, so round counts
        // are not comparable — but the fixed point must agree.
        let g = grid(5, 5);
        let p = params_for(&g, 40.0, 2.5, 0.9);
        let solver = GspSolver { epsilon: 1e-9, max_rounds: 10_000, record_trace: false };
        let first = solver.propagate(&g, &p, &[(RoadId(0), 25.0)]);
        assert!(first.converged);
        let obs2 = [(RoadId(0), 25.0), (RoadId(24), 50.0)];
        let cold = solver.propagate(&g, &p, &obs2);
        let warm = propagate_warm(&solver, &g, &p, &obs2, &first.values);
        assert!(cold.converged && warm.converged);
        for r in g.road_ids() {
            assert!((cold.speed(r) - warm.speed(r)).abs() < 1e-5, "road {r}");
        }
    }

    #[test]
    fn warm_start_faster_for_perturbed_values_of_same_set() {
        // The realtime case: the next 5-minute round re-probes the same
        // roads with slightly different readings. Warm starting from the
        // previous solution must converge in (weakly) fewer rounds.
        let g = grid(5, 5);
        let p = params_for(&g, 40.0, 2.5, 0.9);
        let solver = GspSolver { epsilon: 1e-9, max_rounds: 10_000, record_trace: false };
        let obs1 = [(RoadId(0), 25.0), (RoadId(24), 50.0)];
        let first = solver.propagate(&g, &p, &obs1);
        assert!(first.converged);
        let obs2 = [(RoadId(0), 25.6), (RoadId(24), 49.1)];
        let cold = solver.propagate(&g, &p, &obs2);
        let warm = propagate_warm(&solver, &g, &p, &obs2, &first.values);
        assert!(cold.converged && warm.converged);
        for r in g.road_ids() {
            assert!((cold.speed(r) - warm.speed(r)).abs() < 1e-5, "road {r}");
        }
        assert!(
            warm.rounds < cold.rounds,
            "warm rounds {} should beat cold {}",
            warm.rounds,
            cold.rounds
        );
    }

    #[test]
    fn warm_start_identical_observations_is_near_noop() {
        let g = grid(4, 4);
        let p = params_for(&g, 35.0, 2.0, 0.8);
        let solver = GspSolver { epsilon: 1e-8, max_rounds: 5_000, record_trace: false };
        let obs = [(RoadId(3), 28.0)];
        let first = solver.propagate(&g, &p, &obs);
        let again = propagate_warm(&solver, &g, &p, &obs, &first.values);
        assert!(again.rounds <= 2, "re-solving a solved system: {} rounds", again.rounds);
    }
}
