//! Sequential GSP solver (Alg. 5).

use crate::schedule::UpdateSchedule;
use rtse_graph::{Graph, RoadId};
use rtse_rtf::likelihood::optimal_update;
use rtse_rtf::params::SlotParams;

/// GSP configuration.
///
/// ```
/// use rtse_graph::{generators, RoadId};
/// use rtse_gsp::GspSolver;
/// use rtse_rtf::params::SlotParams;
///
/// let graph = generators::path(4);
/// let params = SlotParams {
///     mu: vec![50.0; 4],
///     sigma: vec![2.0; 4],
///     rho: vec![0.9; 3],
/// };
/// // One probe reports a slowdown; GSP pulls the neighbors toward it.
/// let result = GspSolver::default().propagate(&graph, &params, &[(RoadId(0), 20.0)]);
/// assert!(result.converged);
/// assert_eq!(result.speed(RoadId(0)), 20.0);
/// assert!(result.speed(RoadId(1)) < 50.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct GspSolver {
    /// Convergence threshold `ε` on the largest per-round value change.
    pub epsilon: f64,
    /// Hard cap on rounds (the paper argues a constant `Λ` suffices).
    pub max_rounds: usize,
    /// When true, the per-round max-delta trace is recorded in the result.
    pub record_trace: bool,
}

impl Default for GspSolver {
    fn default() -> Self {
        Self { epsilon: 1e-4, max_rounds: 200, record_trace: false }
    }
}

/// Output of a propagation run.
#[derive(Debug, Clone)]
pub struct GspResult {
    /// Estimated speed per road (sampled roads keep their observed value).
    pub values: Vec<f64>,
    /// Rounds executed.
    pub rounds: usize,
    /// Whether `ε` was reached before `max_rounds`.
    pub converged: bool,
    /// Roads unreachable from the sampled set (left at `μ_i^t`).
    pub unreachable: Vec<RoadId>,
    /// Per-round max value change (empty unless `record_trace`).
    pub delta_trace: Vec<f64>,
}

impl GspResult {
    /// Estimate for one road.
    #[inline]
    pub fn speed(&self, r: RoadId) -> f64 {
        self.values[r.index()]
    }
}

impl rtse_check::Validate for GspResult {
    /// Propagation-output contract: every estimate is a finite,
    /// non-negative speed (Eq. 18 interpolates between non-negative
    /// observed speeds and non-negative slot means, so a negative output
    /// means a corrupted model or observation slipped through), the trace
    /// length matches the recorded rounds when present, and unreachable
    /// ids are in-bounds.
    fn validate(&self) -> Result<(), rtse_check::InvariantViolation> {
        use rtse_check::{ensure, ensure_finite};
        ensure_finite(&self.values, "gsp.values_finite")?;
        if let Some(i) = self.values.iter().position(|&v| v < 0.0) {
            return Err(rtse_check::InvariantViolation::new(
                "gsp.values_non_negative",
                format!("estimate for road {i} is {}", self.values[i]),
            ));
        }
        ensure(
            self.delta_trace.is_empty() || self.delta_trace.len() == self.rounds,
            "gsp.trace_len",
            || format!("{} trace entries for {} rounds", self.delta_trace.len(), self.rounds),
        )?;
        if let Some(r) = self.unreachable.iter().find(|r| r.index() >= self.values.len()) {
            return Err(rtse_check::InvariantViolation::new(
                "gsp.unreachable_in_bounds",
                format!("unreachable road {r} but only {} values", self.values.len()),
            ));
        }
        Ok(())
    }
}

impl GspSolver {
    /// Runs Alg. 5: propagates `observations` (pairs of sampled road and
    /// observed speed) over the whole network.
    ///
    /// # Panics
    /// Panics when an observed road id is out of range or observed twice
    /// with different values, or when the model dimensions disagree with
    /// the graph.
    pub fn propagate(
        &self,
        graph: &Graph,
        params: &SlotParams,
        observations: &[(RoadId, f64)],
    ) -> GspResult {
        self.propagate_observed(graph, params, observations, &rtse_obs::ObsHandle::noop())
    }

    /// [`propagate`](Self::propagate) with instrumentation: the whole run
    /// is timed as one `gsp.round` span and the executed sweep count
    /// lands in the `gsp.iters_to_converge` histogram on `obs`. Estimates
    /// are bit-identical to the unobserved call.
    pub fn propagate_observed(
        &self,
        graph: &Graph,
        params: &SlotParams,
        observations: &[(RoadId, f64)],
        obs: &rtse_obs::ObsHandle,
    ) -> GspResult {
        let _span = obs.span(rtse_obs::Stage::GspRound);
        assert_eq!(params.mu.len(), graph.num_roads(), "params/graph mismatch");
        // Initialization (Alg. 5 line 2): observed values for sampled
        // roads, slot means elsewhere.
        let mut values = params.mu.clone();
        let mut observed = vec![false; graph.num_roads()];
        for &(r, v) in observations {
            assert!(r.index() < graph.num_roads(), "observation for unknown road {r}");
            assert!(
                !observed[r.index()] || (values[r.index()] - v).abs() < 1e-12,
                "conflicting observations for {r}"
            );
            observed[r.index()] = true;
            values[r.index()] = v;
        }
        let sampled: Vec<RoadId> = observations.iter().map(|&(r, _)| r).collect();
        let schedule = UpdateSchedule::new(graph, &sampled);

        let mut trace = Vec::new();
        let mut rounds = 0;
        let mut converged = sampled.is_empty() || schedule.num_scheduled() == 0;
        while !converged && rounds < self.max_rounds {
            rounds += 1;
            let mut max_delta = 0.0_f64;
            for layer in schedule.layers() {
                for &r in layer {
                    let next = optimal_update(graph, params, &values, r);
                    max_delta = max_delta.max((next - values[r.index()]).abs());
                    values[r.index()] = next;
                }
            }
            if self.record_trace {
                trace.push(max_delta);
            }
            converged = max_delta < self.epsilon;
        }
        obs.record(rtse_obs::Stage::GspItersToConverge, rounds as u64);
        let result = GspResult {
            values,
            rounds,
            converged,
            unreachable: schedule.unreachable().to_vec(),
            delta_trace: trace,
        };
        #[cfg(feature = "validate")]
        {
            if let Err(v) = rtse_check::Validate::validate(params) {
                rtse_check::fail(&v);
            }
            if let Err(v) = rtse_check::Validate::validate(&result) {
                rtse_check::fail(&v);
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtse_graph::generators::{grid, path};
    use rtse_rtf::likelihood::config_log_likelihood;

    fn params_for(graph: &Graph, mu: f64, sigma: f64, rho: f64) -> SlotParams {
        SlotParams {
            mu: vec![mu; graph.num_roads()],
            sigma: vec![sigma; graph.num_roads()],
            rho: vec![rho; graph.num_edges()],
        }
    }

    #[test]
    fn no_observations_returns_means() {
        let g = path(4);
        let p = params_for(&g, 42.0, 2.0, 0.8);
        let r = GspSolver::default().propagate(&g, &p, &[]);
        assert!(r.converged);
        assert_eq!(r.rounds, 0);
        assert!(r.values.iter().all(|&v| v == 42.0));
        assert_eq!(r.unreachable.len(), 4);
    }

    #[test]
    fn observed_roads_keep_their_values() {
        let g = path(4);
        let p = params_for(&g, 40.0, 3.0, 0.7);
        let r = GspSolver::default().propagate(&g, &p, &[(RoadId(1), 25.0)]);
        assert_eq!(r.speed(RoadId(1)), 25.0);
        assert!(r.converged);
    }

    #[test]
    fn propagation_pulls_neighbors_toward_observation() {
        let g = path(5);
        let p = params_for(&g, 50.0, 3.0, 0.9);
        // Strong negative shock observed at the middle road.
        let r = GspSolver::default().propagate(&g, &p, &[(RoadId(2), 20.0)]);
        // Neighbors move below their mean, decaying with distance.
        assert!(r.speed(RoadId(1)) < 50.0);
        assert!(r.speed(RoadId(3)) < 50.0);
        assert!(r.speed(RoadId(0)) < 50.0);
        assert!(
            r.speed(RoadId(2)) < r.speed(RoadId(1)) && r.speed(RoadId(1)) < r.speed(RoadId(0)),
            "effect must decay with hops: {:?}",
            r.values
        );
    }

    #[test]
    fn weak_correlation_limits_propagation() {
        let g = path(3);
        let strong = params_for(&g, 50.0, 3.0, 0.95);
        let weak = params_for(&g, 50.0, 3.0, 0.05);
        let obs = [(RoadId(0), 20.0)];
        let rs = GspSolver::default().propagate(&g, &strong, &obs);
        let rw = GspSolver::default().propagate(&g, &weak, &obs);
        let pull_strong = 50.0 - rs.speed(RoadId(1));
        let pull_weak = 50.0 - rw.speed(RoadId(1));
        assert!(
            pull_strong > pull_weak,
            "strong ρ pull {pull_strong} should exceed weak {pull_weak}"
        );
    }

    #[test]
    fn converges_to_coordinate_wise_fixed_point() {
        let g = grid(3, 3);
        let p = params_for(&g, 30.0, 2.0, 0.8);
        let solver = GspSolver { epsilon: 1e-10, max_rounds: 2000, record_trace: true };
        let r = solver.propagate(&g, &p, &[(RoadId(0), 20.0), (RoadId(8), 45.0)]);
        assert!(r.converged);
        // At the fixed point every non-observed road equals its Eq. (18)
        // argmax.
        for road in g.road_ids() {
            if road == RoadId(0) || road == RoadId(8) {
                continue;
            }
            let best = optimal_update(&g, &p, &r.values, road);
            assert!(
                (best - r.speed(road)).abs() < 1e-6,
                "road {road}: {} vs argmax {best}",
                r.speed(road)
            );
        }
    }

    #[test]
    fn likelihood_non_decreasing_over_rounds() {
        let g = grid(3, 4);
        let p = params_for(&g, 40.0, 2.5, 0.85);
        let obs = [(RoadId(0), 28.0), (RoadId(11), 55.0)];
        // Manually replicate rounds and track the likelihood.
        let mut values = p.mu.clone();
        for &(r, v) in &obs {
            values[r.index()] = v;
        }
        let schedule = UpdateSchedule::new(&g, &[RoadId(0), RoadId(11)]);
        let mut last = config_log_likelihood(&g, &p, &values);
        for _ in 0..20 {
            for layer in schedule.layers() {
                for &r in layer {
                    values[r.index()] = optimal_update(&g, &p, &values, r);
                }
            }
            let ll = config_log_likelihood(&g, &p, &values);
            assert!(ll + 1e-9 >= last, "likelihood regressed: {last} -> {ll}");
            last = ll;
        }
    }

    #[test]
    fn disconnected_component_stays_at_mean() {
        let mut b = rtse_graph::GraphBuilder::new();
        for i in 0..5 {
            b.add_road(rtse_graph::RoadClass::Local, (i as f64, 0.0));
        }
        b.add_edge(RoadId(0), RoadId(1));
        b.add_edge(RoadId(3), RoadId(4)); // separate island
        let g = b.build();
        let p = params_for(&g, 35.0, 2.0, 0.9);
        let r = GspSolver::default().propagate(&g, &p, &[(RoadId(0), 10.0)]);
        assert_eq!(r.speed(RoadId(3)), 35.0);
        assert_eq!(r.speed(RoadId(4)), 35.0);
        assert!(r.unreachable.contains(&RoadId(3)));
        // But the connected neighbor moved.
        assert!(r.speed(RoadId(1)) < 35.0);
    }

    #[test]
    fn trace_recorded_and_decreasing() {
        let g = path(6);
        let p = params_for(&g, 45.0, 2.0, 0.9);
        let solver = GspSolver { record_trace: true, ..Default::default() };
        let r = solver.propagate(&g, &p, &[(RoadId(0), 20.0)]);
        assert_eq!(r.delta_trace.len(), r.rounds);
        assert!(r.delta_trace.windows(2).all(|w| w[1] <= w[0] + 1e-12));
    }

    #[test]
    #[should_panic(expected = "conflicting observations")]
    fn conflicting_observations_rejected() {
        let g = path(2);
        let p = params_for(&g, 40.0, 2.0, 0.5);
        GspSolver::default().propagate(&g, &p, &[(RoadId(0), 10.0), (RoadId(0), 20.0)]);
    }
}
