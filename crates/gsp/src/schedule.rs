//! BFS-layer update schedule (the `BFT` sort of Alg. 5, line 3).

use rtse_graph::{bfs_layers, Graph, RoadId};

/// The per-layer update order computed once per propagation run.
///
/// Roads in `layers[l]` are exactly the roads at hop distance `l + 1` from
/// the sampled set; `unreachable` roads have no path to any sampled road
/// and keep their initialization (their Eq. (18) update would never be
/// triggered — see the paper's discussion below Eq. (18)).
#[derive(Debug, Clone)]
pub struct UpdateSchedule {
    layers: Vec<Vec<RoadId>>,
    unreachable: Vec<RoadId>,
}

impl UpdateSchedule {
    /// Builds the schedule for a sampled-road set.
    pub fn new(graph: &Graph, sampled: &[RoadId]) -> Self {
        let (layers, unreachable) = bfs_layers(graph, sampled);
        Self { layers, unreachable }
    }

    /// The hop layers, nearest first.
    pub fn layers(&self) -> &[Vec<RoadId>] {
        &self.layers
    }

    /// Roads unreachable from the sampled set.
    pub fn unreachable(&self) -> &[RoadId] {
        &self.unreachable
    }

    /// Number of roads that will be updated each round.
    pub fn num_scheduled(&self) -> usize {
        self.layers.iter().map(Vec::len).sum()
    }

    /// Iterator over all scheduled roads in update order.
    pub fn iter(&self) -> impl Iterator<Item = RoadId> + '_ {
        self.layers.iter().flatten().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtse_graph::generators::path;

    #[test]
    fn layers_ordered_by_hops() {
        let g = path(5);
        let s = UpdateSchedule::new(&g, &[RoadId(0)]);
        assert_eq!(s.layers().len(), 4);
        assert_eq!(s.layers()[0], vec![RoadId(1)]);
        assert_eq!(s.layers()[3], vec![RoadId(4)]);
        assert_eq!(s.num_scheduled(), 4);
        assert!(s.unreachable().is_empty());
    }

    #[test]
    fn unreachable_reported() {
        let mut b = rtse_graph::GraphBuilder::new();
        for i in 0..4 {
            b.add_road(rtse_graph::RoadClass::Local, (i as f64, 0.0));
        }
        b.add_edge(RoadId(0), RoadId(1)); // 2, 3 isolated
        let g = b.build();
        let s = UpdateSchedule::new(&g, &[RoadId(0)]);
        assert_eq!(s.num_scheduled(), 1);
        assert_eq!(s.unreachable().len(), 2);
    }

    #[test]
    fn empty_sampled_set_schedules_nothing() {
        let g = path(3);
        let s = UpdateSchedule::new(&g, &[]);
        assert_eq!(s.num_scheduled(), 0);
        assert_eq!(s.unreachable().len(), 3);
    }
}
