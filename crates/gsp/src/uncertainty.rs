//! Posterior uncertainty by perturb-and-MAP sampling.
//!
//! The conditional RTF given observations is a Gaussian whose mode GSP
//! computes — but a deployment also wants to know *how sure* the estimate
//! is (e.g. roads far from every probe should carry wide bands). Exact
//! marginal variances need the precision inverse; instead we use the
//! classic perturb-and-MAP identity (Papandreou & Yuille, 2010): for an
//! energy `Σ_k (a_kᵀv − c_k)²/w_k`, solving the MAP with every factor
//! target perturbed as `c̃_k = c_k + ε_k`, `ε_k ~ N(0, w_k/2)`, yields an
//! exact sample from the posterior. Empirical moments over a few dozen
//! solves give calibrated means and standard deviations.
//!
//! Our factors and their perturbation scales (single-counted edges):
//! * node `(v_i − μ_i)²/σ_i²` → `μ̃_i = μ_i + (σ_i/√2)ε`;
//! * edge `((v_i − v_j) − μ_ij)²/σ_ij²` → `μ̃_ij = μ_ij + (σ_ij/√2)ε`.

use crate::exact::ConditionalSystem;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rtse_data::synth::gaussian;
use rtse_graph::{Graph, RoadId};
use rtse_rtf::params::SlotParams;

/// Posterior summary per road.
#[derive(Debug, Clone)]
pub struct PosteriorSummary {
    /// Posterior mean (sample average; converges to the MAP/mean of the
    /// Gaussian).
    pub mean: Vec<f64>,
    /// Posterior standard deviation per road (0 for observed roads).
    pub std: Vec<f64>,
    /// Number of samples drawn.
    pub samples: usize,
}

impl PosteriorSummary {
    /// A symmetric credible interval `mean ± z·std` for one road.
    pub fn interval(&self, r: RoadId, z: f64) -> (f64, f64) {
        let (m, s) = (self.mean[r.index()], self.std[r.index()]);
        (m - z * s, m + z * s)
    }
}

/// Draws `samples` exact posterior samples and summarizes them.
///
/// # Panics
/// Panics when `samples == 0` or on dimension mismatches.
pub fn sample_posterior(
    graph: &Graph,
    params: &SlotParams,
    observations: &[(RoadId, f64)],
    samples: usize,
    seed: u64,
) -> PosteriorSummary {
    assert!(samples > 0, "need at least one sample");
    let system = ConditionalSystem::build(graph, params, observations);
    let n = graph.num_roads();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut mean = vec![0.0; n];
    let mut m2 = vec![0.0; n];
    let inv_sqrt2 = std::f64::consts::FRAC_1_SQRT_2;
    for k in 0..samples {
        // Perturbed targets: per unobserved node and per active edge.
        let mut b = vec![0.0; system.dim()];
        // Edge noise must be shared between both endpoint rows of an
        // unobserved-unobserved edge, so draw per edge first.
        let edge_noise: Vec<f64> = (0..graph.num_edges()).map(|_| gaussian(&mut rng)).collect();
        for (row, &i) in system.unobserved().iter().enumerate() {
            let si = params.sigma[i.index()];
            let mu_tilde = params.mu[i.index()] + si * inv_sqrt2 * gaussian(&mut rng);
            b[row] += mu_tilde / (si * si);
            for &(j, e) in graph.neighbors(i) {
                let u = params.sigma_diff_sq(i, j, e);
                // Perturbed difference target, oriented i→j: the factor is
                // ((v_i − v_j) − μ_ij)². From j's row the same factor
                // appears with flipped sign, so the shared noise flips too.
                let orient = if i < j { 1.0 } else { -1.0 };
                let mu_ij =
                    params.mu_diff(i, j) + orient * u.sqrt() * inv_sqrt2 * edge_noise[e.index()];
                b[row] += mu_ij / u;
                if let Some(v) = system.observed_speed(j) {
                    b[row] += v / u;
                }
            }
        }
        let draw = system.solve(&b);
        // Welford accumulation per road.
        let kf = (k + 1) as f64;
        for (i, &x) in draw.iter().enumerate() {
            let delta = x - mean[i];
            mean[i] += delta / kf;
            m2[i] += delta * (x - mean[i]);
        }
    }
    let std = m2
        .iter()
        .map(|&s| if samples > 1 { (s / (samples - 1) as f64).sqrt() } else { 0.0 })
        .collect();
    PosteriorSummary { mean, std, samples }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_map_estimate;
    use rtse_graph::generators::{grid, path};
    use rtse_math::{conjugate_gradient, SparseMatrix};

    fn params_for(graph: &Graph, mu: f64, sigma: f64, rho: f64) -> SlotParams {
        SlotParams {
            mu: vec![mu; graph.num_roads()],
            sigma: vec![sigma; graph.num_roads()],
            rho: vec![rho; graph.num_edges()],
        }
    }

    /// Exact marginal variance via `Var = (A⁻¹)_kk / 2` (the posterior
    /// precision is `2A`; see exact.rs derivation).
    fn exact_variance(a: &SparseMatrix, k: usize) -> f64 {
        let mut e = vec![0.0; a.rows()];
        e[k] = 1.0;
        let sol = conjugate_gradient(a, &e, 1e-12, 10 * a.rows() + 100);
        sol.x[k] / 2.0
    }

    #[test]
    fn sample_mean_matches_map() {
        let g = grid(3, 4);
        let p = params_for(&g, 40.0, 2.0, 0.8);
        let obs = [(RoadId(0), 28.0), (RoadId(11), 50.0)];
        let map = exact_map_estimate(&g, &p, &obs);
        let post = sample_posterior(&g, &p, &obs, 800, 7);
        for r in g.road_ids() {
            assert!(
                (post.mean[r.index()] - map[r.index()]).abs() < 0.5,
                "road {r}: sample mean {} vs MAP {}",
                post.mean[r.index()],
                map[r.index()]
            );
        }
    }

    #[test]
    fn observed_roads_have_zero_std() {
        let g = path(5);
        let p = params_for(&g, 40.0, 3.0, 0.7);
        let obs = [(RoadId(2), 20.0)];
        let post = sample_posterior(&g, &p, &obs, 100, 3);
        assert_eq!(post.std[2], 0.0);
        assert!(post.std[0] > 0.0);
    }

    #[test]
    fn uncertainty_grows_with_distance_from_probes() {
        let g = path(7);
        let p = params_for(&g, 40.0, 3.0, 0.9);
        let obs = [(RoadId(0), 30.0)];
        let post = sample_posterior(&g, &p, &obs, 600, 11);
        // Monotone non-decreasing along the path away from the probe
        // (within sampling noise).
        assert!(post.std[1] < post.std[4] + 0.2, "1 hop {} vs 4 hops {}", post.std[1], post.std[4]);
        assert!(post.std[1] < post.std[6], "1 hop {} vs 6 hops {}", post.std[1], post.std[6]);
    }

    #[test]
    fn sample_std_matches_exact_marginal_variance() {
        let g = grid(2, 3);
        let p = params_for(&g, 40.0, 2.5, 0.8);
        let obs = [(RoadId(0), 30.0)];
        let system = ConditionalSystem::build(&g, &p, &obs);
        let post = sample_posterior(&g, &p, &obs, 4000, 5);
        for (row, &r) in system.unobserved().iter().enumerate() {
            let exact = exact_variance(system.matrix(), row).sqrt();
            let sampled = post.std[r.index()];
            assert!(
                (sampled - exact).abs() < 0.15 * exact + 0.02,
                "road {r}: sampled σ {sampled} vs exact {exact}"
            );
        }
    }

    #[test]
    fn interval_brackets_mean() {
        let g = path(3);
        let p = params_for(&g, 40.0, 2.0, 0.5);
        let post = sample_posterior(&g, &p, &[(RoadId(0), 35.0)], 200, 1);
        let (lo, hi) = post.interval(RoadId(2), 2.0);
        assert!(lo < post.mean[2] && post.mean[2] < hi);
    }

    #[test]
    fn deterministic_in_seed() {
        let g = path(4);
        let p = params_for(&g, 40.0, 2.0, 0.6);
        let a = sample_posterior(&g, &p, &[(RoadId(0), 33.0)], 50, 9);
        let b = sample_posterior(&g, &p, &[(RoadId(0), 33.0)], 50, 9);
        assert_eq!(a.mean, b.mean);
        assert_eq!(a.std, b.std);
    }
}
