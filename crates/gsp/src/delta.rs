//! Delta-GSP: incremental re-propagation from the previous fixed point.
//!
//! Realtime serving recomputes a slot's round every few seconds even when
//! only one crowd value moved; a full Alg. 5 sweep then re-relaxes every
//! scheduled road to rediscover a fixed point that barely shifted. Delta
//! propagation exploits the locality of sparse updates (the LSM-RN /
//! spatio-temporal-correlation argument): it warm-starts from the previous
//! round's values and re-relaxes only the **dirty frontier** — roads whose
//! inputs actually moved — expanding along Γ-neighborhoods until residuals
//! fall below the solver's convergence tolerance.
//!
//! ## Frontier rule
//!
//! A scheduled road enters the dirty set when
//!
//! 1. a neighboring observation moved more than [`DeltaGsp::epsilon`]
//!    against the previous round's value for that road (covers changed
//!    *and* newly added observations), or
//! 2. the caller names a road in `changed` (covers observations *removed*
//!    since the previous round, which the value diff cannot see — the
//!    stored value still equals the stale observation), or
//! 3. during the sweep, a dirty neighbor's relaxation moved its value by
//!    at least the convergence tolerance `base.epsilon` (residual
//!    expansion: the move invalidates every adjacent argmax).
//!
//! Scheduled roads never reached by this closure keep their previous
//! value — which is exactly the Eq. (18) argmax they already sat at,
//! because [`optimal_update`] reads only the road's own parameters and
//! its neighbors' values, and none of those moved. Roads *outside* the
//! schedule (unreachable from the current observation set) revert to the
//! slot prior `μ`, matching where a full propagation leaves them: when a
//! component's last probe expires, its estimates must decay to the prior,
//! not silently coast on stale crowd data.
//!
//! ## ε semantics and the full-sweep mode
//!
//! `epsilon` bounds how far an *input* may drift before the affected
//! neighborhood is re-relaxed; the previous fixed point is itself only a
//! `base.epsilon`-approximate stationary point, so skipped roads can carry
//! residual error up to that same order. Setting `epsilon <= 0.0` disables
//! skipping entirely: every scheduled road is re-relaxed every sweep in
//! schedule order, making the run **bit-identical** to
//! [`propagate_warm`](crate::propagate_warm) from the same previous values
//! on every scheduled or observed road (both execute the same Gauss–Seidel
//! recurrence; unreachable roads are the one deliberate difference — delta
//! resets them to `μ` where warm keeps the seed; property-tested in
//! `tests/proptest_delta.rs`).
//!
//! ## Fallback conditions
//!
//! Delta propagation needs a previous fixed point *for the same slot and
//! model*. Callers fall back to a full cold propagation when no previous
//! round exists (first round of a slot, including after a slot rollover —
//! the serving layer's per-slot cache cells make a cross-slot seed
//! structurally impossible) or when the previous values' length disagrees
//! with the network.

use crate::schedule::UpdateSchedule;
use crate::solver::{GspResult, GspSolver};
use rtse_graph::{Graph, RoadId};
use rtse_obs::{ObsHandle, Stage};
use rtse_rtf::likelihood::optimal_update;
use rtse_rtf::params::SlotParams;

/// Delta propagation configuration.
#[derive(Debug, Clone, Copy)]
pub struct DeltaGsp {
    /// Convergence/round settings shared with the full solver.
    pub base: GspSolver,
    /// Input-movement threshold ε: an observation must move the initial
    /// value of a road by more than this before its neighborhood is
    /// seeded dirty. `<= 0.0` disables skipping (full-sweep mode,
    /// bit-identical to a warm full propagation).
    pub epsilon: f64,
}

impl Default for DeltaGsp {
    /// Full-sweep mode by default: delta skipping is opt-in.
    fn default() -> Self {
        Self { base: GspSolver::default(), epsilon: 0.0 }
    }
}

/// Output of a delta propagation: the ordinary [`GspResult`] plus the
/// frontier accounting the benchmarks and the regression gate read.
#[derive(Debug, Clone)]
pub struct DeltaResult {
    /// The propagation result (same contract as the full solver's).
    pub result: GspResult,
    /// Scheduled roads the changed inputs seeded dirty before the sweep.
    pub frontier: usize,
    /// Roads the sweep was asked to relax each round (schedule size).
    pub scheduled: usize,
    /// Eq. (18) relaxations actually evaluated.
    pub evaluated: usize,
    /// Scheduled-road visits skipped because the road's inputs never
    /// moved. A full sweep would have paid these for nothing.
    pub skipped: usize,
    /// Whether the run executed in full-sweep mode (`epsilon <= 0.0`).
    pub full_sweep: bool,
}

impl rtse_check::Validate for DeltaResult {
    /// Delta-accounting contract on top of the propagation-output
    /// contract: every sweep visits every scheduled road exactly once,
    /// either evaluating or skipping it, and full-sweep mode never skips.
    fn validate(&self) -> Result<(), rtse_check::InvariantViolation> {
        use rtse_check::ensure;
        rtse_check::Validate::validate(&self.result)?;
        ensure(
            self.evaluated + self.skipped == self.result.rounds * self.scheduled,
            "gsp.delta_visit_accounting",
            || {
                format!(
                    "{} evaluated + {} skipped != {} rounds x {} scheduled",
                    self.evaluated, self.skipped, self.result.rounds, self.scheduled
                )
            },
        )?;
        ensure(
            !self.full_sweep || self.skipped == 0,
            "gsp.delta_full_sweep_skips_nothing",
            || format!("full-sweep run skipped {} visits", self.skipped),
        )?;
        ensure(self.frontier <= self.scheduled, "gsp.delta_frontier_in_schedule", || {
            format!("frontier {} exceeds schedule {}", self.frontier, self.scheduled)
        })
    }
}

/// Incremental propagation from the previous round's fixed point.
///
/// `prev` is the previous round's full-network values for the **same slot
/// and model**; `changed` names roads whose observation was removed or is
/// otherwise known-stale since that round (roads whose observation merely
/// changed value are detected internally by diffing against `prev`).
///
/// # Panics
/// Panics when `prev.len()` differs from the road count or the model
/// dimensions disagree with the graph.
pub fn propagate_delta(
    solver: &DeltaGsp,
    graph: &Graph,
    params: &SlotParams,
    observations: &[(RoadId, f64)],
    prev: &[f64],
    changed: &[RoadId],
) -> DeltaResult {
    propagate_delta_observed(solver, graph, params, observations, prev, changed, &ObsHandle::noop())
}

/// [`propagate_delta`] with instrumentation: one `gsp.round` span for the
/// run, the sweep count in `gsp.iters_to_converge`, the seeded frontier
/// size in `gsp.delta_frontier`, and every skipped visit counted into
/// `gsp.delta_skipped`. Estimates are bit-identical to the unobserved
/// call.
///
/// # Panics
/// Panics when `prev.len()` differs from the road count or the model
/// dimensions disagree with the graph.
pub fn propagate_delta_observed(
    solver: &DeltaGsp,
    graph: &Graph,
    params: &SlotParams,
    observations: &[(RoadId, f64)],
    prev: &[f64],
    changed: &[RoadId],
    obs: &ObsHandle,
) -> DeltaResult {
    let _span = obs.span(Stage::GspRound);
    assert_eq!(params.mu.len(), graph.num_roads(), "params/graph mismatch");
    assert_eq!(prev.len(), graph.num_roads(), "previous round length mismatch");
    // Full-sweep mode when ε cannot exclude anything: the sign test is
    // exact by design, not a tolerance comparison, and a NaN ε must fall
    // back to the safe full sweep rather than skip everything.
    let full_sweep = solver.epsilon <= 0.0 || solver.epsilon.is_nan();

    let mut values = prev.to_vec();
    let sampled: Vec<RoadId> = observations.iter().map(|&(r, _)| r).collect();
    let schedule = UpdateSchedule::new(graph, &sampled);
    let scheduled_total = schedule.num_scheduled();

    // Membership mask: frontier expansion only ever marks roads the
    // schedule will visit (observed roads hold their value; unreachable
    // roads are never relaxed by the full solver either).
    let mut scheduled = vec![false; graph.num_roads()];
    for r in schedule.iter() {
        scheduled[r.index()] = true;
    }
    let mut observed = vec![false; graph.num_roads()];
    for &(r, _) in observations {
        observed[r.index()] = true;
    }

    // Roads neither scheduled nor observed revert to the slot prior —
    // exactly where the full solver leaves them. Carrying the previous
    // value instead would keep estimates alive in components whose last
    // probe expired, silently diverging from full propagation. Safe
    // before the diff seeding below: the diff only reads observed roads,
    // which this never touches.
    for i in 0..graph.num_roads() {
        if !scheduled[i] && !observed[i] {
            values[i] = params.mu[i];
        }
    }

    // Seed the dirty frontier from the input diff before snapping the new
    // observations in: `values` still holds the previous round here, so
    // the diff sees exactly how far each observation moved.
    let mut dirty = vec![false; graph.num_roads()];
    let mut frontier = 0usize;
    if !full_sweep {
        for &(r, v) in observations {
            if (v - values[r.index()]).abs() > solver.epsilon {
                for &(n, _) in graph.neighbors(r) {
                    if scheduled[n.index()] && !dirty[n.index()] {
                        dirty[n.index()] = true;
                        frontier += 1;
                    }
                }
            }
        }
        for &r in changed {
            if r.index() >= graph.num_roads() {
                continue;
            }
            if scheduled[r.index()] && !dirty[r.index()] {
                dirty[r.index()] = true;
                frontier += 1;
            }
            for &(n, _) in graph.neighbors(r) {
                if scheduled[n.index()] && !dirty[n.index()] {
                    dirty[n.index()] = true;
                    frontier += 1;
                }
            }
        }
    }
    for &(r, v) in observations {
        values[r.index()] = v;
    }

    let base = &solver.base;
    let mut trace = Vec::new();
    let mut rounds = 0usize;
    let mut evaluated = 0usize;
    let mut skipped = 0usize;
    let mut converged =
        sampled.is_empty() || scheduled_total == 0 || (!full_sweep && frontier == 0);
    while !converged && rounds < base.max_rounds {
        rounds += 1;
        let mut max_delta = 0.0_f64;
        let mut next_frontier = 0usize;
        for layer in schedule.layers() {
            for &r in layer {
                if !full_sweep && !dirty[r.index()] {
                    skipped += 1;
                    continue;
                }
                dirty[r.index()] = false;
                let next = optimal_update(graph, params, &values, r);
                let change = (next - values[r.index()]).abs();
                max_delta = max_delta.max(change);
                values[r.index()] = next;
                evaluated += 1;
                if !full_sweep && change >= base.epsilon {
                    // Residual expansion: the move invalidates every
                    // adjacent argmax, so the neighborhood re-enters the
                    // frontier for the next visit.
                    for &(n, _) in graph.neighbors(r) {
                        if scheduled[n.index()] && !dirty[n.index()] {
                            dirty[n.index()] = true;
                            next_frontier += 1;
                        }
                    }
                }
            }
        }
        if base.record_trace {
            trace.push(max_delta);
        }
        converged = max_delta < base.epsilon || (!full_sweep && next_frontier == 0);
    }
    obs.record(Stage::GspItersToConverge, rounds as u64);
    obs.record(Stage::GspDeltaFrontier, frontier as u64);
    obs.add(Stage::GspDeltaSkipped, skipped as u64);
    let result = DeltaResult {
        result: GspResult {
            values,
            rounds,
            converged,
            unreachable: schedule.unreachable().to_vec(),
            delta_trace: trace,
        },
        frontier,
        scheduled: scheduled_total,
        evaluated,
        skipped,
        full_sweep,
    };
    #[cfg(feature = "validate")]
    {
        if let Err(v) = rtse_check::Validate::validate(params) {
            rtse_check::fail(&v);
        }
        if let Err(v) = rtse_check::Validate::validate(&result) {
            rtse_check::fail(&v);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relax::propagate_warm;
    use rtse_graph::generators::{grid, path};

    fn params_for(graph: &Graph, mu: f64, sigma: f64, rho: f64) -> SlotParams {
        SlotParams {
            mu: vec![mu; graph.num_roads()],
            sigma: vec![sigma; graph.num_roads()],
            rho: vec![rho; graph.num_edges()],
        }
    }

    fn tight() -> GspSolver {
        GspSolver { epsilon: 1e-9, max_rounds: 10_000, record_trace: false }
    }

    #[test]
    fn full_sweep_mode_is_bit_identical_to_warm_propagation() {
        let g = grid(5, 5);
        let p = params_for(&g, 40.0, 2.5, 0.9);
        let solver = tight();
        let first = solver.propagate(&g, &p, &[(RoadId(0), 25.0)]);
        let obs2 = [(RoadId(0), 25.4), (RoadId(24), 49.0)];
        let warm = propagate_warm(&solver, &g, &p, &obs2, &first.values);
        let delta = propagate_delta(
            &DeltaGsp { base: solver, epsilon: 0.0 },
            &g,
            &p,
            &obs2,
            &first.values,
            &[],
        );
        assert!(delta.full_sweep);
        assert_eq!(delta.skipped, 0);
        assert_eq!(delta.result.rounds, warm.rounds);
        for r in g.road_ids() {
            assert_eq!(
                delta.result.speed(r).to_bits(),
                warm.speed(r).to_bits(),
                "road {r}: delta {} vs warm {}",
                delta.result.speed(r),
                warm.speed(r)
            );
        }
    }

    #[test]
    fn unchanged_inputs_skip_the_whole_sweep() {
        let g = grid(5, 5);
        let p = params_for(&g, 40.0, 2.5, 0.9);
        let solver = tight();
        let obs = [(RoadId(0), 25.0), (RoadId(24), 50.0)];
        let first = solver.propagate(&g, &p, &obs);
        assert!(first.converged);
        let delta = propagate_delta(
            &DeltaGsp { base: solver, epsilon: 1e-6 },
            &g,
            &p,
            &obs,
            &first.values,
            &[],
        );
        assert_eq!(delta.frontier, 0, "identical inputs must seed nothing");
        assert_eq!(delta.result.rounds, 0);
        assert_eq!(delta.evaluated, 0);
        assert!(delta.result.converged);
        for r in g.road_ids() {
            assert_eq!(delta.result.speed(r).to_bits(), first.speed(r).to_bits());
        }
    }

    #[test]
    fn single_moved_observation_relaxes_fewer_roads_than_full() {
        let g = grid(8, 8);
        let p = params_for(&g, 40.0, 2.5, 0.85);
        let solver = tight();
        let obs1 = [(RoadId(0), 25.0), (RoadId(63), 50.0)];
        let first = solver.propagate(&g, &p, &obs1);
        // One observation nudges; the far corner's reading is unchanged.
        let obs2 = [(RoadId(0), 25.01), (RoadId(63), 50.0)];
        let warm = propagate_warm(&solver, &g, &p, &obs2, &first.values);
        let delta = propagate_delta(
            &DeltaGsp { base: solver, epsilon: 1e-6 },
            &g,
            &p,
            &obs2,
            &first.values,
            &[],
        );
        assert!(delta.result.converged);
        assert!(delta.skipped > 0, "a localized change must skip visits");
        let full_relaxations = warm.rounds * delta.scheduled;
        assert!(
            delta.evaluated < full_relaxations,
            "delta evaluated {} vs full {}",
            delta.evaluated,
            full_relaxations
        );
        for r in g.road_ids() {
            assert!(
                (delta.result.speed(r) - warm.speed(r)).abs() < 1e-4,
                "road {r}: delta {} vs warm {}",
                delta.result.speed(r),
                warm.speed(r)
            );
        }
    }

    #[test]
    fn removed_observation_needs_the_changed_hint() {
        let g = path(6);
        let p = params_for(&g, 40.0, 2.5, 0.9);
        let solver = tight();
        let obs1 = [(RoadId(0), 20.0), (RoadId(5), 55.0)];
        let first = solver.propagate(&g, &p, &obs1);
        // RoadId(5)'s probe expired: without the hint the stored value
        // still equals the stale observation, so nothing looks moved.
        let obs2 = [(RoadId(0), 20.0)];
        let cfg = DeltaGsp { base: solver, epsilon: 1e-6 };
        let blind = propagate_delta(&cfg, &g, &p, &obs2, &first.values, &[]);
        assert_eq!(blind.frontier, 0, "the diff alone cannot see a removal");
        let hinted = propagate_delta(&cfg, &g, &p, &obs2, &first.values, &[RoadId(5)]);
        assert!(hinted.frontier > 0);
        let cold = solver.propagate(&g, &p, &obs2);
        assert!(hinted.result.converged && cold.converged);
        for r in g.road_ids() {
            assert!(
                (hinted.result.speed(r) - cold.speed(r)).abs() < 1e-3,
                "road {r}: hinted {} vs cold {}",
                hinted.result.speed(r),
                cold.speed(r)
            );
        }
    }

    #[test]
    fn out_of_range_changed_hints_are_ignored() {
        let g = path(4);
        let p = params_for(&g, 40.0, 2.0, 0.8);
        let solver = tight();
        let obs = [(RoadId(0), 30.0)];
        let first = solver.propagate(&g, &p, &obs);
        let delta = propagate_delta(
            &DeltaGsp { base: solver, epsilon: 1e-6 },
            &g,
            &p,
            &obs,
            &first.values,
            &[RoadId(999)],
        );
        assert!(delta.result.converged);
    }

    #[test]
    fn visit_accounting_holds() {
        let g = grid(6, 6);
        let p = params_for(&g, 40.0, 2.5, 0.9);
        let solver = tight();
        let obs1 = [(RoadId(0), 25.0)];
        let first = solver.propagate(&g, &p, &obs1);
        let obs2 = [(RoadId(0), 27.0), (RoadId(35), 44.0)];
        let delta = propagate_delta(
            &DeltaGsp { base: solver, epsilon: 1e-6 },
            &g,
            &p,
            &obs2,
            &first.values,
            &[],
        );
        assert_eq!(
            delta.evaluated + delta.skipped,
            delta.result.rounds * delta.scheduled,
            "every sweep visits every scheduled road exactly once"
        );
        assert!(rtse_check::Validate::validate(&delta).is_ok());
    }

    #[test]
    fn instrumented_run_records_delta_stages() {
        let g = grid(5, 5);
        let p = params_for(&g, 40.0, 2.5, 0.9);
        let solver = tight();
        let first = solver.propagate(&g, &p, &[(RoadId(0), 25.0)]);
        let reg = std::sync::Arc::new(rtse_obs::Registry::new());
        let handle = ObsHandle::from_registry(reg.clone());
        let delta = propagate_delta_observed(
            &DeltaGsp { base: solver, epsilon: 1e-6 },
            &g,
            &p,
            &[(RoadId(0), 26.0)],
            &first.values,
            &[],
            &handle,
        );
        assert_eq!(reg.count(Stage::GspDeltaFrontier), 1);
        assert_eq!(reg.count(Stage::GspDeltaSkipped), delta.skipped as u64);
    }

    #[test]
    #[should_panic(expected = "previous round length mismatch")]
    fn wrong_previous_length_rejected() {
        let g = path(3);
        let p = params_for(&g, 40.0, 2.0, 0.8);
        propagate_delta(&DeltaGsp::default(), &g, &p, &[(RoadId(0), 30.0)], &[1.0, 2.0], &[]);
    }
}
