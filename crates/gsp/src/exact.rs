//! Exact MAP inference for the conditional GMRF — the validation oracle
//! for GSP.
//!
//! Maximizing Eq. (16) is a quadratic program: the unobserved speeds solve
//! the sparse SPD linear system obtained by zeroing the gradient of the
//! (single-edge-counted) energy
//!
//! ```text
//! E(v) = Σ_i (v_i − μ_i)²/σ_i²  +  Σ_{(i,j)∈E} ((v_i − v_j) − μ_ij)²/σ_ij²
//! ```
//!
//! with observed coordinates substituted. GSP's Gauss–Seidel sweeps
//! converge to exactly this solution; [`exact_map_estimate`] computes it
//! directly with conjugate gradient so tests (and the ablation bench) can
//! confirm the fixed point.

use rtse_graph::{Graph, RoadId};
use rtse_math::{conjugate_gradient, SparseMatrix};
use rtse_rtf::params::SlotParams;

/// The assembled conditional linear system `A x = b₀` over the unobserved
/// roads, kept in factored form so callers can re-solve with perturbed
/// right-hand sides (posterior sampling, see [`crate::uncertainty`]).
pub struct ConditionalSystem {
    /// System matrix over the unobserved coordinates.
    a: SparseMatrix,
    /// Unobserved roads in row order.
    unobserved: Vec<RoadId>,
    /// Dense row index per road (`usize::MAX` for observed).
    position: Vec<usize>,
    /// Observed value per road (`NaN` where unobserved).
    observed_value: Vec<f64>,
}

impl ConditionalSystem {
    /// Assembles the system for a model and an observation set.
    ///
    /// # Panics
    /// Panics on model/graph dimension mismatch or out-of-range
    /// observations.
    pub fn build(graph: &Graph, params: &SlotParams, observations: &[(RoadId, f64)]) -> Self {
        let n = graph.num_roads();
        assert_eq!(params.mu.len(), n, "params/graph mismatch");
        let mut observed_value = vec![f64::NAN; n];
        for &(r, v) in observations {
            assert!(r.index() < n, "observation for unknown road {r}");
            observed_value[r.index()] = v;
        }
        let mut unobserved: Vec<RoadId> = Vec::with_capacity(n);
        let mut position = vec![usize::MAX; n];
        for r in graph.road_ids() {
            if observed_value[r.index()].is_nan() {
                position[r.index()] = unobserved.len();
                unobserved.push(r);
            }
        }
        let m = unobserved.len();
        let mut triplets: Vec<(usize, usize, f64)> = Vec::with_capacity(4 * graph.num_edges());
        for (row, &i) in unobserved.iter().enumerate() {
            let si = params.sigma[i.index()];
            let mut diag = 1.0 / (si * si);
            for &(j, e) in graph.neighbors(i) {
                let u = params.sigma_diff_sq(i, j, e);
                diag += 1.0 / u;
                if observed_value[j.index()].is_nan() {
                    triplets.push((row, position[j.index()], -1.0 / u));
                }
            }
            triplets.push((row, row, diag));
        }
        Self {
            a: SparseMatrix::from_triplets(m, m, &triplets),
            unobserved,
            position,
            observed_value,
        }
    }

    /// Number of unobserved coordinates.
    pub fn dim(&self) -> usize {
        self.unobserved.len()
    }

    /// Unobserved roads in row order.
    pub fn unobserved(&self) -> &[RoadId] {
        &self.unobserved
    }

    /// Dense row index of a road, `None` when it was observed.
    pub fn row_of(&self, r: RoadId) -> Option<usize> {
        let p = self.position[r.index()];
        (p != usize::MAX).then_some(p)
    }

    /// The observed speed of a road, `None` when it was not observed.
    pub fn observed_speed(&self, r: RoadId) -> Option<f64> {
        let v = self.observed_value[r.index()];
        (!v.is_nan()).then_some(v)
    }

    /// The unperturbed right-hand side (MAP estimate's `b`).
    pub fn base_rhs(&self, graph: &Graph, params: &SlotParams) -> Vec<f64> {
        let mut b = vec![0.0; self.dim()];
        for (row, &i) in self.unobserved.iter().enumerate() {
            let si = params.sigma[i.index()];
            b[row] += params.mu[i.index()] / (si * si);
            for &(j, e) in graph.neighbors(i) {
                let u = params.sigma_diff_sq(i, j, e);
                b[row] += params.mu_diff(i, j) / u;
                let vj = self.observed_value[j.index()];
                if !vj.is_nan() {
                    b[row] += vj / u;
                }
            }
        }
        b
    }

    /// Solves `A x = b` and scatters the result into a full-network vector
    /// (observed roads echo their observations).
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let m = self.dim();
        let mut out = self.observed_value.clone();
        if m == 0 {
            return out;
        }
        let sol = conjugate_gradient(&self.a, b, 1e-12, 10 * m + 100);
        debug_assert!(sol.converged, "CG failed to converge: residual {}", sol.residual_norm);
        for (row, &r) in self.unobserved.iter().enumerate() {
            out[r.index()] = sol.x[row];
        }
        out
    }

    /// Borrow of the system matrix (tests, variance computations).
    pub fn matrix(&self) -> &SparseMatrix {
        &self.a
    }
}

/// Exact conditional-MAP estimate.
///
/// Returns one speed per road: observations echoed verbatim, all other
/// roads set to the unique maximizer of the joint likelihood given the
/// observations (unreachable roads decouple into their own blocks and
/// resolve to their `μ` because their system is independent of the data).
///
/// # Panics
/// Panics on model/graph dimension mismatch or out-of-range observations.
pub fn exact_map_estimate(
    graph: &Graph,
    params: &SlotParams,
    observations: &[(RoadId, f64)],
) -> Vec<f64> {
    let system = ConditionalSystem::build(graph, params, observations);
    let b = system.base_rhs(graph, params);
    system.solve(&b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::GspSolver;
    use rtse_graph::generators::{grid, path};

    fn params_for(graph: &Graph, mu: f64, sigma: f64, rho: f64) -> SlotParams {
        SlotParams {
            mu: vec![mu; graph.num_roads()],
            sigma: vec![sigma; graph.num_roads()],
            rho: vec![rho; graph.num_edges()],
        }
    }

    #[test]
    fn matches_gsp_fixed_point() {
        let g = grid(4, 5);
        let mut p = params_for(&g, 40.0, 2.5, 0.8);
        // Heterogeneous parameters to make the test non-trivial.
        for (i, mu) in p.mu.iter_mut().enumerate() {
            *mu += (i % 7) as f64;
        }
        for (i, s) in p.sigma.iter_mut().enumerate() {
            *s += (i % 3) as f64 * 0.7;
        }
        let obs = [(RoadId(0), 25.0), (RoadId(19), 55.0), (RoadId(7), 33.0)];
        let exact = exact_map_estimate(&g, &p, &obs);
        let gsp = GspSolver { epsilon: 1e-12, max_rounds: 20_000, record_trace: false }
            .propagate(&g, &p, &obs);
        assert!(gsp.converged);
        for r in g.road_ids() {
            assert!(
                (exact[r.index()] - gsp.speed(r)).abs() < 1e-6,
                "road {r}: exact {} vs gsp {}",
                exact[r.index()],
                gsp.speed(r)
            );
        }
    }

    #[test]
    fn all_observed_echoes() {
        let g = path(3);
        let p = params_for(&g, 30.0, 2.0, 0.5);
        let obs = [(RoadId(0), 1.0), (RoadId(1), 2.0), (RoadId(2), 3.0)];
        assert_eq!(exact_map_estimate(&g, &p, &obs), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn no_observations_returns_means() {
        let g = path(4);
        let p = params_for(&g, 42.0, 2.0, 0.7);
        let est = exact_map_estimate(&g, &p, &[]);
        for v in est {
            assert!((v - 42.0).abs() < 1e-8);
        }
    }

    #[test]
    fn disconnected_block_resolves_to_mean() {
        let mut b = rtse_graph::GraphBuilder::new();
        for i in 0..4 {
            b.add_road(rtse_graph::RoadClass::Local, (i as f64, 0.0));
        }
        b.add_edge(RoadId(0), RoadId(1));
        b.add_edge(RoadId(2), RoadId(3));
        let g = b.build();
        let p = params_for(&g, 35.0, 2.0, 0.9);
        let est = exact_map_estimate(&g, &p, &[(RoadId(0), 10.0)]);
        assert!((est[2] - 35.0).abs() < 1e-8);
        assert!((est[3] - 35.0).abs() < 1e-8);
        assert!(est[1] < 35.0, "connected neighbor pulled down");
    }
}
