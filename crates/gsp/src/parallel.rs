//! Layer-parallel GSP.
//!
//! The paper observes (Section VI, "Time Efficiency of GSP") that two
//! variables can be updated in parallel when they sit in the same hop layer
//! and are not adjacent. This implementation takes the standard Jacobi
//! relaxation of that idea: within a layer, every update of a round reads
//! the values from before the layer sweep and the writes land together.
//! Adjacent same-layer roads therefore see each other's previous values —
//! a (possibly) different trajectory from the sequential Gauss–Seidel
//! sweep, but the same fixed point (each update remains the Eq. (18)
//! argmax, and the argmax is a contraction toward the unique maximizer of
//! the concave objective).

use crate::schedule::UpdateSchedule;
use crate::solver::{GspResult, GspSolver};
use rtse_graph::{Graph, RoadId};
use rtse_pool::ComputePool;
use rtse_rtf::likelihood::optimal_update;
use rtse_rtf::params::SlotParams;
use rtse_sync::{PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Below this much per-layer *work* the per-chunk dispatch overhead
/// exceeds the parallel win, so the layer is swept serially on the caller.
///
/// Work is measured in Eq. (18) update-cost units via [`layer_work`]:
/// `1 + degree(r)` per scheduled road, since the update of road `r` reads
/// every neighbor once plus its own prior. The old cutover counted roads
/// only (`layer.len() < 32`), which dispatched worker chunks for wide
/// layers of near-leaf roads whose whole sweep costs less than the
/// dispatch itself — the BENCH_offline.json `gsp_propagate` rows showed
/// the pooled runs *losing* to serial on such networks. 4096 work units
/// is roughly the measured round-trip cost of a pool dispatch in Eq. (18)
/// evaluations on the benched hosts; the exact value is recorded in
/// `BENCH_offline.json` under `gsp_parallel_cutover`.
pub const MIN_PARALLEL_WORK: usize = 4096;

/// Eq. (18) update-cost estimate of sweeping `layer`: each road costs one
/// unit plus one per neighbor read. This is the quantity compared against
/// [`MIN_PARALLEL_WORK`] when deciding whether a layer is worth
/// dispatching to the pool.
pub fn layer_work(graph: &Graph, layer: &[RoadId]) -> usize {
    layer.iter().map(|&r| 1 + graph.degree(r)).sum()
}

fn read_lock(lock: &RwLock<Vec<f64>>) -> RwLockReadGuard<'_, Vec<f64>> {
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

fn write_lock(lock: &RwLock<Vec<f64>>) -> RwLockWriteGuard<'_, Vec<f64>> {
    lock.write().unwrap_or_else(PoisonError::into_inner)
}

/// Parallel propagation configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct ParallelGsp {
    /// Convergence/round settings shared with the sequential solver.
    pub base: GspSolver,
    /// Number of worker threads. `0` (the default) defers to
    /// `RTSE_THREADS` / host parallelism; `1` forces the serial sweep.
    pub threads: usize,
}

impl ParallelGsp {
    /// Runs layer-parallel propagation. Semantics match
    /// [`GspSolver::propagate`]; only the within-layer evaluation order
    /// differs (Jacobi instead of Gauss–Seidel).
    ///
    /// Workers are spawned once per propagate call on a shared
    /// [`ComputePool`] scope and reused across every layer of every round
    /// (the old implementation re-spawned `threads` OS threads per layer
    /// per round). Single-thread pools and layers whose measured work
    /// ([`layer_work`]) falls below [`MIN_PARALLEL_WORK`] are swept
    /// serially on the caller thread. When **no** layer reaches the
    /// cutover, the pool scope is skipped entirely: a propagation that
    /// would never dispatch a job must not pay `threads` spawns+joins
    /// either (the `gsp_propagate` pooled-slowdown tail BENCH_offline.json
    /// showed on sub-cutover networks).
    pub fn propagate(
        &self,
        graph: &Graph,
        params: &SlotParams,
        observations: &[(RoadId, f64)],
    ) -> GspResult {
        self.propagate_observed(graph, params, observations, &rtse_obs::ObsHandle::noop())
    }

    /// [`propagate`](Self::propagate) with job accounting: pooled layer
    /// sweeps count their chunk dispatches under `pool.jobs` on `obs`.
    /// Fully-serial propagations (single-thread pools, or every layer
    /// below [`MIN_PARALLEL_WORK`]) dispatch nothing and count nothing.
    /// Estimates are bit-identical to the unobserved call.
    pub fn propagate_observed(
        &self,
        graph: &Graph,
        params: &SlotParams,
        observations: &[(RoadId, f64)],
        obs: &rtse_obs::ObsHandle,
    ) -> GspResult {
        assert_eq!(params.mu.len(), graph.num_roads(), "params/graph mismatch");
        let pool = ComputePool::new(self.threads);
        let mut values = params.mu.clone();
        for &(r, v) in observations {
            values[r.index()] = v;
        }
        let sampled: Vec<RoadId> = observations.iter().map(|&(r, _)| r).collect();
        let schedule = UpdateSchedule::new(graph, &sampled);
        // Layers are fixed for the whole call; measure each once so the
        // serial-vs-pooled cutover inside the round loop is a comparison,
        // not a degree sum per round.
        let work: Vec<usize> = schedule.layers().iter().map(|l| layer_work(graph, l)).collect();

        let mut trace = Vec::new();
        let mut rounds = 0;
        let mut converged = sampled.is_empty() || schedule.num_scheduled() == 0;

        // Decide once whether this propagation can ever dispatch: with a
        // single worker or every layer under the cutover, every round of
        // every sweep runs on the caller thread, so opening a pool scope
        // would only buy the spawn/join overhead.
        if pool.threads() == 1 || work.iter().all(|&w| w < MIN_PARALLEL_WORK) {
            let mut values = values;
            while !converged && rounds < self.base.max_rounds {
                rounds += 1;
                let mut max_delta = 0.0_f64;
                for layer in schedule.layers() {
                    // Jacobi step: evaluate against the pre-sweep values,
                    // then land the writes together.
                    let fresh: Vec<(usize, f64)> = layer
                        .iter()
                        .map(|&r| (r.index(), optimal_update(graph, params, &values, r)))
                        .collect();
                    for &(idx, v) in &fresh {
                        max_delta = max_delta.max((v - values[idx]).abs());
                        values[idx] = v;
                    }
                }
                if self.base.record_trace {
                    trace.push(max_delta);
                }
                converged = max_delta < self.base.epsilon;
            }
            return GspResult {
                values,
                rounds,
                converged,
                unreachable: schedule.unreachable().to_vec(),
                delta_trace: trace,
            };
        }

        // Workers read the value buffer through a shared lock while the
        // caller holds it exclusively between layer sweeps — reads and
        // writes never overlap, so every update still sees exactly the
        // pre-sweep values (the Jacobi contract).
        let values = RwLock::new(values);
        pool.scoped_observed(obs, |scope| {
            while !converged && rounds < self.base.max_rounds {
                rounds += 1;
                let mut max_delta = 0.0_f64;
                for (layer, &layer_cost) in schedule.layers().iter().zip(&work) {
                    // Jacobi step over the layer, chunked across workers.
                    let fresh: Vec<(usize, f64)> = if layer_cost < MIN_PARALLEL_WORK {
                        let vals = read_lock(&values);
                        layer
                            .iter()
                            .map(|&r| (r.index(), optimal_update(graph, params, &vals, r)))
                            .collect()
                    } else {
                        let values_ref = &values;
                        scope
                            .run_chunks(layer, scope.threads(), move |part| {
                                let vals = read_lock(values_ref);
                                part.iter()
                                    .map(|&r| (r.index(), optimal_update(graph, params, &vals, r)))
                                    .collect::<Vec<_>>()
                            })
                            .into_iter()
                            .flatten()
                            .collect()
                    };
                    let mut vals = write_lock(&values);
                    for &(idx, v) in &fresh {
                        max_delta = max_delta.max((v - vals[idx]).abs());
                        vals[idx] = v;
                    }
                }
                if self.base.record_trace {
                    trace.push(max_delta);
                }
                converged = max_delta < self.base.epsilon;
            }
        });
        GspResult {
            values: values.into_inner().unwrap_or_else(PoisonError::into_inner),
            rounds,
            converged,
            unreachable: schedule.unreachable().to_vec(),
            delta_trace: trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtse_graph::generators::grid;

    fn params_for(graph: &Graph, mu: f64, sigma: f64, rho: f64) -> SlotParams {
        SlotParams {
            mu: vec![mu; graph.num_roads()],
            sigma: vec![sigma; graph.num_roads()],
            rho: vec![rho; graph.num_edges()],
        }
    }

    #[test]
    fn parallel_matches_sequential_fixed_point() {
        let g = grid(4, 5);
        let p = params_for(&g, 40.0, 2.0, 0.85);
        let obs = [(RoadId(0), 25.0), (RoadId(19), 55.0), (RoadId(10), 33.0)];
        let tight = GspSolver { epsilon: 1e-10, max_rounds: 5000, record_trace: false };
        let seq = tight.propagate(&g, &p, &obs);
        let par = ParallelGsp { base: tight, threads: 3 }.propagate(&g, &p, &obs);
        assert!(seq.converged && par.converged);
        for r in g.road_ids() {
            assert!(
                (seq.speed(r) - par.speed(r)).abs() < 1e-6,
                "road {r}: seq {} vs par {}",
                seq.speed(r),
                par.speed(r)
            );
        }
    }

    #[test]
    fn layer_work_counts_updates_and_neighbor_reads() {
        let g = grid(3, 3);
        let all: Vec<RoadId> = g.road_ids().collect();
        // One unit per update plus one per neighbor read: Σ(1 + deg) over
        // the whole network is N + 2E.
        assert_eq!(layer_work(&g, &all), g.num_roads() + 2 * g.num_edges());
        assert_eq!(layer_work(&g, &[]), 0);
    }

    #[test]
    fn single_thread_parallel_works() {
        let g = grid(2, 3);
        let p = params_for(&g, 30.0, 2.0, 0.7);
        let par = ParallelGsp { threads: 1, ..Default::default() };
        let r = par.propagate(&g, &p, &[(RoadId(0), 20.0)]);
        assert!(r.converged);
        assert_eq!(r.speed(RoadId(0)), 20.0);
    }

    #[test]
    fn thread_count_does_not_change_result() {
        let g = grid(3, 4);
        let p = params_for(&g, 45.0, 3.0, 0.8);
        let obs = [(RoadId(5), 30.0)];
        let base = GspSolver { epsilon: 1e-10, max_rounds: 5000, record_trace: false };
        let r1 = ParallelGsp { base, threads: 1 }.propagate(&g, &p, &obs);
        let r4 = ParallelGsp { base, threads: 4 }.propagate(&g, &p, &obs);
        for r in g.road_ids() {
            assert!((r1.speed(r) - r4.speed(r)).abs() < 1e-9);
        }
    }

    #[test]
    fn fully_serial_rounds_dispatch_no_pool_jobs() {
        // Every layer of this network is far below MIN_PARALLEL_WORK, so
        // even a multi-thread solver must never open the pool: zero jobs,
        // zero queue movement — the propagate call costs what the serial
        // sweep costs.
        let g = grid(4, 5);
        let p = params_for(&g, 40.0, 2.0, 0.85);
        let obs = [(RoadId(0), 25.0), (RoadId(19), 55.0)];
        let handle = rtse_obs::ObsHandle::fresh();
        let r = ParallelGsp { threads: 4, ..Default::default() }
            .propagate_observed(&g, &p, &obs, &handle);
        assert!(r.converged);
        if handle.is_enabled() {
            let reg = handle.registry().expect("fresh handle has a registry");
            assert_eq!(
                reg.count(rtse_obs::Stage::PoolJobs),
                0,
                "sub-cutover propagation must not dispatch"
            );
        }
    }

    #[test]
    fn above_cutover_layers_dispatch_pool_jobs() {
        // Observing every even road makes layer 1 the ~1800 odd roads —
        // work ≈ 5 per road, comfortably above MIN_PARALLEL_WORK — so the
        // pooled path must actually dispatch chunks.
        let g = grid(60, 60);
        let p = params_for(&g, 40.0, 2.0, 0.85);
        let obs: Vec<(RoadId, f64)> =
            (0..g.num_roads()).step_by(2).map(|i| (RoadId(i as u32), 30.0)).collect();
        assert!(layer_work(&g, &g.road_ids().collect::<Vec<_>>()) >= MIN_PARALLEL_WORK);
        let handle = rtse_obs::ObsHandle::fresh();
        let r = ParallelGsp { threads: 4, ..Default::default() }
            .propagate_observed(&g, &p, &obs, &handle);
        assert!(r.converged);
        if handle.is_enabled() {
            let reg = handle.registry().expect("fresh handle has a registry");
            assert!(reg.count(rtse_obs::Stage::PoolJobs) > 0, "wide layers must dispatch");
        }
    }

    #[test]
    fn serial_fast_path_is_bit_identical_to_the_pooled_sweep() {
        // The fast path must not change the trajectory, only skip the
        // scope: force the pooled branch by lowering threads vs a network
        // whose layers straddle nothing (all sub-cutover), and compare
        // against the single-thread result bit for bit.
        let g = grid(5, 6);
        let p = params_for(&g, 42.0, 2.5, 0.9);
        let obs = [(RoadId(0), 20.0), (RoadId(29), 58.0)];
        let base = GspSolver { epsilon: 1e-10, max_rounds: 5000, record_trace: false };
        let serial = ParallelGsp { base, threads: 1 }.propagate(&g, &p, &obs);
        let fast = ParallelGsp { base, threads: 4 }.propagate(&g, &p, &obs);
        assert_eq!(serial.rounds, fast.rounds);
        for r in g.road_ids() {
            assert_eq!(serial.speed(r).to_bits(), fast.speed(r).to_bits(), "road {r}");
        }
    }

    #[test]
    fn empty_observations_no_work() {
        let g = grid(2, 2);
        let p = params_for(&g, 33.0, 2.0, 0.5);
        let r = ParallelGsp::default().propagate(&g, &p, &[]);
        assert!(r.converged);
        assert_eq!(r.rounds, 0);
    }
}
