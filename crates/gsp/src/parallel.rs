//! Layer-parallel GSP.
//!
//! The paper observes (Section VI, "Time Efficiency of GSP") that two
//! variables can be updated in parallel when they sit in the same hop layer
//! and are not adjacent. This implementation takes the standard Jacobi
//! relaxation of that idea: within a layer, every update of a round reads
//! the values from before the layer sweep and the writes land together.
//! Adjacent same-layer roads therefore see each other's previous values —
//! a (possibly) different trajectory from the sequential Gauss–Seidel
//! sweep, but the same fixed point (each update remains the Eq. (18)
//! argmax, and the argmax is a contraction toward the unique maximizer of
//! the concave objective).

use crate::schedule::UpdateSchedule;
use crate::solver::{GspResult, GspSolver};
use rtse_graph::{Graph, RoadId};
use rtse_rtf::likelihood::optimal_update;
use rtse_rtf::params::SlotParams;

/// Parallel propagation configuration.
#[derive(Debug, Clone, Copy)]
pub struct ParallelGsp {
    /// Convergence/round settings shared with the sequential solver.
    pub base: GspSolver,
    /// Number of worker threads (minimum 1).
    pub threads: usize,
}

impl Default for ParallelGsp {
    fn default() -> Self {
        Self { base: GspSolver::default(), threads: 4 }
    }
}

impl ParallelGsp {
    /// Runs layer-parallel propagation. Semantics match
    /// [`GspSolver::propagate`]; only the within-layer evaluation order
    /// differs (Jacobi instead of Gauss–Seidel).
    pub fn propagate(
        &self,
        graph: &Graph,
        params: &SlotParams,
        observations: &[(RoadId, f64)],
    ) -> GspResult {
        assert_eq!(params.mu.len(), graph.num_roads(), "params/graph mismatch");
        let threads = self.threads.max(1);
        let mut values = params.mu.clone();
        for &(r, v) in observations {
            values[r.index()] = v;
        }
        let sampled: Vec<RoadId> = observations.iter().map(|&(r, _)| r).collect();
        let schedule = UpdateSchedule::new(graph, &sampled);

        let mut trace = Vec::new();
        let mut rounds = 0;
        let mut converged = sampled.is_empty() || schedule.num_scheduled() == 0;
        let mut fresh: Vec<(usize, f64)> = Vec::new();
        while !converged && rounds < self.base.max_rounds {
            rounds += 1;
            let mut max_delta = 0.0_f64;
            for layer in schedule.layers() {
                // Jacobi step over the layer, chunked across threads.
                fresh.clear();
                fresh.reserve(layer.len());
                let chunk = layer.len().div_ceil(threads);
                let values_ref = &values;
                let results: Vec<Vec<(usize, f64)>> = std::thread::scope(|scope| {
                    let handles: Vec<_> = layer
                        .chunks(chunk.max(1))
                        .map(|part| {
                            scope.spawn(move || {
                                part.iter()
                                    .map(|&r| {
                                        (r.index(), optimal_update(graph, params, values_ref, r))
                                    })
                                    .collect::<Vec<_>>()
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| match h.join() {
                            Ok(part) => part,
                            Err(payload) => std::panic::resume_unwind(payload),
                        })
                        .collect()
                });
                for part in results {
                    fresh.extend(part);
                }
                for &(idx, v) in &fresh {
                    max_delta = max_delta.max((v - values[idx]).abs());
                    values[idx] = v;
                }
            }
            if self.base.record_trace {
                trace.push(max_delta);
            }
            converged = max_delta < self.base.epsilon;
        }
        GspResult {
            values,
            rounds,
            converged,
            unreachable: schedule.unreachable().to_vec(),
            delta_trace: trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtse_graph::generators::grid;

    fn params_for(graph: &Graph, mu: f64, sigma: f64, rho: f64) -> SlotParams {
        SlotParams {
            mu: vec![mu; graph.num_roads()],
            sigma: vec![sigma; graph.num_roads()],
            rho: vec![rho; graph.num_edges()],
        }
    }

    #[test]
    fn parallel_matches_sequential_fixed_point() {
        let g = grid(4, 5);
        let p = params_for(&g, 40.0, 2.0, 0.85);
        let obs = [(RoadId(0), 25.0), (RoadId(19), 55.0), (RoadId(10), 33.0)];
        let tight = GspSolver { epsilon: 1e-10, max_rounds: 5000, record_trace: false };
        let seq = tight.propagate(&g, &p, &obs);
        let par = ParallelGsp { base: tight, threads: 3 }.propagate(&g, &p, &obs);
        assert!(seq.converged && par.converged);
        for r in g.road_ids() {
            assert!(
                (seq.speed(r) - par.speed(r)).abs() < 1e-6,
                "road {r}: seq {} vs par {}",
                seq.speed(r),
                par.speed(r)
            );
        }
    }

    #[test]
    fn single_thread_parallel_works() {
        let g = grid(2, 3);
        let p = params_for(&g, 30.0, 2.0, 0.7);
        let par = ParallelGsp { threads: 1, ..Default::default() };
        let r = par.propagate(&g, &p, &[(RoadId(0), 20.0)]);
        assert!(r.converged);
        assert_eq!(r.speed(RoadId(0)), 20.0);
    }

    #[test]
    fn thread_count_does_not_change_result() {
        let g = grid(3, 4);
        let p = params_for(&g, 45.0, 3.0, 0.8);
        let obs = [(RoadId(5), 30.0)];
        let base = GspSolver { epsilon: 1e-10, max_rounds: 5000, record_trace: false };
        let r1 = ParallelGsp { base, threads: 1 }.propagate(&g, &p, &obs);
        let r4 = ParallelGsp { base, threads: 4 }.propagate(&g, &p, &obs);
        for r in g.road_ids() {
            assert!((r1.speed(r) - r4.speed(r)).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_observations_no_work() {
        let g = grid(2, 2);
        let p = params_for(&g, 33.0, 2.0, 0.5);
        let r = ParallelGsp::default().propagate(&g, &p, &[]);
        assert!(r.converged);
        assert_eq!(r.rounds, 0);
    }
}
