//! GSP — Graph-based Speed Propagation (Section VI, Alg. 5).
//!
//! Given crowdsourced speeds for the sampled roads, GSP infers the speed of
//! every other road by maximizing the RTF likelihood (Eq. 16):
//!
//! 1. **Initialization** — sampled roads take their crowdsourced values;
//!    all other roads take their slot means `μ_i^t`.
//! 2. **Iterative update** — roads are visited in BFS-layer order from the
//!    sampled set (1-hop ring first, then 2-hop, …) and each receives the
//!    closed-form coordinate argmax of Eq. (18). Rounds repeat until every
//!    change falls below `ε`.
//!
//! Each Eq. (18) update is the exact argmax of the joint configuration
//! likelihood in that coordinate, so the sweep is coordinate ascent: the
//! likelihood is non-decreasing and the iteration converges.
//!
//! [`parallel`] provides the layer-parallel variant the paper sketches
//! (variables in the same hop layer updated concurrently).

pub mod delta;
pub mod exact;
pub mod parallel;
pub mod relax;
pub mod schedule;
pub mod solver;
pub mod uncertainty;

pub use delta::{propagate_delta, propagate_delta_observed, DeltaGsp, DeltaResult};
pub use exact::exact_map_estimate;
pub use parallel::{layer_work, ParallelGsp, MIN_PARALLEL_WORK};
pub use relax::{propagate_warm, propagate_warm_observed, DampedGsp};
pub use schedule::UpdateSchedule;
pub use solver::{GspResult, GspSolver};
pub use uncertainty::{sample_posterior, PosteriorSummary};
