//! Equivalence wall for delta re-propagation ([`rtse_gsp::propagate_delta`]).
//!
//! Three properties pin the delta solver to the full one:
//!
//! * **ε = 0 is exact.** Full-sweep mode runs the same Gauss–Seidel
//!   recurrence as [`rtse_gsp::propagate_warm`] from the same seed, so the
//!   results must be bit-identical — any divergence means the frontier
//!   machinery leaked into the arithmetic.
//! * **ε > 0 is a refinement, not an approximation of a different fixed
//!   point.** Seeding from a converged previous round and perturbing the
//!   observations, the delta run must land within solver tolerance of the
//!   cold full run on the new observations, for arbitrary topology and
//!   change sets (moved readings, added probes, removed probes via the
//!   `changed` hint).
//! * **Thread counts don't move the target.** The pooled Jacobi solver at
//!   1–8 threads and the serial delta run chase the same fixed point; both
//!   must agree within tolerance on every road.

use proptest::prelude::*;
use rtse_graph::generators::grid;
use rtse_graph::{Graph, GraphBuilder, RoadClass, RoadId};
use rtse_gsp::{propagate_delta, propagate_warm, DeltaGsp, GspSolver, ParallelGsp};
use rtse_rtf::params::SlotParams;

const N: usize = 14;

fn random_graph(edges: &[(u32, u32)]) -> Graph {
    let mut b = GraphBuilder::new();
    for i in 0..N {
        b.add_road(RoadClass::Secondary, (i as f64, 0.0));
    }
    for &(x, y) in edges {
        if x != y {
            b.add_edge(RoadId(x), RoadId(y));
        }
    }
    b.build()
}

fn params_for(graph: &Graph, mu: f64, sigma: f64, rho: f64) -> SlotParams {
    SlotParams {
        mu: vec![mu; graph.num_roads()],
        sigma: vec![sigma; graph.num_roads()],
        rho: vec![rho; graph.num_edges()],
    }
}

/// Dedups an observation list by road (first reading wins) so random
/// index/speed pairs never trip the solver's conflicting-observation check.
fn dedup_obs(raw: &[(u32, f64)]) -> Vec<(RoadId, f64)> {
    let mut seen = [false; N];
    let mut obs = Vec::new();
    for &(r, v) in raw {
        let i = r as usize % N;
        if !seen[i] {
            seen[i] = true;
            obs.push((RoadId(i as u32), v));
        }
    }
    obs
}

proptest! {
    /// ε = 0 (full-sweep mode) is bit-identical to warm full propagation
    /// from the same previous values, for arbitrary topology, observation
    /// sets, previous rounds, and `changed` hints (which full-sweep mode
    /// must ignore entirely).
    #[test]
    fn epsilon_zero_is_bit_identical_to_warm_full(
        edges in proptest::collection::vec((0u32..N as u32, 0u32..N as u32), 0..40),
        raw_obs in proptest::collection::vec((0u32..N as u32, 5.0..80.0f64), 0..6),
        prev in proptest::collection::vec(5.0..80.0f64, N),
        hints in proptest::collection::vec(0u32..N as u32, 0..4),
        mu in 20.0..60.0f64,
        sigma in 0.5..3.0f64,
        rho in 0.05..0.95f64,
    ) {
        let g = random_graph(&edges);
        let p = params_for(&g, mu, sigma, rho);
        let obs = dedup_obs(&raw_obs);
        let changed: Vec<RoadId> = hints.into_iter().map(RoadId).collect();
        let base = GspSolver { epsilon: 1e-6, max_rounds: 200, record_trace: true };

        let warm = propagate_warm(&base, &g, &p, &obs, &prev);
        let solver = DeltaGsp { base, epsilon: 0.0 };
        let delta = propagate_delta(&solver, &g, &p, &obs, &prev, &changed);

        prop_assert!(delta.full_sweep, "ε = 0 must select full-sweep mode");
        prop_assert_eq!(delta.skipped, 0, "full-sweep mode must not skip roads");
        prop_assert_eq!(delta.result.rounds, warm.rounds, "round counts differ");
        prop_assert_eq!(delta.result.converged, warm.converged);
        prop_assert_eq!(&delta.result.delta_trace, &warm.delta_trace);
        // Unreachable roads are the one deliberate divergence from warm
        // propagation: delta resets them to the slot prior (matching the
        // cold solver) where warm keeps the seed.
        for &r in &delta.result.unreachable {
            prop_assert!(
                delta.result.speed(r).to_bits() == p.mu[r.index()].to_bits(),
                "unreachable {} must revert to the prior", r
            );
        }
        for r in g.road_ids() {
            if delta.result.unreachable.contains(&r) {
                continue;
            }
            let (d, w) = (delta.result.speed(r), warm.speed(r));
            prop_assert!(
                d.to_bits() == w.to_bits(),
                "speed({}) differs: delta {} vs warm {}", r, d, w
            );
        }
    }
}

proptest! {
    /// ε > 0: seeded from the converged previous round, a delta run over a
    /// perturbed observation set (moved readings plus optionally one added
    /// and one removed probe) lands within solver tolerance of the cold
    /// full propagation over the same new observations.
    #[test]
    fn perturbed_rounds_match_cold_within_tolerance(
        edges in proptest::collection::vec((0u32..N as u32, 0u32..N as u32), 0..40),
        raw_obs in proptest::collection::vec((0u32..N as u32, 5.0..80.0f64), 1..6),
        nudges in proptest::collection::vec(-4.0..4.0f64, 6),
        added in 0u32..N as u32,
        add_speed in 5.0..80.0f64,
        drop_first in 0u8..2,
        delta_eps in 1e-9..1e-3f64,
        mu in 20.0..60.0f64,
        sigma in 0.5..3.0f64,
        rho in 0.05..0.95f64,
    ) {
        let g = random_graph(&edges);
        let p = params_for(&g, mu, sigma, rho);
        let base = GspSolver { epsilon: 1e-7, max_rounds: 2_000, record_trace: false };

        let obs_a = dedup_obs(&raw_obs);
        let first = base.propagate(&g, &p, &obs_a);
        prop_assert!(first.converged);

        // New round: nudge every reading, maybe drop the first probe,
        // maybe add a new one.
        let mut obs_b: Vec<(RoadId, f64)> = obs_a
            .iter()
            .zip(&nudges)
            .map(|(&(r, v), &n)| (r, (v + n).max(1.0)))
            .collect();
        let mut changed = Vec::new();
        if drop_first == 1 {
            let (dropped, _) = obs_b.remove(0);
            changed.push(dropped);
        }
        if !obs_b.iter().any(|&(r, _)| r == RoadId(added)) {
            obs_b.push((RoadId(added), add_speed));
        }

        let cold = base.propagate(&g, &p, &obs_b);
        let solver = DeltaGsp { base, epsilon: delta_eps };
        let delta = propagate_delta(&solver, &g, &p, &obs_b, &first.values, &changed);
        prop_assert!(cold.converged && delta.result.converged);
        for r in g.road_ids() {
            let (d, c) = (delta.result.speed(r), cold.speed(r));
            prop_assert!(
                (d - c).abs() < 1e-3,
                "speed({}) drifted: delta {} vs cold {}", r, d, c
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    /// Thread counts 1–8: the serial delta run and the pooled Jacobi
    /// full solver agree on the fixed point within tolerance. A 12×12
    /// grid keeps BFS layers wide enough that the pooled path does real
    /// chunked work at higher thread counts.
    #[test]
    fn delta_matches_pooled_full_at_any_thread_count(
        obs_a in 0u32..144,
        obs_b in 0u32..144,
        nudge in -3.0..3.0f64,
        threads in 1usize..=8,
    ) {
        let g = grid(12, 12);
        let p = params_for(&g, 45.0, 2.0, 0.85);
        let base = GspSolver { epsilon: 1e-8, max_rounds: 2_000, record_trace: false };

        let first_obs = [(RoadId(obs_a), 30.0)];
        let first = base.propagate(&g, &p, &first_obs);
        prop_assert!(first.converged);

        let mut obs = vec![(RoadId(obs_a), 30.0 + nudge)];
        if obs_b != obs_a {
            obs.push((RoadId(obs_b), 55.0));
        }
        let pooled = ParallelGsp { base, threads }.propagate(&g, &p, &obs);
        let solver = DeltaGsp { base, epsilon: 1e-6 };
        let delta = propagate_delta(&solver, &g, &p, &obs, &first.values, &[]);
        prop_assert!(pooled.converged && delta.result.converged);
        for r in g.road_ids() {
            let (d, f) = (delta.result.speed(r), pooled.speed(r));
            prop_assert!(
                (d - f).abs() < 1e-4,
                "speed({}) differs from {}-thread full run: {} vs {}", r, threads, d, f
            );
        }
    }
}
