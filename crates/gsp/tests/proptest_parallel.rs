//! Serial-equivalence property tests for the pooled layer-parallel GSP.
//!
//! Within a layer every Eq. (18) update reads the same pre-sweep value
//! buffer (Jacobi), so chunking a layer across workers must never change
//! the arithmetic — `ParallelGsp` at any thread count has to be
//! bit-identical to itself at `threads = 1`. Random small graphs cover
//! arbitrary topology; a wide grid forces layers past the
//! `MIN_PARALLEL_LAYER` short-circuit so the pooled chunk path itself is
//! exercised, not just the serial fallback.

use proptest::prelude::*;
use rtse_graph::generators::grid;
use rtse_graph::{Graph, GraphBuilder, RoadClass, RoadId};
use rtse_gsp::{GspSolver, ParallelGsp};
use rtse_rtf::params::SlotParams;

const N: usize = 14;

fn random_graph(edges: &[(u32, u32)]) -> Graph {
    let mut b = GraphBuilder::new();
    for i in 0..N {
        b.add_road(RoadClass::Secondary, (i as f64, 0.0));
    }
    for &(x, y) in edges {
        if x != y {
            b.add_edge(RoadId(x), RoadId(y));
        }
    }
    b.build()
}

fn params_for(graph: &Graph, mu: f64, sigma: f64, rho: f64) -> SlotParams {
    SlotParams {
        mu: vec![mu; graph.num_roads()],
        sigma: vec![sigma; graph.num_roads()],
        rho: vec![rho; graph.num_edges()],
    }
}

fn assert_bit_identical(
    graph: &Graph,
    params: &SlotParams,
    obs: &[(RoadId, f64)],
    threads: usize,
    rounds: usize,
) {
    let base = GspSolver { epsilon: 1e-12, max_rounds: rounds, record_trace: true };
    let serial = ParallelGsp { base, threads: 1 }.propagate(graph, params, obs);
    let pooled = ParallelGsp { base, threads }.propagate(graph, params, obs);
    assert!(serial.rounds == pooled.rounds, "round counts differ at {threads} threads");
    assert!(serial.converged == pooled.converged, "convergence differs");
    assert!(serial.delta_trace == pooled.delta_trace, "delta traces differ");
    for r in graph.road_ids() {
        let (s, p) = (serial.speed(r), pooled.speed(r));
        assert!(
            s.to_bits() == p.to_bits(),
            "speed({r}) differs at {threads} threads: serial {s} vs pooled {p}"
        );
    }
}

proptest! {
    /// Arbitrary topologies (disconnected graphs included), thread counts
    /// 1–8: the pooled solver is bit-identical to its serial run.
    #[test]
    fn random_graphs_thread_count_invariant(
        edges in proptest::collection::vec((0u32..N as u32, 0u32..N as u32), 0..40),
        obs_road in 0u32..N as u32,
        obs_speed in 5.0..80.0f64,
        mu in 20.0..60.0f64,
        sigma in 0.5..3.0f64,
        rho in 0.05..0.95f64,
        threads in 1usize..=8,
    ) {
        let g = random_graph(&edges);
        let p = params_for(&g, mu, sigma, rho);
        let obs = [(RoadId(obs_road), obs_speed)];
        assert_bit_identical(&g, &p, &obs, threads, 200);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    /// A 36×36 grid pushes BFS frontier widths past `MIN_PARALLEL_LAYER`,
    /// so the chunked pool dispatch (not the serial fallback) is what is
    /// being compared against the single-thread sweep.
    #[test]
    fn wide_layers_exercise_pooled_path(
        obs_a in 0u32..1296,
        obs_b in 0u32..1296,
        threads in 2usize..=8,
    ) {
        let g = grid(36, 36);
        let p = params_for(&g, 45.0, 2.0, 0.85);
        let obs = [(RoadId(obs_a), 25.0), (RoadId(obs_b), 60.0)];
        assert_bit_identical(&g, &p, &obs, threads, 25);
    }
}
