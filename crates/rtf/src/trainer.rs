//! Alg. 1 — RTF parameter inference by cyclic coordinate descent.
//!
//! Parameters are updated one at a time by gradient ascent
//! (`x ← x + λ ∂L/∂x`) with every other parameter fixed, sweeping
//! `M`, then `Ω`, then `P`, until the maximum gradient magnitude falls
//! below the convergence threshold (or the iteration cap is hit). The
//! per-coordinate gradients touch only the coordinate's own node/edge
//! terms, so one full sweep costs `O(D(|R| + |E|))` for `D` days of
//! history — the paper's `O(|R|²)` bound is the dense worst case.
//!
//! Convergence is reported as the trace of the maximum `μ`-gradient per
//! iteration, which is exactly the metric the paper's Fig. 5 plots.

use crate::gradients::slot_gradient;
use crate::moments::moment_estimate_slot;
use crate::params::{RtfModel, SlotParams, RHO_MAX, RHO_MIN, SIGMA_MIN};
use rtse_data::{HistoryStore, SlotOfDay};
use rtse_graph::{EdgeId, Graph, RoadId};
use rtse_obs::{ObsHandle, Stage};
use rtse_pool::ComputePool;

/// How the trainer initializes the parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InitStrategy {
    /// "Small random values" exactly as Alg. 1 states; the `u64` seeds the
    /// initializer. Speeds start near zero, so this exercises the full
    /// convergence path.
    Random(u64),
    /// Warm start from the closed-form moment estimates (the practical
    /// default: a handful of sweeps polish it to the MLE).
    Moments,
    /// Random `μ` (seeded) with `σ` and `ρ` at their moment estimates.
    /// Pairs with [`UpdateMode::MuGradientOnly`] for the Fig. 5 protocol,
    /// which measures the convergence of `{μ}_R` alone.
    MuRandomRestMoments(u64),
}

/// How each coordinate is updated within a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UpdateMode {
    /// Exact coordinate maximization where a closed form exists (`μ_i` is
    /// quadratic; `ρ_ij` solves `σ_ij² = avg e²`), gradient steps for `σ_i`.
    /// Textbook cyclic coordinate *descent* — fast and robust; the default.
    #[default]
    ExactCoordinate,
    /// Alg. 1 verbatim: `x ← x + λ ∂L/∂x` for every parameter. Converges
    /// slowly from cold starts because `μ` and `σ` couple (σ inflates to
    /// explain the initial residuals, flattening the μ gradient).
    GradientAscent,
    /// Vanilla gradient ascent on `μ` only, `σ`/`ρ` frozen — the objective
    /// is then quadratic in `μ` and the iteration converges linearly. This
    /// is the Fig. 5 measurement protocol ("training convergences measured
    /// in terms of {μ}_R's maximum gradient", λ = 0.1).
    MuGradientOnly,
}

/// Trainer configuration.
#[derive(Debug, Clone, Copy)]
pub struct RtfTrainer {
    /// Step size `λ`; the paper fixes 0.1 for its Fig. 5 measurement.
    pub lambda: f64,
    /// Convergence threshold: max absolute interior gradient in
    /// [`UpdateMode::ExactCoordinate`], max absolute `μ`-gradient (the
    /// paper's Fig. 5 criterion) in [`UpdateMode::GradientAscent`].
    pub tol: f64,
    /// Hard cap on sweeps.
    pub max_iters: usize,
    /// Per-update step clamp (km/h for `μ`): keeps a cold random start from
    /// overshooting when `σ` is still tiny.
    pub max_step: f64,
    /// Initialization strategy.
    pub init: InitStrategy,
    /// Coordinate update mode.
    pub mode: UpdateMode,
    /// Worker threads for [`Self::train`]'s independent per-slot fits.
    /// `0` (the default) defers to `RTSE_THREADS` / host parallelism; `1`
    /// forces the serial path. Results are bit-identical at every thread
    /// count — each slot's CCD run is self-contained.
    pub threads: usize,
}

impl Default for RtfTrainer {
    fn default() -> Self {
        Self {
            lambda: 0.1,
            tol: 1e-3,
            max_iters: 500,
            max_step: 5.0,
            init: InitStrategy::Moments,
            mode: UpdateMode::ExactCoordinate,
            threads: 0,
        }
    }
}

/// Convergence report for one slot's training run.
#[derive(Debug, Clone)]
pub struct TrainStats {
    /// Sweeps performed.
    pub iterations: usize,
    /// Max `|∂L/∂μ|` after each sweep — the Fig. 5 convergence trace.
    pub mu_grad_trace: Vec<f64>,
    /// Whether the tolerance was met within `max_iters`.
    pub converged: bool,
}

impl RtfTrainer {
    /// Trains the parameters of a single slot.
    pub fn train_slot(
        &self,
        graph: &Graph,
        history: &HistoryStore,
        slot: SlotOfDay,
    ) -> (SlotParams, TrainStats) {
        let snapshots: Vec<&[f64]> =
            (0..history.num_days()).map(|d| history.snapshot(d, slot)).collect();
        let mut params = self.initialize(graph, history, slot);
        let stats = self.run_ccd(graph, &mut params, &snapshots);
        (params, stats)
    }

    /// Trains a full model (every slot); returns per-slot stats.
    ///
    /// The 288 per-slot fits are independent, so they are fanned across a
    /// [`ComputePool`] sized by [`Self::threads`]. The pool preserves slot
    /// order and each fit is self-contained, so the trained model is
    /// bit-identical to a serial run at any thread count.
    pub fn train(&self, graph: &Graph, history: &HistoryStore) -> (RtfModel, Vec<TrainStats>) {
        self.train_with_obs(graph, history, &ObsHandle::noop())
    }

    /// [`train`](Self::train) with instrumentation: each per-slot fit is
    /// timed as one `rtf.slot_fit` span (288 per full pass) and the pool
    /// dispatch is job-accounted on `obs`. The trained model is
    /// bit-identical to [`train`](Self::train) — spans only observe.
    pub fn train_with_obs(
        &self,
        graph: &Graph,
        history: &HistoryStore,
        obs: &ObsHandle,
    ) -> (RtfModel, Vec<TrainStats>) {
        assert_eq!(history.num_roads(), graph.num_roads(), "history/graph mismatch");
        let pool = ComputePool::new(self.threads);
        let fitted = pool.map_observed(obs, SlotOfDay::all().collect(), |_, t| {
            let _span = obs.span(Stage::RtfSlotFit);
            self.train_slot(graph, history, t)
        });
        let mut slots = Vec::with_capacity(rtse_data::SLOTS_PER_DAY);
        let mut stats = Vec::with_capacity(rtse_data::SLOTS_PER_DAY);
        for (p, s) in fitted {
            slots.push(p);
            stats.push(s);
        }
        (RtfModel::from_slots(graph.num_roads(), graph.num_edges(), slots), stats)
    }

    fn initialize(&self, graph: &Graph, history: &HistoryStore, slot: SlotOfDay) -> SlotParams {
        match self.init {
            InitStrategy::Moments => moment_estimate_slot(graph, history, slot),
            InitStrategy::MuRandomRestMoments(seed) => {
                let mut p = moment_estimate_slot(graph, history, slot);
                let random = Self { init: InitStrategy::Random(seed), ..*self }
                    .initialize(graph, history, slot);
                p.mu = random.mu;
                p
            }
            InitStrategy::Random(seed) => {
                // Small deterministic pseudo-random values from a splitmix64
                // stream (no rand dependency needed here).
                let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
                let mut next = move || {
                    state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                    let mut z = state;
                    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                    z = z ^ (z >> 31);
                    (z >> 11) as f64 / (1u64 << 53) as f64 // uniform [0,1)
                };
                let n = graph.num_roads();
                let m = graph.num_edges();
                SlotParams {
                    mu: (0..n).map(|_| next()).collect(),
                    sigma: (0..n).map(|_| 1.0 + next()).collect(),
                    rho: (0..m).map(|_| 0.25 + 0.5 * next()).collect(),
                }
            }
        }
    }

    fn run_ccd(&self, graph: &Graph, params: &mut SlotParams, snaps: &[&[f64]]) -> TrainStats {
        let mut trace = Vec::new();
        let mut converged = false;
        let mut iterations = 0;
        // Adaptive step size: Alg. 1's fixed λ oscillates once the step
        // exceeds 2/curvature (σ-coordinates near the clamp have curvature
        // ~1/σ²). Halving λ whenever a sweep fails to improve the
        // likelihood keeps the algorithm shape while guaranteeing
        // convergence.
        let mut lam = self.lambda;
        let mut last_ll = crate::likelihood::data_log_likelihood(graph, params, snaps);
        while iterations < self.max_iters {
            iterations += 1;
            // Cyclic sweeps: μ, then σ, then ρ, each coordinate with a
            // freshly computed gradient (true CCD).
            for i in graph.road_ids() {
                match self.mode {
                    UpdateMode::ExactCoordinate => {
                        if let Some(best) = exact_mu(graph, params, snaps, i) {
                            params.mu[i.index()] = best;
                        }
                    }
                    UpdateMode::GradientAscent | UpdateMode::MuGradientOnly => {
                        let g = grad_mu(graph, params, snaps, i);
                        params.mu[i.index()] += self.step(lam, g);
                    }
                }
            }
            if self.mode != UpdateMode::MuGradientOnly {
                for i in graph.road_ids() {
                    let g = grad_sigma(graph, params, snaps, i);
                    params.sigma[i.index()] =
                        (params.sigma[i.index()] + self.step(lam, g)).max(SIGMA_MIN);
                }
                for (eidx, &(a, b)) in graph.edges().iter().enumerate() {
                    let e = EdgeId(eidx as u32);
                    match self.mode {
                        UpdateMode::ExactCoordinate => {
                            if let Some(best) = exact_rho(params, snaps, a, b) {
                                params.rho[eidx] = best.clamp(RHO_MIN, RHO_MAX);
                            }
                        }
                        _ => {
                            let g = grad_rho(params, snaps, a, b, e);
                            params.rho[eidx] =
                                (params.rho[eidx] + self.step(lam, g)).clamp(RHO_MIN, RHO_MAX);
                        }
                    }
                }
            }
            let ll = crate::likelihood::data_log_likelihood(graph, params, snaps);
            if ll < last_ll {
                lam *= 0.5;
            }
            last_ll = ll;
            // Convergence check on the full gradient (μ trace recorded for
            // Fig. 5).
            let full = slot_gradient(graph, params, snaps);
            trace.push(full.max_abs_mu());
            let metric = match self.mode {
                UpdateMode::ExactCoordinate => interior_max_grad(&full, params),
                UpdateMode::GradientAscent | UpdateMode::MuGradientOnly => full.max_abs_mu(),
            };
            if metric < self.tol {
                converged = true;
                break;
            }
        }
        TrainStats { iterations, mu_grad_trace: trace, converged }
    }

    #[inline]
    fn step(&self, lam: f64, grad: f64) -> f64 {
        (lam * grad).clamp(-self.max_step, self.max_step)
    }
}

/// Max gradient over coordinates that are not pinned at a clamp boundary
/// (a clamped σ or ρ can legitimately keep a nonzero outward gradient).
fn interior_max_grad(grad: &crate::gradients::SlotGradient, params: &SlotParams) -> f64 {
    let mut m = grad.max_abs_mu();
    for (i, &g) in grad.d_sigma.iter().enumerate() {
        if params.sigma[i] > SIGMA_MIN || g > 0.0 {
            m = m.max(g.abs());
        }
    }
    for (e, &g) in grad.d_rho.iter().enumerate() {
        let r = params.rho[e];
        let pinned_low = r <= RHO_MIN && g < 0.0;
        let pinned_high = r >= RHO_MAX && g > 0.0;
        if !pinned_low && !pinned_high {
            m = m.max(g.abs());
        }
    }
    m
}

/// Closed-form argmax of the training objective in `μ_i` (it is quadratic
/// in `μ_i`); `None` when road `i` has no present samples.
fn exact_mu(graph: &Graph, p: &SlotParams, snaps: &[&[f64]], i: RoadId) -> Option<f64> {
    let si = p.sigma[i.index()];
    let mut num = 0.0;
    let mut den = 0.0;
    for row in snaps {
        let vi = row[i.index()];
        if vi.is_nan() {
            continue;
        }
        num += vi / (si * si);
        den += 1.0 / (si * si);
        for &(j, e) in graph.neighbors(i) {
            let vj = row[j.index()];
            if vj.is_nan() {
                continue;
            }
            let u = p.sigma_diff_sq(i, j, e);
            num += (vi - vj + p.mu[j.index()]) / u;
            den += 1.0 / u;
        }
    }
    (den > 0.0).then(|| num / den)
}

/// Closed-form argmax in `ρ_ij`: the edge term is maximized when
/// `σ_ij² = avg_d e_ij²`, giving `ρ* = (σ_i² + σ_j² − avg e²)/(2σ_iσ_j)`
/// (clamped by the caller). `None` when the pair has no co-present days.
fn exact_rho(p: &SlotParams, snaps: &[&[f64]], a: RoadId, b: RoadId) -> Option<f64> {
    let mut sum_e2 = 0.0;
    let mut count = 0usize;
    for row in snaps {
        let (vi, vj) = (row[a.index()], row[b.index()]);
        if vi.is_nan() || vj.is_nan() {
            continue;
        }
        let ediff = (vi - vj) - p.mu_diff(a, b);
        sum_e2 += ediff * ediff;
        count += 1;
    }
    if count == 0 {
        return None;
    }
    let u_star = sum_e2 / count as f64;
    let (si, sj) = (p.sigma[a.index()], p.sigma[b.index()]);
    Some((si * si + sj * sj - u_star) / (2.0 * si * sj))
}

fn grad_mu(graph: &Graph, p: &SlotParams, snaps: &[&[f64]], i: RoadId) -> f64 {
    if snaps.is_empty() {
        return 0.0;
    }
    let si = p.sigma[i.index()];
    let mut g = 0.0;
    for row in snaps {
        let vi = row[i.index()];
        if vi.is_nan() {
            continue;
        }
        g += 2.0 * (vi - p.mu[i.index()]) / (si * si);
        for &(j, e) in graph.neighbors(i) {
            let vj = row[j.index()];
            if vj.is_nan() {
                continue;
            }
            let u = p.sigma_diff_sq(i, j, e);
            g += 2.0 * ((vi - vj) - p.mu_diff(i, j)) / u;
        }
    }
    g / snaps.len() as f64
}

fn grad_sigma(graph: &Graph, p: &SlotParams, snaps: &[&[f64]], i: RoadId) -> f64 {
    if snaps.is_empty() {
        return 0.0;
    }
    let si = p.sigma[i.index()];
    let mut g = 0.0;
    for row in snaps {
        let vi = row[i.index()];
        if vi.is_nan() {
            continue;
        }
        let r = vi - p.mu[i.index()];
        g += 2.0 * r * r / (si * si * si) - 2.0 / si;
        for &(j, e) in graph.neighbors(i) {
            let vj = row[j.index()];
            if vj.is_nan() {
                continue;
            }
            let u = p.sigma_diff_sq(i, j, e);
            let ediff = (vi - vj) - p.mu_diff(i, j);
            let shared = ediff * ediff / (u * u) - 1.0 / u;
            let (sj, rho) = (p.sigma[j.index()], p.rho[e.index()]);
            g += shared * (2.0 * si - 2.0 * rho * sj);
        }
    }
    g / snaps.len() as f64
}

fn grad_rho(p: &SlotParams, snaps: &[&[f64]], a: RoadId, b: RoadId, e: EdgeId) -> f64 {
    if snaps.is_empty() {
        return 0.0;
    }
    let (si, sj) = (p.sigma[a.index()], p.sigma[b.index()]);
    let mut g = 0.0;
    for row in snaps {
        let (vi, vj) = (row[a.index()], row[b.index()]);
        if vi.is_nan() || vj.is_nan() {
            continue;
        }
        let u = p.sigma_diff_sq(a, b, e);
        let ediff = (vi - vj) - p.mu_diff(a, b);
        let shared = ediff * ediff / (u * u) - 1.0 / u;
        g += shared * (-2.0 * si * sj);
    }
    g / snaps.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::likelihood::data_log_likelihood;
    use rtse_data::{SynthConfig, TrafficGenerator};
    use rtse_graph::generators::path;

    fn tiny_dataset(days: usize, seed: u64) -> (Graph, HistoryStore) {
        let g = path(4);
        let cfg = SynthConfig { days, incidents_per_day: 0.0, seed, ..SynthConfig::default() };
        let ds = TrafficGenerator::new(&g, cfg).generate();
        (g, ds.history)
    }

    #[test]
    fn moments_init_converges_quickly() {
        let (g, h) = tiny_dataset(10, 1);
        let trainer = RtfTrainer { max_iters: 200, ..Default::default() };
        let (_, stats) = trainer.train_slot(&g, &h, SlotOfDay(100));
        assert!(stats.converged, "iterations: {}", stats.iterations);
        assert!(stats.iterations < 200);
    }

    #[test]
    fn ccd_improves_likelihood_from_random_start() {
        let (g, h) = tiny_dataset(8, 2);
        let slot = SlotOfDay(100);
        let snaps: Vec<&[f64]> = (0..h.num_days()).map(|d| h.snapshot(d, slot)).collect();
        let trainer =
            RtfTrainer { init: InitStrategy::Random(7), max_iters: 400, ..Default::default() };
        let mut params = trainer.initialize(&g, &h, slot);
        let initial = data_log_likelihood(&g, &params, &snaps);
        let stats = trainer.run_ccd(&g, &mut params, &snaps);
        let final_ll = data_log_likelihood(&g, &params, &snaps);
        assert!(
            final_ll > initial + 1.0,
            "likelihood should improve substantially: {initial} -> {final_ll} \
             ({} iterations)",
            stats.iterations
        );
        // The adaptive step makes late sweeps monotone: re-running from the
        // solved point must not regress.
        let mut again = params.clone();
        trainer.run_ccd(&g, &mut again, &snaps);
        let rerun_ll = data_log_likelihood(&g, &again, &snaps);
        assert!(rerun_ll >= final_ll - 1e-6, "{rerun_ll} < {final_ll}");
    }

    #[test]
    fn converges_near_moment_estimates() {
        // The restored-normalizer MLE's stationary point matches moments, so
        // CCD from a random start should land close to the moment estimates.
        let (g, h) = tiny_dataset(20, 3);
        let slot = SlotOfDay(150);
        let trainer = RtfTrainer {
            init: InitStrategy::Random(11),
            max_iters: 3000,
            tol: 1e-4,
            ..Default::default()
        };
        let (trained, stats) = trainer.train_slot(&g, &h, slot);
        assert!(stats.converged, "did not converge in {}", stats.iterations);
        let moments = moment_estimate_slot(&g, &h, slot);
        for i in 0..g.num_roads() {
            assert!(
                (trained.mu[i] - moments.mu[i]).abs() < 0.5,
                "μ[{i}] trained {} vs moment {}",
                trained.mu[i],
                moments.mu[i]
            );
        }
    }

    #[test]
    fn grad_trace_is_recorded_and_decreasing_overall() {
        let (g, h) = tiny_dataset(10, 4);
        let trainer =
            RtfTrainer { init: InitStrategy::Random(5), max_iters: 100, ..Default::default() };
        let (_, stats) = trainer.train_slot(&g, &h, SlotOfDay(10));
        assert_eq!(stats.mu_grad_trace.len(), stats.iterations);
        let first = stats.mu_grad_trace.first().copied().unwrap();
        let last = stats.mu_grad_trace.last().copied().unwrap();
        assert!(last < first, "gradient should shrink: {first} -> {last}");
    }

    #[test]
    fn per_coordinate_gradients_match_batch() {
        let (g, h) = tiny_dataset(6, 9);
        let slot = SlotOfDay(50);
        let snaps: Vec<&[f64]> = (0..h.num_days()).map(|d| h.snapshot(d, slot)).collect();
        let params = moment_estimate_slot(&g, &h, slot);
        let batch = slot_gradient(&g, &params, &snaps);
        for i in g.road_ids() {
            assert!((grad_mu(&g, &params, &snaps, i) - batch.d_mu[i.index()]).abs() < 1e-9);
            assert!((grad_sigma(&g, &params, &snaps, i) - batch.d_sigma[i.index()]).abs() < 1e-9);
        }
        for (eidx, &(a, b)) in g.edges().iter().enumerate() {
            let e = EdgeId(eidx as u32);
            assert!((grad_rho(&params, &snaps, a, b, e) - batch.d_rho[eidx]).abs() < 1e-9);
        }
    }
}

#[cfg(test)]
mod mu_only_tests {
    use super::*;

    #[test]
    fn mu_only_mode_converges_and_matches_moments() {
        let g = rtse_graph::generators::path(5);
        let cfg = rtse_data::SynthConfig {
            days: 12,
            incidents_per_day: 0.0,
            seed: 6,
            ..rtse_data::SynthConfig::default()
        };
        let ds = rtse_data::TrafficGenerator::new(&g, cfg).generate();
        let slot = SlotOfDay(120);
        let trainer = RtfTrainer {
            tol: 1e-3,
            max_iters: 20_000,
            init: InitStrategy::MuRandomRestMoments(3),
            mode: UpdateMode::MuGradientOnly,
            ..Default::default()
        };
        let (params, stats) = trainer.train_slot(&g, &ds.history, slot);
        assert!(stats.converged, "μ-only gradient ascent must converge");
        let moments = moment_estimate_slot(&g, &ds.history, slot);
        // σ/ρ untouched.
        assert_eq!(params.sigma, moments.sigma);
        assert_eq!(params.rho, moments.rho);
        // μ reaches a stationary point of the μ-subproblem (near, but not
        // exactly at, the sample means because the edge terms pull).
        for i in 0..5 {
            assert!(
                (params.mu[i] - moments.mu[i]).abs() < 3.0,
                "μ[{i}] {} vs moment {}",
                params.mu[i],
                moments.mu[i]
            );
        }
    }

    #[test]
    fn mu_random_rest_moments_initializer_shape() {
        let g = rtse_graph::generators::path(3);
        let cfg =
            rtse_data::SynthConfig { days: 5, seed: 2, ..rtse_data::SynthConfig::small_test() };
        let ds = rtse_data::TrafficGenerator::new(&g, cfg).generate();
        let slot = SlotOfDay(0);
        let trainer =
            RtfTrainer { init: InitStrategy::MuRandomRestMoments(9), ..Default::default() };
        let init = trainer.initialize(&g, &ds.history, slot);
        let moments = moment_estimate_slot(&g, &ds.history, slot);
        assert_eq!(init.sigma, moments.sigma);
        assert_eq!(init.rho, moments.rho);
        // μ is random-small, far from the (positive, large) sample means.
        assert!(init.mu.iter().all(|m| (0.0..1.0).contains(m)));
    }
}
