//! Sparse top-k/thresholded correlation table for large networks.
//!
//! The dense [`CorrelationTable`] stores all `n²` pairs, which caps it at a
//! few thousand roads (607 in the paper's Hong Kong network, 10⁵–10⁶ in
//! real cities). Correlation decays multiplicatively along paths (Eq. 8),
//! so almost all pairs sit near zero — and OCS/GSP decisions are driven by
//! the large values. [`SparseCorrelationTable`] keeps, per road, only the
//! neighbors whose correlation clears a floor `f` (optionally capped to the
//! top-k strongest), stored in a CSR layout mirroring
//! `crates/graph/src/csr.rs`.
//!
//! ## Early-exit soundness
//!
//! Under `MaxProduct` semantics the Eq. 9 transform is `w = −ln ρ`, so the
//! correlation floor `f` becomes the cost bound `−ln f`: Dijkstra settles
//! roads in nondecreasing cost order, so the moment the smallest unsettled
//! cost exceeds `−ln f`, every remaining road has `exp(−dist) < f` and the
//! per-source run can stop ([`rtse_graph::BoundedDijkstra`]). Costs of
//! roads within the bound are bit-identical to the unbounded run, so for
//! every pair whose dense value is ≥ `f` the sparse table stores the exact
//! dense bits; pairs below the floor read as `0.0`.
//!
//! The `ReciprocalSum` ablation semantics has **no** such bound: a chain of
//! ρ≈1 edges keeps `Π ρ ≥ f` while `Σ 1/ρ` grows without limit, so no
//! reciprocal-cost radius can prove a correlation floor. Sparse builds are
//! therefore `MaxProduct`-only; callers needing the ablation semantics use
//! the dense table (see `CorrSubstrate` in `crowd-rtse-core`).

use crate::corr_table::{clamped_edge_rho, max_product_weight, CorrelationTable, PathCorrelation};
use crate::params::{RtfModel, SlotParams};
use rtse_data::SlotOfDay;
use rtse_graph::{BoundedDijkstra, Graph, RoadId};
use rtse_obs::{ObsHandle, Stage};
use rtse_pool::ComputePool;

/// Read interface shared by the dense and sparse correlation tables.
///
/// `ocs`, `gsp`, `core`, and `serve` consume Γ through this trait (via
/// `&dyn CorrelationRead`), so the substrate is swappable without
/// call-site churn. The defaults implement Eqs. (11)–(12) on top of
/// [`corr`](Self::corr); implementations may override them with faster
/// layouts.
pub trait CorrelationRead: std::fmt::Debug + Send + Sync {
    /// Number of roads covered.
    fn num_roads(&self) -> usize;

    /// `corr^t(r_a, r_b)` (Eqs. 7/10); `0.0` for pairs the substrate
    /// pruned.
    fn corr(&self, a: RoadId, b: RoadId) -> f64;

    /// Road–set correlation, Eq. (11): max over the set; 0 for an empty
    /// set.
    fn road_set_corr(&self, r: RoadId, set: &[RoadId]) -> f64 {
        set.iter().map(|&s| self.corr(r, s)).fold(0.0, f64::max)
    }

    /// Set–set correlation, Eq. (12).
    fn set_set_corr(&self, queried: &[RoadId], crowdsourced: &[RoadId]) -> f64 {
        queried.iter().map(|&q| self.road_set_corr(q, crowdsourced)).sum()
    }
}

impl CorrelationRead for CorrelationTable {
    fn num_roads(&self) -> usize {
        CorrelationTable::num_roads(self)
    }

    fn corr(&self, a: RoadId, b: RoadId) -> f64 {
        CorrelationTable::corr(self, a, b)
    }

    fn road_set_corr(&self, r: RoadId, set: &[RoadId]) -> f64 {
        CorrelationTable::road_set_corr(self, r, set)
    }

    fn set_set_corr(&self, queried: &[RoadId], crowdsourced: &[RoadId]) -> f64 {
        CorrelationTable::set_set_corr(self, queried, crowdsourced)
    }
}

/// Pruning knobs for [`SparseCorrelationTable`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparseCorrConfig {
    /// Correlation floor `f ∈ (0, 1)`: pairs with `corr < f` are pruned
    /// (read as `0.0`). Doubles as the early-exit bound `−ln f` on the
    /// per-source Dijkstra.
    pub floor: f64,
    /// Optional per-row cap: keep only the `k` strongest surviving
    /// entries (ties broken toward the smaller road id). `None` keeps
    /// every entry above the floor.
    pub top_k: Option<usize>,
}

impl Default for SparseCorrConfig {
    /// Floor 0.01: one 607-road Hong Kong table keeps ρ-chains down to
    /// products of 1%, far below where OCS utility differences matter,
    /// while cutting the stored pair count by orders of magnitude at
    /// city scale.
    fn default() -> Self {
        Self { floor: 0.01, top_k: None }
    }
}

impl SparseCorrConfig {
    /// The Dijkstra cost bound for this floor: `−ln f` plus a one-ulp-ish
    /// margin so a pair whose dense value rounds to exactly the floor is
    /// still *visited*; the exact `corr ≥ floor` filter is applied to the
    /// computed value afterwards, so presence in the table is decided by
    /// the value, never by the margin.
    pub fn cost_bound(&self) -> f64 {
        -self.floor.ln() + 1e-9
    }
}

/// CSR-stored sparse Γ for one slot: per-road neighbor lists holding only
/// correlations `≥ floor` (post top-k), columns sorted by road id, the
/// unit diagonal implicit. `MaxProduct` semantics only — see the module
/// docs for why `ReciprocalSum` cannot be pruned soundly.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseCorrelationTable {
    n: usize,
    slot: SlotOfDay,
    config: SparseCorrConfig,
    /// `offsets[r]..offsets[r + 1]` bounds road `r`'s slice of
    /// `cols`/`vals` (mirrors `csr::Graph`).
    offsets: Vec<usize>,
    /// Neighbor road ids, strictly increasing within each row, never the
    /// row's own id.
    cols: Vec<u32>,
    /// Correlation per stored pair, each in `[floor, 1]`.
    vals: Vec<f64>,
}

/// One pruned row: `(road id, correlation)` pairs sorted by id.
type SparseRow = Vec<(u32, f64)>;

/// Sources per parallel build job. Fixed (not derived from the thread
/// count) so the row partition — and therefore every scratch reuse
/// sequence — is a property of the network size alone; results stay
/// bit-identical at every thread count because each row is an independent
/// single-source computation either way.
const BUILD_CHUNK: usize = 64;

/// Computes one pruned row: bounded Dijkstra from `src` on the Eq. 9
/// weights, `exp(−cost)` per settled road, then the Eq. (7) adjacency
/// overrides, the floor filter, and the optional top-k cut.
fn fill_sparse_row(
    graph: &Graph,
    params: &SlotParams,
    config: SparseCorrConfig,
    scratch: &mut BoundedDijkstra,
    src: RoadId,
) -> SparseRow {
    let mut row: SparseRow = Vec::new();
    scratch.run(
        graph,
        src,
        |e| max_product_weight(params.rho[e.index()]),
        config.cost_bound(),
        |road, cost| {
            if road != src {
                row.push((road.0, (-cost).exp()));
            }
        },
    );
    // Settle order is nondecreasing cost; re-sort by road id for the CSR
    // contract and the binary-search lookups.
    row.sort_unstable_by_key(|&(id, _)| id);
    // Eq. (7): adjacent pairs use the (clamped) edge ρ directly, replacing
    // any path-derived value.
    for &(nbr, e) in graph.neighbors(src) {
        let rho = clamped_edge_rho(params.rho[e.index()]);
        match row.binary_search_by_key(&nbr.0, |&(id, _)| id) {
            Ok(i) => row[i].1 = rho,
            Err(i) => row.insert(i, (nbr.0, rho)),
        }
    }
    row.retain(|&(_, v)| v >= config.floor);
    if let Some(k) = config.top_k {
        if row.len() > k {
            // Keep the k strongest (ties toward the smaller id), then
            // restore id order.
            row.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            row.truncate(k);
            row.sort_unstable_by_key(|&(id, _)| id);
        }
    }
    row
}

impl SparseCorrelationTable {
    /// Builds the sparse table on the `RTSE_THREADS`-sized default pool.
    /// See [`Self::build_observed`].
    pub fn build(
        graph: &Graph,
        model: &RtfModel,
        slot: SlotOfDay,
        config: SparseCorrConfig,
    ) -> Self {
        Self::build_observed(
            graph,
            model,
            slot,
            config,
            &ComputePool::from_env(),
            &ObsHandle::noop(),
        )
    }

    /// Builds from a full model: validates the model/graph dimensions and
    /// delegates to [`Self::build_from_params`] with the slot's parameters.
    /// Each per-source row fill records one `corr.dijkstra_row` span, like
    /// the dense build.
    pub fn build_observed(
        graph: &Graph,
        model: &RtfModel,
        slot: SlotOfDay,
        config: SparseCorrConfig,
        pool: &ComputePool,
        obs: &ObsHandle,
    ) -> Self {
        assert!(model.matches_graph(graph), "model/graph dimension mismatch");
        Self::build_from_params(graph, model.slot(slot), slot, config, pool, obs)
    }

    /// Builds from one slot's parameters directly. This is the scale
    /// entry point: a full [`RtfModel`] holds all `SLOTS_PER_DAY` slots
    /// (~1 GB at 100k roads), which a single-slot benchmark or an
    /// incremental trainer need not materialize.
    ///
    /// The row sweep is sharded across `pool` in fixed 64-source chunks;
    /// each chunk reuses one [`BoundedDijkstra`] scratch. Rows are
    /// independent single-source computations, so the assembled table is
    /// bit-identical at every thread count.
    pub fn build_from_params(
        graph: &Graph,
        params: &SlotParams,
        slot: SlotOfDay,
        config: SparseCorrConfig,
        pool: &ComputePool,
        obs: &ObsHandle,
    ) -> Self {
        assert!(
            params.rho.len() == graph.num_edges(),
            "params/graph edge-count mismatch: {} vs {}",
            params.rho.len(),
            graph.num_edges()
        );
        assert!(
            config.floor > 0.0 && config.floor < 1.0,
            "pruning floor {} outside (0, 1)",
            config.floor
        );
        let n = graph.num_roads();
        let chunks: Vec<(u32, u32)> = (0..n)
            .step_by(BUILD_CHUNK)
            .map(|lo| {
                let hi = (lo + BUILD_CHUNK).min(n);
                (RoadId::from(lo).0, RoadId::from(hi).0)
            })
            .collect();
        let chunk_rows: Vec<Vec<SparseRow>> = pool.map_observed(obs, chunks, |_, (lo, hi)| {
            let mut scratch = BoundedDijkstra::new(n);
            let mut out = Vec::with_capacity((hi - lo) as usize);
            for src in lo..hi {
                let _span = obs.span(Stage::CorrDijkstraRow);
                out.push(fill_sparse_row(graph, params, config, &mut scratch, RoadId(src)));
            }
            out
        });
        let total: usize = chunk_rows.iter().flatten().map(Vec::len).sum();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut cols = Vec::with_capacity(total);
        let mut vals = Vec::with_capacity(total);
        offsets.push(0);
        for row in chunk_rows.iter().flatten() {
            for &(id, v) in row {
                cols.push(id);
                vals.push(v);
            }
            offsets.push(cols.len());
        }
        let table = Self { n, slot, config, offsets, cols, vals };
        #[cfg(feature = "validate")]
        if let Err(v) = rtse_check::Validate::validate(&table) {
            rtse_check::fail(&v);
        }
        table
    }

    /// The slot this table was built for.
    pub fn slot(&self) -> SlotOfDay {
        self.slot
    }

    /// Always [`PathCorrelation::MaxProduct`] — the only semantics with a
    /// sound pruning bound.
    pub fn semantics(&self) -> PathCorrelation {
        PathCorrelation::MaxProduct
    }

    /// The pruning configuration the table was built with.
    pub fn config(&self) -> SparseCorrConfig {
        self.config
    }

    /// Number of roads covered.
    pub fn num_roads(&self) -> usize {
        self.n
    }

    /// Stored (off-diagonal) pair count.
    pub fn num_entries(&self) -> usize {
        self.cols.len()
    }

    /// Heap bytes held by the CSR arrays — the scale metric BENCH_scale
    /// tracks as bytes/road.
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.cols.len() * std::mem::size_of::<u32>()
            + self.vals.len() * std::mem::size_of::<f64>()
    }

    /// Road `r`'s stored neighbors as `(road, corr)`, ascending by id.
    pub fn row(&self, r: RoadId) -> impl Iterator<Item = (RoadId, f64)> + '_ {
        let lo = self.offsets[r.index()];
        let hi = self.offsets[r.index() + 1];
        self.cols[lo..hi].iter().zip(&self.vals[lo..hi]).map(|(&id, &v)| (RoadId(id), v))
    }

    /// `corr^t(r_a, r_b)`: the stored value, `1.0` on the diagonal, `0.0`
    /// for pruned pairs.
    #[inline]
    pub fn corr(&self, a: RoadId, b: RoadId) -> f64 {
        if a == b {
            return 1.0;
        }
        let lo = self.offsets[a.index()];
        let hi = self.offsets[a.index() + 1];
        match self.cols[lo..hi].binary_search(&b.0) {
            Ok(i) => self.vals[lo + i],
            Err(_) => 0.0,
        }
    }

    /// Road–set correlation, Eq. (11): max over the set; 0 for an empty
    /// set.
    pub fn road_set_corr(&self, r: RoadId, set: &[RoadId]) -> f64 {
        set.iter().map(|&s| self.corr(r, s)).fold(0.0, f64::max)
    }

    /// Set–set correlation, Eq. (12).
    pub fn set_set_corr(&self, queried: &[RoadId], crowdsourced: &[RoadId]) -> f64 {
        queried.iter().map(|&q| self.road_set_corr(q, crowdsourced)).sum()
    }
}

impl CorrelationRead for SparseCorrelationTable {
    fn num_roads(&self) -> usize {
        SparseCorrelationTable::num_roads(self)
    }

    fn corr(&self, a: RoadId, b: RoadId) -> f64 {
        SparseCorrelationTable::corr(self, a, b)
    }

    fn road_set_corr(&self, r: RoadId, set: &[RoadId]) -> f64 {
        SparseCorrelationTable::road_set_corr(self, r, set)
    }

    fn set_set_corr(&self, queried: &[RoadId], crowdsourced: &[RoadId]) -> f64 {
        SparseCorrelationTable::set_set_corr(self, queried, crowdsourced)
    }
}

/// Owned either-substrate table, for caches that hold Γ by value (the
/// core engine's per-slot cache). Dispatches the read API to whichever
/// substrate was built; both coerce to `&dyn CorrelationRead` for the
/// solvers.
#[derive(Debug, Clone)]
pub enum CorrTable {
    /// Dense all-pairs storage (any [`PathCorrelation`] semantics).
    Dense(CorrelationTable),
    /// Floor/top-k pruned CSR storage (`MaxProduct` only).
    Sparse(SparseCorrelationTable),
}

impl CorrTable {
    /// Number of roads covered.
    pub fn num_roads(&self) -> usize {
        match self {
            Self::Dense(t) => t.num_roads(),
            Self::Sparse(t) => t.num_roads(),
        }
    }

    /// The slot the table was built for.
    pub fn slot(&self) -> SlotOfDay {
        match self {
            Self::Dense(t) => t.slot(),
            Self::Sparse(t) => t.slot(),
        }
    }

    /// The path semantics used.
    pub fn semantics(&self) -> PathCorrelation {
        match self {
            Self::Dense(t) => t.semantics(),
            Self::Sparse(t) => t.semantics(),
        }
    }

    /// `corr^t(r_a, r_b)`.
    #[inline]
    pub fn corr(&self, a: RoadId, b: RoadId) -> f64 {
        match self {
            Self::Dense(t) => t.corr(a, b),
            Self::Sparse(t) => t.corr(a, b),
        }
    }

    /// Road–set correlation, Eq. (11).
    pub fn road_set_corr(&self, r: RoadId, set: &[RoadId]) -> f64 {
        match self {
            Self::Dense(t) => t.road_set_corr(r, set),
            Self::Sparse(t) => t.road_set_corr(r, set),
        }
    }

    /// Set–set correlation, Eq. (12).
    pub fn set_set_corr(&self, queried: &[RoadId], crowdsourced: &[RoadId]) -> f64 {
        match self {
            Self::Dense(t) => t.set_set_corr(queried, crowdsourced),
            Self::Sparse(t) => t.set_set_corr(queried, crowdsourced),
        }
    }
}

impl From<CorrelationTable> for CorrTable {
    fn from(t: CorrelationTable) -> Self {
        Self::Dense(t)
    }
}

impl From<SparseCorrelationTable> for CorrTable {
    fn from(t: SparseCorrelationTable) -> Self {
        Self::Sparse(t)
    }
}

impl CorrelationRead for CorrTable {
    fn num_roads(&self) -> usize {
        CorrTable::num_roads(self)
    }

    fn corr(&self, a: RoadId, b: RoadId) -> f64 {
        CorrTable::corr(self, a, b)
    }

    fn road_set_corr(&self, r: RoadId, set: &[RoadId]) -> f64 {
        CorrTable::road_set_corr(self, r, set)
    }

    fn set_set_corr(&self, queried: &[RoadId], crowdsourced: &[RoadId]) -> f64 {
        CorrTable::set_set_corr(self, queried, crowdsourced)
    }
}

impl rtse_check::Validate for CorrTable {
    fn validate(&self) -> Result<(), rtse_check::InvariantViolation> {
        match self {
            Self::Dense(t) => rtse_check::Validate::validate(t),
            Self::Sparse(t) => rtse_check::Validate::validate(t),
        }
    }
}

impl rtse_check::Validate for SparseCorrelationTable {
    /// CSR + correlation contract: well-formed offsets, strictly sorted
    /// in-bounds columns with no self-pairs, every value finite in
    /// `[floor, 1]`, and symmetry — a stored `(a, b, v)` must either
    /// mirror to within 1e-9 or be absent on the other side with `v`
    /// within tolerance of the floor (two independent Dijkstra runs can
    /// land a boundary value on opposite sides of the filter).
    fn validate(&self) -> Result<(), rtse_check::InvariantViolation> {
        use rtse_check::ensure;
        ensure(self.offsets.len() == self.n + 1, "sparse_corr.offsets_len", || {
            format!("{} offsets for {} roads", self.offsets.len(), self.n)
        })?;
        ensure(
            self.offsets.first() == Some(&0)
                && self.offsets.last() == Some(&self.cols.len())
                && self.cols.len() == self.vals.len(),
            "sparse_corr.csr_bounds",
            || {
                format!(
                    "offsets [{:?}..{:?}] vs {} cols / {} vals",
                    self.offsets.first(),
                    self.offsets.last(),
                    self.cols.len(),
                    self.vals.len()
                )
            },
        )?;
        ensure(
            self.config.floor > 0.0 && self.config.floor < 1.0,
            "sparse_corr.floor_range",
            || format!("floor {} outside (0, 1)", self.config.floor),
        )?;
        for a in 0..self.n {
            let (lo, hi) = (self.offsets[a], self.offsets[a + 1]);
            ensure(lo <= hi, "sparse_corr.offsets_monotone", || {
                format!("offsets[{a}] = {lo} > offsets[{}] = {hi}", a + 1)
            })?;
            if let Some(k) = self.config.top_k {
                ensure(hi - lo <= k, "sparse_corr.top_k", || {
                    format!("row {a} stores {} entries over the top-{k} cap", hi - lo)
                })?;
            }
            let row = &self.cols[lo..hi];
            for (i, &c) in row.iter().enumerate() {
                ensure((c as usize) < self.n, "sparse_corr.col_bounds", || {
                    format!("row {a} column {c} out of bounds for {} roads", self.n)
                })?;
                ensure(c as usize != a, "sparse_corr.no_diagonal", || {
                    format!("row {a} stores its own diagonal")
                })?;
                if i > 0 {
                    ensure(row[i - 1] < c, "sparse_corr.cols_sorted", || {
                        format!("row {a} columns not strictly increasing at {c}")
                    })?;
                }
                let v = self.vals[lo + i];
                ensure(
                    v.is_finite() && v >= self.config.floor && v <= 1.0,
                    "sparse_corr.value_range",
                    || format!("corr({a}, {c}) = {v} outside [{}, 1]", self.config.floor),
                )?;
                let a_id = RoadId::from(a);
                let mirror = self.corr(RoadId(c), a_id);
                let mirror_stored = mirror > 0.0;
                ensure(
                    if mirror_stored {
                        (v - mirror).abs() <= 1e-9
                    } else {
                        v <= self.config.floor + 1e-9 || self.config.top_k.is_some()
                    },
                    "sparse_corr.symmetric",
                    || format!("corr({a}, {c}) = {v} but corr({c}, {a}) = {mirror}"),
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SlotParams;
    use rtse_data::SLOTS_PER_DAY;
    use rtse_graph::{GraphBuilder, RoadClass};

    fn fixture(n: usize, edges: &[(u32, u32, f64)]) -> (Graph, RtfModel) {
        let mut b = GraphBuilder::new();
        for i in 0..n {
            b.add_road(RoadClass::Secondary, (i as f64, 0.0));
        }
        let mut rho = Vec::new();
        for &(x, y, r) in edges {
            if b.add_edge(RoadId(x), RoadId(y)) {
                rho.push(r);
            }
        }
        let g = b.build();
        let slots: Vec<SlotParams> = (0..SLOTS_PER_DAY)
            .map(|_| SlotParams { mu: vec![0.0; n], sigma: vec![1.0; n], rho: rho.clone() })
            .collect();
        let model = RtfModel::from_slots(n, g.num_edges(), slots);
        (g, model)
    }

    #[test]
    fn matches_dense_above_floor() {
        let (g, m) = fixture(4, &[(0, 1, 0.9), (1, 3, 0.9), (0, 2, 0.99), (2, 3, 0.5)]);
        let config = SparseCorrConfig { floor: 0.05, top_k: None };
        let dense = CorrelationTable::build(&g, &m, SlotOfDay(0), PathCorrelation::MaxProduct);
        let sparse = SparseCorrelationTable::build(&g, &m, SlotOfDay(0), config);
        for a in g.road_ids() {
            for b in g.road_ids() {
                let d = dense.corr(a, b);
                let s = sparse.corr(a, b);
                if d >= config.floor {
                    assert_eq!(d.to_bits(), s.to_bits(), "corr({a},{b}): dense {d} sparse {s}");
                } else {
                    assert_eq!(s, 0.0, "corr({a},{b}) below floor must read 0, got {s}");
                }
            }
        }
    }

    #[test]
    fn floor_prunes_weak_pairs() {
        // 0-1-2 chain with ρ = 0.3 each: corr(0,2) = 0.09 < floor 0.1 is
        // pruned; the adjacent pairs (0.3) survive.
        let (g, m) = fixture(3, &[(0, 1, 0.3), (1, 2, 0.3)]);
        let config = SparseCorrConfig { floor: 0.1, top_k: None };
        let t = SparseCorrelationTable::build(&g, &m, SlotOfDay(0), config);
        assert_eq!(t.corr(RoadId(0), RoadId(1)), 0.3);
        assert_eq!(t.corr(RoadId(0), RoadId(2)), 0.0);
        assert_eq!(t.num_entries(), 4);
    }

    #[test]
    fn top_k_keeps_strongest() {
        // Star around 0 with distinct spoke strengths; k = 2 keeps the two
        // strongest spokes.
        let (g, m) = fixture(4, &[(0, 1, 0.5), (0, 2, 0.9), (0, 3, 0.7)]);
        let config = SparseCorrConfig { floor: 0.01, top_k: Some(2) };
        let t = SparseCorrelationTable::build(&g, &m, SlotOfDay(0), config);
        assert_eq!(t.corr(RoadId(0), RoadId(2)), 0.9);
        assert_eq!(t.corr(RoadId(0), RoadId(3)), 0.7);
        assert_eq!(t.corr(RoadId(0), RoadId(1)), 0.0, "weakest spoke cut by top-2");
        let row: Vec<(RoadId, f64)> = t.row(RoadId(0)).collect();
        assert_eq!(row, vec![(RoadId(2), 0.9), (RoadId(3), 0.7)]);
    }

    #[test]
    fn diagonal_is_implicit_unit() {
        let (g, m) = fixture(2, &[(0, 1, 0.8)]);
        let t = SparseCorrelationTable::build(&g, &m, SlotOfDay(0), SparseCorrConfig::default());
        assert_eq!(t.corr(RoadId(0), RoadId(0)), 1.0);
        assert_eq!(t.corr(RoadId(1), RoadId(1)), 1.0);
    }

    #[test]
    fn set_queries_match_dense() {
        let (g, m) =
            fixture(5, &[(0, 1, 0.9), (1, 2, 0.8), (2, 3, 0.7), (3, 4, 0.95), (0, 4, 0.2)]);
        let config = SparseCorrConfig { floor: 0.05, top_k: None };
        let dense = CorrelationTable::build(&g, &m, SlotOfDay(0), PathCorrelation::MaxProduct);
        let sparse = SparseCorrelationTable::build(&g, &m, SlotOfDay(0), config);
        let set = [RoadId(1), RoadId(3)];
        for r in g.road_ids() {
            let d = dense.road_set_corr(r, &set);
            let s = sparse.road_set_corr(r, &set);
            assert!((d - s).abs() <= f64::EPSILON, "road_set_corr({r}): {d} vs {s}");
        }
        let queried = [RoadId(0), RoadId(2), RoadId(4)];
        let d = dense.set_set_corr(&queried, &set);
        let s = sparse.set_set_corr(&queried, &set);
        assert!((d - s).abs() <= 1e-12, "set_set_corr: {d} vs {s}");
    }

    #[test]
    fn negative_and_nan_rho_regressions() {
        // Same regressions as the dense table: the Eq. (7) override must
        // clamp ρ ≤ 0 / NaN to 0 (here: pruned entirely), and a NaN edge
        // must not poison the live alternate path.
        let (g, m) = fixture(4, &[(0, 1, f64::NAN), (1, 3, -0.4), (0, 2, 0.8), (2, 3, 0.5)]);
        let t = SparseCorrelationTable::build(&g, &m, SlotOfDay(0), SparseCorrConfig::default());
        assert_eq!(t.corr(RoadId(0), RoadId(1)), 0.0, "NaN edge pruned");
        assert_eq!(t.corr(RoadId(1), RoadId(3)), 0.0, "negative edge pruned");
        assert!((t.corr(RoadId(0), RoadId(3)) - 0.4).abs() < 1e-9, "live path kept");
        assert!(rtse_check::Validate::validate(&t).is_ok());
        // Road 1 is reachable only over dead edges: its row is empty.
        assert_eq!(t.row(RoadId(1)).count(), 0);
    }

    #[test]
    fn validate_accepts_build_and_rejects_corruption() {
        let (g, m) = fixture(3, &[(0, 1, 0.8), (1, 2, 0.6)]);
        let t = SparseCorrelationTable::build(&g, &m, SlotOfDay(0), SparseCorrConfig::default());
        assert!(rtse_check::Validate::validate(&t).is_ok());
        let mut bad = t.clone();
        bad.vals[0] = 1.5;
        assert_eq!(
            rtse_check::Validate::validate(&bad).expect_err("must fail").invariant,
            "sparse_corr.value_range"
        );
        let mut bad = t.clone();
        bad.cols[0] = 99;
        assert_eq!(
            rtse_check::Validate::validate(&bad).expect_err("must fail").invariant,
            "sparse_corr.col_bounds"
        );
        let mut bad = t;
        bad.offsets[1] = 0;
        assert!(rtse_check::Validate::validate(&bad).is_err());
    }
}
