//! Minimal JSON reader/writer for model checkpoints.
//!
//! The only JSON in the system is the [`crate::persistence`] checkpoint
//! format (the rest of the workspace uses line-oriented text formats), so a
//! dependency-free recursive-descent parser over a generic value tree is
//! all that is needed. Numbers round-trip exactly: the writer uses Rust's
//! shortest-roundtrip `f64` display and the reader uses `str::parse`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. BTreeMap keeps writer output deterministic.
    Obj(BTreeMap<String, Json>),
}

/// Parse failure with a byte offset for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl Json {
    /// The value as an object, or an error naming `ctx`.
    pub fn as_obj(&self, ctx: &str) -> Result<&BTreeMap<String, Json>, String> {
        match self {
            Json::Obj(m) => Ok(m),
            other => Err(format!("{ctx}: expected object, got {}", other.kind())),
        }
    }

    /// The value as an array, or an error naming `ctx`.
    pub fn as_arr(&self, ctx: &str) -> Result<&[Json], String> {
        match self {
            Json::Arr(v) => Ok(v),
            other => Err(format!("{ctx}: expected array, got {}", other.kind())),
        }
    }

    /// The value as a number, or an error naming `ctx`.
    pub fn as_num(&self, ctx: &str) -> Result<f64, String> {
        match self {
            Json::Num(x) => Ok(*x),
            other => Err(format!("{ctx}: expected number, got {}", other.kind())),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

/// Looks up a required object field.
pub(crate) fn field<'a>(obj: &'a BTreeMap<String, Json>, name: &str) -> Result<&'a Json, String> {
    obj.get(name).ok_or_else(|| format!("missing field `{name}`"))
}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
pub(crate) fn parse(input: &str) -> Result<Json, JsonError> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing data after JSON document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { offset: self.pos, message: message.to_string() }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("non-utf8 number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError { offset: start, message: format!("invalid number `{text}`") })
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("non-utf8 \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not needed by the
                            // checkpoint schema; reject them explicitly.
                            let ch = char::from_u32(code)
                                .ok_or_else(|| self.err("unsupported \\u code point"))?;
                            out.push(ch);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("non-utf8 string"))?;
                    let ch = match rest.chars().next() {
                        Some(c) => c,
                        None => return Err(self.err("unterminated string")),
                    };
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[', "expected array")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{', "expected object")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected `:` after object key")?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }
}

/// Writes an `f64` array as compact JSON into `out`.
pub(crate) fn write_f64_array(out: &mut String, xs: &[f64]) {
    out.push('[');
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        // Shortest-roundtrip display; NaN/inf are not valid JSON, so map
        // them to `null` (the reader rejects them with a clear message).
        if x.is_finite() {
            let _ = write!(out, "{x}");
        } else {
            out.push_str("null");
        }
    }
    out.push(']');
}

/// Reads an `f64` array written by [`write_f64_array`].
pub(crate) fn read_f64_array(v: &Json, ctx: &str) -> Result<Vec<f64>, String> {
    v.as_arr(ctx)?.iter().map(|item| item.as_num(ctx)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let v =
            parse(r#"{"a": [1, -2.5e3, 0.125], "b": {"c": "x\n"}, "d": true, "e": null}"#).unwrap();
        let obj = v.as_obj("root").unwrap();
        assert_eq!(read_f64_array(&obj["a"], "a").unwrap(), vec![1.0, -2500.0, 0.125]);
        let inner = obj["b"].as_obj("b").unwrap();
        assert_eq!(inner["c"], Json::Str("x\n".to_string()));
        assert_eq!(obj["d"], Json::Bool(true));
        assert_eq!(obj["e"], Json::Null);
    }

    #[test]
    fn f64_round_trip_is_exact() {
        let xs = vec![0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 1e308, -0.0, 42.0];
        let mut s = String::new();
        write_f64_array(&mut s, &xs);
        let back = read_f64_array(&parse(&s).unwrap(), "xs").unwrap();
        assert_eq!(xs.len(), back.len());
        for (a, b) in xs.iter().zip(back.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{not json", "[1,", "\"unterminated", "{\"a\" 1}", "[1] extra", ""] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn error_reports_offset() {
        let err = parse("[1, x]").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(err.to_string().contains("byte 4"));
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = parse(r#""Aé é""#).unwrap();
        assert_eq!(v, Json::Str("Aé é".to_string()));
    }
}
