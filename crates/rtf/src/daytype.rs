//! Day-type-conditioned RTF (extension beyond the paper).
//!
//! The paper fits one parameter set per slot across *all* days, which
//! treats weekly seasonality as noise: a road whose weekday rush hour
//! vanishes on weekends gets an inflated `σ` and a biased `μ` on both day
//! types. [`DayTypeModel`] fits separate weekday/weekend models from the
//! same history (via [`rtse_data::HistoryStore::retain_days`]) and
//! dispatches on the query's day type. On weekend-varying data this
//! measurably improves held-out calibration (see tests).

use crate::moments::moment_estimate;
use crate::params::RtfModel;
use rtse_data::HistoryStore;
use rtse_graph::Graph;

/// Weekday vs weekend, derived from a day index with the generator's
/// convention (`day % 7 ∈ {5, 6}` is a weekend).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DayType {
    /// Monday–Friday.
    Weekday,
    /// Saturday/Sunday.
    Weekend,
}

impl DayType {
    /// Classifies a day index.
    pub fn of_day(day: usize) -> DayType {
        if day % 7 >= 5 {
            DayType::Weekend
        } else {
            DayType::Weekday
        }
    }
}

/// A pair of RTF models, one per day type.
#[derive(Debug, Clone, PartialEq)]
pub struct DayTypeModel {
    weekday: RtfModel,
    weekend: RtfModel,
}

impl DayTypeModel {
    /// Moment-estimates both models from a single history store.
    ///
    /// # Panics
    /// Panics when the history has no day of either type (a day-type model
    /// needs at least one example of each; fall back to a plain
    /// [`moment_estimate`] otherwise).
    pub fn train(graph: &Graph, history: &HistoryStore) -> Self {
        let has = |ty: DayType| (0..history.num_days()).any(|d| DayType::of_day(d) == ty);
        assert!(has(DayType::Weekday), "history has no weekday");
        assert!(has(DayType::Weekend), "history has no weekend day");
        let weekday_history = history.retain_days(|d| DayType::of_day(d) == DayType::Weekday);
        let weekend_history = history.retain_days(|d| DayType::of_day(d) == DayType::Weekend);
        Self {
            weekday: moment_estimate(graph, &weekday_history),
            weekend: moment_estimate(graph, &weekend_history),
        }
    }

    /// The model for a day type.
    pub fn model(&self, ty: DayType) -> &RtfModel {
        match ty {
            DayType::Weekday => &self.weekday,
            DayType::Weekend => &self.weekend,
        }
    }

    /// The model for a concrete day index.
    pub fn model_for_day(&self, day: usize) -> &RtfModel {
        self.model(DayType::of_day(day))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics::evaluate_model;
    use rtse_data::{SynthConfig, TrafficGenerator};
    use rtse_graph::generators::grid;

    #[test]
    fn day_type_classification() {
        assert_eq!(DayType::of_day(0), DayType::Weekday);
        assert_eq!(DayType::of_day(4), DayType::Weekday);
        assert_eq!(DayType::of_day(5), DayType::Weekend);
        assert_eq!(DayType::of_day(6), DayType::Weekend);
        assert_eq!(DayType::of_day(7), DayType::Weekday);
        assert_eq!(DayType::of_day(12), DayType::Weekend);
    }

    #[test]
    fn beats_pooled_model_on_weekend_varying_data() {
        let graph = grid(3, 4);
        // Strong weekly seasonality: weekend rush dips at 30%.
        let cfg = SynthConfig {
            days: 28,
            incidents_per_day: 0.0,
            weekend_dip_scale: 0.3,
            seed: 10,
            ..SynthConfig::default()
        };
        let ds = TrafficGenerator::new(&graph, cfg).generate();
        let pooled = moment_estimate(&graph, &ds.history);
        let split = DayTypeModel::train(&graph, &ds.history);

        // Score each model on held-out-style weekend data: reuse the last
        // weekend (days 26/27 are Fri/Sat → day 26 % 7 = 5, weekend).
        let weekend_days = ds.history.retain_days(|d| DayType::of_day(d) == DayType::Weekend);
        let pooled_diag = evaluate_model(&graph, &pooled, &weekend_days);
        let split_diag = evaluate_model(&graph, split.model(DayType::Weekend), &weekend_days);
        assert!(
            split_diag.avg_log_density > pooled_diag.avg_log_density,
            "split {} should beat pooled {}",
            split_diag.avg_log_density,
            pooled_diag.avg_log_density
        );
    }

    #[test]
    fn without_seasonality_models_are_close() {
        let graph = grid(2, 3);
        let cfg = SynthConfig {
            days: 21,
            incidents_per_day: 0.0,
            weekend_dip_scale: 1.0,
            seed: 4,
            ..SynthConfig::default()
        };
        let ds = TrafficGenerator::new(&graph, cfg).generate();
        let split = DayTypeModel::train(&graph, &ds.history);
        let t = rtse_data::SlotOfDay::from_hm(8, 30);
        for r in graph.road_ids() {
            let a = split.model(DayType::Weekday).mu(t, r);
            let b = split.model(DayType::Weekend).mu(t, r);
            assert!((a - b).abs() < 8.0, "road {r}: weekday {a} vs weekend {b}");
        }
    }

    #[test]
    #[should_panic(expected = "no weekend day")]
    fn rejects_history_without_weekends() {
        let graph = grid(2, 2);
        let cfg =
            SynthConfig { days: 4, incidents_per_day: 0.0, seed: 1, ..SynthConfig::default() };
        let ds = TrafficGenerator::new(&graph, cfg).generate();
        DayTypeModel::train(&graph, &ds.history);
    }

    #[test]
    fn model_for_day_dispatches() {
        let graph = grid(2, 2);
        let cfg =
            SynthConfig { days: 14, incidents_per_day: 0.0, seed: 2, ..SynthConfig::default() };
        let ds = TrafficGenerator::new(&graph, cfg).generate();
        let split = DayTypeModel::train(&graph, &ds.history);
        assert_eq!(split.model_for_day(3), split.model(DayType::Weekday));
        assert_eq!(split.model_for_day(6), split.model(DayType::Weekend));
    }
}
