//! The offline correlation table `Γ_R` (Eqs. 7–12).
//!
//! Road–road correlation:
//! * adjacent roads: `corr(r_i, r_j) = ρ_ij` (Eq. 7);
//! * non-adjacent: the maximum cumulative product of edge correlations over
//!   any joining path (Eq. 8), found with Dijkstra on transformed weights.
//!
//! The paper's Eq. (9) claims the max-product path equals the path
//! minimizing `Σ 1/ρ`; that is not true in general (`−ln` is the correct
//! monotone transform of a product). Both semantics are implemented — see
//! [`PathCorrelation`] — and benched against each other
//! (`ablation_pathcorr`); `MaxProduct` is the default everywhere.
//!
//! Road–set correlation (Eq. 11) is the max over the set; set–set (Eq. 12)
//! sums road–set values over the queried roads.

use crate::params::{RtfModel, SlotParams};
use rtse_data::SlotOfDay;
use rtse_graph::{dijkstra, dijkstra_with_paths, Graph, RoadId};
use rtse_obs::{ObsHandle, Stage};
use rtse_pool::ComputePool;

/// Which reading of Eqs. (8)–(10) to use for non-adjacent pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PathCorrelation {
    /// Maximize `Π ρ` exactly: Dijkstra on `w = −ln ρ`, correlation
    /// `exp(−dist)`. The mathematically faithful reading of Eq. (8).
    #[default]
    MaxProduct,
    /// The paper's literal Eq. (9): take the path minimizing `Σ 1/ρ`, then
    /// report `Π ρ` along *that* path (Eq. 10). Generally ≤ the max-product
    /// value.
    ReciprocalSum,
}

/// Dense all-pairs correlation table for one time slot.
#[derive(Debug, Clone)]
pub struct CorrelationTable {
    n: usize,
    slot: SlotOfDay,
    semantics: PathCorrelation,
    /// Row-major `n x n`, symmetric, diagonal 1, zeros for disconnected
    /// pairs.
    values: Vec<f64>,
}

/// Path weight for the max-product semantics: `w = −ln ρ`. A non-positive
/// or NaN ρ carries no correlation (Eq. 8's product through it is 0), so
/// it is mapped to an explicitly infinite weight and can never sit on a
/// chosen path. The guard is written as `rho > 0.0` so that NaN — which
/// fails every comparison — lands on the infinite branch instead of
/// flowing through `ln` as NaN and corrupting Dijkstra distances.
#[inline]
pub(crate) fn max_product_weight(rho: f64) -> f64 {
    if rho > 0.0 {
        -rho.ln()
    } else {
        f64::INFINITY
    }
}

/// Path weight for the paper's literal Eq. (9) semantics: `w = 1/ρ`, with
/// the same explicit infinite-weight treatment for `ρ ≤ 0` and NaN
/// (avoiding the `1/0` division and keeping zero-correlation edges off
/// every path).
#[inline]
pub(crate) fn reciprocal_weight(rho: f64) -> f64 {
    if rho > 0.0 {
        1.0 / rho
    } else {
        f64::INFINITY
    }
}

/// The Eq. (7) adjacency override value for an edge's ρ: the path
/// semantics floor non-positive correlation at 0, and the override must
/// not reintroduce negative (or NaN) values that `road_set_corr`'s
/// `fold(0.0, max)` would silently clamp. `f64::max` returns the other
/// operand when one side is NaN, so a NaN ρ also lands on 0.
#[inline]
pub(crate) fn clamped_edge_rho(rho: f64) -> f64 {
    rho.max(0.0)
}

/// Fills one row of the dense table: correlations from `src` to every
/// road under the requested path semantics, then the Eq. (7) overrides
/// (unit diagonal, direct edge ρ for adjacent pairs).
fn fill_row(
    graph: &Graph,
    params: &SlotParams,
    semantics: PathCorrelation,
    src: RoadId,
    row: &mut [f64],
) {
    match semantics {
        PathCorrelation::MaxProduct => {
            let sp = dijkstra(graph, src, |e| max_product_weight(params.rho[e.index()]));
            for (t, &cost) in sp.costs().iter().enumerate() {
                row[t] = if cost.is_finite() { (-cost).exp() } else { 0.0 };
            }
        }
        PathCorrelation::ReciprocalSum => {
            let sp = dijkstra_with_paths(graph, src, |e| reciprocal_weight(params.rho[e.index()]));
            for t in graph.road_ids() {
                row[t.index()] = match sp.path_to(t) {
                    // Consecutive path roads are adjacent by
                    // construction; a missing edge would mean a
                    // broken shortest-path tree and maps to zero
                    // correlation rather than an abort.
                    Some(path) => path
                        .windows(2)
                        .map(|w| {
                            graph.edge_between(w[0], w[1]).map_or(0.0, |e| params.rho[e.index()])
                        })
                        .product(),
                    None => 0.0,
                };
            }
        }
    }
    // Eq. (7): adjacent pairs use the edge weight directly (floored at 0
    // like the path semantics), and a road is perfectly correlated with
    // itself.
    row[src.index()] = 1.0;
    for &(nbr, e) in graph.neighbors(src) {
        row[nbr.index()] = clamped_edge_rho(params.rho[e.index()]);
    }
}

impl CorrelationTable {
    /// Builds the table by running one Dijkstra per road, fanned across
    /// the `RTSE_THREADS`-sized default pool. See [`Self::build_with_pool`].
    pub fn build(
        graph: &Graph,
        model: &RtfModel,
        slot: SlotOfDay,
        semantics: PathCorrelation,
    ) -> Self {
        Self::build_with_pool(graph, model, slot, semantics, &ComputePool::from_env())
    }

    /// Builds the table on an explicit pool: the per-source Dijkstras are
    /// independent, so the dense table is split into row slices and each
    /// worker fills whole rows. Results are bit-identical at every thread
    /// count (each row is produced by the same single-source computation).
    pub fn build_with_pool(
        graph: &Graph,
        model: &RtfModel,
        slot: SlotOfDay,
        semantics: PathCorrelation,
        pool: &ComputePool,
    ) -> Self {
        Self::build_observed(graph, model, slot, semantics, pool, &ObsHandle::noop())
    }

    /// [`build_with_pool`](Self::build_with_pool) with instrumentation:
    /// each per-source row fill (one Dijkstra) is timed as one
    /// `corr.dijkstra_row` span, so a full build records exactly
    /// `n_roads` spans on `obs`. The table is bit-identical to the
    /// unobserved build.
    pub fn build_observed(
        graph: &Graph,
        model: &RtfModel,
        slot: SlotOfDay,
        semantics: PathCorrelation,
        pool: &ComputePool,
        obs: &ObsHandle,
    ) -> Self {
        assert!(model.matches_graph(graph), "model/graph dimension mismatch");
        let n = graph.num_roads();
        let params = model.slot(slot);
        let mut values = vec![0.0; n * n];
        if n > 0 {
            let rows: Vec<&mut [f64]> = values.chunks_mut(n).collect();
            pool.map_observed(obs, rows, |src, row| {
                let _span = obs.span(Stage::CorrDijkstraRow);
                fill_row(graph, params, semantics, RoadId::from(src), row);
            });
        }
        let table = Self { n, slot, semantics, values };
        #[cfg(feature = "validate")]
        if let Err(v) = rtse_check::Validate::validate(&table) {
            rtse_check::fail(&v);
        }
        table
    }

    /// The slot this table was built for.
    pub fn slot(&self) -> SlotOfDay {
        self.slot
    }

    /// The path semantics used.
    pub fn semantics(&self) -> PathCorrelation {
        self.semantics
    }

    /// Number of roads covered.
    pub fn num_roads(&self) -> usize {
        self.n
    }

    /// `corr^t(r_a, r_b)` (Eqs. 7/10).
    #[inline]
    pub fn corr(&self, a: RoadId, b: RoadId) -> f64 {
        self.values[a.index() * self.n + b.index()]
    }

    /// Road–set correlation, Eq. (11): max over the set; 0 for an empty set.
    pub fn road_set_corr(&self, r: RoadId, set: &[RoadId]) -> f64 {
        set.iter().map(|&s| self.corr(r, s)).fold(0.0, f64::max)
    }

    /// Set–set correlation, Eq. (12).
    pub fn set_set_corr(&self, queried: &[RoadId], crowdsourced: &[RoadId]) -> f64 {
        queried.iter().map(|&q| self.road_set_corr(q, crowdsourced)).sum()
    }
}

impl rtse_check::Validate for CorrelationTable {
    /// Table contract (Eqs. 7–12): square storage, values in `[0, 1]`,
    /// unit diagonal, and symmetry. Two independent Dijkstra runs compute
    /// `corr(a, b)` and `corr(b, a)`, so symmetry is checked to a float
    /// tolerance rather than bit-for-bit.
    fn validate(&self) -> Result<(), rtse_check::InvariantViolation> {
        use rtse_check::ensure;
        ensure(self.values.len() == self.n * self.n, "corr.square", || {
            format!("{} values for {} roads", self.values.len(), self.n)
        })?;
        for a in 0..self.n {
            for b in 0..self.n {
                let c = self.values[a * self.n + b];
                ensure(c.is_finite() && (0.0..=1.0).contains(&c), "corr.range", || {
                    format!("corr({a}, {b}) = {c} outside [0, 1]")
                })?;
                let mirror = self.values[b * self.n + a];
                ensure((c - mirror).abs() <= 1e-9, "corr.symmetric", || {
                    format!("corr({a}, {b}) = {c} but corr({b}, {a}) = {mirror}")
                })?;
            }
            let diag = self.values[a * self.n + a];
            ensure((diag - 1.0).abs() <= 1e-12, "corr.unit_diagonal", || {
                format!("corr({a}, {a}) = {diag}")
            })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{RtfModel, SlotParams};
    use rtse_data::SLOTS_PER_DAY;
    use rtse_graph::{GraphBuilder, RoadClass};

    /// Builds a graph plus model with explicit per-edge ρ for slot 0.
    fn fixture(n: usize, edges: &[(u32, u32, f64)]) -> (Graph, RtfModel) {
        let mut b = GraphBuilder::new();
        for i in 0..n {
            b.add_road(RoadClass::Secondary, (i as f64, 0.0));
        }
        let mut rho = Vec::new();
        for &(x, y, r) in edges {
            if b.add_edge(RoadId(x), RoadId(y)) {
                rho.push(r);
            }
        }
        let g = b.build();
        let slots: Vec<SlotParams> = (0..SLOTS_PER_DAY)
            .map(|_| SlotParams { mu: vec![0.0; n], sigma: vec![1.0; n], rho: rho.clone() })
            .collect();
        let model = RtfModel::from_slots(n, g.num_edges(), slots);
        (g, model)
    }

    #[test]
    fn adjacent_pairs_use_edge_rho() {
        let (g, m) = fixture(3, &[(0, 1, 0.8), (1, 2, 0.6)]);
        let t = CorrelationTable::build(&g, &m, SlotOfDay(0), PathCorrelation::MaxProduct);
        assert_eq!(t.corr(RoadId(0), RoadId(1)), 0.8);
        assert_eq!(t.corr(RoadId(1), RoadId(2)), 0.6);
        assert_eq!(t.corr(RoadId(0), RoadId(0)), 1.0);
    }

    #[test]
    fn non_adjacent_max_product() {
        let (g, m) = fixture(3, &[(0, 1, 0.8), (1, 2, 0.6)]);
        let t = CorrelationTable::build(&g, &m, SlotOfDay(0), PathCorrelation::MaxProduct);
        let c = t.corr(RoadId(0), RoadId(2));
        assert!((c - 0.48).abs() < 1e-9, "0.8 * 0.6 = 0.48, got {c}");
        // Symmetric.
        assert!((t.corr(RoadId(2), RoadId(0)) - c).abs() < 1e-12);
    }

    #[test]
    fn max_product_picks_better_path() {
        // Two routes 0→3: direct-ish 0-1-3 with ρ .9*.9=.81 vs 0-2-3 with
        // .99*.5=.495. MaxProduct must choose .81.
        let (g, m) = fixture(4, &[(0, 1, 0.9), (1, 3, 0.9), (0, 2, 0.99), (2, 3, 0.5)]);
        let t = CorrelationTable::build(&g, &m, SlotOfDay(0), PathCorrelation::MaxProduct);
        assert!((t.corr(RoadId(0), RoadId(3)) - 0.81).abs() < 1e-9);
    }

    #[test]
    fn reciprocal_sum_can_differ_from_max_product() {
        // Path A: two edges of ρ=0.5 → product 0.25, Σ1/ρ = 4.
        // Path B: three edges of ρ=0.9 → product 0.729, Σ1/ρ = 3.33.
        // Both semantics pick B here; make A the reciprocal winner:
        // A: one edge ρ=0.26 → Σ1/ρ = 3.85, product .26.
        // B: three edges ρ=0.7 → Σ1/ρ = 4.29, product .343.
        // ReciprocalSum picks A (.26), MaxProduct picks B (.343)... but A is
        // a single edge, so Eq. (7) overrides. Use 2-edge A instead:
        // A: 0-1-5 with ρ=0.52 each → Σ=3.85, product .2704
        // B: 0-2-3-4-5? Use ρ=0.7 ×3 edges → Σ=4.29, product .343.
        let (g, m) =
            fixture(6, &[(0, 1, 0.52), (1, 5, 0.52), (0, 2, 0.7), (2, 3, 0.7), (3, 5, 0.7)]);
        let mp = CorrelationTable::build(&g, &m, SlotOfDay(0), PathCorrelation::MaxProduct);
        let rs = CorrelationTable::build(&g, &m, SlotOfDay(0), PathCorrelation::ReciprocalSum);
        let via_b = 0.7_f64.powi(3);
        let via_a = 0.52_f64 * 0.52;
        assert!((mp.corr(RoadId(0), RoadId(5)) - via_b).abs() < 1e-9);
        assert!((rs.corr(RoadId(0), RoadId(5)) - via_a).abs() < 1e-9);
        assert!(mp.corr(RoadId(0), RoadId(5)) > rs.corr(RoadId(0), RoadId(5)));
    }

    #[test]
    fn disconnected_pairs_zero() {
        let (g, m) = fixture(4, &[(0, 1, 0.9)]);
        let t = CorrelationTable::build(&g, &m, SlotOfDay(0), PathCorrelation::MaxProduct);
        assert_eq!(t.corr(RoadId(0), RoadId(3)), 0.0);
        assert_eq!(t.corr(RoadId(2), RoadId(3)), 0.0);
    }

    #[test]
    fn road_set_and_set_set() {
        let (g, m) = fixture(3, &[(0, 1, 0.8), (1, 2, 0.6)]);
        let t = CorrelationTable::build(&g, &m, SlotOfDay(0), PathCorrelation::MaxProduct);
        // Eq. 11: max over the set.
        let rs = t.road_set_corr(RoadId(0), &[RoadId(1), RoadId(2)]);
        assert_eq!(rs, 0.8);
        assert_eq!(t.road_set_corr(RoadId(0), &[]), 0.0);
        // Eq. 12: sum over queried.
        let ss = t.set_set_corr(&[RoadId(0), RoadId(2)], &[RoadId(1)]);
        assert!((ss - (0.8 + 0.6)).abs() < 1e-12);
    }

    #[test]
    fn zero_rho_edges_yield_zero_correlation_both_semantics() {
        // Roads 0 and 2 are connected only through the ρ=0 edge (0,1): the
        // pair must read as uncorrelated, not inf/NaN from -ln(0) or 1/0.
        let (g, m) = fixture(3, &[(0, 1, 0.0), (1, 2, 0.8)]);
        for semantics in [PathCorrelation::MaxProduct, PathCorrelation::ReciprocalSum] {
            let t = CorrelationTable::build(&g, &m, SlotOfDay(0), semantics);
            // Adjacent pair: Eq. (7) uses the edge ρ directly.
            assert_eq!(t.corr(RoadId(0), RoadId(1)), 0.0, "{semantics:?}");
            // Pair reachable only via the zero-ρ edge.
            assert_eq!(t.corr(RoadId(0), RoadId(2)), 0.0, "{semantics:?}");
            assert_eq!(t.corr(RoadId(2), RoadId(0)), 0.0, "{semantics:?}");
            // The live edge is untouched.
            assert_eq!(t.corr(RoadId(1), RoadId(2)), 0.8, "{semantics:?}");
            for a in g.road_ids() {
                for b in g.road_ids() {
                    assert!(t.corr(a, b).is_finite(), "{semantics:?} corr({a},{b}) not finite");
                }
            }
        }
    }

    #[test]
    fn weight_functions_map_nan_and_nonpositive_to_infinite() {
        for bad in [f64::NAN, -0.3, 0.0, f64::NEG_INFINITY] {
            assert_eq!(max_product_weight(bad), f64::INFINITY, "max_product({bad})");
            assert_eq!(reciprocal_weight(bad), f64::INFINITY, "reciprocal({bad})");
        }
        assert!((max_product_weight(0.5) - std::f64::consts::LN_2).abs() < 1e-15);
        assert_eq!(reciprocal_weight(0.5), 2.0);
        assert_eq!(clamped_edge_rho(f64::NAN), 0.0);
        assert_eq!(clamped_edge_rho(-0.7), 0.0);
        assert_eq!(clamped_edge_rho(0.7), 0.7);
    }

    #[test]
    fn negative_rho_override_clamps_to_zero() {
        // Regression: the Eq. (7) override used to write raw ρ into the
        // row, so a negative edge correlation leaked into the table even
        // though the path semantics floor it at 0.
        let (g, m) = fixture(3, &[(0, 1, -0.4), (1, 2, 0.8)]);
        for semantics in [PathCorrelation::MaxProduct, PathCorrelation::ReciprocalSum] {
            let t = CorrelationTable::build(&g, &m, SlotOfDay(0), semantics);
            assert_eq!(t.corr(RoadId(0), RoadId(1)), 0.0, "{semantics:?}");
            assert_eq!(t.corr(RoadId(1), RoadId(0)), 0.0, "{semantics:?}");
            assert_eq!(t.corr(RoadId(0), RoadId(2)), 0.0, "{semantics:?}");
            assert_eq!(t.corr(RoadId(1), RoadId(2)), 0.8, "{semantics:?}");
            assert!(rtse_check::Validate::validate(&t).is_ok(), "{semantics:?}");
        }
    }

    #[test]
    fn nan_rho_is_contained_both_semantics() {
        // Regression: a NaN ρ used to fail the `rho <= 0.0` weight guard
        // (NaN fails every comparison) and flow through `-ln` / `1/ρ` as
        // NaN, silently corrupting release-build distances. The live
        // alternate path 0-2-3 must be unaffected.
        let (g, m) = fixture(4, &[(0, 1, f64::NAN), (1, 3, 0.9), (0, 2, 0.8), (2, 3, 0.5)]);
        for semantics in [PathCorrelation::MaxProduct, PathCorrelation::ReciprocalSum] {
            let t = CorrelationTable::build(&g, &m, SlotOfDay(0), semantics);
            assert_eq!(t.corr(RoadId(0), RoadId(1)), 0.0, "{semantics:?}");
            assert!((t.corr(RoadId(0), RoadId(3)) - 0.4).abs() < 1e-9, "{semantics:?}");
            for a in g.road_ids() {
                for b in g.road_ids() {
                    let c = t.corr(a, b);
                    assert!(
                        c.is_finite() && (0.0..=1.0).contains(&c),
                        "{semantics:?} corr({a},{b}) = {c}"
                    );
                }
            }
            assert!(rtse_check::Validate::validate(&t).is_ok(), "{semantics:?}");
        }
    }

    #[test]
    fn zero_rho_does_not_mask_alternate_path() {
        // 0-1-3 has a ρ=0 hop, but 0-2-3 is fully alive: the dead path must
        // not poison the live one (inf weight loses to any finite path).
        let (g, m) = fixture(4, &[(0, 1, 0.0), (1, 3, 0.9), (0, 2, 0.8), (2, 3, 0.5)]);
        let t = CorrelationTable::build(&g, &m, SlotOfDay(0), PathCorrelation::MaxProduct);
        assert!((t.corr(RoadId(0), RoadId(3)) - 0.4).abs() < 1e-9);
    }

    #[test]
    fn build_with_pool_matches_serial_exactly() {
        let (g, m) =
            fixture(6, &[(0, 1, 0.52), (1, 5, 0.52), (0, 2, 0.7), (2, 3, 0.7), (3, 5, 0.7)]);
        for semantics in [PathCorrelation::MaxProduct, PathCorrelation::ReciprocalSum] {
            let serial = CorrelationTable::build_with_pool(
                &g,
                &m,
                SlotOfDay(0),
                semantics,
                &ComputePool::new(1),
            );
            for threads in 2..=4 {
                let par = CorrelationTable::build_with_pool(
                    &g,
                    &m,
                    SlotOfDay(0),
                    semantics,
                    &ComputePool::new(threads),
                );
                assert_eq!(serial.values, par.values, "{semantics:?} threads={threads}");
            }
        }
    }

    #[test]
    fn correlations_bounded_zero_one() {
        let (g, m) =
            fixture(5, &[(0, 1, 0.9), (1, 2, 0.8), (2, 3, 0.7), (3, 4, 0.95), (0, 4, 0.2)]);
        for semantics in [PathCorrelation::MaxProduct, PathCorrelation::ReciprocalSum] {
            let t = CorrelationTable::build(&g, &m, SlotOfDay(0), semantics);
            for a in g.road_ids() {
                for b in g.road_ids() {
                    let c = t.corr(a, b);
                    assert!((0.0..=1.0).contains(&c), "corr({a},{b}) = {c}");
                }
            }
        }
    }
}
