//! Closed-form moment estimation of RTF parameters.
//!
//! For each slot, `μ_i` / `σ_i` are the per-road sample mean / standard
//! deviation across days and `ρ_ij` the Pearson correlation of adjacent
//! roads' speeds, clamped to the paper's `ρ ∈ [0, 1]` range. This is both
//! a fast standalone estimator and the warm start for the CCD trainer
//! (whose stationary point it coincides with — see the crate docs).

use crate::params::{RtfModel, SlotParams, RHO_MAX, RHO_MIN, SIGMA_MIN};
use rtse_data::{HistoryStore, SlotOfDay};
use rtse_graph::Graph;
use rtse_math::stats::{mean, pearson, population_std};

/// Per-road fallback statistics for (road, slot) cells with no history.
///
/// Sparse corpora (station + floating-car training, crowdsourced feeds)
/// routinely leave individual cells empty. Estimating those cells as
/// `μ = 0` poisons every downstream consumer — OCS treats the road as
/// known-slow, GSP propagates the zero outward — so empty cells instead
/// fall back to the road's all-day statistics, and roads with no samples
/// at all fall back to the network-wide ones.
#[derive(Debug, Clone)]
struct RoadBackfill {
    /// All-day mean speed per road (`None` for roads with no samples).
    mu: Vec<Option<f64>>,
    /// All-day population std per road (`None` for roads with no samples).
    sigma: Vec<Option<f64>>,
    /// Network-wide mean speed (0 when the history is completely empty).
    global_mu: f64,
    /// Network-wide population std.
    global_sigma: f64,
}

impl RoadBackfill {
    fn build(graph: &Graph, history: &HistoryStore) -> Self {
        let n = graph.num_roads();
        let mut mu = Vec::with_capacity(n);
        let mut sigma = Vec::with_capacity(n);
        let mut all: Vec<f64> = Vec::new();
        for r in graph.road_ids() {
            let mut road_samples: Vec<f64> = Vec::new();
            for t in SlotOfDay::all() {
                road_samples.extend(history.samples(r, t));
            }
            if road_samples.is_empty() {
                mu.push(None);
                sigma.push(None);
            } else {
                mu.push(Some(mean(&road_samples)));
                sigma.push(Some(population_std(&road_samples)));
                all.extend(road_samples);
            }
        }
        Self { mu, sigma, global_mu: mean(&all), global_sigma: population_std(&all) }
    }

    fn mu_for(&self, road: usize) -> f64 {
        self.mu[road].unwrap_or(self.global_mu)
    }

    fn sigma_for(&self, road: usize) -> f64 {
        self.sigma[road].unwrap_or(self.global_sigma).max(SIGMA_MIN)
    }
}

fn estimate_slot_with(
    graph: &Graph,
    history: &HistoryStore,
    slot: SlotOfDay,
    backfill: &RoadBackfill,
) -> SlotParams {
    let n = graph.num_roads();
    let mut params = SlotParams::neutral(n, graph.num_edges());
    for r in graph.road_ids() {
        let samples = history.samples(r, slot);
        if samples.is_empty() {
            // The all-day σ (not the floor) marks the cell as weakly
            // periodic, which is what makes OCS prioritize probing it.
            params.mu[r.index()] = backfill.mu_for(r.index());
            params.sigma[r.index()] = backfill.sigma_for(r.index());
        } else {
            params.mu[r.index()] = mean(&samples);
            params.sigma[r.index()] = population_std(&samples).max(SIGMA_MIN);
        }
    }
    for (eidx, &(a, b)) in graph.edges().iter().enumerate() {
        let (xs, ys) = history.paired_samples(a, b, slot);
        // Paper constraint: ρ ∈ [0, 1]; negative empirical correlation is
        // clamped to (effectively) uncorrelated.
        params.rho[eidx] = pearson(&xs, &ys).clamp(RHO_MIN, RHO_MAX);
    }
    params
}

/// Moment-estimates the parameters of a single slot.
///
/// Empty (road, slot) cells fall back to the road's all-day mean/std (and
/// roads with no history at all to the network-wide ones) instead of a
/// silent `μ = 0`.
pub fn moment_estimate_slot(graph: &Graph, history: &HistoryStore, slot: SlotOfDay) -> SlotParams {
    estimate_slot_with(graph, history, slot, &RoadBackfill::build(graph, history))
}

/// Moment-estimates a full [`RtfModel`] (every slot of the day).
///
/// ```
/// use rtse_data::{SlotOfDay, SynthConfig, TrafficGenerator};
/// use rtse_graph::{generators, RoadId};
/// use rtse_rtf::moment_estimate;
///
/// let graph = generators::grid(2, 3);
/// let data = TrafficGenerator::new(
///     &graph,
///     SynthConfig { days: 5, seed: 1, ..SynthConfig::small_test() },
/// )
/// .generate();
/// let model = moment_estimate(&graph, &data.history);
/// let rush = SlotOfDay::from_hm(8, 30);
/// assert!(model.mu(rush, RoadId(0)) > 0.0);
/// assert!(model.sigma(rush, RoadId(0)) > 0.0);
/// ```
pub fn moment_estimate(graph: &Graph, history: &HistoryStore) -> RtfModel {
    assert_eq!(history.num_roads(), graph.num_roads(), "history and graph road counts disagree");
    let backfill = RoadBackfill::build(graph, history);
    let slots =
        SlotOfDay::all().map(|t| estimate_slot_with(graph, history, t, &backfill)).collect();
    RtfModel::from_slots(graph.num_roads(), graph.num_edges(), slots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtse_data::{SynthConfig, TrafficGenerator};
    use rtse_graph::generators::path;
    use rtse_graph::RoadId;
    use rtse_math::approx_eq;

    #[test]
    fn recovers_hand_built_history() {
        let g = path(2);
        let mut h = HistoryStore::new(2, 3);
        let t = SlotOfDay(0);
        // road 0: 10, 12, 14 (mean 12, pop std sqrt(8/3))
        // road 1: 20, 24, 28 (perfectly correlated with road 0)
        for (day, (a, b)) in [(10.0, 20.0), (12.0, 24.0), (14.0, 28.0)].iter().enumerate() {
            h.set(day, t, RoadId(0), *a);
            h.set(day, t, RoadId(1), *b);
        }
        let p = moment_estimate_slot(&g, &h, t);
        assert!(approx_eq(p.mu[0], 12.0, 1e-12));
        assert!(approx_eq(p.mu[1], 24.0, 1e-12));
        assert!(approx_eq(p.sigma[0], (8.0f64 / 3.0).sqrt(), 1e-12));
        assert!(approx_eq(p.rho[0], RHO_MAX, 1e-12), "perfect correlation clamps to max");
    }

    #[test]
    fn negative_correlation_clamped_to_min() {
        let g = path(2);
        let mut h = HistoryStore::new(2, 3);
        let t = SlotOfDay(5);
        for (day, (a, b)) in [(10.0, 28.0), (12.0, 24.0), (14.0, 20.0)].iter().enumerate() {
            h.set(day, t, RoadId(0), *a);
            h.set(day, t, RoadId(1), *b);
        }
        let p = moment_estimate_slot(&g, &h, t);
        assert_eq!(p.rho[0], RHO_MIN);
    }

    #[test]
    fn constant_road_gets_sigma_floor() {
        let g = path(2);
        let mut h = HistoryStore::new(2, 4);
        let t = SlotOfDay(0);
        for day in 0..4 {
            h.set(day, t, RoadId(0), 55.0);
            h.set(day, t, RoadId(1), 30.0 + day as f64);
        }
        let p = moment_estimate_slot(&g, &h, t);
        assert_eq!(p.sigma[0], SIGMA_MIN);
        assert!(p.sigma[1] > SIGMA_MIN);
    }

    #[test]
    fn full_model_tracks_generator_profiles() {
        let g = path(5);
        let cfg =
            SynthConfig { days: 50, incidents_per_day: 0.0, seed: 3, ..SynthConfig::default() };
        let generator = TrafficGenerator::new(&g, cfg);
        let profiles = generator.profiles().to_vec();
        let ds = generator.generate();
        let model = moment_estimate(&g, &ds.history);
        let t = SlotOfDay::from_hm(12, 0);
        for r in 0..5 {
            let mu = model.mu(t, RoadId::from(r));
            let expect = profiles[r].expected_speed(t);
            assert!((mu - expect).abs() < 3.0, "road {r}: estimated μ {mu} vs profile {expect}");
        }
        // Adjacent correlations should be well above the clamp floor thanks
        // to the generator's spatial diffusion.
        let rho_avg: f64 =
            (0..g.num_edges()).map(|e| model.rho(t, rtse_graph::EdgeId(e as u32))).sum::<f64>()
                / g.num_edges() as f64;
        assert!(rho_avg > 0.2, "average adjacent ρ too low: {rho_avg}");
    }

    #[test]
    #[should_panic(expected = "disagree")]
    fn mismatched_history_rejected() {
        let g = path(3);
        let h = HistoryStore::new(2, 1);
        moment_estimate(&g, &h);
    }
}
