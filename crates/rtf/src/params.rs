//! RTF parameter storage.

use rtse_data::{SlotOfDay, SLOTS_PER_DAY};
use rtse_graph::{EdgeId, Graph, RoadId};

/// Lower clamp for standard deviations: keeps every Gaussian proper and the
/// coordinate updates (Eq. 18) finite even for roads whose history is
/// constant.
pub const SIGMA_MIN: f64 = 0.25;

/// Clamp range for correlation coefficients. The paper constrains
/// `ρ ∈ [0, 1]`; we stay strictly inside so `-ln ρ` path weights and
/// `σ_ij²` remain finite and positive.
pub const RHO_MIN: f64 = 1e-3;
/// Upper clamp for `ρ` (see [`RHO_MIN`]).
pub const RHO_MAX: f64 = 0.999;

/// Parameters of one time slot: `μ`, `σ` per road and `ρ` per edge.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotParams {
    /// Expected speed per road (`μ_i^t`).
    pub mu: Vec<f64>,
    /// Standard deviation per road (`σ_i^t`), clamped to [`SIGMA_MIN`].
    pub sigma: Vec<f64>,
    /// Correlation per edge (`ρ_ij^t`), clamped to `[RHO_MIN, RHO_MAX]`.
    pub rho: Vec<f64>,
}

impl SlotParams {
    /// All-zero-speed parameters with unit variance and mid correlation —
    /// the "small random values" of Alg. 1 are produced by the trainer; this
    /// is the deterministic shell.
    pub fn neutral(num_roads: usize, num_edges: usize) -> Self {
        Self { mu: vec![0.0; num_roads], sigma: vec![1.0; num_roads], rho: vec![0.5; num_edges] }
    }

    /// `μ_ij = μ_i − μ_j` (Eq. 2).
    #[inline]
    pub fn mu_diff(&self, i: RoadId, j: RoadId) -> f64 {
        self.mu[i.index()] - self.mu[j.index()]
    }

    /// `σ_ij² = σ_i² + σ_j² − 2 ρ_ij σ_i σ_j` (Eq. 2), floored at
    /// `SIGMA_MIN²` so downstream divisions are safe.
    #[inline]
    pub fn sigma_diff_sq(&self, i: RoadId, j: RoadId, e: EdgeId) -> f64 {
        let si = self.sigma[i.index()];
        let sj = self.sigma[j.index()];
        let rho = self.rho[e.index()];
        (si * si + sj * sj - 2.0 * rho * si * sj).max(SIGMA_MIN * SIGMA_MIN)
    }

    /// Applies the clamps after a gradient step.
    pub fn clamp(&mut self) {
        for s in &mut self.sigma {
            *s = s.max(SIGMA_MIN);
        }
        for r in &mut self.rho {
            *r = r.clamp(RHO_MIN, RHO_MAX);
        }
    }
}

/// The full trained field: one [`SlotParams`] per slot of the day.
#[derive(Debug, Clone, PartialEq)]
pub struct RtfModel {
    num_roads: usize,
    num_edges: usize,
    slots: Vec<SlotParams>,
}

impl RtfModel {
    /// Builds a model from per-slot parameters.
    ///
    /// # Panics
    /// Panics when any slot's vector lengths disagree with the declared
    /// dimensions or when the number of slots is not [`SLOTS_PER_DAY`].
    pub fn from_slots(num_roads: usize, num_edges: usize, slots: Vec<SlotParams>) -> Self {
        assert_eq!(slots.len(), SLOTS_PER_DAY, "need one SlotParams per slot of day");
        for sp in &slots {
            assert_eq!(sp.mu.len(), num_roads);
            assert_eq!(sp.sigma.len(), num_roads);
            assert_eq!(sp.rho.len(), num_edges);
        }
        Self { num_roads, num_edges, slots }
    }

    /// A neutral (untrained) model matching a graph's dimensions.
    pub fn neutral(graph: &Graph) -> Self {
        let slots = (0..SLOTS_PER_DAY)
            .map(|_| SlotParams::neutral(graph.num_roads(), graph.num_edges()))
            .collect();
        Self { num_roads: graph.num_roads(), num_edges: graph.num_edges(), slots }
    }

    /// Number of roads the model covers.
    pub fn num_roads(&self) -> usize {
        self.num_roads
    }

    /// Number of edges the model covers.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Parameters of one slot.
    #[inline]
    pub fn slot(&self, t: SlotOfDay) -> &SlotParams {
        &self.slots[t.index()]
    }

    /// Mutable parameters of one slot (trainer use).
    #[inline]
    pub fn slot_mut(&mut self, t: SlotOfDay) -> &mut SlotParams {
        &mut self.slots[t.index()]
    }

    /// `μ_i^t`.
    #[inline]
    pub fn mu(&self, t: SlotOfDay, r: RoadId) -> f64 {
        self.slots[t.index()].mu[r.index()]
    }

    /// `σ_i^t` — the paper's periodicity-intensity weight in OCS (Eq. 13).
    #[inline]
    pub fn sigma(&self, t: SlotOfDay, r: RoadId) -> f64 {
        self.slots[t.index()].sigma[r.index()]
    }

    /// `ρ_ij^t` for an edge.
    #[inline]
    pub fn rho(&self, t: SlotOfDay, e: EdgeId) -> f64 {
        self.slots[t.index()].rho[e.index()]
    }

    /// Checks the model's dimensions against a graph.
    pub fn matches_graph(&self, graph: &Graph) -> bool {
        self.num_roads == graph.num_roads() && self.num_edges == graph.num_edges()
    }
}

impl rtse_check::Validate for SlotParams {
    /// Paper contract for one slot: every parameter finite, `σ > 0`
    /// (Section IV defines σ as a standard deviation; the trainer clamps it
    /// to [`SIGMA_MIN`]) and `ρ ∈ [0, 1]` (the paper's stated range —
    /// wider than the trainer's operating clamp `[RHO_MIN, RHO_MAX]`, so a
    /// hand-built model at the boundary still validates).
    fn validate(&self) -> Result<(), rtse_check::InvariantViolation> {
        use rtse_check::{ensure, ensure_finite};
        ensure_finite(&self.mu, "rtf.mu_finite")?;
        ensure_finite(&self.sigma, "rtf.sigma_finite")?;
        ensure_finite(&self.rho, "rtf.rho_finite")?;
        if let Some(i) = self.sigma.iter().position(|&s| s <= 0.0) {
            return Err(rtse_check::InvariantViolation::new(
                "rtf.sigma_positive",
                format!("sigma[{i}] = {} must be > 0", self.sigma[i]),
            ));
        }
        if let Some(e) = self.rho.iter().position(|r| !(0.0..=1.0).contains(r)) {
            return Err(rtse_check::InvariantViolation::new(
                "rtf.rho_range",
                format!("rho[{e}] = {} outside [0, 1]", self.rho[e]),
            ));
        }
        ensure(self.mu.len() == self.sigma.len(), "rtf.slot_dims", || {
            format!("{} mu entries vs {} sigma entries", self.mu.len(), self.sigma.len())
        })
    }
}

impl rtse_check::Validate for RtfModel {
    /// Full-model contract: one slot per slot-of-day, every slot matching
    /// the declared dimensions and satisfying the [`SlotParams`] contract.
    fn validate(&self) -> Result<(), rtse_check::InvariantViolation> {
        use rtse_check::ensure;
        ensure(self.slots.len() == SLOTS_PER_DAY, "rtf.slot_count", || {
            format!("{} slots, expected {SLOTS_PER_DAY}", self.slots.len())
        })?;
        for (t, sp) in self.slots.iter().enumerate() {
            ensure(
                sp.mu.len() == self.num_roads
                    && sp.sigma.len() == self.num_roads
                    && sp.rho.len() == self.num_edges,
                "rtf.model_dims",
                || {
                    format!(
                        "slot {t}: |mu| = {}, |sigma| = {}, |rho| = {} vs declared {} roads / {} edges",
                        sp.mu.len(),
                        sp.sigma.len(),
                        sp.rho.len(),
                        self.num_roads,
                        self.num_edges
                    )
                },
            )?;
            rtse_check::Validate::validate(sp).map_err(|v| {
                rtse_check::InvariantViolation::new(v.invariant, format!("slot {t}: {}", v.detail))
            })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtse_graph::generators::path;

    #[test]
    fn sigma_diff_sq_hand_value() {
        let mut sp = SlotParams::neutral(2, 1);
        sp.sigma = vec![2.0, 3.0];
        sp.rho = vec![0.5];
        // 4 + 9 - 2*0.5*6 = 7
        assert_eq!(sp.sigma_diff_sq(RoadId(0), RoadId(1), EdgeId(0)), 7.0);
        assert_eq!(sp.mu_diff(RoadId(0), RoadId(1)), 0.0);
    }

    #[test]
    fn sigma_diff_sq_floor() {
        let mut sp = SlotParams::neutral(2, 1);
        sp.sigma = vec![1.0, 1.0];
        sp.rho = vec![0.999_999]; // nearly perfectly correlated
        let v = sp.sigma_diff_sq(RoadId(0), RoadId(1), EdgeId(0));
        assert!(v >= SIGMA_MIN * SIGMA_MIN);
    }

    #[test]
    fn clamp_enforces_ranges() {
        let mut sp = SlotParams::neutral(1, 1);
        sp.sigma = vec![-3.0];
        sp.rho = vec![1.7];
        sp.clamp();
        assert_eq!(sp.sigma[0], SIGMA_MIN);
        assert_eq!(sp.rho[0], RHO_MAX);
    }

    #[test]
    fn model_accessors() {
        let g = path(3);
        let mut m = RtfModel::neutral(&g);
        assert!(m.matches_graph(&g));
        let t = SlotOfDay(10);
        m.slot_mut(t).mu[1] = 42.0;
        assert_eq!(m.mu(t, RoadId(1)), 42.0);
        assert_eq!(m.sigma(t, RoadId(0)), 1.0);
        assert_eq!(m.rho(t, EdgeId(1)), 0.5);
    }

    #[test]
    #[should_panic(expected = "one SlotParams per slot")]
    fn from_slots_wrong_count() {
        RtfModel::from_slots(1, 0, vec![SlotParams::neutral(1, 0)]);
    }
}
