//! Incremental (streaming) model maintenance.
//!
//! The offline stage is not a one-off: every midnight a deployment has one
//! more day of records. Re-reading the whole history to refresh the model
//! is `O(days)`; [`IncrementalModel`] folds each new day in `O(1)` per
//! parameter using single-pass moment accumulators
//! ([`rtse_math::OnlineStats`] / [`rtse_math::OnlineCov`]), and snapshots
//! an [`RtfModel`] identical (up to float associativity) to a batch
//! [`crate::moment_estimate`] over the same records.

use crate::params::{RtfModel, SlotParams, RHO_MAX, RHO_MIN, SIGMA_MIN};
use rtse_data::{HistoryStore, SlotOfDay, SLOTS_PER_DAY};
use rtse_graph::Graph;
use rtse_math::{OnlineCov, OnlineStats};

/// Streaming RTF estimator: per-(road, slot) mean/variance accumulators
/// and per-(edge, slot) covariance accumulators.
pub struct IncrementalModel {
    num_roads: usize,
    num_edges: usize,
    /// `slot * num_roads + road`
    nodes: Vec<OnlineStats>,
    /// `slot * num_edges + edge`
    edges: Vec<OnlineCov>,
    days_seen: usize,
}

impl IncrementalModel {
    /// Empty accumulators for a graph.
    pub fn new(graph: &Graph) -> Self {
        Self {
            num_roads: graph.num_roads(),
            num_edges: graph.num_edges(),
            nodes: vec![OnlineStats::new(); SLOTS_PER_DAY * graph.num_roads()],
            edges: vec![OnlineCov::new(); SLOTS_PER_DAY * graph.num_edges()],
            days_seen: 0,
        }
    }

    /// Days folded in so far.
    pub fn days_seen(&self) -> usize {
        self.days_seen
    }

    /// Folds one full day of snapshots in (missing cells skipped; an edge
    /// pair needs both endpoints present).
    ///
    /// # Panics
    /// Panics when the store's road count disagrees with the graph's.
    pub fn ingest_day(&mut self, graph: &Graph, store: &HistoryStore, day: usize) {
        assert_eq!(store.num_roads(), self.num_roads, "store/graph mismatch");
        for slot in SlotOfDay::all() {
            let row = store.snapshot(day, slot);
            let node_base = slot.index() * self.num_roads;
            for (r, &v) in row.iter().enumerate() {
                if !v.is_nan() {
                    self.nodes[node_base + r].push(v);
                }
            }
            let edge_base = slot.index() * self.num_edges;
            for (e, &(a, b)) in graph.edges().iter().enumerate() {
                let (va, vb) = (row[a.index()], row[b.index()]);
                if !va.is_nan() && !vb.is_nan() {
                    self.edges[edge_base + e].push(va, vb);
                }
            }
        }
        self.days_seen += 1;
    }

    /// Snapshots the current accumulators into a full model (same clamps
    /// as the batch moment estimator).
    pub fn snapshot(&self) -> RtfModel {
        let slots = (0..SLOTS_PER_DAY)
            .map(|t| {
                let node_base = t * self.num_roads;
                let edge_base = t * self.num_edges;
                let mut p = SlotParams::neutral(self.num_roads, self.num_edges);
                for r in 0..self.num_roads {
                    let acc = &self.nodes[node_base + r];
                    p.mu[r] = acc.mean();
                    p.sigma[r] = acc.population_std().max(SIGMA_MIN);
                }
                for e in 0..self.num_edges {
                    p.rho[e] = self.edges[edge_base + e].pearson().clamp(RHO_MIN, RHO_MAX);
                }
                p
            })
            .collect();
        RtfModel::from_slots(self.num_roads, self.num_edges, slots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moments::moment_estimate;
    use rtse_data::{SynthConfig, TrafficGenerator};
    use rtse_graph::generators::grid;
    use rtse_graph::{EdgeId, RoadId};

    #[test]
    fn streaming_matches_batch() {
        let graph = grid(2, 3);
        let ds = TrafficGenerator::new(
            &graph,
            SynthConfig { days: 7, seed: 3, ..SynthConfig::small_test() },
        )
        .generate();
        let batch = moment_estimate(&graph, &ds.history);
        let mut inc = IncrementalModel::new(&graph);
        for day in 0..7 {
            inc.ingest_day(&graph, &ds.history, day);
        }
        assert_eq!(inc.days_seen(), 7);
        let streamed = inc.snapshot();
        for t in [SlotOfDay(0), SlotOfDay(100), SlotOfDay(287)] {
            for r in graph.road_ids() {
                assert!(
                    (batch.mu(t, r) - streamed.mu(t, r)).abs() < 1e-9,
                    "μ mismatch at slot {t:?} road {r}"
                );
                assert!((batch.sigma(t, r) - streamed.sigma(t, r)).abs() < 1e-9);
            }
            for e in 0..graph.num_edges() {
                assert!(
                    (batch.rho(t, EdgeId(e as u32)) - streamed.rho(t, EdgeId(e as u32))).abs()
                        < 1e-9
                );
            }
        }
    }

    #[test]
    fn model_improves_as_days_arrive() {
        // With one day the σ floor dominates; more days give real spread.
        let graph = grid(2, 2);
        let ds = TrafficGenerator::new(
            &graph,
            SynthConfig { days: 10, incidents_per_day: 0.0, seed: 5, ..SynthConfig::default() },
        )
        .generate();
        let mut inc = IncrementalModel::new(&graph);
        inc.ingest_day(&graph, &ds.history, 0);
        let after_one = inc.snapshot();
        for day in 1..10 {
            inc.ingest_day(&graph, &ds.history, day);
        }
        let after_ten = inc.snapshot();
        let t = SlotOfDay::from_hm(8, 30);
        // One day: σ at the floor everywhere (single sample has zero std).
        assert!(after_one
            .slot(t)
            .sigma
            .iter()
            .all(|&s| (s - crate::params::SIGMA_MIN).abs() < 1e-12));
        assert!(after_ten.slot(t).sigma.iter().any(|&s| s > crate::params::SIGMA_MIN));
    }

    #[test]
    fn missing_cells_are_skipped_consistently() {
        let graph = grid(2, 2);
        let mut store = HistoryStore::new(4, 3);
        let t = SlotOfDay(10);
        // Road 0 present all days; road 1 present on day 1 only.
        store.set(0, t, RoadId(0), 10.0);
        store.set(1, t, RoadId(0), 12.0);
        store.set(2, t, RoadId(0), 14.0);
        store.set(1, t, RoadId(1), 20.0);
        let mut inc = IncrementalModel::new(&graph);
        for day in 0..3 {
            inc.ingest_day(&graph, &store, day);
        }
        let streamed = inc.snapshot();
        let batch = moment_estimate(&graph, &store);
        assert!((streamed.mu(t, RoadId(0)) - batch.mu(t, RoadId(0))).abs() < 1e-12);
        assert!((streamed.mu(t, RoadId(1)) - 20.0).abs() < 1e-12);
    }
}
