//! Save/load of trained RTF models.
//!
//! The offline stage is expensive relative to a query, so trained models
//! are checkpointed as JSON (the only place serde enters the system; see
//! DESIGN.md for the dependency justification).

use crate::params::RtfModel;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;

/// Error covering both I/O and (de)serialization failures.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Malformed or incompatible model file.
    Format(serde_json::Error),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::Format(e) => write!(f, "model format error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Format(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Format(e)
    }
}

/// Writes a model to a JSON file.
pub fn save_model(model: &RtfModel, path: &Path) -> Result<(), PersistError> {
    let file = BufWriter::new(File::create(path)?);
    serde_json::to_writer(file, model)?;
    Ok(())
}

/// Reads a model back from a JSON file.
pub fn load_model(path: &Path) -> Result<RtfModel, PersistError> {
    let file = BufReader::new(File::open(path)?);
    Ok(serde_json::from_reader(file)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SlotParams;
    use rtse_data::SLOTS_PER_DAY;

    fn tiny_model() -> RtfModel {
        let slots = (0..SLOTS_PER_DAY)
            .map(|t| SlotParams {
                mu: vec![t as f64, 2.0 * t as f64],
                sigma: vec![1.0, 2.0],
                rho: vec![0.5],
            })
            .collect();
        RtfModel::from_slots(2, 1, slots)
    }

    #[test]
    fn round_trip() {
        let dir = std::env::temp_dir().join("rtse_rtf_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        let model = tiny_model();
        save_model(&model, &path).unwrap();
        let back = load_model(&path).unwrap();
        assert_eq!(model, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = load_model(Path::new("/nonexistent/rtse/model.json")).unwrap_err();
        assert!(matches!(err, PersistError::Io(_)));
    }

    #[test]
    fn load_garbage_is_format_error() {
        let dir = std::env::temp_dir().join("rtse_rtf_persist_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.json");
        std::fs::write(&path, b"{not json").unwrap();
        let err = load_model(&path).unwrap_err();
        assert!(matches!(err, PersistError::Format(_)));
        std::fs::remove_file(&path).ok();
    }
}
