//! Save/load of trained RTF models.
//!
//! The offline stage is expensive relative to a query, so trained models
//! are checkpointed as JSON. The format is hand-rolled (see [`crate::json`]
//! — the build environment has no crates.io access, and the schema is one
//! fixed shape):
//!
//! ```json
//! {"num_roads": N, "num_edges": M,
//!  "slots": [{"mu": [...], "sigma": [...], "rho": [...]}, ...]}
//! ```
//!
//! Floats round-trip exactly (shortest-roundtrip display on write, exact
//! parse on read), which `saved_model_answers_identically` in
//! `tests/persistence.rs` relies on.

use crate::json::{self, Json};
use crate::params::{RtfModel, SlotParams};
use rtse_data::SLOTS_PER_DAY;
use std::fmt::Write as _;
use std::path::Path;

/// Error covering both I/O and (de)serialization failures.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Malformed or incompatible model file.
    Format(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::Format(e) => write!(f, "model format error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Format(_) => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<String> for PersistError {
    fn from(e: String) -> Self {
        PersistError::Format(e)
    }
}

/// Serializes a model to its JSON checkpoint text.
pub fn model_to_json(model: &RtfModel) -> String {
    // ~25 bytes per float is a comfortable overestimate.
    let mut out = String::with_capacity(
        32 + SLOTS_PER_DAY * 64 + SLOTS_PER_DAY * (2 * model.num_roads() + model.num_edges()) * 25,
    );
    let _ = write!(
        out,
        "{{\"num_roads\":{},\"num_edges\":{},\"slots\":[",
        model.num_roads(),
        model.num_edges()
    );
    for t in 0..SLOTS_PER_DAY {
        if t > 0 {
            out.push(',');
        }
        let sp = model.slot(rtse_data::SlotOfDay(t as u16));
        out.push_str("{\"mu\":");
        json::write_f64_array(&mut out, &sp.mu);
        out.push_str(",\"sigma\":");
        json::write_f64_array(&mut out, &sp.sigma);
        out.push_str(",\"rho\":");
        json::write_f64_array(&mut out, &sp.rho);
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Parses a model from its JSON checkpoint text.
pub fn model_from_json(text: &str) -> Result<RtfModel, PersistError> {
    let doc = json::parse(text).map_err(|e| PersistError::Format(e.to_string()))?;
    let obj = doc.as_obj("model")?;
    let num_roads = usize_field(obj, "num_roads")?;
    let num_edges = usize_field(obj, "num_edges")?;
    let slots_json = json::field(obj, "slots")?.as_arr("slots")?;
    if slots_json.len() != SLOTS_PER_DAY {
        return Err(PersistError::Format(format!(
            "expected {} slots, found {}",
            SLOTS_PER_DAY,
            slots_json.len()
        )));
    }
    let mut slots = Vec::with_capacity(SLOTS_PER_DAY);
    for (t, sj) in slots_json.iter().enumerate() {
        let so = sj.as_obj("slot")?;
        let sp = SlotParams {
            mu: json::read_f64_array(json::field(so, "mu")?, "mu")?,
            sigma: json::read_f64_array(json::field(so, "sigma")?, "sigma")?,
            rho: json::read_f64_array(json::field(so, "rho")?, "rho")?,
        };
        if sp.mu.len() != num_roads || sp.sigma.len() != num_roads || sp.rho.len() != num_edges {
            return Err(PersistError::Format(format!(
                "slot {t}: lengths (mu {}, sigma {}, rho {}) disagree with declared \
                 dimensions (roads {num_roads}, edges {num_edges})",
                sp.mu.len(),
                sp.sigma.len(),
                sp.rho.len()
            )));
        }
        slots.push(sp);
    }
    Ok(RtfModel::from_slots(num_roads, num_edges, slots))
}

fn usize_field(
    obj: &std::collections::BTreeMap<String, Json>,
    name: &str,
) -> Result<usize, PersistError> {
    let x = json::field(obj, name)?.as_num(name)?;
    if x < 0.0 || x.fract() != 0.0 || x > u32::MAX as f64 {
        return Err(PersistError::Format(format!("field `{name}` is not a valid count: {x}")));
    }
    Ok(x as usize)
}

/// Writes a model to a JSON file.
pub fn save_model(model: &RtfModel, path: &Path) -> Result<(), PersistError> {
    std::fs::write(path, model_to_json(model))?;
    Ok(())
}

/// Reads a model back from a JSON file.
pub fn load_model(path: &Path) -> Result<RtfModel, PersistError> {
    model_from_json(&std::fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SlotParams;
    use rtse_data::SLOTS_PER_DAY;

    fn tiny_model() -> RtfModel {
        let slots = (0..SLOTS_PER_DAY)
            .map(|t| SlotParams {
                mu: vec![t as f64, 2.0 * t as f64],
                sigma: vec![1.0, 2.0],
                rho: vec![0.5],
            })
            .collect();
        RtfModel::from_slots(2, 1, slots)
    }

    #[test]
    fn round_trip() {
        let dir = std::env::temp_dir().join("rtse_rtf_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        let model = tiny_model();
        save_model(&model, &path).unwrap();
        let back = load_model(&path).unwrap();
        assert_eq!(model, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn text_round_trip_without_fs() {
        let model = tiny_model();
        let text = model_to_json(&model);
        assert_eq!(model_from_json(&text).unwrap(), model);
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = load_model(Path::new("/nonexistent/rtse/model.json")).unwrap_err();
        assert!(matches!(err, PersistError::Io(_)));
    }

    #[test]
    fn load_garbage_is_format_error() {
        let dir = std::env::temp_dir().join("rtse_rtf_persist_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.json");
        std::fs::write(&path, b"{not json").unwrap();
        let err = load_model(&path).unwrap_err();
        assert!(matches!(err, PersistError::Format(_)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dimension_mismatch_is_format_error() {
        let model = tiny_model();
        let text = model_to_json(&model).replace("\"num_roads\":2", "\"num_roads\":3");
        let err = model_from_json(&text).unwrap_err();
        assert!(matches!(err, PersistError::Format(_)), "{err}");
    }

    #[test]
    fn wrong_slot_count_is_format_error() {
        let err = model_from_json("{\"num_roads\":0,\"num_edges\":0,\"slots\":[]}").unwrap_err();
        assert!(matches!(err, PersistError::Format(_)), "{err}");
    }
}
