//! Joint log-likelihood of the RTF (Eq. 5), in two flavours.
//!
//! * [`config_log_likelihood`] — Eq. (5) verbatim, as a function of a speed
//!   configuration `V_R^t` with parameters fixed. This is the objective GSP
//!   ascends (the normalizers are constant in `v`, so they are omitted just
//!   as in the paper).
//! * [`data_log_likelihood`] — the training objective: Eq. (5) summed over
//!   historical days and **including** the Gaussian log-normalizers
//!   (`-ln σ²` terms), averaged per day. See the crate docs for why the
//!   normalizers must be restored.

use crate::params::SlotParams;
use rtse_graph::{Graph, RoadId};

/// Eq. (5) as a function of one full speed configuration `values`
/// (`values[i]` = `v_i^t`). Parameters fixed; normalizer-free exactly like
/// the paper. Higher is more likely.
///
/// # Panics
/// Panics if `values.len()` differs from the graph's road count.
pub fn config_log_likelihood(graph: &Graph, params: &SlotParams, values: &[f64]) -> f64 {
    assert_eq!(values.len(), graph.num_roads(), "configuration size mismatch");
    let mut ll = 0.0;
    for i in graph.road_ids() {
        let vi = values[i.index()];
        let si = params.sigma[i.index()];
        let r = vi - params.mu[i.index()];
        ll -= r * r / (si * si);
    }
    // Each undirected edge contributes once (standard GMRF convention; the
    // paper's Σ_i Σ_{j∈n(i)} notation would double-count, which would make
    // its own Eq. (18) no longer the coordinate argmax).
    for (eidx, &(i, j)) in graph.edges().iter().enumerate() {
        let e = rtse_graph::EdgeId(eidx as u32);
        let ediff = (values[i.index()] - values[j.index()]) - params.mu_diff(i, j);
        ll -= ediff * ediff / params.sigma_diff_sq(i, j, e);
    }
    ll
}

/// Training objective: per-day average of the normalized joint likelihood
/// over historical snapshots of one slot.
///
/// `snapshots` holds one full-network row per day; `NaN` entries are
/// missing observations and are skipped (an edge term needs both endpoints
/// present).
pub fn data_log_likelihood(graph: &Graph, params: &SlotParams, snapshots: &[&[f64]]) -> f64 {
    if snapshots.is_empty() {
        return 0.0;
    }
    let mut ll = 0.0;
    for row in snapshots {
        assert_eq!(row.len(), graph.num_roads(), "snapshot size mismatch");
        for i in graph.road_ids() {
            let vi = row[i.index()];
            if vi.is_nan() {
                continue;
            }
            let si = params.sigma[i.index()];
            let r = vi - params.mu[i.index()];
            ll -= r * r / (si * si) + (si * si).ln();
        }
        for (eidx, &(i, j)) in graph.edges().iter().enumerate() {
            let (vi, vj) = (row[i.index()], row[j.index()]);
            if vi.is_nan() || vj.is_nan() {
                continue;
            }
            let e = rtse_graph::EdgeId(eidx as u32);
            let u = params.sigma_diff_sq(i, j, e);
            let ediff = (vi - vj) - params.mu_diff(i, j);
            ll -= ediff * ediff / u + u.ln();
        }
    }
    ll / snapshots.len() as f64
}

/// The optimal single-variable update of Eq. (18): the value of `v_i`
/// maximizing Eq. (5) with every other variable fixed.
///
/// Exposed here (rather than only in the GSP crate) because it is purely a
/// property of the model; GSP schedules *when* to apply it.
pub fn optimal_update(graph: &Graph, params: &SlotParams, values: &[f64], i: RoadId) -> f64 {
    let si = params.sigma[i.index()];
    let mut num = params.mu[i.index()] / (si * si);
    let mut den = 1.0 / (si * si);
    for &(j, e) in graph.neighbors(i) {
        let u = params.sigma_diff_sq(i, j, e);
        num += (values[j.index()] + params.mu_diff(i, j)) / u;
        den += 1.0 / u;
    }
    num / den
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtse_graph::generators::path;
    use rtse_math::approx_eq;

    fn fixture() -> (Graph, SlotParams) {
        let g = path(3);
        let mut p = SlotParams::neutral(3, 2);
        p.mu = vec![50.0, 40.0, 45.0];
        p.sigma = vec![2.0, 5.0, 3.0];
        p.rho = vec![0.8, 0.6];
        (g, p)
    }

    #[test]
    fn config_likelihood_peaks_at_mean() {
        let (g, p) = fixture();
        let at_mean = config_log_likelihood(&g, &p, &p.mu.clone());
        let shifted = config_log_likelihood(&g, &p, &[55.0, 40.0, 45.0]);
        assert!(at_mean > shifted);
        // At the mean every residual and difference-residual is zero.
        assert!(approx_eq(at_mean, 0.0, 1e-12));
    }

    #[test]
    fn config_likelihood_penalizes_broken_correlation() {
        let (g, p) = fixture();
        // Shift roads 0 and 1 jointly (preserving the difference) vs
        // breaking the difference. Joint shift keeps edge terms at zero for
        // the 0-1 edge.
        let joint = config_log_likelihood(&g, &p, &[52.0, 42.0, 45.0]);
        let broken = config_log_likelihood(&g, &p, &[52.0, 38.0, 45.0]);
        assert!(joint > broken);
    }

    #[test]
    fn optimal_update_is_argmax() {
        let (g, p) = fixture();
        let mut values = vec![48.0, 41.0, 44.0];
        let best = optimal_update(&g, &p, &values, RoadId(1));
        let ll_best = {
            values[1] = best;
            config_log_likelihood(&g, &p, &values)
        };
        for delta in [-1.0, -0.1, 0.1, 1.0] {
            values[1] = best + delta;
            assert!(config_log_likelihood(&g, &p, &values) < ll_best);
        }
    }

    #[test]
    fn isolated_road_update_is_its_mean() {
        // A road with no neighbors must be pulled straight to μ.
        let mut b = rtse_graph::GraphBuilder::new();
        b.add_road(rtse_graph::RoadClass::Local, (0.0, 0.0));
        let g = b.build();
        let p = SlotParams { mu: vec![33.0], sigma: vec![2.0], rho: vec![] };
        let v = [10.0];
        assert!(approx_eq(optimal_update(&g, &p, &v, RoadId(0)), 33.0, 1e-12));
    }

    #[test]
    fn data_likelihood_prefers_true_mean() {
        let (g, p) = fixture();
        let day1 = [50.5, 40.5, 45.5];
        let day2 = [49.5, 39.5, 44.5];
        let snaps: Vec<&[f64]> = vec![&day1, &day2];
        let good = data_log_likelihood(&g, &p, &snaps);
        let mut bad_params = p.clone();
        bad_params.mu = vec![60.0, 30.0, 50.0];
        let bad = data_log_likelihood(&g, &p, &snaps);
        let bad2 = data_log_likelihood(&g, &bad_params, &snaps);
        assert!(approx_eq(good, bad, 1e-12)); // same params twice
        assert!(good > bad2);
    }

    #[test]
    fn missing_values_are_skipped() {
        let (g, p) = fixture();
        let full = [50.0, 40.0, 45.0];
        let holey = [50.0, f64::NAN, 45.0];
        let snaps_full: Vec<&[f64]> = vec![&full];
        let snaps_holey: Vec<&[f64]> = vec![&holey];
        let lf = data_log_likelihood(&g, &p, &snaps_full);
        let lh = data_log_likelihood(&g, &p, &snaps_holey);
        assert!(lf.is_finite() && lh.is_finite());
        assert!(lh > lf, "fewer (zero-residual but normalized) terms");
    }

    #[test]
    fn empty_snapshots_zero() {
        let (g, p) = fixture();
        assert_eq!(data_log_likelihood(&g, &p, &[]), 0.0);
    }
}
