//! Analytic gradients of the training objective.
//!
//! The trainer (Alg. 1) ascends `∂L/∂μ_i`, `∂L/∂σ_i`, `∂L/∂ρ_ij` of the
//! per-day-averaged, normalizer-restored likelihood
//! (see [`crate::likelihood::data_log_likelihood`]). Derivations, with
//! `r_i = v_i − μ_i`, `e_ij = (v_i − v_j) − (μ_i − μ_j)`,
//! `u_ij = σ_ij² = σ_i² + σ_j² − 2ρσ_iσ_j` (each undirected edge counted
//! once, matching the likelihood):
//!
//! ```text
//! ∂L/∂μ_i  = avg_d [ 2 r_i/σ_i²  + Σ_j 2 e_ij/u_ij ]
//! ∂L/∂σ_i  = avg_d [ 2 r_i²/σ_i³ − 2/σ_i
//!                    + Σ_j (e_ij²/u_ij² − 1/u_ij)(2σ_i − 2ρσ_j) ]
//! ∂L/∂ρ_ij = avg_d [ (e_ij²/u_ij² − 1/u_ij)(−2σ_iσ_j) ]
//! ```
//!
//! All three are verified against central finite differences in the tests.

use crate::params::SlotParams;
use rtse_graph::Graph;

/// Gradient of the training objective w.r.t. all slot parameters, averaged
/// over the day snapshots (NaN = missing, skipped consistently with the
/// likelihood).
#[derive(Debug, Clone)]
pub struct SlotGradient {
    /// `∂L/∂μ_i` per road.
    pub d_mu: Vec<f64>,
    /// `∂L/∂σ_i` per road.
    pub d_sigma: Vec<f64>,
    /// `∂L/∂ρ_ij` per edge.
    pub d_rho: Vec<f64>,
}

impl SlotGradient {
    /// Maximum absolute component across all three families.
    pub fn max_abs(&self) -> f64 {
        let m = |v: &[f64]| v.iter().fold(0.0_f64, |m, x| m.max(x.abs()));
        m(&self.d_mu).max(m(&self.d_sigma)).max(m(&self.d_rho))
    }

    /// Maximum absolute `μ` gradient — the convergence metric the paper's
    /// Fig. 5 tracks.
    pub fn max_abs_mu(&self) -> f64 {
        self.d_mu.iter().fold(0.0_f64, |m, x| m.max(x.abs()))
    }
}

/// Computes the full gradient for one slot.
pub fn slot_gradient(graph: &Graph, params: &SlotParams, snapshots: &[&[f64]]) -> SlotGradient {
    let n = graph.num_roads();
    let m = graph.num_edges();
    let mut g = SlotGradient { d_mu: vec![0.0; n], d_sigma: vec![0.0; n], d_rho: vec![0.0; m] };
    if snapshots.is_empty() {
        return g;
    }
    for row in snapshots {
        debug_assert_eq!(row.len(), n);
        // Node terms.
        for i in graph.road_ids() {
            let vi = row[i.index()];
            if vi.is_nan() {
                continue;
            }
            let si = params.sigma[i.index()];
            let r = vi - params.mu[i.index()];
            g.d_mu[i.index()] += 2.0 * r / (si * si);
            g.d_sigma[i.index()] += 2.0 * r * r / (si * si * si) - 2.0 / si;
        }
        // Edge terms: iterate each undirected edge once, apply to both ends.
        for (eidx, &(i, j)) in graph.edges().iter().enumerate() {
            let (vi, vj) = (row[i.index()], row[j.index()]);
            if vi.is_nan() || vj.is_nan() {
                continue;
            }
            let e = rtse_graph::EdgeId(eidx as u32);
            let u = params.sigma_diff_sq(i, j, e);
            let ediff = (vi - vj) - params.mu_diff(i, j);
            // μ gradient: 2 e/u on i, −2 e/u on j (e_ji = −e_ij).
            g.d_mu[i.index()] += 2.0 * ediff / u;
            g.d_mu[j.index()] -= 2.0 * ediff / u;
            // Shared factor for variance-affecting parameters.
            let shared = ediff * ediff / (u * u) - 1.0 / u;
            let (si, sj) = (params.sigma[i.index()], params.sigma[j.index()]);
            let rho = params.rho[e.index()];
            g.d_sigma[i.index()] += shared * (2.0 * si - 2.0 * rho * sj);
            g.d_sigma[j.index()] += shared * (2.0 * sj - 2.0 * rho * si);
            g.d_rho[e.index()] += shared * (-2.0 * si * sj);
        }
    }
    let scale = 1.0 / snapshots.len() as f64;
    for v in g.d_mu.iter_mut().chain(g.d_sigma.iter_mut()).chain(g.d_rho.iter_mut()) {
        *v *= scale;
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::likelihood::data_log_likelihood;
    use rtse_graph::generators::{grid, path};

    fn numeric_grad(
        graph: &Graph,
        params: &SlotParams,
        snaps: &[&[f64]],
        poke: impl Fn(&mut SlotParams, f64),
    ) -> f64 {
        let h = 1e-6;
        let mut plus = params.clone();
        poke(&mut plus, h);
        let mut minus = params.clone();
        poke(&mut minus, -h);
        (data_log_likelihood(graph, &plus, snaps) - data_log_likelihood(graph, &minus, snaps))
            / (2.0 * h)
    }

    fn fixture() -> (Graph, SlotParams, Vec<Vec<f64>>) {
        let g = path(4);
        let params = SlotParams {
            mu: vec![50.0, 42.0, 47.0, 39.0],
            sigma: vec![2.0, 4.0, 3.0, 5.0],
            rho: vec![0.7, 0.5, 0.3],
        };
        let days = vec![
            vec![51.0, 41.0, 48.0, 37.0],
            vec![48.5, 44.0, 45.0, 41.0],
            vec![50.2, 42.3, 47.8, 38.6],
        ];
        (g, params, days)
    }

    #[test]
    fn matches_finite_differences() {
        let (g, params, days) = fixture();
        let snaps: Vec<&[f64]> = days.iter().map(|d| d.as_slice()).collect();
        let grad = slot_gradient(&g, &params, &snaps);
        for i in 0..4 {
            let num = numeric_grad(&g, &params, &snaps, |p, h| p.mu[i] += h);
            assert!((grad.d_mu[i] - num).abs() < 1e-4, "d_mu[{i}]: {} vs {num}", grad.d_mu[i]);
            let num = numeric_grad(&g, &params, &snaps, |p, h| p.sigma[i] += h);
            assert!(
                (grad.d_sigma[i] - num).abs() < 1e-4,
                "d_sigma[{i}]: {} vs {num}",
                grad.d_sigma[i]
            );
        }
        for e in 0..3 {
            let num = numeric_grad(&g, &params, &snaps, |p, h| p.rho[e] += h);
            assert!((grad.d_rho[e] - num).abs() < 1e-4, "d_rho[{e}]: {} vs {num}", grad.d_rho[e]);
        }
    }

    #[test]
    fn matches_finite_differences_on_grid_with_missing() {
        let g = grid(2, 3);
        let params = SlotParams {
            mu: vec![30.0, 35.0, 40.0, 32.0, 37.0, 42.0],
            sigma: vec![1.5, 2.5, 3.5, 2.0, 3.0, 4.0],
            rho: vec![0.6; g.num_edges()],
        };
        let day1 = vec![31.0, f64::NAN, 39.0, 33.0, 36.0, 44.0];
        let day2 = vec![29.0, 36.0, 41.0, f64::NAN, 38.0, 40.0];
        let snaps: Vec<&[f64]> = vec![&day1, &day2];
        let grad = slot_gradient(&g, &params, &snaps);
        for i in 0..6 {
            let num = numeric_grad(&g, &params, &snaps, |p, h| p.mu[i] += h);
            assert!((grad.d_mu[i] - num).abs() < 1e-4, "d_mu[{i}]");
            let num = numeric_grad(&g, &params, &snaps, |p, h| p.sigma[i] += h);
            assert!((grad.d_sigma[i] - num).abs() < 1e-4, "d_sigma[{i}]");
        }
        for e in 0..g.num_edges() {
            let num = numeric_grad(&g, &params, &snaps, |p, h| p.rho[e] += h);
            assert!((grad.d_rho[e] - num).abs() < 1e-4, "d_rho[{e}]");
        }
    }

    #[test]
    fn zero_at_moment_estimates() {
        // With σ² = mean r² and u = mean e² the gradient should vanish:
        // use a symmetric two-day sample around the mean.
        let g = path(2);
        let day1 = vec![52.0, 38.0];
        let day2 = vec![48.0, 42.0];
        let mu = vec![50.0, 40.0];
        // r² = 4 every day -> σ = 2. e: day1 (52-38)-10=4, day2 -4 -> u = 16.
        // u = σi²+σj²-2ρσiσj = 8-8ρ = 16 → ρ = -1, out of range; pick a
        // sample with positive correlation instead.
        let day1b = vec![52.0, 42.0];
        let day2b = vec![48.0, 38.0];
        // e: (52-42)-10 = 0, (48-38)-10 = 0 -> u* floor… choose e nonzero:
        let _ = (day1, day2);
        // r² = 4 -> σ = 2; e = 0 both days -> optimal u -> 0 but clamped;
        // instead verify only μ gradient vanishes at the sample mean.
        let params = SlotParams { mu, sigma: vec![2.0, 2.0], rho: vec![0.9] };
        let snaps: Vec<&[f64]> = vec![&day1b, &day2b];
        let grad = slot_gradient(&g, &params, &snaps);
        assert!(grad.d_mu[0].abs() < 1e-9, "μ gradient at sample mean: {}", grad.d_mu[0]);
        assert!(grad.d_mu[1].abs() < 1e-9);
    }

    #[test]
    fn empty_snapshots_zero_gradient() {
        let (g, params, _) = fixture();
        let grad = slot_gradient(&g, &params, &[]);
        assert_eq!(grad.max_abs(), 0.0);
    }

    #[test]
    fn max_abs_mu_tracks_mu_only() {
        let g = path(2);
        let params = SlotParams { mu: vec![0.0, 0.0], sigma: vec![1.0, 1.0], rho: vec![0.5] };
        let day = vec![10.0, 10.0];
        let snaps: Vec<&[f64]> = vec![&day];
        let grad = slot_gradient(&g, &params, &snaps);
        assert!(grad.max_abs_mu() > 0.0);
        assert!(grad.max_abs() >= grad.max_abs_mu());
    }
}
