//! Model diagnostics: does a trained RTF actually describe held-out data?
//!
//! Two checks a deployment should run before trusting the offline stage:
//!
//! * **held-out likelihood** — the per-record average of the (normalized)
//!   node log-density on a day the trainer never saw; higher is better and
//!   comparable across models on the same data;
//! * **calibration** — the fraction of held-out records within `z` standard
//!   deviations of the slot mean. A well-calibrated Gaussian model puts
//!   ~68% within 1σ and ~95% within 2σ; gross deviations mean σ is mis-fit.

use crate::params::RtfModel;
use rtse_data::{HistoryStore, SlotOfDay};
use rtse_graph::Graph;

/// Diagnostics over one held-out store.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelDiagnostics {
    /// Average per-record node log-density (with normalizer).
    pub avg_log_density: f64,
    /// Fraction of records within 1σ of the slot mean.
    pub coverage_1sigma: f64,
    /// Fraction of records within 2σ of the slot mean.
    pub coverage_2sigma: f64,
    /// Records scored.
    pub count: usize,
}

impl ModelDiagnostics {
    /// Loose Gaussian-calibration acceptance test: the 1σ/2σ coverages are
    /// within `slack` of their nominal 68% / 95%.
    pub fn is_calibrated(&self, slack: f64) -> bool {
        (self.coverage_1sigma - 0.6827).abs() <= slack
            && (self.coverage_2sigma - 0.9545).abs() <= slack
    }
}

/// Scores a model on a (held-out) history store.
///
/// # Panics
/// Panics when dimensions disagree.
pub fn evaluate_model(graph: &Graph, model: &RtfModel, heldout: &HistoryStore) -> ModelDiagnostics {
    assert_eq!(heldout.num_roads(), graph.num_roads(), "store/graph mismatch");
    assert!(model.matches_graph(graph), "model/graph mismatch");
    let mut log_density_sum = 0.0;
    let mut within_1 = 0usize;
    let mut within_2 = 0usize;
    let mut count = 0usize;
    const LN_2PI: f64 = 1.8378770664093453;
    for day in 0..heldout.num_days() {
        for slot in SlotOfDay::all() {
            let params = model.slot(slot);
            let row = heldout.snapshot(day, slot);
            for (i, &v) in row.iter().enumerate() {
                if v.is_nan() {
                    continue;
                }
                let mu = params.mu[i];
                let sigma = params.sigma[i];
                let z = (v - mu).abs() / sigma;
                log_density_sum += -0.5 * (z * z + LN_2PI) - sigma.ln();
                within_1 += usize::from(z <= 1.0);
                within_2 += usize::from(z <= 2.0);
                count += 1;
            }
        }
    }
    if count == 0 {
        return ModelDiagnostics {
            avg_log_density: 0.0,
            coverage_1sigma: 0.0,
            coverage_2sigma: 0.0,
            count: 0,
        };
    }
    ModelDiagnostics {
        avg_log_density: log_density_sum / count as f64,
        coverage_1sigma: within_1 as f64 / count as f64,
        coverage_2sigma: within_2 as f64 / count as f64,
        count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moments::moment_estimate;
    use rtse_data::{SynthConfig, TrafficGenerator};
    use rtse_graph::generators::grid;

    fn world() -> (Graph, rtse_data::SynthDataset) {
        let graph = grid(3, 4);
        let ds = TrafficGenerator::new(
            &graph,
            SynthConfig { days: 25, incidents_per_day: 0.0, seed: 2, ..SynthConfig::default() },
        )
        .generate();
        (graph, ds)
    }

    #[test]
    fn trained_model_is_roughly_calibrated_on_heldout_day() {
        let (graph, ds) = world();
        let model = moment_estimate(&graph, &ds.history);
        let diag = evaluate_model(&graph, &model, &ds.today);
        assert_eq!(diag.count, graph.num_roads() * rtse_data::SLOTS_PER_DAY);
        assert!(
            diag.is_calibrated(0.12),
            "coverage 1σ {:.3}, 2σ {:.3}",
            diag.coverage_1sigma,
            diag.coverage_2sigma
        );
    }

    #[test]
    fn wrong_model_scores_worse() {
        let (graph, ds) = world();
        let good = moment_estimate(&graph, &ds.history);
        let mut bad = good.clone();
        for t in SlotOfDay::all() {
            for m in bad.slot_mut(t).mu.iter_mut() {
                *m += 25.0; // systematically biased means
            }
        }
        let dg = evaluate_model(&graph, &good, &ds.today);
        let db = evaluate_model(&graph, &bad, &ds.today);
        assert!(dg.avg_log_density > db.avg_log_density);
        assert!(dg.coverage_2sigma > db.coverage_2sigma);
    }

    #[test]
    fn overdispersed_sigma_breaks_calibration() {
        let (graph, ds) = world();
        let mut wide = moment_estimate(&graph, &ds.history);
        for t in SlotOfDay::all() {
            for s in wide.slot_mut(t).sigma.iter_mut() {
                *s *= 10.0;
            }
        }
        let d = evaluate_model(&graph, &wide, &ds.today);
        // Everything falls inside 1σ of an absurdly wide Gaussian.
        assert!(d.coverage_1sigma > 0.99);
        assert!(!d.is_calibrated(0.12));
    }

    #[test]
    fn empty_store_graceful() {
        let (graph, ds) = world();
        let model = moment_estimate(&graph, &ds.history);
        let empty = HistoryStore::new(graph.num_roads(), 1);
        let d = evaluate_model(&graph, &model, &empty);
        assert_eq!(d.count, 0);
        assert_eq!(d.avg_log_density, 0.0);
    }
}
