//! RTF — the Realtime Traffic-speed Field (Section IV of the paper).
//!
//! A Gaussian Markov Random Field sharing the traffic network's topology.
//! For every 5-minute slot `t` it holds three parameter families:
//!
//! * `μ_i^t` — expected speed of road `i` in slot `t` (periodic mean);
//! * `σ_i^t` — standard deviation, the *intensity of periodicity* (small σ
//!   = strongly periodic road);
//! * `ρ_ij^t ∈ [0, 1]` — correlation strength of adjacent roads `i, j`.
//!
//! Modules:
//! * [`params`] — the parameter storage ([`RtfModel`]) and derived
//!   quantities (`μ_ij`, `σ_ij²` from Eq. 2);
//! * [`likelihood`] — the joint slot log-likelihood (Eq. 5);
//! * [`gradients`] — analytic partials for the trainer (verified against
//!   finite differences in tests);
//! * [`moments`] — closed-form moment estimation (sample mean/std/Pearson);
//! * [`trainer`] — Alg. 1: cyclic-coordinate-descent gradient ascent with
//!   convergence tracking (the Fig. 5 metric is the max `μ`-gradient);
//! * [`corr_table`] — the offline all-pairs path-correlation table `Γ`
//!   (Eqs. 7–10), with both `MaxProduct` and literal `ReciprocalSum` path
//!   semantics;
//! * [`sparse_corr`] — the floor/top-k pruned CSR variant of Γ for
//!   city-scale networks, plus the [`CorrelationRead`] trait both tables
//!   serve;
//! * [`persistence`] — JSON save/load of trained models.
//!
//! ## Deviation from the paper's Eq. (3)
//!
//! As printed, Eq. (3) omits the Gaussian log-normalizers, which makes the
//! joint likelihood unbounded: `∂L/∂ρ_ij` is globally non-positive, so
//! "maximizing" drives every `ρ` to 0. We restore the `-ln σ²` terms (node
//! and edge), which makes the MLE well-posed and — usefully — makes its
//! stationary point coincide with the moment estimates, giving the trainer
//! an independently checkable target.

pub mod corr_table;
pub mod daytype;
pub mod diagnostics;
pub mod gradients;
pub mod incremental;
mod json;
pub mod likelihood;
pub mod moments;
pub mod params;
pub mod persistence;
pub mod sparse_corr;
pub mod trainer;

pub use corr_table::{CorrelationTable, PathCorrelation};
pub use daytype::{DayType, DayTypeModel};
pub use diagnostics::{evaluate_model, ModelDiagnostics};
pub use incremental::IncrementalModel;
pub use moments::moment_estimate;
pub use params::{RtfModel, SlotParams};
pub use sparse_corr::{CorrTable, CorrelationRead, SparseCorrConfig, SparseCorrelationTable};
pub use trainer::{InitStrategy, RtfTrainer, TrainStats, UpdateMode};
