//! Property tests for the offline correlation table `Γ` (Eqs. 7–12):
//! under arbitrary random topologies and edge correlations, the table must
//! satisfy the rtse-check contract — symmetric, unit diagonal, every value
//! in `[0, 1]` — for both path semantics.

use proptest::prelude::*;
use rtse_check::Validate;
use rtse_data::{SlotOfDay, SLOTS_PER_DAY};
use rtse_graph::{Graph, GraphBuilder, RoadClass, RoadId};
use rtse_rtf::params::SlotParams;
use rtse_rtf::{CorrelationTable, PathCorrelation, RtfModel};

const N: usize = 10;

/// Builds a graph on `N` roads plus a model carrying the given per-edge ρ
/// (deduplicated edges keep their first ρ).
fn fixture(edges: &[(u32, u32, f64)]) -> (Graph, RtfModel) {
    let mut b = GraphBuilder::new();
    for i in 0..N {
        b.add_road(RoadClass::Secondary, (i as f64, 0.0));
    }
    let mut rho = Vec::new();
    for &(x, y, r) in edges {
        if x != y && b.add_edge(RoadId(x), RoadId(y)) {
            rho.push(r);
        }
    }
    let g = b.build();
    let slots: Vec<SlotParams> = (0..SLOTS_PER_DAY)
        .map(|_| SlotParams { mu: vec![0.0; N], sigma: vec![1.0; N], rho: rho.clone() })
        .collect();
    let model = RtfModel::from_slots(N, g.num_edges(), slots);
    (g, model)
}

proptest! {
    /// The built table passes its invariant contract and the raw
    /// symmetry/diagonal/range properties hold for every pair, under
    /// random graphs (including disconnected and empty ones).
    #[test]
    fn corr_table_contract_holds_on_random_graphs(
        edges in proptest::collection::vec(
            (0u32..N as u32, 0u32..N as u32, 0.001..0.999f64),
            0..30,
        ),
        semantics_pick in 0u8..2,
    ) {
        let semantics = if semantics_pick == 0 {
            PathCorrelation::MaxProduct
        } else {
            PathCorrelation::ReciprocalSum
        };
        let (g, m) = fixture(&edges);
        let t = CorrelationTable::build(&g, &m, SlotOfDay(0), semantics);
        prop_assert!(t.validate().is_ok(), "contract violated: {:?}", t.validate());
        for a in g.road_ids() {
            prop_assert!((t.corr(a, a) - 1.0).abs() <= 1e-12, "diag({a}) = {}", t.corr(a, a));
            for b in g.road_ids() {
                let c = t.corr(a, b);
                prop_assert!(c.is_finite() && (0.0..=1.0).contains(&c), "corr({a},{b}) = {c}");
                let mirror = t.corr(b, a);
                prop_assert!(
                    (c - mirror).abs() <= 1e-9,
                    "corr({a},{b}) = {c} but corr({b},{a}) = {mirror}"
                );
            }
        }
    }

    /// Adjacent pairs read the edge ρ directly (Eq. 7), so their table
    /// entries are exactly symmetric and equal to the model parameter.
    #[test]
    fn adjacent_pairs_match_edge_rho(
        edges in proptest::collection::vec(
            (0u32..N as u32, 0u32..N as u32, 0.001..0.999f64),
            1..20,
        ),
    ) {
        let (g, m) = fixture(&edges);
        let t = CorrelationTable::build(&g, &m, SlotOfDay(0), PathCorrelation::MaxProduct);
        let params = m.slot(SlotOfDay(0));
        for (e, &(a, b)) in g.edges().iter().enumerate() {
            let expected = params.rho[e];
            prop_assert_eq!(t.corr(a, b), expected);
            prop_assert_eq!(t.corr(b, a), expected);
        }
    }
}
