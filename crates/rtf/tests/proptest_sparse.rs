//! Dense↔sparse Γ equivalence and thread-count invariance.
//!
//! The sparse substrate's contract (DESIGN.md §11): for every road pair
//! whose dense `MaxProduct` value is ≥ the pruning floor, the sparse table
//! stores the *bit-identical* value; every pair below the floor reads as
//! exactly `0.0`. The early-exit Dijkstra bound makes this exact, not
//! approximate — these tests pin it across random topologies (including
//! ρ ≤ 0 and NaN edges, the two dense-path regressions fixed alongside the
//! sparse build), floors, top-k caps, and pool widths 1–8 under the same
//! serial-equivalence discipline as the dense build.

use proptest::prelude::*;
use rtse_data::{SlotOfDay, SLOTS_PER_DAY};
use rtse_graph::{Graph, GraphBuilder, RoadClass, RoadId};
use rtse_pool::ComputePool;
use rtse_rtf::params::SlotParams;
use rtse_rtf::{
    CorrelationTable, PathCorrelation, RtfModel, SparseCorrConfig, SparseCorrelationTable,
};

const N: usize = 12;

/// Random graph on `N` roads with explicit per-edge ρ. A `rho_class`
/// byte per edge mixes in the degenerate values the correctness pass is
/// about: 0, negative, and NaN correlations.
fn fixture(edges: &[(u32, u32, f64, u8)]) -> (Graph, RtfModel) {
    let mut b = GraphBuilder::new();
    for i in 0..N {
        b.add_road(RoadClass::Secondary, (i as f64, 0.0));
    }
    let mut rho = Vec::new();
    for &(x, y, r, class) in edges {
        if x != y && b.add_edge(RoadId(x), RoadId(y)) {
            rho.push(match class {
                0 => f64::NAN,
                1 => -r,
                _ => r,
            });
        }
    }
    let g = b.build();
    let slots: Vec<SlotParams> = (0..SLOTS_PER_DAY)
        .map(|_| SlotParams { mu: vec![0.0; N], sigma: vec![1.0; N], rho: rho.clone() })
        .collect();
    let model = RtfModel::from_slots(N, g.num_edges(), slots);
    (g, model)
}

fn edge_strategy() -> impl Strategy<Value = Vec<(u32, u32, f64, u8)>> {
    // class 0 → NaN, 1 → negated, anything else → as drawn; weight the
    // classes so most edges are live but every run sees some dead ones.
    proptest::collection::vec((0u32..N as u32, 0u32..N as u32, 0.0..0.999f64, 0u8..10), 0..36)
}

proptest! {
    /// Sparse agrees with dense bit-for-bit above the floor and reads
    /// exactly 0 below it, for any floor and random (possibly degenerate)
    /// ρ assignments.
    #[test]
    fn sparse_matches_dense_at_floor(
        edges in edge_strategy(),
        floor in 0.001..0.9f64,
    ) {
        let (g, m) = fixture(&edges);
        let config = SparseCorrConfig { floor, top_k: None };
        let dense =
            CorrelationTable::build(&g, &m, SlotOfDay(0), PathCorrelation::MaxProduct);
        let sparse = SparseCorrelationTable::build(&g, &m, SlotOfDay(0), config);
        for a in g.road_ids() {
            for b in g.road_ids() {
                let d = dense.corr(a, b);
                let s = sparse.corr(a, b);
                if d >= floor {
                    prop_assert!(
                        d.to_bits() == s.to_bits(),
                        "corr({a},{b}) ≥ floor {floor}: dense {d} vs sparse {s}"
                    );
                } else {
                    prop_assert!(s == 0.0, "corr({a},{b}) < floor {floor}: sparse read {s}");
                }
            }
        }
    }

    /// With a top-k cap, every stored value still equals the dense value
    /// bit-for-bit, rows respect the cap, and the kept entries are the
    /// strongest of the row (no kept value is strictly smaller than a
    /// dropped above-floor one).
    #[test]
    fn top_k_rows_store_exact_strongest(
        edges in edge_strategy(),
        k in 1usize..6,
    ) {
        let (g, m) = fixture(&edges);
        let config = SparseCorrConfig { floor: 0.01, top_k: Some(k) };
        let dense =
            CorrelationTable::build(&g, &m, SlotOfDay(0), PathCorrelation::MaxProduct);
        let sparse = SparseCorrelationTable::build(&g, &m, SlotOfDay(0), config);
        for a in g.road_ids() {
            let row: Vec<(RoadId, f64)> = sparse.row(a).collect();
            prop_assert!(row.len() <= k, "row {a} has {} entries over cap {k}", row.len());
            let kept_min =
                row.iter().map(|&(_, v)| v).fold(f64::INFINITY, f64::min);
            for (b, v) in row {
                prop_assert!(
                    v.to_bits() == dense.corr(a, b).to_bits(),
                    "kept corr({a},{b}) = {v} differs from dense"
                );
            }
            if sparse.row(a).count() == k {
                // Every above-floor dense value outside the row must not
                // beat the weakest kept entry.
                for b in g.road_ids() {
                    if b != a && sparse.corr(a, b) == 0.0 {
                        let d = dense.corr(a, b);
                        if d >= config.floor {
                            prop_assert!(
                                d <= kept_min,
                                "dropped corr({a},{b}) = {d} beats kept min {kept_min}"
                            );
                        }
                    }
                }
            }
        }
    }

    /// Pooled sparse builds are bit-identical (full CSR equality) to the
    /// serial build at thread counts 1–8 — the same serial-equivalence
    /// discipline the dense table is held to.
    #[test]
    fn sparse_build_is_thread_count_invariant(
        edges in edge_strategy(),
        floor in 0.001..0.5f64,
        threads in 1usize..=8,
    ) {
        let (g, m) = fixture(&edges);
        let config = SparseCorrConfig { floor, top_k: None };
        let serial = SparseCorrelationTable::build_observed(
            &g, &m, SlotOfDay(0), config,
            &ComputePool::new(1), &rtse_obs::ObsHandle::noop(),
        );
        let pooled = SparseCorrelationTable::build_observed(
            &g, &m, SlotOfDay(0), config,
            &ComputePool::new(threads), &rtse_obs::ObsHandle::noop(),
        );
        prop_assert!(serial == pooled, "sparse CSR differs at {threads} threads");
    }
}
