//! Serial-equivalence property tests for the pooled offline pipeline.
//!
//! Every parallel path in this crate (`CorrelationTable::build_with_pool`,
//! `RtfTrainer::train`) only changes *which worker* computes each
//! independent unit (a table row, a slot fit) — never the arithmetic — so
//! the results must be bit-identical to a single-threaded run at every
//! thread count. Any divergence means a scheduling-dependent data flow
//! crept in, which is exactly the bug class these tests pin down.

use proptest::prelude::*;
use rtse_data::{SlotOfDay, SynthConfig, TrafficGenerator, SLOTS_PER_DAY};
use rtse_graph::{Graph, GraphBuilder, RoadClass, RoadId};
use rtse_pool::ComputePool;
use rtse_rtf::params::SlotParams;
use rtse_rtf::{CorrelationTable, PathCorrelation, RtfModel, RtfTrainer};

const N: usize = 12;

/// Random graph on `N` roads with explicit per-edge ρ (zero allowed: the
/// build must clamp dead edges, not poison rows with `-ln 0` / `1/0`).
fn fixture(edges: &[(u32, u32, f64)]) -> (Graph, RtfModel) {
    let mut b = GraphBuilder::new();
    for i in 0..N {
        b.add_road(RoadClass::Secondary, (i as f64, 0.0));
    }
    let mut rho = Vec::new();
    for &(x, y, r) in edges {
        if x != y && b.add_edge(RoadId(x), RoadId(y)) {
            rho.push(r);
        }
    }
    let g = b.build();
    let slots: Vec<SlotParams> = (0..SLOTS_PER_DAY)
        .map(|_| SlotParams { mu: vec![0.0; N], sigma: vec![1.0; N], rho: rho.clone() })
        .collect();
    let model = RtfModel::from_slots(N, g.num_edges(), slots);
    (g, model)
}

fn semantics_from(pick: u8) -> PathCorrelation {
    if pick == 0 {
        PathCorrelation::MaxProduct
    } else {
        PathCorrelation::ReciprocalSum
    }
}

proptest! {
    /// Pooled table builds are bit-identical to the serial build across
    /// random topologies (ρ = 0 included), thread counts 1–8, and both
    /// path semantics.
    #[test]
    fn corr_table_build_is_thread_count_invariant(
        edges in proptest::collection::vec(
            (0u32..N as u32, 0u32..N as u32, 0.0..0.999f64),
            0..36,
        ),
        semantics_pick in 0u8..2,
        threads in 1usize..=8,
    ) {
        let semantics = semantics_from(semantics_pick);
        let (g, m) = fixture(&edges);
        let serial =
            CorrelationTable::build_with_pool(&g, &m, SlotOfDay(0), semantics, &ComputePool::new(1));
        let pooled = CorrelationTable::build_with_pool(
            &g, &m, SlotOfDay(0), semantics, &ComputePool::new(threads),
        );
        for a in g.road_ids() {
            for b in g.road_ids() {
                let (s, p) = (serial.corr(a, b), pooled.corr(a, b));
                prop_assert!(
                    s.to_bits() == p.to_bits(),
                    "corr({a},{b}) differs at {threads} threads: serial {s} vs pooled {p}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    /// Full-day training (288 independent per-slot CCD fits) is
    /// bit-identical at every pool width. Few cases and a tight sweep cap
    /// keep the 288-slot fit affordable; bit equality is the property, so
    /// unconverged fits are just as load-bearing as converged ones.
    #[test]
    fn trainer_is_thread_count_invariant(
        seed in 0u64..1000,
        threads in 2usize..=8,
    ) {
        let g = rtse_graph::generators::path(4);
        let cfg = SynthConfig { days: 3, seed, ..SynthConfig::small_test() };
        let ds = TrafficGenerator::new(&g, cfg).generate();
        let base = RtfTrainer { max_iters: 3, ..RtfTrainer::default() };

        let serial = RtfTrainer { threads: 1, ..base };
        let pooled = RtfTrainer { threads, ..base };
        let (m1, s1) = serial.train(&g, &ds.history);
        let (mk, sk) = pooled.train(&g, &ds.history);

        for t in SlotOfDay::all() {
            let (a, b) = (m1.slot(t), mk.slot(t));
            prop_assert!(a.mu == b.mu, "slot {t:?} μ differs at {threads} threads");
            prop_assert!(a.sigma == b.sigma, "slot {t:?} σ differs at {threads} threads");
            prop_assert!(a.rho == b.rho, "slot {t:?} ρ differs at {threads} threads");
        }
        for (t, (a, b)) in s1.iter().zip(&sk).enumerate() {
            prop_assert!(a.iterations == b.iterations, "slot {t} iteration count differs");
            prop_assert!(a.converged == b.converged, "slot {t} convergence differs");
            prop_assert!(a.mu_grad_trace == b.mu_grad_trace, "slot {t} trace differs");
        }
    }
}
